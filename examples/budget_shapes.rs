//! Figure 1 of the paper: the three canonical budget-function shapes.
//!
//! Renders `B_Q(t)` for the step, convex and concave shapes as ASCII
//! curves — the same shapes [`econ::BudgetShape`] generates for users.
//!
//! Run with: `cargo run --example budget_shapes`

use cloudcache::econ::{BudgetFunction, BudgetShape};
use cloudcache::pricing::Money;
use cloudcache::simcore::SimDuration;

const WIDTH: usize = 60;
const HEIGHT: usize = 12;

fn plot(name: &str, budget: &BudgetFunction, amount: Money, t_max: f64) {
    println!(
        "\n{name}:  B_Q(t), amount ${:.2}, t_max {t_max}s",
        amount.as_dollars()
    );
    let mut rows = vec![vec![' '; WIDTH]; HEIGHT];
    for (x, row_hits) in (0..WIDTH).map(|x| {
        let t = t_max * 1.15 * x as f64 / WIDTH as f64;
        let v = budget.value_at(SimDuration::from_secs(t));
        let frac = v.as_dollars() / amount.as_dollars();
        (x, (frac * (HEIGHT - 1) as f64).round() as usize)
    }) {
        let y = (HEIGHT - 1).saturating_sub(row_hits.min(HEIGHT - 1));
        rows[y][x] = '*';
    }
    for (i, row) in rows.iter().enumerate() {
        let label = if i == 0 {
            format!("${:>5.2} |", amount.as_dollars())
        } else if i == HEIGHT - 1 {
            "$ 0.00 |".to_owned()
        } else {
            "       |".to_owned()
        };
        println!("{label}{}", row.iter().collect::<String>());
    }
    println!("       +{}", "-".repeat(WIDTH));
    println!(
        "        0{:>width$}",
        format!("{t_max}s →"),
        width = WIDTH - 1
    );
}

fn main() {
    let amount = Money::from_dollars(10.0);
    let t_max = 20.0;
    let deadline = SimDuration::from_secs(t_max);

    println!("The paper's Fig. 1 — user budget functions (all non-increasing):");
    for (name, shape) in [
        ("(a) step     B_Q(t) = |a| up to t_max", BudgetShape::Step),
        (
            "(b) convex   B_Q(t) = |a|(1 - t/t_max)",
            BudgetShape::Convex,
        ),
        (
            "(c) concave  B_Q(t) = |a|(1 - (t/t_max)^2)",
            BudgetShape::Concave,
        ),
    ] {
        let b = BudgetFunction::of_shape(shape, amount, deadline);
        plot(name, &b, amount, t_max);
    }

    // A tabulated budget, the fully general form the cloud accepts.
    let table = BudgetFunction::table(vec![
        (SimDuration::from_secs(0.0), Money::from_dollars(10.0)),
        (SimDuration::from_secs(5.0), Money::from_dollars(8.0)),
        (SimDuration::from_secs(12.0), Money::from_dollars(3.0)),
        (SimDuration::from_secs(20.0), Money::from_dollars(1.0)),
    ]);
    plot("(d) tabulated (piecewise constant)", &table, amount, t_max);
}
