//! An SDSS-like survey workload on the astronomical schema.
//!
//! The paper motivates the economy with massive scientific archives like
//! the Sloan Digital Sky Survey. This example leaves TPC-H behind: it
//! declares three SkyServer-style query templates (cone search, colour
//! cut, neighbour join) over the [`catalog::sdss`] schema and drives the
//! economy directly through [`econ::EconomyManager`] — the lower-level
//! API the simulator wraps.
//!
//! Run with: `cargo run --release --example sdss_survey`

use std::sync::Arc;

use cloudcache::catalog::sdss::sdss_schema;
use cloudcache::catalog::Schema;
use cloudcache::econ::{EconConfig, EconomyManager};
use cloudcache::planner::{generate_candidates, CostParams, Estimator, PlannerContext};
use cloudcache::pricing::{Money, PriceCatalog};
use cloudcache::simcore::{NetworkModel, SimTime};
use cloudcache::workload::templates::{ResolvedAccess, ResolvedTemplate, TemplateId};
use cloudcache::workload::{WorkloadConfig, WorkloadGenerator};

fn cols(schema: &Schema, names: &[&str]) -> Vec<cloudcache::catalog::ColumnId> {
    names
        .iter()
        .map(|n| schema.column_by_name(n).expect("column exists").id)
        .collect()
}

fn survey_templates(schema: &Schema) -> Vec<ResolvedTemplate> {
    let photo = schema.table_by_name("photoobj").unwrap().id;
    let neighbors = schema.table_by_name("neighbors").unwrap().id;
    vec![
        // Cone search: positional range scan returning bright objects.
        ResolvedTemplate {
            id: TemplateId(0),
            name: "cone_search".into(),
            accesses: vec![ResolvedAccess {
                table: photo,
                required: cols(
                    schema,
                    &[
                        "photoobj.objid",
                        "photoobj.ra",
                        "photoobj.dec",
                        "photoobj.psfmag_r",
                    ],
                ),
                optional: cols(schema, &["photoobj.petrorad_r"]),
                predicates: cols(schema, &["photoobj.ra", "photoobj.dec"]),
                selectivity_factor: 1.0,
            }],
            sort_columns: cols(schema, &["photoobj.psfmag_r"]),
            sel_log10_range: (-5.0, -3.5),
            result_fanout: 1.0,
            result_rows_cap: 400_000,
            result_row_width: 36,
        },
        // Colour cut: quasar candidates via u-g / g-r colour box.
        ResolvedTemplate {
            id: TemplateId(1),
            name: "color_cut".into(),
            accesses: vec![ResolvedAccess {
                table: photo,
                required: cols(
                    schema,
                    &[
                        "photoobj.objid",
                        "photoobj.psfmag_u",
                        "photoobj.psfmag_g",
                        "photoobj.psfmag_r",
                        "photoobj.obj_type",
                    ],
                ),
                optional: cols(schema, &["photoobj.extinction_r"]),
                predicates: cols(schema, &["photoobj.psfmag_g", "photoobj.obj_type"]),
                selectivity_factor: 1.0,
            }],
            sort_columns: vec![],
            sel_log10_range: (-4.5, -3.0),
            result_fanout: 1.0,
            result_rows_cap: 250_000,
            result_row_width: 44,
        },
        // Neighbour join: objects with close companions (lensing pairs).
        ResolvedTemplate {
            id: TemplateId(2),
            name: "neighbor_pairs".into(),
            accesses: vec![
                ResolvedAccess {
                    table: neighbors,
                    required: cols(
                        schema,
                        &[
                            "neighbors.objid",
                            "neighbors.neighborobjid",
                            "neighbors.distance_arcmin",
                        ],
                    ),
                    optional: vec![],
                    predicates: cols(schema, &["neighbors.distance_arcmin"]),
                    selectivity_factor: 1.0,
                },
                ResolvedAccess {
                    table: photo,
                    required: cols(schema, &["photoobj.objid", "photoobj.psfmag_r"]),
                    optional: vec![],
                    predicates: vec![],
                    selectivity_factor: 3.0,
                },
            ],
            sort_columns: cols(schema, &["neighbors.distance_arcmin"]),
            sel_log10_range: (-5.5, -4.0),
            result_fanout: 2.0,
            result_rows_cap: 300_000,
            result_row_width: 28,
        },
    ]
}

fn main() {
    // DR7-scale photometry: 3.5 × 10⁸ objects ≈ 250 GB across the tables.
    let schema = Arc::new(sdss_schema(350_000_000));
    println!(
        "SDSS-like archive: {} tables, {:.1} GB",
        schema.tables().len(),
        schema.total_bytes() as f64 / 1e9
    );

    let templates = survey_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    println!("advisor proposed {} candidate indexes", candidates.len());

    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let cand_index = planner::CandidateIndex::build(&schema, &candidates);
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };

    let mut generator = WorkloadGenerator::with_templates(
        Arc::clone(&schema),
        templates,
        WorkloadConfig::default(),
        2026,
    );
    let mut economy = EconomyManager::new(EconConfig::default());

    let n = 120_000u64;
    let mut hits = 0u64;
    let mut builds = 0u64;
    let mut response_sum = 0.0;
    for i in 0..n {
        let query = generator.next_query();
        let outcome = economy.process_query(&ctx, &query, SimTime::from_secs(i as f64 + 1.0));
        hits += u64::from(outcome.ran_in_cache);
        builds += outcome.investments.len() as u64;
        response_sum += outcome.response_time.as_secs();
        if (i + 1) % 20_000 == 0 {
            println!(
                "after {:>6} queries: {:>2} structures cached ({:>6.1} GB), {:>5.1}% cache hits, balance {}",
                i + 1,
                economy.cache().len(),
                economy.cache().disk_used() as f64 / 1e9,
                hits as f64 / (i + 1) as f64 * 100.0,
                economy.account().balance()
            );
        }
    }
    println!(
        "\nsurvey served: mean response {:.2}s, {builds} structures built, \
         cloud profit {} on payments {}",
        response_sum / n as f64,
        economy.account().balance() - Money::from_dollars(5.0),
        economy.account().total_payments()
    );
    assert!(economy.account().balances_exactly());
}
