//! The cache marketplace: three routing strategies head-to-head.
//!
//! Runs the same heterogeneous tenant population (fixed / Poisson /
//! bursty arrivals, varied budget generosity) over the same fleet of
//! self-tuned cache nodes under each shipped router, and prints how the
//! market outcome changes: cost, response time, hit rate, and how
//! traffic distributed across the competing nodes.
//!
//! Cheapest-quote routing is the paper's economy played as a
//! competition — every node quotes its price `B_Q(t)` for the query and
//! the lowest bid wins. Nodes that invested well quote low, win traffic,
//! and amortize their structures faster: the self-tuning loop of
//! Section IV-A, at fleet scale.
//!
//! Run with: `cargo run --release --example fleet_market [tenants] [queries_per_tenant]`

use cloudcache::fleet::{run_fleet, FleetConfig, RouterKind};

fn main() {
    let tenants: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("tenants must be a number"))
        .unwrap_or(24);
    let queries_per_tenant: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("queries per tenant must be a number"))
        .unwrap_or(800);

    println!(
        "fleet market: {tenants} mixed tenants x {queries_per_tenant} queries, 4 econ-cheap nodes, SF 10\n"
    );

    for router in RouterKind::all() {
        let mut config = FleetConfig::mixed(tenants, 4, queries_per_tenant);
        // SF 10 keeps column-transfer times well inside the run horizon,
        // so investments come online and the market outcomes diverge.
        config.scale_factor = 10.0;
        config.cells = 8;
        config.shards = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        config.router = router;

        let result = run_fleet(config);
        println!("{}", result.table_row());
        let total = result.queries.max(1);
        for node in &result.nodes {
            println!(
                "    node {} ({:<10}) {:>6} queries ({:>4.1}%)  cost ${:>9.4}  profit ${:>8.4}",
                node.node,
                node.scheme,
                node.queries,
                node.queries as f64 / total as f64 * 100.0,
                node.total_operating_cost().as_dollars(),
                node.profit.as_dollars(),
            );
        }
        let slow = result
            .tenants
            .iter()
            .max_by(|a, b| {
                a.response
                    .mean()
                    .partial_cmp(&b.response.mean())
                    .expect("finite means")
            })
            .expect("population not empty");
        println!(
            "    slowest tenant: #{} mean {:.3}s over {} queries, paid ${:.4}\n",
            slow.tenant.0,
            slow.response.mean(),
            slow.queries,
            slow.payments.as_dollars(),
        );
    }
}
