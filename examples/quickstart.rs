//! Quickstart: run the paper's economy over the TPC-H/SDSS workload.
//!
//! Simulates the econ-cheap scheme against a scaled-down backend (SF 100
//! ≈ 100 GB so the example finishes in seconds; pass `--sf 2500` flavoured
//! args via the bench binaries for the full paper scale) and prints what
//! Figures 4 and 5 would record for the cell.
//!
//! Run with: `cargo run --release --example quickstart`

use cloudcache::simulator::{run_simulation, Scheme, SimConfig};

fn main() {
    // One experiment cell: scheme × inter-arrival × backend scale.
    let config = SimConfig::paper_cell(
        Scheme::EconCheap,
        /* inter-arrival seconds */ 1.0,
        /* TPC-H scale factor   */ 100.0,
        /* queries              */ 100_000,
    );

    println!("simulating: econ-cheap, 1 s inter-arrival, SF 100 backend…");
    let result = run_simulation(config);

    println!("\n{}", result.table_row());
    println!("\nwhere the money went:");
    println!(
        "  CPU (node uptime + backend use)  {}",
        result.operating.cpu
    );
    println!(
        "  disk rent (byte-seconds)         {}",
        result.operating.disk
    );
    println!(
        "  WAN transfers                    {}",
        result.operating.network
    );
    println!("  I/O operations                   {}", result.operating.io);
    println!("  structure builds                 {}", result.build_spend);
    println!("\nand what came back:");
    println!("  user payments                    {}", result.payments);
    println!("  cloud profit                     {}", result.profit);
    println!(
        "\nself-tuning: {} structures built, {} evicted, {:.1}% of queries served from the cache",
        result.investments,
        result.evictions,
        result.hit_rate() * 100.0
    );
}
