//! All five policies head-to-head on one configuration.
//!
//! Runs bypass, econ-col, econ-cheap, econ-fast and the altruistic
//! (min-profit) cloud of Definition 1 over the same workload and prints a
//! comparison table — a miniature of Figures 4 and 5 side by side.
//!
//! Run with: `cargo run --release --example policy_shootout [interval_secs]`

use cloudcache::simulator::{run_simulation, Scheme, SimConfig};

fn main() {
    let interval: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let sf = 200.0;
    let n = 150_000;

    println!("policy shootout: SF {sf}, {n} queries, {interval}s inter-arrival\n");
    let mut schemes = Scheme::paper_schemes();
    schemes.push(Scheme::Altruistic);

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = schemes
            .iter()
            .map(|scheme| {
                let cfg = SimConfig::paper_cell(scheme.clone(), interval, sf, n);
                scope.spawn(move || run_simulation(cfg))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for r in &results {
        println!("{}", r.table_row());
    }

    let bypass_cost = results[0].total_operating_cost().as_dollars();
    let bypass_resp = results[0].mean_response_secs();
    println!("\nrelative to the bypass (net-only) baseline:");
    for r in &results[1..] {
        println!(
            "  {:<16} cost {:>+6.1}%   response {:>+6.1}%   profit {}",
            r.scheme,
            (r.total_operating_cost().as_dollars() / bypass_cost - 1.0) * 100.0,
            (r.mean_response_secs() / bypass_resp - 1.0) * 100.0,
            r.profit,
        );
    }
}
