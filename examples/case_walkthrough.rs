//! Figure 2 of the paper: the three relationships between the user's
//! budget `B_Q` and the plan-price function `B_PQ`, and what the economy
//! does in each case.
//!
//! Builds a small synthetic skyline (a fast-but-pricey possible plan, a
//! mid plan, and the backend plan) and walks it through budgets that
//! trigger Case A, Case B and Case C.
//!
//! Run with: `cargo run --example case_walkthrough`

use cloudcache::cache::StructureKey;
use cloudcache::econ::{select_plan, BudgetFunction, BudgetShape, SelectionObjective};
use cloudcache::metrics::CostBreakdown;
use cloudcache::planner::plan::{PlanShape, QueryPlan};
use cloudcache::pricing::Money;
use cloudcache::simcore::SimDuration;

fn plan(label: &str, time: f64, price: f64, existing: bool) -> (String, QueryPlan) {
    let plan = QueryPlan {
        shape: PlanShape::Backend, // shape is irrelevant to the case logic
        exec_time: SimDuration::from_secs(time),
        exec_cost: Money::from_dollars(price),
        exec_breakdown: CostBreakdown::ZERO,
        uses: if existing {
            vec![]
        } else {
            vec![StructureKey::Node(0)]
        },
        missing: if existing {
            vec![]
        } else {
            vec![StructureKey::Node(0)]
        },
        build_cost: Money::ZERO,
        build_time: SimDuration::ZERO,
        amortized_cost: Money::ZERO,
        maintenance_cost: Money::ZERO,
        price: Money::from_dollars(price),
    };
    (label.to_owned(), plan)
}

fn walkthrough(title: &str, budget_amount: f64, t_max: f64) {
    // The skyline (footnote 2): faster plans cost more.
    let labelled = vec![
        plan("P1: cache+index (possible — needs builds)", 1.0, 6.0, false),
        plan("P2: cache scan (existing)", 4.0, 3.0, true),
        plan("P3: backend (existing)", 10.0, 1.0, true),
        plan("P4: cache scan, off-peak (possible)", 12.0, 0.4, false),
    ];
    let plans: Vec<QueryPlan> = labelled.iter().map(|(_, p)| p.clone()).collect();
    let budget = BudgetFunction::of_shape(
        BudgetShape::Step,
        Money::from_dollars(budget_amount),
        SimDuration::from_secs(t_max),
    );

    println!("\n=== {title} ===");
    println!("budget: ${budget_amount:.2} flat up to {t_max}s");
    for (label, p) in &labelled {
        let affordable = budget.affords(p.exec_time, p.price);
        println!(
            "  {label:<44} t={:>5.1}s  price=${:<5.2} {}",
            p.exec_time.as_secs(),
            p.price.as_dollars(),
            if affordable {
                "affordable"
            } else {
                "over budget"
            }
        );
    }
    let sel = select_plan(&plans, &budget, SelectionObjective::MinProfit);
    println!(
        "→ Case {:?}: executes {}, user pays {}, cloud profit {}",
        sel.case, labelled[sel.selected].0, sel.payment, sel.profit
    );
    for (idx, regret) in &sel.regrets {
        println!(
            "  regret {} for not having built the structures of {}",
            regret, labelled[*idx].0
        );
    }
    if sel.regrets.is_empty() {
        println!("  (no possible plan earns regret in this case)");
    }
}

fn main() {
    println!("The paper's Fig. 2 — how B_Q relates to B_PQ decides the case:");
    // Case A: budget below every plan → user picks cheapest existing, pays
    // its price; cheaper possible plans accrue eq. 1 regret.
    walkthrough("Case A — budget below every plan", 0.50, 20.0);
    // Case B: budget covers all plans → min-profit plan executes, user
    // pays B_Q(t); pricier possible plans accrue eq. 2 regret.
    walkthrough("Case B — budget covers every plan", 8.0, 20.0);
    // Case C: budget covers some plans → Case B over the affordable set.
    walkthrough("Case C — budget covers some plans", 3.5, 20.0);
}
