//! Fault-injection plane — the acceptance properties of `fleet::faults`:
//!
//! 1. **Crash isolation** — once a node crashes, no routing strategy,
//!    quote-pool size or completion path ever routes a query to it again
//!    (proptest over the router × pool × completion matrix).
//! 2. **Determinism** — fault-injected runs (crashes, recoveries,
//!    degradations, surges, timeouts) are bit-identical across executor
//!    shard counts, and traced runs are bit-identical to untraced ones.
//! 3. **Ledger-replay reconciliation** — recovering a crashed node by
//!    replaying its settlement journal into a fresh economy reproduces
//!    the pre-crash balances *exactly*, for random crash instants
//!    (proptest; zero drift on every component).
//! 4. **Population floor** — a crashed node is gone *immediately*: the
//!    elastic control plane's population-floor rule respawns at the next
//!    review, never waiting out a drain grace the dead node can't serve.

use cloudcache::fleet::{
    run_fleet, CacheNode, ElasticAction, ElasticConfig, FaultOutcome, FaultPlan, FleetConfig,
    FleetResult, FleetSim, NodePopulation, NodeSpec, RouterKind,
};
use cloudcache::pricing::PriceCatalog;
use cloudcache::simcore::SimTime;
use cloudcache::simulator::Scheme;
use cloudcache::telemetry::TraceEvent;
use proptest::prelude::*;

/// A small faulted fleet: 8 fixed-interval tenants over 4 cells, 3 seed
/// nodes per cell, 40 queries per tenant — so per-cell arrivals land on
/// every half-second up to t=40 and every fault instant below the
/// horizon fires.
fn faulted_base(seed: u64) -> FleetConfig {
    let mut config = FleetConfig::uniform(8, 3, 40, 1.0);
    config.scale_factor = 10.0;
    config.cells = 4;
    config.seed = seed;
    config
}

const HORIZON: f64 = 40.0;

/// Everything a faulted run must reproduce exactly, fault ledger
/// included.
fn fault_fingerprint(r: &FleetResult) -> String {
    format!(
        "queries={} cost={} payments={} mean={:016x} builds={} node_seconds={:016x} faults={}",
        r.queries,
        r.total_operating_cost().as_nanos(),
        r.payments.as_nanos(),
        r.mean_response_secs().to_bits(),
        r.investments,
        r.node_seconds.to_bits(),
        serde_json::to_string(&r.faults).expect("fault summary serializes"),
    )
}

proptest! {
    /// Whatever router, pool size and completion path serve the fleet,
    /// a crashed node never wins another quote round and never settles
    /// another query after its crash instant.
    #[test]
    fn no_query_is_routed_to_a_crashed_node(
        victim in 0usize..3,
        crash_at_halves in 10u32..60, // t in [5, 30)
        router_pick in 0usize..3,
        threads in 1usize..4,
        batching in prop::bool::ANY,
    ) {
        let crash_at = f64::from(crash_at_halves) * 0.5;
        let mut config = faulted_base(11)
            .with_faults(FaultPlan::new(HORIZON).with_crash(victim, crash_at));
        config.router = [RouterKind::RoundRobin, RouterKind::LeastOutstanding, RouterKind::CheapestQuote][router_pick];
        config.quote_threads = threads;
        config.quote_batching = batching;
        let (result, trace) = FleetSim::new(config).run_traced();

        let faults = result.faults.as_ref().expect("fault summary present");
        prop_assert_eq!(faults.crashes, 4, "one crash per cell replica");
        for event in &trace.events {
            match event {
                TraceEvent::QuoteRound(q) if q.at_secs >= crash_at => {
                    prop_assert_ne!(q.winner, victim,
                        "quote round at t={} picked crashed node", q.at_secs);
                }
                TraceEvent::Settlement(s) if s.at_secs >= crash_at => {
                    prop_assert_ne!(s.node, victim,
                        "settlement at t={} on crashed node", s.at_secs);
                }
                _ => {}
            }
        }
        // Every query still gets served — survivors absorb the load.
        prop_assert_eq!(result.queries, 8 * 40);
    }

    /// Fault-injected runs — crash + recovery + degradation + timeout +
    /// flash crowd all at once — are bit-identical across 1/2/4/8
    /// executor shards.
    #[test]
    fn faulted_runs_are_bit_identical_across_shards(
        seed in 0u64..1_000,
        victim in 0usize..3,
        crash_at_halves in 10u32..40, // t in [5, 20)
        recover in prop::bool::ANY,
        surge in prop::bool::ANY,
    ) {
        let crash_at = f64::from(crash_at_halves) * 0.5;
        let mut plan = FaultPlan::new(HORIZON)
            .with_degrade((victim + 1) % 3, 5.0, 25.0, 8.0)
            .with_timeout(0.1);
        plan = if recover {
            plan.with_crash_recover(victim, crash_at, 6.0)
        } else {
            plan.with_crash(victim, crash_at)
        };
        if surge {
            plan = plan.with_surge(8.0, 10.0, 4.0);
        }
        let base = faulted_base(seed).with_faults(plan);
        let reference = fault_fingerprint(&run_fleet(base.clone()));
        for shards in [2usize, 4, 8] {
            let mut config = base.clone();
            config.shards = shards;
            let replay = fault_fingerprint(&run_fleet(config));
            prop_assert_eq!(&replay, &reference, "drift at shards={}", shards);
        }
    }

    /// Replaying a crashed node's journal into a fresh economy reproduces
    /// its books exactly — zero drift on queries, payments, profit, cache
    /// hits, balance, regret and disk occupancy — for random crash and
    /// recovery instants.
    #[test]
    fn ledger_replay_reconciles_exactly(
        seed in 0u64..1_000,
        victim in 0usize..3,
        crash_at_halves in 10u32..50, // t in [5, 25)
        recover_after_halves in 4u32..20, // Δ in [2, 10): crash + Δ < 35 < horizon
    ) {
        let crash_at = f64::from(crash_at_halves) * 0.5;
        let recover_after = f64::from(recover_after_halves) * 0.5;
        let config = faulted_base(seed).with_faults(
            FaultPlan::new(HORIZON).with_crash_recover(victim, crash_at, recover_after),
        );
        let result = run_fleet(config);
        let faults = result.faults.as_ref().expect("fault summary present");
        prop_assert_eq!(faults.crashes, 4);
        prop_assert_eq!(faults.recoveries, 4, "every cell recovers its replica");
        prop_assert_eq!(faults.reconciled, faults.recoveries,
            "replay drifted: {:?}",
            faults.records.iter().filter_map(|r| match &r.event {
                FaultOutcome::Recover(rec) if !rec.drift.is_zero() => Some(rec.drift.clone()),
                _ => None,
            }).collect::<Vec<_>>());
        for record in &faults.records {
            if let FaultOutcome::Recover(rec) = &record.event {
                prop_assert!(rec.drift.is_zero());
                prop_assert_eq!(rec.crashed, victim);
                prop_assert!(rec.replacement >= 3, "replacement gets a fresh id");
            }
        }
    }
}

/// A crashed node leaves `routable_count` (and the live set) at the
/// instant of the crash — not after a drain grace it can no longer
/// serve.
#[test]
fn crash_is_immediately_gone_from_the_population() {
    let h_schema = std::sync::Arc::new(cloudcache::catalog::tpch::tpch_schema(
        cloudcache::catalog::tpch::ScaleFactor(10.0),
    ));
    let econ = cloudcache::econ::EconConfig::default();
    let rates = PriceCatalog::ec2_2009().rates;
    let nodes: Vec<CacheNode> = (0..2)
        .map(|i| CacheNode::new(i, &NodeSpec::new(Scheme::EconCheap), &h_schema, &econ))
        .collect();
    let mut pop = NodePopulation::new(nodes);
    let at = SimTime::from_secs(10.0);
    assert_eq!(pop.routable_count(at), 2);
    let (id, run) = pop.crash(0, &rates, at);
    assert_eq!(id, 0);
    assert_eq!(run.queries, 0);
    assert_eq!(pop.routable_count(at), 1, "crash removes immediately");
    assert_eq!(pop.live().len(), 1);
    assert_eq!(pop.live()[0].id(), 1);
}

/// Satellite regression: with the population floor at the seed size, a
/// crash drops the cell below the floor and the elastic control plane
/// respawns at the *next review* — it does not wait out `drain_grace`
/// (set here far beyond the horizon, so any respawn proves the point).
#[test]
fn crashed_node_below_floor_respawns_at_next_review() {
    let review = 4.0;
    let crash_at = 10.0;
    let mut config = faulted_base(7)
        .with_faults(FaultPlan::new(HORIZON).with_crash(2, crash_at))
        .with_elastic(ElasticConfig {
            review_interval_secs: review,
            ewma_alpha: 0.3,
            scale_up_backlog: 1e12, // only the floor rule can spawn
            scale_down_backlog: 0.0,
            max_response_secs: 0.0,
            min_nodes: 3,
            max_nodes: 3,
            cooldown_reviews: 4,
            drain_grace_secs: 1_000.0,
        });
    config.shards = 2;
    let result = run_fleet(config);
    let elastic = result.elastic.as_ref().expect("elastic summary");
    let faults = result.faults.as_ref().expect("fault summary");
    assert_eq!(faults.crashes, 4);
    assert_eq!(elastic.spawns, 4, "one floor respawn per cell");

    let mut floor_spawns = 0;
    for entry in &elastic.ledger {
        if let ElasticAction::ScaleUp { .. } = entry.action {
            assert_eq!(entry.rule, "population-floor");
            assert!(
                entry.at_secs > crash_at,
                "respawn at t={} before the crash",
                entry.at_secs
            );
            assert!(
                entry.at_secs <= crash_at + 2.0 * review,
                "respawn at t={} waited past the next reviews (drain-grace leak)",
                entry.at_secs
            );
            floor_spawns += 1;
        }
    }
    assert_eq!(floor_spawns, 4);
}

/// Degraded winners whose backlog exceeds the per-query timeout re-route
/// to the next-best candidate; the run still serves everything.
#[test]
fn degraded_winner_times_out_and_reroutes() {
    let config = faulted_base(3).with_faults(
        FaultPlan::new(HORIZON)
            .with_degrade(0, 5.0, 35.0, 20.0)
            .with_timeout(0.05),
    );
    let (result, trace) = FleetSim::new(config).run_traced();
    let faults = result.faults.as_ref().expect("fault summary");
    assert!(
        faults.timeouts > 0,
        "a 20x slowdown over 30s must trip the 50ms timeout at least once"
    );
    assert_eq!(result.queries, 8 * 40, "re-routed queries still settle");
    assert_eq!(
        trace.registry.counter("fault.timeouts"),
        faults.timeouts,
        "registry and summary agree"
    );
}

/// Flash crowds compress arrivals: the surged run finishes the same
/// query budget strictly earlier, and the whole budget still settles.
#[test]
fn flash_crowd_compresses_the_horizon() {
    let base = faulted_base(9);
    let calm = run_fleet(base.clone());
    let surged = run_fleet(base.with_faults(FaultPlan::new(HORIZON).with_surge(10.0, 20.0, 8.0)));
    assert_eq!(surged.queries, calm.queries);
    assert!(
        surged.horizon_secs < calm.horizon_secs,
        "surge must pull arrivals earlier ({} !< {})",
        surged.horizon_secs,
        calm.horizon_secs
    );
}

/// The flight recorder stays an observer under faults: a traced faulted
/// run is bit-identical to the untraced run, and the registry's fault
/// metrics cross-foot with the merged summary.
#[test]
fn traced_faulted_run_matches_untraced_and_registry_crossfoots() {
    let config = faulted_base(5).with_faults(
        FaultPlan::new(HORIZON)
            .with_crash_recover(1, 12.0, 8.0)
            .with_degrade(0, 5.0, 20.0, 4.0)
            .with_timeout(0.1)
            .with_surge(25.0, 10.0, 3.0),
    );
    let untraced = run_fleet(config.clone());
    let (traced, trace) = FleetSim::new(config).run_traced();
    assert_eq!(fault_fingerprint(&traced), fault_fingerprint(&untraced));

    let faults = traced.faults.as_ref().expect("fault summary");
    assert_eq!(trace.registry.counter("fault.crashes"), faults.crashes);
    assert_eq!(
        trace.registry.counter("fault.recoveries"),
        faults.recoveries
    );
    assert_eq!(
        trace.registry.counter("fault.reconciled"),
        faults.reconciled
    );
    assert_eq!(trace.registry.counter("fault.timeouts"), faults.timeouts);
    assert_eq!(trace.registry.gauge("fault.write_off"), faults.write_off);
    let crash_events = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeCrash(_)))
        .count() as u64;
    let recover_events = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeRecover(_)))
        .count() as u64;
    assert_eq!(crash_events, faults.crashes);
    assert_eq!(recover_events, faults.recoveries);
}
