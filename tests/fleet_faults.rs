//! Fault-injection plane — the acceptance properties of `fleet::faults`:
//!
//! 1. **Crash isolation** — once a node crashes, no routing strategy,
//!    quote-pool size or completion path ever routes a query to it again
//!    (proptest over the router × pool × completion matrix).
//! 2. **Determinism** — fault-injected runs (crashes, recoveries,
//!    degradations, surges, timeouts) are bit-identical across executor
//!    shard counts, and traced runs are bit-identical to untraced ones.
//! 3. **Ledger-replay reconciliation** — recovering a crashed node by
//!    replaying its settlement journal into a fresh economy reproduces
//!    the pre-crash balances *exactly*, for random crash instants
//!    (proptest; zero drift on every component).
//! 4. **Population floor** — a crashed node is gone *immediately*: the
//!    elastic control plane's population-floor rule respawns at the next
//!    review, never waiting out a drain grace the dead node can't serve.

use cloudcache::fleet::{
    run_fleet, CacheNode, ElasticAction, ElasticConfig, FaultOutcome, FaultPlan, FleetConfig,
    FleetResult, FleetSim, NodePopulation, NodeSpec, RouterKind,
};
use cloudcache::pricing::{Money, PriceCatalog};
use cloudcache::simcore::SimTime;
use cloudcache::simulator::{ArrivalKind, Scheme};
use cloudcache::telemetry::TraceEvent;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small faulted fleet: 8 fixed-interval tenants over 4 cells, 3 seed
/// nodes per cell, 40 queries per tenant — so per-cell arrivals land on
/// every half-second up to t=40 and every fault instant below the
/// horizon fires.
fn faulted_base(seed: u64) -> FleetConfig {
    let mut config = FleetConfig::uniform(8, 3, 40, 1.0);
    config.scale_factor = 10.0;
    config.cells = 4;
    config.seed = seed;
    config
}

const HORIZON: f64 = 40.0;

/// Everything a faulted run must reproduce exactly, fault ledger
/// included.
fn fault_fingerprint(r: &FleetResult) -> String {
    format!(
        "queries={} cost={} payments={} mean={:016x} builds={} node_seconds={:016x} faults={}",
        r.queries,
        r.total_operating_cost().as_nanos(),
        r.payments.as_nanos(),
        r.mean_response_secs().to_bits(),
        r.investments,
        r.node_seconds.to_bits(),
        serde_json::to_string(&r.faults).expect("fault summary serializes"),
    )
}

proptest! {
    /// Whatever router, pool size and completion path serve the fleet,
    /// a crashed node never wins another quote round and never settles
    /// another query after its crash instant.
    #[test]
    fn no_query_is_routed_to_a_crashed_node(
        victim in 0usize..3,
        crash_at_halves in 10u32..60, // t in [5, 30)
        router_pick in 0usize..3,
        threads in 1usize..4,
        batching in prop::bool::ANY,
    ) {
        let crash_at = f64::from(crash_at_halves) * 0.5;
        let mut config = faulted_base(11)
            .with_faults(FaultPlan::new(HORIZON).with_crash(victim, crash_at));
        config.router = [RouterKind::RoundRobin, RouterKind::LeastOutstanding, RouterKind::CheapestQuote][router_pick];
        config.quote_threads = threads;
        config.quote_batching = batching;
        let (result, trace) = FleetSim::new(config).run_traced();

        let faults = result.faults.as_ref().expect("fault summary present");
        prop_assert_eq!(faults.crashes, 4, "one crash per cell replica");
        for event in &trace.events {
            match event {
                TraceEvent::QuoteRound(q) if q.at_secs >= crash_at => {
                    prop_assert_ne!(q.winner, victim,
                        "quote round at t={} picked crashed node", q.at_secs);
                }
                TraceEvent::Settlement(s) if s.at_secs >= crash_at => {
                    prop_assert_ne!(s.node, victim,
                        "settlement at t={} on crashed node", s.at_secs);
                }
                _ => {}
            }
        }
        // Every query still gets served — survivors absorb the load.
        prop_assert_eq!(result.queries, 8 * 40);
    }

    /// Fault-injected runs — crash + recovery + degradation + timeout +
    /// flash crowd all at once — are bit-identical across 1/2/4/8
    /// executor shards.
    #[test]
    fn faulted_runs_are_bit_identical_across_shards(
        seed in 0u64..1_000,
        victim in 0usize..3,
        crash_at_halves in 10u32..40, // t in [5, 20)
        recover in prop::bool::ANY,
        surge in prop::bool::ANY,
    ) {
        let crash_at = f64::from(crash_at_halves) * 0.5;
        let mut plan = FaultPlan::new(HORIZON)
            .with_degrade((victim + 1) % 3, 5.0, 25.0, 8.0)
            .with_timeout(0.1);
        plan = if recover {
            plan.with_crash_recover(victim, crash_at, 6.0)
        } else {
            plan.with_crash(victim, crash_at)
        };
        if surge {
            plan = plan.with_surge(8.0, 10.0, 4.0);
        }
        let base = faulted_base(seed).with_faults(plan);
        let reference = fault_fingerprint(&run_fleet(base.clone()));
        for shards in [2usize, 4, 8] {
            let mut config = base.clone();
            config.shards = shards;
            let replay = fault_fingerprint(&run_fleet(config));
            prop_assert_eq!(&replay, &reference, "drift at shards={}", shards);
        }
    }

    /// Replaying a crashed node's journal into a fresh economy reproduces
    /// its books exactly — zero drift on queries, payments, profit, cache
    /// hits, balance, regret and disk occupancy — for random crash and
    /// recovery instants.
    #[test]
    fn ledger_replay_reconciles_exactly(
        seed in 0u64..1_000,
        victim in 0usize..3,
        crash_at_halves in 10u32..50, // t in [5, 25)
        recover_after_halves in 4u32..20, // Δ in [2, 10): crash + Δ < 35 < horizon
    ) {
        let crash_at = f64::from(crash_at_halves) * 0.5;
        let recover_after = f64::from(recover_after_halves) * 0.5;
        let config = faulted_base(seed).with_faults(
            FaultPlan::new(HORIZON).with_crash_recover(victim, crash_at, recover_after),
        );
        let result = run_fleet(config);
        let faults = result.faults.as_ref().expect("fault summary present");
        prop_assert_eq!(faults.crashes, 4);
        prop_assert_eq!(faults.recoveries, 4, "every cell recovers its replica");
        prop_assert_eq!(faults.reconciled, faults.recoveries,
            "replay drifted: {:?}",
            faults.records.iter().filter_map(|r| match &r.event {
                FaultOutcome::Recover(rec) if !rec.drift.is_zero() => Some(rec.drift.clone()),
                _ => None,
            }).collect::<Vec<_>>());
        for record in &faults.records {
            if let FaultOutcome::Recover(rec) = &record.event {
                prop_assert!(rec.drift.is_zero());
                prop_assert_eq!(rec.crashed, victim);
                prop_assert!(rec.replacement >= 3, "replacement gets a fresh id");
            }
        }
    }

    /// Capital conservation under evacuation — for random crash instants,
    /// warning windows and fault groups, every crashed node's ledger
    /// reconstructs its invested build capital *exactly* in nanodollars:
    /// `write_off + salvaged + transfer_spend == build_spend`, summed
    /// over cells, with zero drift.
    #[test]
    fn evacuation_conserves_invested_capital_exactly(
        seed in 0u64..1_000,
        victim in 0usize..3,
        crash_at_halves in 30u32..70, // t in [15, 35): cache is warm
        warn_halves in 2u32..20,      // warning window in [1, 10)
        grouped in prop::bool::ANY,
    ) {
        let crash_at = f64::from(crash_at_halves) * 0.5;
        let warning = f64::from(warn_halves) * 0.5;
        let mut plan = FaultPlan::new(HORIZON).with_evacuation(warning, false);
        plan = if grouped {
            plan.with_group(vec![victim, (victim + 1) % 3], crash_at)
        } else {
            plan.with_crash(victim, crash_at)
        };
        let result = run_fleet(faulted_base(seed).with_faults(plan));
        let faults = result.faults.as_ref().expect("fault summary present");
        prop_assert_eq!(faults.crashes, if grouped { 8 } else { 4 });

        // Fold each crashed node's ledger: loss + salvage + wire cost.
        let mut reconstructed: BTreeMap<usize, Money> = BTreeMap::new();
        let mut crash_salvaged = Money::ZERO;
        let mut crash_transfer = Money::ZERO;
        for record in &faults.records {
            if let FaultOutcome::Crash(c) = &record.event {
                *reconstructed.entry(c.node).or_insert(Money::ZERO) +=
                    c.write_off + c.salvaged + c.transfer_spend;
                crash_salvaged += c.salvaged;
                crash_transfer += c.transfer_spend;
            }
        }
        // The reconstruction equals the victim's folded build spending —
        // the pre-fault invested capital — to the nanodollar.
        for (node, invested) in &reconstructed {
            let stats = result
                .nodes
                .iter()
                .find(|n| n.node == *node)
                .expect("crashed node keeps its stats row");
            prop_assert_eq!(
                *invested,
                stats.build_spend,
                "capital drift on node {}: reconstructed {} vs invested {}",
                node,
                invested,
                stats.build_spend
            );
        }
        // Every evacuated dollar lands on exactly one crash ledger:
        // summary totals (accumulated at evacuation time) cross-foot
        // with the per-crash attribution (accumulated at crash time).
        prop_assert_eq!(faults.salvaged, crash_salvaged);
        prop_assert_eq!(faults.transfer_spend, crash_transfer);
        prop_assert_eq!(result.queries, 8 * 40, "survivors absorb the load");
    }
}

/// A crashed node leaves `routable_count` (and the live set) at the
/// instant of the crash — not after a drain grace it can no longer
/// serve.
#[test]
fn crash_is_immediately_gone_from_the_population() {
    let h_schema = std::sync::Arc::new(cloudcache::catalog::tpch::tpch_schema(
        cloudcache::catalog::tpch::ScaleFactor(10.0),
    ));
    let econ = cloudcache::econ::EconConfig::default();
    let rates = PriceCatalog::ec2_2009().rates;
    let nodes: Vec<CacheNode> = (0..2)
        .map(|i| CacheNode::new(i, &NodeSpec::new(Scheme::EconCheap), &h_schema, &econ))
        .collect();
    let mut pop = NodePopulation::new(nodes);
    let at = SimTime::from_secs(10.0);
    assert_eq!(pop.routable_count(at), 2);
    let (id, run) = pop.crash(0, &rates, at);
    assert_eq!(id, 0);
    assert_eq!(run.queries, 0);
    assert_eq!(pop.routable_count(at), 1, "crash removes immediately");
    assert_eq!(pop.live().len(), 1);
    assert_eq!(pop.live()[0].id(), 1);
}

/// Satellite regression: with the population floor at the seed size, a
/// crash drops the cell below the floor and the elastic control plane
/// respawns at the *next review* — it does not wait out `drain_grace`
/// (set here far beyond the horizon, so any respawn proves the point).
#[test]
fn crashed_node_below_floor_respawns_at_next_review() {
    let review = 4.0;
    let crash_at = 10.0;
    let mut config = faulted_base(7)
        .with_faults(FaultPlan::new(HORIZON).with_crash(2, crash_at))
        .with_elastic(ElasticConfig {
            review_interval_secs: review,
            ewma_alpha: 0.3,
            scale_up_backlog: 1e12, // only the floor rule can spawn
            scale_down_backlog: 0.0,
            max_response_secs: 0.0,
            min_nodes: 3,
            max_nodes: 3,
            cooldown_reviews: 4,
            drain_grace_secs: 1_000.0,
        });
    config.shards = 2;
    let result = run_fleet(config);
    let elastic = result.elastic.as_ref().expect("elastic summary");
    let faults = result.faults.as_ref().expect("fault summary");
    assert_eq!(faults.crashes, 4);
    assert_eq!(elastic.spawns, 4, "one floor respawn per cell");

    let mut floor_spawns = 0;
    for entry in &elastic.ledger {
        if let ElasticAction::ScaleUp { .. } = entry.action {
            assert_eq!(entry.rule, "population-floor");
            assert!(
                entry.at_secs > crash_at,
                "respawn at t={} before the crash",
                entry.at_secs
            );
            assert!(
                entry.at_secs <= crash_at + 2.0 * review,
                "respawn at t={} waited past the next reviews (drain-grace leak)",
                entry.at_secs
            );
            floor_spawns += 1;
        }
    }
    assert_eq!(floor_spawns, 4);
}

/// Degraded winners whose backlog exceeds the per-query timeout re-route
/// to the next-best candidate; the run still serves everything.
#[test]
fn degraded_winner_times_out_and_reroutes() {
    let config = faulted_base(3).with_faults(
        FaultPlan::new(HORIZON)
            .with_degrade(0, 5.0, 35.0, 20.0)
            .with_timeout(0.05),
    );
    let (result, trace) = FleetSim::new(config).run_traced();
    let faults = result.faults.as_ref().expect("fault summary");
    assert!(
        faults.timeouts > 0,
        "a 20x slowdown over 30s must trip the 50ms timeout at least once"
    );
    assert_eq!(result.queries, 8 * 40, "re-routed queries still settle");
    assert_eq!(
        trace.registry.counter("fault.timeouts"),
        faults.timeouts,
        "registry and summary agree"
    );
}

/// Flash crowds compress arrivals: the surged run finishes the same
/// query budget strictly earlier, and the whole budget still settles.
#[test]
fn flash_crowd_compresses_the_horizon() {
    let base = faulted_base(9);
    let calm = run_fleet(base.clone());
    let surged = run_fleet(base.with_faults(FaultPlan::new(HORIZON).with_surge(10.0, 20.0, 8.0)));
    assert_eq!(surged.queries, calm.queries);
    assert!(
        surged.horizon_secs < calm.horizon_secs,
        "surge must pull arrivals earlier ({} !< {})",
        surged.horizon_secs,
        calm.horizon_secs
    );
}

/// The flight recorder stays an observer under faults: a traced faulted
/// run is bit-identical to the untraced run, and the registry's fault
/// metrics cross-foot with the merged summary.
#[test]
fn traced_faulted_run_matches_untraced_and_registry_crossfoots() {
    let config = faulted_base(5).with_faults(
        FaultPlan::new(HORIZON)
            .with_crash_recover(1, 12.0, 8.0)
            .with_degrade(0, 5.0, 20.0, 4.0)
            .with_timeout(0.1)
            .with_surge(25.0, 10.0, 3.0),
    );
    let untraced = run_fleet(config.clone());
    let (traced, trace) = FleetSim::new(config).run_traced();
    assert_eq!(fault_fingerprint(&traced), fault_fingerprint(&untraced));

    let faults = traced.faults.as_ref().expect("fault summary");
    assert_eq!(trace.registry.counter("fault.crashes"), faults.crashes);
    assert_eq!(
        trace.registry.counter("fault.recoveries"),
        faults.recoveries
    );
    assert_eq!(
        trace.registry.counter("fault.reconciled"),
        faults.reconciled
    );
    assert_eq!(trace.registry.counter("fault.timeouts"), faults.timeouts);
    assert_eq!(trace.registry.gauge("fault.write_off"), faults.write_off);
    let crash_events = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeCrash(_)))
        .count() as u64;
    let recover_events = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeRecover(_)))
        .count() as u64;
    assert_eq!(crash_events, faults.crashes);
    assert_eq!(recover_events, faults.recoveries);
}

/// A certain cascade (p = 1, no decay) after a seed crash fells exactly
/// one survivor per cell — propagation stops at the population floor of
/// one standing node — and the follow-on crash is ledgered at depth 1,
/// one propagation delay after its trigger.
#[test]
fn certain_cascade_fells_survivors_down_to_one_standing_node() {
    let config = faulted_base(21).with_faults(
        FaultPlan::new(HORIZON)
            .with_crash(0, 10.0)
            .with_cascade(1.0, 1.0, 2.0, 1),
    );
    let result = run_fleet(config);
    let faults = result.faults.as_ref().expect("fault summary");
    assert_eq!(
        faults.crashes, 8,
        "seed crash + exactly one follow-on per cell"
    );
    assert_eq!(faults.cascade_crashes, 4);
    assert_eq!(faults.max_cascade_depth, 1);
    let mut followons = 0;
    for record in &faults.records {
        if let FaultOutcome::Crash(c) = &record.event {
            if c.cascade_depth > 0 {
                assert_eq!(c.cascade_depth, 1);
                assert_eq!(c.node, 1, "lowest-id survivor draws first");
                assert!(
                    (record.at_secs - 12.0).abs() < 1e-9,
                    "follow-on fires one delay after the trigger, got t={}",
                    record.at_secs
                );
                followons += 1;
            }
        }
    }
    assert_eq!(followons, 4);
    assert_eq!(
        result.queries,
        8 * 40,
        "the one standing node still serves the whole budget"
    );
}

/// Cascade draws are a pure function of the config seed: same seed,
/// same follow-on crashes; the probability dial changes the outcome
/// deterministically (p = 0 never propagates).
#[test]
fn cascade_draws_derive_only_from_the_config_seed() {
    let plan = |p: f64| {
        faulted_base(33).with_faults(
            FaultPlan::new(HORIZON)
                .with_crash(2, 8.0)
                .with_cascade(p, 0.5, 3.0, 3),
        )
    };
    let a = run_fleet(plan(0.7));
    let b = run_fleet(plan(0.7));
    assert_eq!(fault_fingerprint(&a), fault_fingerprint(&b));
    let never = run_fleet(plan(0.0));
    let nf = never.faults.as_ref().expect("fault summary");
    assert_eq!(nf.cascade_crashes, 0);
    assert_eq!(nf.crashes, 4, "p = 0 leaves only the seed crash");
}

/// Satellite: the evacuation economics beat the write-off economics.
/// With a warning window, the doomed node's profitable structures move
/// to survivors at eq. 12's wire price; the ledgered loss shrinks by
/// exactly the capital that kept working.
#[test]
fn warning_evacuation_salvages_capital_and_shrinks_the_write_off() {
    let base = faulted_base(17);
    // Node 0 is the fleet's structure-heavy economy node under the
    // uniform scheme mix — the victim with capital worth rescuing.
    let crash_only = run_fleet(
        base.clone()
            .with_faults(FaultPlan::new(HORIZON).with_crash(0, 25.0)),
    );
    let evacuated = run_fleet(
        base.with_faults(
            FaultPlan::new(HORIZON)
                .with_crash(0, 25.0)
                .with_evacuation(10.0, false),
        ),
    );
    let fo = crash_only.faults.as_ref().expect("fault summary");
    let fe = evacuated.faults.as_ref().expect("fault summary");
    assert!(
        fe.salvaged.is_positive(),
        "a warm node at t=25 holds structures worth moving (salvaged={})",
        fe.salvaged
    );
    assert!(fe.evacuations > 0 && fe.structures_moved > 0);
    assert!(
        fe.write_off < fo.write_off,
        "salvage must shrink the ledgered loss ({} !< {})",
        fe.write_off,
        fo.write_off
    );
    // Salvage is net of the eq. 12 wire cost the receivers paid — both
    // sides of the move are ledgered.
    assert!(fe.transfer_spend.is_positive());
}

/// Deadline-budgeted retry: a degraded winner past the per-query
/// timeout triggers bounded, budget-decayed retries instead of a single
/// blind re-route — and the response histogram records exactly one
/// end-to-end sample per query, never one per timed-out attempt.
#[test]
fn budgeted_retry_reroutes_and_records_one_latency_sample_per_query() {
    let config = faulted_base(3).with_faults(
        FaultPlan::new(HORIZON)
            .with_degrade(0, 5.0, 35.0, 20.0)
            .with_timeout(0.05)
            .with_retry(3, 0.02, 2.0, 0.5),
    );
    let (result, trace) = FleetSim::new(config).run_traced();
    let faults = result.faults.as_ref().expect("fault summary");
    assert!(
        faults.retries > 0,
        "a 20x slowdown over 30s must trip the retry policy"
    );
    assert_eq!(
        faults.timeouts, 0,
        "the retry policy replaces the blind timeout re-route"
    );
    assert_eq!(result.queries, 8 * 40, "every retried query still settles");
    assert_eq!(
        result.response.count(),
        result.queries,
        "one end-to-end latency sample per query across retries"
    );
    assert_eq!(trace.registry.counter("fault.retries"), faults.retries);
    let retry_events = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::QueryRetry(_)))
        .count() as u64;
    assert_eq!(retry_events, faults.retries);
}

/// Satellite: the fault plane layers on stochastic arrival processes —
/// MMPP storm/calm switching and the diurnal sinusoid — and stays
/// bit-identical across executor shard counts, quote-pool sizes and
/// completion paths.
#[test]
fn faulted_mmpp_and_diurnal_runs_are_bit_identical_across_shards() {
    let arrivals = [
        ArrivalKind::Mmpp {
            calm_gap_secs: 1.5,
            storm_gap_secs: 0.3,
            calm_sojourn_secs: 8.0,
            storm_sojourn_secs: 4.0,
        },
        ArrivalKind::Diurnal {
            mean_gap_secs: 1.0,
            amplitude: 0.8,
            period_secs: 20.0,
            phase: -std::f64::consts::FRAC_PI_2,
        },
    ];
    for arrival in arrivals {
        let base = faulted_base(13).with_arrivals(arrival).with_faults(
            FaultPlan::new(HORIZON)
                .with_crash(0, 14.0)
                .with_cascade(0.6, 0.5, 3.0, 2)
                .with_evacuation(6.0, true)
                .with_retry(3, 0.05, 2.0, 0.5)
                .with_degrade(2, 5.0, 30.0, 10.0)
                .with_timeout(0.05),
        );
        let reference = fault_fingerprint(&run_fleet(base.clone()));
        for (shards, threads, batching) in [(2usize, 1usize, false), (4, 3, true), (8, 2, false)] {
            let mut config = base.clone();
            config.shards = shards;
            config.quote_threads = threads;
            config.quote_batching = batching;
            let replay = fault_fingerprint(&run_fleet(config));
            assert_eq!(
                replay, reference,
                "drift at shards={shards} threads={threads} batching={batching} ({arrival:?})"
            );
        }
    }
}

/// The flight recorder stays an observer under the full graceful-
/// degradation stack — cascade, evacuation, budgeted retry — and every
/// new registry metric cross-foots with the merged fault summary.
#[test]
fn traced_cascade_evacuate_retry_run_matches_untraced_and_crossfoots() {
    let config = faulted_base(5).with_faults(
        FaultPlan::new(HORIZON)
            .with_crash(0, 14.0)
            .with_cascade(1.0, 1.0, 3.0, 1)
            .with_evacuation(6.0, true)
            .with_retry(3, 0.05, 2.0, 0.5)
            .with_degrade(2, 5.0, 30.0, 10.0)
            .with_timeout(0.05),
    );
    let untraced = run_fleet(config.clone());
    let (traced, trace) = FleetSim::new(config).run_traced();
    assert_eq!(fault_fingerprint(&traced), fault_fingerprint(&untraced));

    let faults = traced.faults.as_ref().expect("fault summary");
    assert!(faults.evacuations > 0, "warning window must trigger moves");
    assert!(faults.cascade_crashes > 0, "certain cascade must propagate");
    assert_eq!(
        trace.registry.counter("fault.evacuations"),
        faults.evacuations
    );
    assert_eq!(
        trace.registry.counter("fault.structures_moved"),
        faults.structures_moved
    );
    assert_eq!(trace.registry.gauge("fault.salvaged"), faults.salvaged);
    assert_eq!(
        trace.registry.gauge("fault.transfer_spend"),
        faults.transfer_spend
    );
    assert_eq!(trace.registry.counter("fault.retries"), faults.retries);
    assert_eq!(
        trace.registry.counter("fault.cascade_crashes"),
        faults.cascade_crashes
    );
    let evacuate_events = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeEvacuate(_)))
        .count() as u64;
    assert_eq!(evacuate_events, faults.evacuations);
}
