//! Telemetry invariants — the flight recorder's two contracts:
//!
//! 1. **Registry algebra** (property-based): [`MetricsRegistry::merge`]
//!    is associative, commutative and partition-invariant — folding one
//!    operation stream through 1, 2, 4 or 8 shard-local registries and
//!    merging produces bit-identical snapshots, the same contract
//!    `CostBreakdown::merge` gives the economic aggregates. This is what
//!    makes a sharded traced run's registry a pure function of the
//!    config.
//! 2. **Pure observation** (integration): a traced fleet run is
//!    bit-identical to the no-op-sink run, and its event stream and
//!    registry are themselves invariant under the executor shard count.

use cloudcache::fleet::{FleetConfig, FleetSim, RouterKind};
use cloudcache::pricing::Money;
use cloudcache::telemetry::MetricsRegistry;
use proptest::prelude::*;

/// Fixed name pools, one per metric kind — a name must keep one kind for
/// life (mixing kinds under one name is a programming error the registry
/// panics on), so ops address kind-homogeneous pools.
const COUNTERS: [&str; 3] = ["fleet.queries", "elastic.reviews", "plan_cache.hits"];
const GAUGES: [&str; 3] = ["fleet.payments", "fleet.profit", "fleet.exec.cpu"];
const HISTOGRAMS: [&str; 2] = ["fleet.response_secs", "node.backlog_secs"];

/// One registry operation: `(kind, name, magnitude)` drawn from plain
/// integer strategies (kind 0 = counter add, 1 = gauge add, 2 = histogram
/// observation).
type Op = (u8, u8, u64);

fn apply(registry: &mut MetricsRegistry, ops: &[Op]) {
    for &(kind, name, value) in ops {
        match kind % 3 {
            0 => registry.counter_add(COUNTERS[name as usize % COUNTERS.len()], value),
            1 => registry.gauge_add(
                GAUGES[name as usize % GAUGES.len()],
                // Signed so gauges exercise refunds/negative deltas too.
                Money::from_nanos(i128::from(value) - i128::from(u64::MAX / 2)),
            ),
            _ => registry.observe(
                HISTOGRAMS[name as usize % HISTOGRAMS.len()],
                // Spread observations across several log-buckets,
                // including the underflow bucket at 0.
                (value % 10_000) as f64 / 100.0,
            ),
        }
    }
}

fn build(ops: &[Op]) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    apply(&mut registry, ops);
    registry
}

fn merged(a: &MetricsRegistry, b: &MetricsRegistry) -> MetricsRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn registry_merge_is_commutative(
        a in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..60),
        b in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..60),
    ) {
        let (ra, rb) = (build(&a), build(&b));
        prop_assert_eq!(merged(&ra, &rb), merged(&rb, &ra));
    }

    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn registry_merge_is_associative(
        a in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..40),
        b in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..40),
        c in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..40),
    ) {
        let (ra, rb, rc) = (build(&a), build(&b), build(&c));
        prop_assert_eq!(
            merged(&merged(&ra, &rb), &rc),
            merged(&ra, &merged(&rb, &rc))
        );
    }

    /// Shard-count invariance: striding one operation stream across k
    /// shard-local registries (the executor's worker assignment) and
    /// merging in ascending shard order reproduces the 1-shard snapshot
    /// bit-for-bit, for every k the executor runs at.
    #[test]
    fn registry_merge_is_shard_count_invariant(
        ops in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..120),
    ) {
        let reference = build(&ops);
        for shards in [2usize, 4, 8] {
            let mut partials = vec![MetricsRegistry::new(); shards];
            for (i, op) in ops.iter().enumerate() {
                apply(&mut partials[i % shards], &[*op]);
            }
            let mut folded = MetricsRegistry::new();
            for partial in &partials {
                folded.merge(partial);
            }
            prop_assert_eq!(&folded, &reference, "shards = {}", shards);
        }
    }
}

fn traced_config(shards: usize) -> FleetConfig {
    let mut config = FleetConfig::mixed(12, 3, 80);
    config.scale_factor = 10.0;
    config.cells = 6;
    config.shards = shards;
    config.router = RouterKind::CheapestQuote;
    config
}

/// The flight recorder observes without perturbing: the traced run's
/// `FleetResult` matches the no-op-sink run field for field.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let untraced = FleetSim::new(traced_config(1)).run();
    let (traced, trace) = FleetSim::new(traced_config(1)).run_traced();
    assert_eq!(traced, untraced);
    assert!(!trace.events.is_empty(), "recorder captured the run");
    assert_eq!(
        trace.registry.counter("fleet.queries"),
        untraced.queries,
        "registry agrees with the result it observed"
    );
    assert_eq!(trace.registry.gauge("fleet.payments"), untraced.payments);
    assert_eq!(trace.registry.gauge("fleet.profit"), untraced.profit);
}

/// The event stream and registry are pure functions of the config: the
/// shard count reassigns cells to workers but cannot reorder, drop or
/// change a single event (cells are folded in ascending order).
#[test]
fn trace_is_invariant_under_shard_count() {
    let (reference_result, reference) = FleetSim::new(traced_config(1)).run_traced();
    for shards in [2usize, 4, 8] {
        let (result, trace) = FleetSim::new(traced_config(shards)).run_traced();
        assert_eq!(result, reference_result, "shards = {shards}");
        assert_eq!(trace.registry, reference.registry, "shards = {shards}");
        assert_eq!(trace.events, reference.events, "shards = {shards}");
    }
}
