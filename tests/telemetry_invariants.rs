//! Telemetry invariants — the flight recorder's two contracts:
//!
//! 1. **Registry algebra** (property-based): [`MetricsRegistry::merge`]
//!    is associative, commutative and partition-invariant — folding one
//!    operation stream through 1, 2, 4 or 8 shard-local registries and
//!    merging produces bit-identical snapshots, the same contract
//!    `CostBreakdown::merge` gives the economic aggregates. This is what
//!    makes a sharded traced run's registry a pure function of the
//!    config.
//! 2. **Pure observation** (integration): a traced fleet run is
//!    bit-identical to the no-op-sink run, and its event stream and
//!    registry are themselves invariant under the executor shard count.
//! 3. **Snapshot/merge commutation** (property-based): serializing a
//!    registry to its JSON snapshot and back is transparent to `merge`
//!    — scraping shard partials and folding the snapshots equals
//!    snapshotting the fold.
//! 4. **SLO ledger algebra** (property-based): [`SloLedger::merge`] is
//!    associative and shard-count invariant, so per-tenant SLO records
//!    folded from any cell partitioning produce the same ledger.

use cloudcache::fleet::{FleetConfig, FleetSim, RouterKind};
use cloudcache::pricing::Money;
use cloudcache::telemetry::{MetricsRegistry, SloLedger, TenantSloRecord, TenantSloSpec};
use proptest::prelude::*;

/// Fixed name pools, one per metric kind — a name must keep one kind for
/// life (mixing kinds under one name is a programming error the registry
/// panics on), so ops address kind-homogeneous pools.
const COUNTERS: [&str; 3] = ["fleet.queries", "elastic.reviews", "plan_cache.hits"];
const GAUGES: [&str; 3] = ["fleet.payments", "fleet.profit", "fleet.exec.cpu"];
const HISTOGRAMS: [&str; 2] = ["fleet.response_secs", "node.backlog_secs"];

/// One registry operation: `(kind, name, magnitude)` drawn from plain
/// integer strategies (kind 0 = counter add, 1 = gauge add, 2 = histogram
/// observation).
type Op = (u8, u8, u64);

fn apply(registry: &mut MetricsRegistry, ops: &[Op]) {
    for &(kind, name, value) in ops {
        match kind % 3 {
            0 => registry.counter_add(COUNTERS[name as usize % COUNTERS.len()], value),
            1 => registry.gauge_add(
                GAUGES[name as usize % GAUGES.len()],
                // Signed so gauges exercise refunds/negative deltas too.
                Money::from_nanos(i128::from(value) - i128::from(u64::MAX / 2)),
            ),
            _ => registry.observe(
                HISTOGRAMS[name as usize % HISTOGRAMS.len()],
                // Spread observations across several log-buckets,
                // including the underflow bucket at 0.
                (value % 10_000) as f64 / 100.0,
            ),
        }
    }
}

fn build(ops: &[Op]) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    apply(&mut registry, ops);
    registry
}

fn merged(a: &MetricsRegistry, b: &MetricsRegistry) -> MetricsRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn registry_merge_is_commutative(
        a in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..60),
        b in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..60),
    ) {
        let (ra, rb) = (build(&a), build(&b));
        prop_assert_eq!(merged(&ra, &rb), merged(&rb, &ra));
    }

    /// merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn registry_merge_is_associative(
        a in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..40),
        b in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..40),
        c in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..40),
    ) {
        let (ra, rb, rc) = (build(&a), build(&b), build(&c));
        prop_assert_eq!(
            merged(&merged(&ra, &rb), &rc),
            merged(&ra, &merged(&rb, &rc))
        );
    }

    /// Shard-count invariance: striding one operation stream across k
    /// shard-local registries (the executor's worker assignment) and
    /// merging in ascending shard order reproduces the 1-shard snapshot
    /// bit-for-bit, for every k the executor runs at.
    #[test]
    fn registry_merge_is_shard_count_invariant(
        ops in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..120),
    ) {
        let reference = build(&ops);
        for shards in [2usize, 4, 8] {
            let mut partials = vec![MetricsRegistry::new(); shards];
            for (i, op) in ops.iter().enumerate() {
                apply(&mut partials[i % shards], &[*op]);
            }
            let mut folded = MetricsRegistry::new();
            for partial in &partials {
                folded.merge(partial);
            }
            prop_assert_eq!(&folded, &reference, "shards = {}", shards);
        }
    }

    /// Snapshot/merge commutation: the registry's JSON snapshot is a
    /// faithful image, so scraping each shard partial and merging the
    /// deserialized snapshots equals snapshotting the live fold — the
    /// exporter can run on partials or on the fold without changing a
    /// bit.
    #[test]
    fn registry_snapshot_then_merge_equals_merge_then_snapshot(
        a in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..60),
        b in prop::collection::vec((0u8..3, 0u8..4, 0u64..1_000_000), 0..60),
    ) {
        let roundtrip = |r: &MetricsRegistry| -> MetricsRegistry {
            serde_json::from_str(&serde_json::to_string(r).expect("serialize"))
                .expect("deserialize")
        };
        let (ra, rb) = (build(&a), build(&b));
        prop_assert_eq!(
            merged(&roundtrip(&ra), &roundtrip(&rb)),
            roundtrip(&merged(&ra, &rb))
        );
    }
}

/// Deterministic per-tenant SLO spec: even tenants carry one (with a
/// cap), odd tenants run unspecced — partials of one run can never
/// disagree on a spec, it is config.
fn spec_for(tenant: u32) -> Option<TenantSloSpec> {
    tenant.is_multiple_of(2).then(|| TenantSloSpec {
        p99_target_secs: 1.0 + f64::from(tenant),
        spend_cap: Some(Money::from_dollars(0.25)),
    })
}

/// One ledger operation: `(tenant, kind, magnitude)` — kind 0 serves a
/// query (response time, payment and hit flag derived from the
/// magnitude), kinds 1–3 bump the timeout / retry / fault-delay
/// counters.
type SloOp = (u8, u8, u64);

fn ledger(ops: &[SloOp]) -> SloLedger {
    let mut records: std::collections::BTreeMap<u32, TenantSloRecord> =
        std::collections::BTreeMap::new();
    for &(tenant, kind, value) in ops {
        let t = u32::from(tenant);
        let r = records
            .entry(t)
            .or_insert_with(|| TenantSloRecord::new(t, spec_for(t)));
        match kind % 4 {
            0 => r.record_served(
                (value % 2_000) as f64 / 100.0,
                Money::from_nanos(i128::from(value % 1_000_000)),
                value % 2 == 0,
            ),
            1 => r.timeouts += 1,
            2 => r.retries += 1,
            _ => r.fault_delays += 1,
        }
    }
    SloLedger::from_records(records.into_values().collect())
}

fn ledger_merged(a: &SloLedger, b: &SloLedger) -> SloLedger {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// Ledger merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), spend
    /// in exact money and histograms bucket-for-bucket.
    #[test]
    fn slo_ledger_merge_is_associative(
        a in prop::collection::vec((0u8..6, 0u8..4, 0u64..1_000_000), 0..40),
        b in prop::collection::vec((0u8..6, 0u8..4, 0u64..1_000_000), 0..40),
        c in prop::collection::vec((0u8..6, 0u8..4, 0u64..1_000_000), 0..40),
    ) {
        let (la, lb, lc) = (ledger(&a), ledger(&b), ledger(&c));
        prop_assert_eq!(
            ledger_merged(&ledger_merged(&la, &lb), &lc),
            ledger_merged(&la, &ledger_merged(&lb, &lc))
        );
    }

    /// Shard-count invariance: striding one serve stream across k
    /// shard-local ledgers and folding in ascending shard order
    /// reproduces the 1-shard ledger bit-for-bit — the contract that
    /// makes the fleet's SLO report independent of its cell
    /// partitioning.
    #[test]
    fn slo_ledger_merge_is_shard_count_invariant(
        ops in prop::collection::vec((0u8..6, 0u8..4, 0u64..1_000_000), 0..120),
    ) {
        let reference = ledger(&ops);
        for shards in [2usize, 4, 8] {
            let mut streams = vec![Vec::new(); shards];
            for (i, op) in ops.iter().enumerate() {
                streams[i % shards].push(*op);
            }
            let mut folded = SloLedger::new();
            for stream in &streams {
                folded.merge(&ledger(stream));
            }
            prop_assert_eq!(&folded, &reference, "shards = {}", shards);
        }
    }
}

fn traced_config(shards: usize) -> FleetConfig {
    let mut config = FleetConfig::mixed(12, 3, 80);
    config.scale_factor = 10.0;
    config.cells = 6;
    config.shards = shards;
    config.router = RouterKind::CheapestQuote;
    config
}

/// The flight recorder observes without perturbing: the traced run's
/// `FleetResult` matches the no-op-sink run field for field.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let untraced = FleetSim::new(traced_config(1)).run();
    let (traced, trace) = FleetSim::new(traced_config(1)).run_traced();
    assert_eq!(traced, untraced);
    assert!(!trace.events.is_empty(), "recorder captured the run");
    assert_eq!(
        trace.registry.counter("fleet.queries"),
        untraced.queries,
        "registry agrees with the result it observed"
    );
    assert_eq!(trace.registry.gauge("fleet.payments"), untraced.payments);
    assert_eq!(trace.registry.gauge("fleet.profit"), untraced.profit);
}

/// The event stream and registry are pure functions of the config: the
/// shard count reassigns cells to workers but cannot reorder, drop or
/// change a single event (cells are folded in ascending order).
#[test]
fn trace_is_invariant_under_shard_count() {
    let (reference_result, reference) = FleetSim::new(traced_config(1)).run_traced();
    for shards in [2usize, 4, 8] {
        let (result, trace) = FleetSim::new(traced_config(shards)).run_traced();
        assert_eq!(result, reference_result, "shards = {shards}");
        assert_eq!(trace.registry, reference.registry, "shards = {shards}");
        assert_eq!(trace.events, reference.events, "shards = {shards}");
    }
}
