//! Elastic control plane — the acceptance properties of `fleet::elastic`:
//!
//! 1. **Drain isolation** — no query is ever routed to a node after its
//!    drain begins, under every routing strategy, pool size and
//!    completion path (proptest over random drain schedules).
//!    `CacheNode::serve` additionally debug-asserts routability, so the
//!    end-to-end runs below double-check the executor path.
//! 2. **Occupancy settlement (eq. 13)** — retiring a node settles its
//!    disk byte-seconds integral to the exact retirement instant:
//!    delaying retirement by Δ charges precisely
//!    `disk_used × Δ × c_d` more (and Δ seconds more base uptime).
//! 3. **Determinism** — an elastic run's decision ledger and aggregates
//!    are bit-identical across executor shard counts, quote-pool sizes
//!    and completion paths; a controller that can never act leaves the
//!    economy bit-identical to the static fleet.

use std::sync::{Arc, OnceLock};

use cloudcache::catalog::tpch::{tpch_schema, ScaleFactor};
use cloudcache::catalog::Schema;
use cloudcache::econ::{EconConfig, InvestmentRule};
use cloudcache::fleet::{
    run_fleet, CacheNode, CheapestQuote, ElasticConfig, FleetConfig, FleetResult, LeastOutstanding,
    NodePopulation, NodeSpec, QuoteOptions, RoundRobin, Router, RouterKind,
};
use cloudcache::planner::{
    generate_candidates, CandidateIndex, CostParams, Estimator, PlannerContext,
};
use cloudcache::pricing::{Money, PriceCatalog};
use cloudcache::simcore::{NetworkModel, SimTime};
use cloudcache::simulator::{ArrivalKind, Scheme};
use cloudcache::workload::{paper_templates, WorkloadConfig, WorkloadGenerator};
use proptest::prelude::*;

struct Harness {
    schema: Arc<Schema>,
    candidates: Vec<cloudcache::cache::IndexDef>,
    cand_index: CandidateIndex,
    estimator: Estimator,
}

impl Harness {
    fn ctx(&self) -> PlannerContext<'_> {
        PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        }
    }
}

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let cand_index = CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        Harness {
            schema,
            candidates,
            cand_index,
            estimator,
        }
    })
}

/// The workspace's fleet economy scaling: builds fire within tens of
/// queries.
fn econ() -> EconConfig {
    EconConfig {
        initial_credit: Money::from_dollars(0.02),
        investment: InvestmentRule {
            min_regret: Money::from_dollars(1e-5),
            ..InvestmentRule::default()
        },
        ..EconConfig::default()
    }
}

proptest! {
    /// Random drain schedules against live routing: whatever nodes drain
    /// and whenever they drain, no strategy ever routes to them again.
    #[test]
    fn no_query_is_routed_after_drain_begins(
        seed in 0u64..1_000,
        threads in 1usize..5,
        batching in prop::bool::ANY,
        drains in prop::collection::vec((0usize..12, 0usize..5), 1..6),
    ) {
        let h = harness();
        let ctx = h.ctx();
        let econ = econ();
        let mut nodes: Vec<CacheNode> = (0..5)
            .map(|i| CacheNode::new(i, &NodeSpec::new(Scheme::EconCheap), &h.schema, &econ))
            .collect();
        let mut cq = CheapestQuote::with_options(QuoteOptions {
            threads,
            batching,
            skeletons: None,
            pinning: threads % 2 == 0, // placement hint; results invariant
        });
        let mut rr = RoundRobin::default();
        let mut lo = LeastOutstanding;
        let mut gen = WorkloadGenerator::new(Arc::clone(&h.schema), WorkloadConfig::default(), seed);

        let mut drained = [false; 5];
        for round in 0..12 {
            let now = SimTime::from_secs((round + 1) as f64);
            // Apply this round's scheduled drains, never draining the
            // last active node (the control plane's floor invariant).
            for &(at, victim) in &drains {
                let active = drained.iter().filter(|&&d| !d).count();
                if at == round && !drained[victim] && active > 1 {
                    nodes[victim].begin_drain(now);
                    drained[victim] = true;
                }
            }
            for node in nodes.iter_mut() {
                node.accrue(now);
            }
            let query = gen.next_query();
            let winner = cq.route(&mut nodes, &ctx, &query, now);
            prop_assert!(!drained[winner], "cheapest-quote routed to draining node {winner}");
            prop_assert!(nodes[winner].routable(now));
            for (name, choice) in [
                ("round-robin", rr.route(&mut nodes, &ctx, &query, now)),
                ("least-outstanding", lo.route(&mut nodes, &ctx, &query, now)),
            ] {
                prop_assert!(!drained[choice], "{name} routed to draining node {choice}");
            }
            let _ = nodes[winner].serve(&ctx, &query, now);
        }
    }
}

/// Warms one node until the economy has built structures, returning it.
fn warmed_node(label: usize) -> CacheNode {
    let h = harness();
    let ctx = h.ctx();
    let mut node = CacheNode::new(label, &NodeSpec::new(Scheme::EconCheap), &h.schema, &econ());
    let mut gen = WorkloadGenerator::new(Arc::clone(&h.schema), WorkloadConfig::default(), 42);
    for i in 0..60 {
        let now = SimTime::from_secs((i + 1) as f64);
        node.accrue(now);
        let q = gen.next_query();
        let _ = node.serve(&ctx, &q, now);
    }
    node
}

#[test]
fn retiring_the_only_structure_holder_settles_occupancy_to_the_instant() {
    let rates = PriceCatalog::ec2_2009().rates;
    // Two bit-identical warmed nodes (same seed, same stream)…
    let a = warmed_node(0);
    let b = warmed_node(0);
    let disk_used = a.disk_used();
    assert!(
        disk_used > 0,
        "fixture must build structures for the occupancy check to bite"
    );
    assert_eq!(disk_used, b.disk_used());

    // …retired 60 s apart through the population path (drain first, as
    // the control plane would).
    let retire_a = SimTime::from_secs(100.0);
    let retire_b = SimTime::from_secs(160.0);
    let mut pop_a = NodePopulation::new(vec![a]);
    pop_a.live_mut()[0].begin_drain(SimTime::from_secs(90.0));
    assert_eq!(pop_a.routable_count(retire_a), 0);
    let id = pop_a.retire(0, &rates, retire_a);
    assert_eq!(id, 0);
    let mut pop_b = NodePopulation::new(vec![b]);
    pop_b.live_mut()[0].begin_drain(SimTime::from_secs(90.0));
    let _ = pop_b.retire(0, &rates, retire_b);

    let finish_a = pop_a.finish(&rates, retire_a);
    let finish_b = pop_b.finish(&rates, retire_b);
    let ra = &finish_a.nodes[0].1;
    let rb = &finish_b.nodes[0].1;
    assert_eq!(ra.final_disk_bytes, disk_used);

    // Eq. 13: the later retirement pays exactly disk_used × Δ more disk
    // rent (occupancy was flat after the last arrival — a draining node
    // receives no queries, and failure evictions only run on arrivals).
    let extra_disk = rb.operating.disk - ra.operating.disk;
    let expected = rates.disk_cost(disk_used, 60.0);
    let tolerance = Money::from_nanos(2); // one rounding per charge
    assert!(
        extra_disk >= expected - tolerance && extra_disk <= expected + tolerance,
        "extra disk rent {extra_disk:?} != expected {expected:?}"
    );
    // And eq. 11: 60 s more base uptime (each run rounds its one total
    // CPU charge independently, so allow a nanodollar of slack).
    let extra_cpu = rb.operating.cpu - ra.operating.cpu;
    let expected_cpu = rates.cpu_cost(60.0);
    assert!(
        extra_cpu >= expected_cpu - tolerance && extra_cpu <= expected_cpu + tolerance,
        "extra base uptime {extra_cpu:?} != expected {expected_cpu:?}"
    );
}

fn elastic_base(seed: u64) -> FleetConfig {
    let mut config = FleetConfig::uniform(10, 4, 50, 1.0).with_arrivals(ArrivalKind::Mmpp {
        calm_gap_secs: 12.0,
        storm_gap_secs: 0.4,
        calm_sojourn_secs: 50.0,
        storm_sojourn_secs: 25.0,
    });
    config.scale_factor = 10.0;
    config.cells = 4;
    config.seed = seed;
    config.elastic = Some(ElasticConfig {
        review_interval_secs: 4.0,
        ewma_alpha: 0.4,
        scale_up_backlog: 1.0,
        scale_down_backlog: 0.2,
        max_response_secs: 0.0,
        min_nodes: 1,
        max_nodes: 6,
        cooldown_reviews: 1,
        drain_grace_secs: 20.0,
    });
    config
}

/// Everything an elastic run must reproduce exactly, ledger included.
fn elastic_fingerprint(r: &FleetResult) -> String {
    let e = r.elastic.as_ref().expect("elastic summary present");
    format!(
        "queries={} cost={} payments={} mean={:016x} builds={} spawns={} retires={} \
         node_seconds={:016x} ledger={}",
        r.queries,
        r.total_operating_cost().as_nanos(),
        r.payments.as_nanos(),
        r.mean_response_secs().to_bits(),
        r.investments,
        e.spawns,
        e.retires,
        e.node_seconds.to_bits(),
        serde_json::to_string(&e.ledger).expect("ledger serializes"),
    )
}

#[test]
fn elastic_ledger_and_aggregates_invariant_under_shards_and_pools() {
    for seed in [3u64, 11] {
        let reference = run_fleet(elastic_base(seed));
        let summary = reference.elastic.as_ref().expect("elastic summary");
        assert!(
            summary.spawns + summary.retires > 0,
            "fixture must exercise the control plane (seed {seed})"
        );
        assert!(!summary.ledger.is_empty());
        let reference = elastic_fingerprint(&reference);

        for (label, shards, quote_threads, batching) in [
            ("shards=4", 4usize, 1usize, true),
            ("pool=4", 1, 4, true),
            ("shards=2,pool=2,per-node", 2, 2, false),
        ] {
            let mut config = elastic_base(seed);
            config.shards = shards;
            config.quote_threads = quote_threads;
            config.quote_batching = batching;
            let replay = elastic_fingerprint(&run_fleet(config));
            assert_eq!(replay, reference, "drift under {label} (seed {seed})");
        }
    }
}

#[test]
fn ledger_is_explainable_and_consistent() {
    let r = run_fleet(elastic_base(3));
    let e = r.elastic.expect("elastic summary");
    let mut spawns = 0u64;
    let mut retires = 0u64;
    let mut drains = 0u64;
    for entry in &e.ledger {
        assert!(!entry.rule.is_empty());
        assert!(entry.routable + entry.booting + entry.draining <= entry.live);
        assert!(entry.signals.backlog >= 0.0 && entry.signals.backlog_ewma >= 0.0);
        match &entry.action {
            cloudcache::fleet::ElasticAction::ScaleUp { .. } => spawns += 1,
            cloudcache::fleet::ElasticAction::Retire { .. } => retires += 1,
            cloudcache::fleet::ElasticAction::DrainBegin { .. } => drains += 1,
            cloudcache::fleet::ElasticAction::Hold => {}
        }
    }
    assert_eq!(spawns, e.spawns, "every spawn is ledgered");
    assert_eq!(retires, e.retires, "every retire is ledgered");
    assert!(drains >= retires, "a retire implies a prior drain");
    // Ledger entries arrive sorted by (cell, time) — the merge folds
    // cells in ascending order and each cell's reviews are chronological.
    let keys: Vec<(usize, f64)> = e.ledger.iter().map(|l| (l.cell, l.at_secs)).collect();
    let mut sorted = keys.clone();
    sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    assert_eq!(keys, sorted);
}

#[test]
fn inert_controller_leaves_the_economy_bit_identical_to_static() {
    // A controller that can never act (unreachable thresholds, floor at
    // the seed population) must not perturb a single economic bit.
    let mut with_inert = FleetConfig::mixed(8, 3, 40);
    with_inert.scale_factor = 10.0;
    with_inert.cells = 4;
    with_inert.elastic = Some(ElasticConfig {
        review_interval_secs: 5.0,
        ewma_alpha: 0.3,
        scale_up_backlog: 1e12,
        scale_down_backlog: 0.0,
        max_response_secs: 0.0,
        min_nodes: 3,
        max_nodes: 3,
        cooldown_reviews: 0,
        drain_grace_secs: 60.0,
    });
    let mut without = with_inert.clone();
    without.elastic = None;

    let elastic = run_fleet(with_inert);
    let static_run = run_fleet(without);
    let summary = elastic.elastic.as_ref().expect("summary present");
    assert_eq!(summary.spawns, 0);
    assert_eq!(summary.retires, 0);
    assert!(summary
        .ledger
        .iter()
        .all(|l| matches!(l.action, cloudcache::fleet::ElasticAction::Hold)));
    assert_eq!(
        elastic.total_operating_cost(),
        static_run.total_operating_cost()
    );
    assert_eq!(
        elastic.mean_response_secs().to_bits(),
        static_run.mean_response_secs().to_bits()
    );
    assert_eq!(elastic.queries, static_run.queries);
    assert_eq!(elastic.payments, static_run.payments);
}

#[test]
fn router_kind_matrix_completes_under_elasticity() {
    // Every routing strategy must survive a population that drains and
    // spawns under it (round-robin and least-outstanding skip draining
    // nodes too).
    for router in RouterKind::all() {
        let mut config = elastic_base(5);
        config.router = router;
        let r = run_fleet(config);
        assert_eq!(r.queries, 500, "router {}", r.router);
        let tenant_total: u64 = r.tenants.iter().map(|t| t.queries).sum();
        assert_eq!(tenant_total, r.queries);
        let node_total: u64 = r.nodes.iter().map(|n| n.queries).sum();
        assert_eq!(node_total, r.queries);
    }
}
