//! Whole-stack determinism: a run is a pure function of `(config, seed)`.

use cloudcache::simulator::{run_simulation, Scheme, SimConfig};

fn cell(scheme: Scheme, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_cell(scheme, 1.0, 50.0, 20_000);
    cfg.seed = seed;
    cfg
}

#[test]
fn identical_configs_are_bit_identical() {
    for scheme in Scheme::paper_schemes() {
        let a = run_simulation(cell(scheme.clone(), 7));
        let b = run_simulation(cell(scheme.clone(), 7));
        assert_eq!(
            a.total_operating_cost(),
            b.total_operating_cost(),
            "{}",
            a.scheme
        );
        assert_eq!(a.payments, b.payments);
        assert_eq!(a.profit, b.profit);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.investments, b.investments);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.response.mean(), b.response.mean());
        assert_eq!(a.final_disk_bytes, b.final_disk_bytes);
    }
}

#[test]
fn different_seeds_change_the_workload() {
    let a = run_simulation(cell(Scheme::EconCheap, 1));
    let b = run_simulation(cell(Scheme::EconCheap, 2));
    assert_ne!(
        (a.payments, a.response.mean().to_bits()),
        (b.payments, b.response.mean().to_bits()),
        "two seeds should not produce identical runs"
    );
}

#[test]
fn schemes_share_the_same_workload_per_seed() {
    // The workload stream depends only on the seed, not the scheme — the
    // paper's comparison is across schemes on the *same* queries. The
    // horizon therefore matches exactly.
    let a = run_simulation(cell(
        Scheme::Bypass {
            cache_fraction: 0.3,
        },
        9,
    ));
    let b = run_simulation(cell(Scheme::EconFast, 9));
    assert_eq!(a.horizon_secs, b.horizon_secs);
    assert_eq!(a.queries, b.queries);
}
