//! Skeleton-split planning — the bit-identity contract of the
//! skeleton/completion factorisation.
//!
//! `planner::PlanSkeleton::build` + `planner::complete_plans_into` must
//! be *observably absent*: for any cache history (installs, evicts,
//! in-flight builds, idle gaps), clock instant and enumeration options,
//! the split path emits exactly the plan set (and missing-build quote
//! table) of the fused `enumerate_plans_into`. The economy's memoization
//! and the fleet's quote rounds both ride on this equivalence, and so do
//! their own bit-identity suites (`tests/memoization.rs`,
//! `tests/fleet_determinism.rs`).
//!
//! Alongside, `quote_with_skeleton` — the fleet's shared-skeleton bid
//! path — must quote exactly what the legacy `quote_query` does, and a
//! serve after either kind of bid must behave identically.

use std::sync::{Arc, OnceLock};

use cloudcache::cache::{CacheState, StructureKey};
use cloudcache::catalog::tpch::{tpch_schema, ScaleFactor};
use cloudcache::catalog::{ColumnId, Schema};
use cloudcache::econ::{EconConfig, EconomyManager, InvestmentRule};
use cloudcache::planner::{
    complete_plans_into, enumerate_plans_into, generate_candidates, CandidateIndex, CostParams,
    EnumerationOptions, Estimator, LazySkeleton, PlanBuffer, PlanSkeleton, PlannerContext,
};
use cloudcache::pricing::{Money, PriceCatalog};
use cloudcache::simcore::{NetworkModel, SimDuration, SimTime};
use cloudcache::workload::{paper_templates, Query, WorkloadConfig, WorkloadGenerator};
use proptest::prelude::*;

struct Harness {
    schema: Arc<Schema>,
    candidates: Vec<cloudcache::cache::IndexDef>,
    cand_index: CandidateIndex,
    estimator: Estimator,
}

impl Harness {
    fn ctx(&self) -> PlannerContext<'_> {
        PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        }
    }
}

/// The schema/candidate/estimator fixture is identical for every case;
/// build it once.
fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let cand_index = CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        Harness {
            schema,
            candidates,
            cand_index,
            estimator,
        }
    })
}

fn query_pool(seed: u64, n: usize) -> Vec<Query> {
    WorkloadGenerator::new(
        Arc::clone(&harness().schema),
        WorkloadConfig::default(),
        seed,
    )
    .take(n)
    .collect()
}

/// The four structural option combinations, with the arrival-rate-derived
/// halves perturbed per `salt` so horizons/windows vary too.
fn opts_grid(salt: u64) -> [EnumerationOptions; 4] {
    let base = EnumerationOptions {
        amortize_n: 1 + (salt * 37) % 2_000,
        maint_window: SimDuration::from_secs(1.0 + (salt % 7) as f64 * 97.0),
        ..EnumerationOptions::default()
    };
    [
        base,
        EnumerationOptions {
            allow_indexes: false,
            ..base
        },
        EnumerationOptions {
            allow_extra_nodes: false,
            ..base
        },
        EnumerationOptions {
            allow_indexes: false,
            allow_extra_nodes: false,
            ..base
        },
    ]
}

proptest! {
    /// Random arrival interleavings over an evolving cache (installs with
    /// in-flight builds, evictions, idle gaps): at every step, for every
    /// structural option combination, skeleton + completion equals fused
    /// enumeration bit for bit — plans and missing-build quotes alike.
    #[test]
    fn skeleton_split_is_bit_identical_to_fused_enumeration(
        seed in 0u64..1_000,
        ops in prop::collection::vec((0u8..4, 0u8..32, 0.0f64..90.0, 0.0f64..40.0), 10..40),
    ) {
        let h = harness();
        let ctx = h.ctx();
        let pool = query_pool(seed, 6);
        let skeletons: Vec<Arc<PlanSkeleton>> = pool
            .iter()
            .map(|q| Arc::new(PlanSkeleton::build(&ctx, q)))
            .collect();
        // Structures the mutations draw from: the pool's columns (so the
        // cache intersects the plans), candidate indexes, extra nodes.
        let mut columns: Vec<ColumnId> = Vec::new();
        for q in &pool {
            for c in q.all_columns() {
                if !columns.contains(&c) {
                    columns.push(c);
                }
            }
        }

        let mut cache = CacheState::new();
        let mut now = 0.0f64;
        let mut fused_buf = PlanBuffer::new();
        let mut split_buf = PlanBuffer::new();
        for (step, &(op, sel, gap, build)) in ops.iter().enumerate() {
            now += gap;
            let t = SimTime::from_secs(now);
            let key = match sel % 3 {
                0 => StructureKey::Column(columns[sel as usize % columns.len()]),
                1 => StructureKey::Index(h.candidates[sel as usize % h.candidates.len()].id),
                _ => StructureKey::Node(u32::from(sel) % 3),
            };
            match op {
                0 | 1 => {
                    if !cache.contains(key) {
                        cache.install(
                            key,
                            64 + u64::from(sel) * 1_000,
                            t,
                            SimDuration::from_secs(build),
                            Money::from_dollars(0.01 + f64::from(sel) * 1e-3),
                            10 + u64::from(sel),
                        );
                    }
                }
                2 => {
                    let _ = cache.evict(key, t);
                }
                _ => cache.advance(t),
            }

            let q = &pool[sel as usize % pool.len()];
            let skel = &skeletons[sel as usize % pool.len()];
            for opts in opts_grid(seed + step as u64) {
                enumerate_plans_into(&ctx, q, &cache, t, opts, &mut fused_buf);
                let fused_plans = fused_buf.take();
                let fused_costs = fused_buf.take_missing_costs();
                complete_plans_into(
                    skel,
                    &cache,
                    t,
                    opts,
                    |s, span| h.estimator.maintenance(s, span),
                    &mut split_buf,
                );
                let split_plans = split_buf.take();
                let split_costs = split_buf.take_missing_costs();
                prop_assert_eq!(
                    &split_plans, &fused_plans,
                    "plans diverged at step {} (t={}, opts {:?})", step, now, opts
                );
                prop_assert_eq!(&split_costs, &fused_costs, "missing-build quotes diverged");
                fused_buf.recycle(fused_plans);
                fused_buf.recycle_missing_costs(fused_costs);
                split_buf.recycle(split_plans);
                split_buf.recycle_missing_costs(split_costs);
            }
        }
    }

    /// The fleet bid path: a manager quoted through shared skeletons must
    /// quote, serve and account exactly like one quoted through the
    /// legacy enumerate-per-bid path, over random arrival interleavings
    /// (repeats, simultaneous arrivals, long idle gaps).
    #[test]
    fn skeleton_quotes_match_legacy_quotes(
        seed in 0u64..1_000,
        picks in prop::collection::vec((0usize..12, 0u8..6), 20..80),
    ) {
        let h = harness();
        let ctx = h.ctx();
        let pool = query_pool(seed.wrapping_add(17), 12);
        // One lazily-built shared skeleton per instance — the fleet's
        // quote-round regime (built by the first bid that needs it).
        let skeletons: Vec<LazySkeleton<'_>> = pool
            .iter()
            .map(|q| LazySkeleton::new(&ctx, q))
            .collect();
        let biting = |plan_cache: bool| EconConfig {
            initial_credit: Money::from_dollars(0.02),
            investment: InvestmentRule {
                min_regret: Money::from_dollars(1e-5),
                ..InvestmentRule::default()
            },
            plan_cache,
            ..EconConfig::default()
        };
        // Legacy-path manager, skeleton-path manager, and a memo-off
        // skeleton-path manager (the completion phase with no slot to
        // lean on).
        let mut legacy = EconomyManager::new(biting(true));
        let mut shared = EconomyManager::new(biting(true));
        let mut unmemoized = EconomyManager::new(biting(false));

        let mut now = SimTime::ZERO;
        for &(pick, gap_code) in &picks {
            let gap = match gap_code {
                0 => 0.0,
                1 => 0.25,
                2 => 1.0,
                3 => 5.0,
                4 => 60.0,
                _ => 1800.0,
            };
            now += SimDuration::from_secs(gap);
            let query = &pool[pick];
            let skel = &skeletons[pick];

            let bid_legacy = legacy.quote_query(&ctx, query, now);
            let bid_shared = shared.quote_with_skeleton(&ctx, query, skel, now);
            let bid_unmemo = unmemoized.quote_with_skeleton(&ctx, query, skel, now);
            prop_assert_eq!(bid_legacy, bid_shared, "shared-skeleton bid diverged at {}", now);
            prop_assert_eq!(bid_legacy, bid_unmemo, "memo-off skeleton bid diverged at {}", now);

            let out_legacy = legacy.process_query(&ctx, query, now);
            let out_shared = shared.process_query(&ctx, query, now);
            let out_unmemo = unmemoized.process_query(&ctx, query, now);
            prop_assert_eq!(&out_legacy, &out_shared, "outcomes diverged at {}", now);
            prop_assert_eq!(&out_legacy, &out_unmemo, "memo-off outcomes diverged at {}", now);
            prop_assert_eq!(legacy.account().balance(), shared.account().balance());
        }
        prop_assert!(shared.account().balances_exactly());
    }
}

/// The skeleton is a pure function of (context, query): two builds are
/// equal, and completing a clone equals completing the original.
#[test]
fn skeleton_build_is_deterministic() {
    let h = harness();
    let ctx = h.ctx();
    for q in query_pool(5, 8) {
        let a = PlanSkeleton::build(&ctx, &q);
        let b = PlanSkeleton::build(&ctx, &q);
        assert_eq!(a, b);
    }
}
