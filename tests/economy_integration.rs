//! Cross-crate integration of the economy: ledger conservation, the
//! self-tuning loop, and case coverage, at a scale where every mechanism
//! (investment, amortisation, maintenance, failure) fires.

use std::sync::Arc;

use cloudcache::catalog::tpch::{tpch_schema, ScaleFactor};
use cloudcache::econ::{EconConfig, EconomyManager, InvestmentRule, SelectionCase};
use cloudcache::planner::{generate_candidates, CostParams, Estimator, PlannerContext};
use cloudcache::pricing::{Money, PriceCatalog};
use cloudcache::simcore::{NetworkModel, SimTime};
use cloudcache::workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

struct Harness {
    schema: Arc<cloudcache::catalog::Schema>,
    candidates: Vec<cloudcache::cache::IndexDef>,
    cand_index: planner::CandidateIndex,
    estimator: Estimator,
}

impl Harness {
    fn new(sf: f64) -> Self {
        let schema = Arc::new(tpch_schema(ScaleFactor(sf)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        Harness {
            schema,
            candidates,
            cand_index,
            estimator,
        }
    }

    fn ctx(&self) -> PlannerContext<'_> {
        PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        }
    }
}

fn fast_config() -> EconConfig {
    EconConfig {
        initial_credit: Money::from_dollars(0.02),
        investment: InvestmentRule {
            min_regret: Money::from_dollars(1e-5),
            ..InvestmentRule::default()
        },
        ..EconConfig::default()
    }
}

#[test]
fn every_outcome_keeps_the_ledger_conserved() {
    let h = Harness::new(10.0);
    let ctx = h.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&h.schema), WorkloadConfig::default(), 3);
    let mut m = EconomyManager::new(fast_config());
    let mut paid = Money::ZERO;
    let mut invested = Money::ZERO;
    for i in 0..3000u64 {
        let q = gen.next_query();
        let o = m.process_query(&ctx, &q, SimTime::from_secs(i as f64 + 1.0));
        paid += o.payment;
        invested += o.investments.iter().map(|&(_, c)| c).sum::<Money>();
        assert!(!o.profit.is_negative());
        assert!(o.payment >= o.profit, "profit cannot exceed payment");
    }
    // Account balance = initial + payments − investments, exactly.
    let expected = Money::from_dollars(0.02) + paid - invested;
    assert_eq!(m.account().balance(), expected);
    assert!(m.account().balances_exactly());
    assert_eq!(m.account().total_payments(), paid);
    assert_eq!(m.account().total_investments(), invested);
}

#[test]
fn the_self_tuning_loop_closes() {
    // Regret → investment → cache execution → profit: all four stages
    // must be observable in one run.
    let h = Harness::new(10.0);
    let ctx = h.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&h.schema), WorkloadConfig::default(), 5);
    let mut m = EconomyManager::new(fast_config());
    let mut invested = 0usize;
    let mut cache_runs = 0usize;
    let mut profit = Money::ZERO;
    for i in 0..3000u64 {
        let q = gen.next_query();
        let o = m.process_query(&ctx, &q, SimTime::from_secs(i as f64 + 1.0));
        invested += o.investments.len();
        cache_runs += usize::from(o.ran_in_cache);
        profit += o.profit;
    }
    assert!(invested > 0, "no investments");
    assert!(cache_runs > 0, "no cache executions");
    assert!(profit.is_positive(), "no profit");
    assert!(
        m.cache().disk_used() > 0,
        "cache should hold structures at the end"
    );
}

#[test]
fn amortization_collected_never_exceeds_build_spending() {
    let h = Harness::new(10.0);
    let ctx = h.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&h.schema), WorkloadConfig::default(), 8);
    let mut m = EconomyManager::new(fast_config());
    let mut collected = Money::ZERO;
    let mut built = Money::ZERO;
    for i in 0..4000u64 {
        let q = gen.next_query();
        let o = m.process_query(&ctx, &q, SimTime::from_secs(i as f64 + 1.0));
        collected += o.amortization_collected;
        built += o.investments.iter().map(|&(_, c)| c).sum::<Money>();
    }
    assert!(built.is_positive());
    assert!(
        collected <= built,
        "recouped {collected} of {built} — amortisation overcharged"
    );
    assert!(collected.is_positive(), "installments should flow");
}

#[test]
fn cases_b_and_c_both_occur_under_step_budgets() {
    let h = Harness::new(10.0);
    let ctx = h.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&h.schema), WorkloadConfig::default(), 9);
    let mut m = EconomyManager::new(fast_config());
    let mut seen_b = false;
    let mut seen_c = false;
    for i in 0..2000u64 {
        let q = gen.next_query();
        let o = m.process_query(&ctx, &q, SimTime::from_secs(i as f64 + 1.0));
        match o.case {
            SelectionCase::B => seen_b = true,
            SelectionCase::C => seen_c = true,
            SelectionCase::A => {}
        }
    }
    assert!(seen_b, "case B never occurred");
    assert!(seen_c, "case C never occurred");
}

#[test]
fn network_only_prices_reproduce_the_bypass_blindspot() {
    // Under the network-only catalog (the paper's emulation of
    // bypass-yield), disk and CPU are free, so the economy happily holds
    // structures it would otherwise fail: no maintenance-driven evictions.
    let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::network_only(),
        NetworkModel::paper_sdss(),
    );
    let cand_index = planner::CandidateIndex::build(&schema, &candidates);
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };
    let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 10);
    let mut m = EconomyManager::new(fast_config());
    let mut evictions = 0usize;
    for i in 0..3000u64 {
        let q = gen.next_query();
        let o = m.process_query(&ctx, &q, SimTime::from_secs((i as f64 + 1.0) * 30.0));
        evictions += o.evictions.len();
    }
    assert_eq!(
        evictions, 0,
        "free disk ⇒ maintenance never accrues ⇒ nothing fails"
    );
}
