//! Workload-trace record → replay roundtrip: a JSONL trace written to
//! disk and read back pins a byte-identical query sequence — the property
//! that makes traces shareable comparison artifacts.

use std::sync::Arc;

use cloudcache::catalog::tpch::{tpch_schema, ScaleFactor};
use cloudcache::simcore::arrival::PoissonProcess;
use cloudcache::simcore::{SimDuration, SimRng};
use cloudcache::workload::{Trace, WorkloadConfig, WorkloadGenerator};

fn capture(n: usize, seed: u64) -> Trace {
    let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
    let mut generator = WorkloadGenerator::new(schema, WorkloadConfig::default(), seed);
    let mut arrivals = PoissonProcess::new(SimDuration::from_secs(1.5));
    let mut rng = SimRng::new(seed ^ 0xA11);
    Trace::capture(&mut generator, &mut arrivals, &mut rng, n)
}

#[test]
fn jsonl_file_roundtrip_is_byte_identical() {
    let trace = capture(200, 11);
    let text = trace.to_jsonl().expect("serializable");

    // Write → read through a real file, as sharing a trace would.
    let path = std::env::temp_dir().join(format!(
        "cloudcache_trace_roundtrip_{}.jsonl",
        std::process::id()
    ));
    std::fs::write(&path, &text).expect("trace written");
    let read_back = std::fs::read_to_string(&path).expect("trace read");
    std::fs::remove_file(&path).ok();
    assert_eq!(read_back, text, "file transport must be transparent");

    // Parse → reserialize is byte-identical: the format is canonical, so
    // a replayed trace re-recorded produces the same artifact.
    let parsed = Trace::from_jsonl(&read_back).expect("parseable");
    assert_eq!(parsed, trace, "value-level equality");
    let reserialized = parsed.to_jsonl().expect("serializable");
    assert_eq!(reserialized, text, "byte-level equality after roundtrip");
}

#[test]
fn replay_preserves_the_exact_query_sequence() {
    let trace = capture(100, 23);
    let text = trace.to_jsonl().expect("serializable");
    let parsed = Trace::from_jsonl(&text).expect("parseable");

    let original: Vec<_> = trace.replay().collect();
    let replayed: Vec<_> = parsed.replay().collect();
    assert_eq!(original.len(), replayed.len());
    for ((at_a, q_a), (at_b, q_b)) in original.iter().zip(&replayed) {
        assert_eq!(at_a.as_secs().to_bits(), at_b.as_secs().to_bits());
        assert_eq!(q_a, q_b);
    }
}

#[test]
fn recording_is_deterministic_per_seed() {
    let a = capture(50, 7).to_jsonl().unwrap();
    let b = capture(50, 7).to_jsonl().unwrap();
    let c = capture(50, 8).to_jsonl().unwrap();
    assert_eq!(a, b, "same seed, same bytes");
    assert_ne!(a, c, "different seed, different trace");
}
