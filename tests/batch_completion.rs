//! Batched structure-major completion — the bit-identity contracts of
//! the quote-round inversion:
//!
//! 1. `planner::complete_plans_batch` (one gather pass over N cache
//!    views) emits, per node, exactly the plan set and missing-build
//!    quote table of the per-node `planner::complete_plans_into` — over
//!    random cache histories, node counts and heterogeneous per-node
//!    options.
//! 2. `econ::QuoteBatch::quote_round` (the fleet's batched bid path)
//!    quotes, memoizes and counts exactly like the sequential
//!    `quote_with_skeleton` loop — over evolving manager state, so memo
//!    hits, stale completions and misses all cross the batch boundary.
//!
//! The fleet's routing determinism across {sequential, pooled} ×
//! {batched, per-node} paths rests on these two properties
//! (`tests/fleet_determinism.rs` pins the router layer).

use std::sync::{Arc, OnceLock};

use cloudcache::cache::{CacheState, StructureKey};
use cloudcache::catalog::tpch::{tpch_schema, ScaleFactor};
use cloudcache::catalog::{ColumnId, Schema};
use cloudcache::econ::{EconConfig, EconomyManager, InvestmentRule, QuoteBatch};
use cloudcache::planner::{
    complete_plans_batch, complete_plans_into, generate_candidates, BatchCompleter, CacheView,
    CandidateIndex, CostParams, EnumerationOptions, Estimator, LazySkeleton, PlanBuffer,
    PlanSkeleton, PlannerContext,
};
use cloudcache::pricing::{Money, PriceCatalog};
use cloudcache::simcore::{NetworkModel, SimDuration, SimTime};
use cloudcache::workload::{paper_templates, Query, WorkloadConfig, WorkloadGenerator};
use proptest::prelude::*;

struct Harness {
    schema: Arc<Schema>,
    candidates: Vec<cloudcache::cache::IndexDef>,
    cand_index: CandidateIndex,
    estimator: Estimator,
}

impl Harness {
    fn ctx(&self) -> PlannerContext<'_> {
        PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        }
    }
}

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let cand_index = CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        Harness {
            schema,
            candidates,
            cand_index,
            estimator,
        }
    })
}

fn query_pool(seed: u64, n: usize) -> Vec<Query> {
    WorkloadGenerator::new(
        Arc::clone(&harness().schema),
        WorkloadConfig::default(),
        seed,
    )
    .take(n)
    .collect()
}

/// Per-node options: structural switches and rate-derived halves both
/// vary across the batch.
fn node_opts(i: usize, salt: u64) -> EnumerationOptions {
    EnumerationOptions {
        allow_indexes: !(i as u64 + salt).is_multiple_of(3),
        allow_extra_nodes: (i as u64 + salt) % 4 != 1,
        amortize_n: 1 + (salt * 31 + i as u64 * 7) % 2_000,
        maint_window: SimDuration::from_secs(1.0 + ((salt + i as u64) % 7) as f64 * 97.0),
    }
}

proptest! {
    /// Random per-node cache histories (installs with in-flight builds,
    /// evictions, idle gaps) at random node counts: one batched gather +
    /// per-node emits equals N independent per-node completions, bit for
    /// bit — plans and missing-build quote tables alike.
    #[test]
    fn batch_completion_is_bit_identical_to_per_node(
        seed in 0u64..1_000,
        n_nodes in 1usize..9,
        ops in prop::collection::vec((0u8..4, 0u8..32, 0u8..8, 0.0f64..90.0, 0.0f64..40.0), 8..30),
    ) {
        let h = harness();
        let ctx = h.ctx();
        let pool = query_pool(seed, 4);
        let mut columns: Vec<ColumnId> = Vec::new();
        for q in &pool {
            for c in q.all_columns() {
                if !columns.contains(&c) {
                    columns.push(c);
                }
            }
        }

        // Each node evolves its own cache from the shared op stream
        // (every node takes the ops whose `node_pick` lands on it, so
        // the states genuinely diverge).
        let mut caches: Vec<CacheState> = (0..n_nodes).map(|_| CacheState::new()).collect();
        let mut now = 0.0f64;
        let mut completer = BatchCompleter::new();
        for (step, &(op, sel, node_pick, gap, build)) in ops.iter().enumerate() {
            now += gap;
            let t = SimTime::from_secs(now);
            let cache = &mut caches[node_pick as usize % n_nodes];
            let key = match sel % 3 {
                0 => StructureKey::Column(columns[sel as usize % columns.len()]),
                1 => StructureKey::Index(h.candidates[sel as usize % h.candidates.len()].id),
                _ => StructureKey::Node(u32::from(sel) % 3),
            };
            match op {
                0 | 1 => {
                    if !cache.contains(key) {
                        cache.install(
                            key,
                            64 + u64::from(sel) * 1_000,
                            t,
                            SimDuration::from_secs(build),
                            Money::from_dollars(0.01 + f64::from(sel) * 1e-3),
                            10 + u64::from(sel),
                        );
                    }
                }
                2 => {
                    let _ = cache.evict(key, t);
                }
                _ => cache.advance(t),
            }

            let q = &pool[sel as usize % pool.len()];
            let skel = PlanSkeleton::build(&ctx, q);
            let views: Vec<CacheView<'_>> = caches
                .iter()
                .enumerate()
                .map(|(i, cache)| CacheView {
                    cache,
                    opts: node_opts(i, seed + step as u64),
                })
                .collect();
            let mut batch_bufs: Vec<PlanBuffer> =
                (0..n_nodes).map(|_| PlanBuffer::new()).collect();
            {
                let mut refs: Vec<&mut PlanBuffer> = batch_bufs.iter_mut().collect();
                complete_plans_batch(
                    &mut completer,
                    &skel,
                    &views,
                    t,
                    |s, span| h.estimator.maintenance(s, span),
                    &mut refs,
                );
            }
            for (i, view) in views.iter().enumerate() {
                let mut reference = PlanBuffer::new();
                complete_plans_into(
                    &skel,
                    view.cache,
                    t,
                    view.opts,
                    |s, span| h.estimator.maintenance(s, span),
                    &mut reference,
                );
                prop_assert_eq!(
                    batch_bufs[i].take(),
                    reference.take(),
                    "plans diverged at step {} node {} (t={})", step, i, now
                );
                prop_assert_eq!(
                    batch_bufs[i].take_missing_costs(),
                    reference.take_missing_costs(),
                    "missing-build quotes diverged at step {} node {}", step, i
                );
            }
        }
    }

    /// The fleet bid path: a group of managers quoted through
    /// `QuoteBatch` must bid, memoize and serve exactly like a twin
    /// group quoted per node — across random arrival interleavings that
    /// exercise memo hits, price refreshes, stale completions and
    /// misses, with the winner of each round actually serving (so state
    /// keeps evolving through the batch boundary).
    #[test]
    fn batched_quote_rounds_match_sequential_quotes(
        seed in 0u64..1_000,
        picks in prop::collection::vec((0usize..10, 0u8..6), 15..50),
    ) {
        let h = harness();
        let ctx = h.ctx();
        let pool = query_pool(seed.wrapping_add(41), 10);
        let n_nodes = 5usize;
        let biting = |plan_cache: bool| EconConfig {
            initial_credit: Money::from_dollars(0.02),
            investment: InvestmentRule {
                min_regret: Money::from_dollars(1e-5),
                ..InvestmentRule::default()
            },
            plan_cache,
            ..EconConfig::default()
        };
        // Node 3 runs with memoization disabled so the unmemoized batch
        // arm is exercised alongside slots.
        let mut batched: Vec<EconomyManager> = (0..n_nodes)
            .map(|i| EconomyManager::new(biting(i != 3)))
            .collect();
        let mut sequential: Vec<EconomyManager> = (0..n_nodes)
            .map(|i| EconomyManager::new(biting(i != 3)))
            .collect();
        let mut workspace = QuoteBatch::new();

        let mut now = SimTime::ZERO;
        for &(pick, gap_code) in &picks {
            let gap = match gap_code {
                0 => 0.0,
                1 => 0.25,
                2 => 1.0,
                3 => 5.0,
                4 => 60.0,
                _ => 1800.0,
            };
            now += SimDuration::from_secs(gap);
            let query = &pool[pick];

            let skel_a = LazySkeleton::new(&ctx, query);
            let bids_a: Vec<Money> = workspace
                .quote_round(
                    n_nodes,
                    |i| Some(&batched[i]),
                    |_| unreachable!("every node is economic"),
                    &ctx,
                    query,
                    &skel_a,
                    now,
                )
                .to_vec();

            let skel_b = LazySkeleton::new(&ctx, query);
            let bids_b: Vec<Money> = sequential
                .iter()
                .map(|m| m.quote_with_skeleton(&ctx, query, &skel_b, now))
                .collect();
            prop_assert_eq!(&bids_a, &bids_b, "bids diverged at {}", now);

            // Lowest-indexed minimum bidder serves, in both worlds.
            let mut winner = 0;
            for (i, &bid) in bids_a.iter().enumerate().skip(1) {
                if bid < bids_a[winner] {
                    winner = i;
                }
            }
            let out_a = batched[winner].process_query(&ctx, query, now);
            let out_b = sequential[winner].process_query(&ctx, query, now);
            prop_assert_eq!(&out_a, &out_b, "outcomes diverged at {}", now);
        }
        for (a, b) in batched.iter().zip(&sequential) {
            prop_assert_eq!(a.plan_cache_stats(), b.plan_cache_stats(), "memo stats diverged");
            prop_assert_eq!(a.account().balance(), b.account().balance());
            prop_assert!(a.account().balances_exactly());
        }
    }
}

/// Non-economic nodes fall back to the caller's closure, bit for bit.
#[test]
fn quote_round_fallback_covers_non_economic_nodes() {
    let h = harness();
    let ctx = h.ctx();
    let pool = query_pool(7, 1);
    let query = &pool[0];
    let manager = EconomyManager::new(EconConfig::default());
    let mut workspace = QuoteBatch::new();
    let skel = LazySkeleton::new(&ctx, query);
    let now = SimTime::from_secs(1.0);
    let sentinel = Money::from_dollars(123.0);
    let bids = workspace.quote_round(
        3,
        |i| (i == 1).then_some(&manager),
        |i| sentinel.scale(i as f64 + 1.0),
        &ctx,
        query,
        &skel,
        now,
    );
    assert_eq!(bids[0], sentinel);
    assert_eq!(bids[2], sentinel.scale(3.0));
    assert_eq!(bids[1], manager.quote_query(&ctx, query, now));
}

/// The batch path warms each manager's plan memo exactly like a
/// sequential quote: the winning node's serve reuses its bid's plan set
/// (a hit, not a second miss).
#[test]
fn batched_quotes_warm_the_plan_memo() {
    let h = harness();
    let ctx = h.ctx();
    let pool = query_pool(11, 1);
    let query = &pool[0];
    let mut managers: Vec<EconomyManager> = (0..3)
        .map(|_| EconomyManager::new(EconConfig::default()))
        .collect();
    let mut workspace = QuoteBatch::new();
    let now = SimTime::from_secs(1.0);
    let skel = LazySkeleton::new(&ctx, query);
    let _ = workspace.quote_round(
        3,
        |i| Some(&managers[i]),
        |_| unreachable!(),
        &ctx,
        query,
        &skel,
        now,
    );
    for m in &managers {
        assert_eq!(m.plan_cache_stats().misses, 1, "the bid enumerated once");
    }
    let _ = managers[0].process_query(&ctx, query, now);
    let stats = managers[0].plan_cache_stats();
    assert_eq!(stats.misses, 1, "the serve reused the bid's plan set");
    assert_eq!(stats.hits, 1);
}
