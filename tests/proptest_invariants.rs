//! Property-based tests over the core data structures and the economy's
//! algebraic invariants.

use cloudcache::cache::{CacheState, LruSet, Occupancy, StructureKey};
use cloudcache::catalog::ColumnId;
use cloudcache::econ::{select_plan, BudgetFunction, BudgetShape, SelectionObjective};
use cloudcache::metrics::{CostBreakdown, StreamingStats};
use cloudcache::planner::plan::{PlanShape, QueryPlan};
use cloudcache::planner::skyline_filter;
use cloudcache::pricing::Money;
use cloudcache::simcore::{SimDuration, SimTime};
use proptest::prelude::*;

fn plan(time: f64, price: f64, existing: bool) -> QueryPlan {
    QueryPlan {
        shape: PlanShape::Backend,
        exec_time: SimDuration::from_secs(time),
        exec_cost: Money::from_dollars(price),
        exec_breakdown: CostBreakdown::ZERO,
        uses: vec![],
        missing: if existing {
            vec![]
        } else {
            vec![StructureKey::Node(0)]
        },
        build_cost: Money::ZERO,
        build_time: SimDuration::ZERO,
        amortized_cost: Money::ZERO,
        maintenance_cost: Money::ZERO,
        price: Money::from_dollars(price),
    }
}

proptest! {
    /// Skyline: output is exactly the non-dominated subset, time-sorted.
    #[test]
    fn skyline_is_the_pareto_frontier(
        raw in prop::collection::vec((0.01f64..100.0, 0.001f64..10.0), 1..40)
    ) {
        let plans: Vec<QueryPlan> =
            raw.iter().map(|&(t, p)| plan(t, p, true)).collect();
        let skyline = skyline_filter(plans.clone());

        // (1) Every survivor is non-dominated in the input.
        for s in &skyline {
            let dominated = plans.iter().any(|o| {
                (o.exec_time < s.exec_time && o.price <= s.price)
                    || (o.exec_time <= s.exec_time && o.price < s.price)
            });
            prop_assert!(!dominated, "dominated plan survived");
        }
        // (2) Every non-dominated (time, price) point appears.
        for p in &plans {
            let dominated = plans.iter().any(|o| {
                (o.exec_time < p.exec_time && o.price <= p.price)
                    || (o.exec_time <= p.exec_time && o.price < p.price)
            });
            if !dominated {
                prop_assert!(
                    skyline
                        .iter()
                        .any(|s| s.exec_time == p.exec_time && s.price == p.price),
                    "non-dominated point missing from skyline"
                );
            }
        }
        // (3) Sorted by time, strictly descending price.
        for w in skyline.windows(2) {
            prop_assert!(w[0].exec_time < w[1].exec_time);
            prop_assert!(w[0].price > w[1].price);
        }
    }

    /// Budget functions are non-increasing and vanish beyond t_max.
    #[test]
    fn budgets_are_non_increasing(
        amount in 0.01f64..1000.0,
        t_max in 0.1f64..1000.0,
        shape_idx in 0usize..3,
        samples in prop::collection::vec(0.0f64..1.2, 2..20)
    ) {
        let shape = [BudgetShape::Step, BudgetShape::Convex, BudgetShape::Concave][shape_idx];
        let b = BudgetFunction::of_shape(
            shape,
            Money::from_dollars(amount),
            SimDuration::from_secs(t_max),
        );
        let mut ts: Vec<f64> = samples.iter().map(|f| f * t_max).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = Money::from_dollars(amount + 1.0);
        for t in ts {
            let v = b.value_at(SimDuration::from_secs(t));
            prop_assert!(v <= prev, "budget increased at t={t}");
            prop_assert!(!v.is_negative());
            prev = v;
        }
        prop_assert_eq!(b.value_at(SimDuration::from_secs(t_max * 1.2001)), Money::ZERO);
    }

    /// Selection: the payment always covers the executed plan's price, the
    /// profit is exactly payment − price, and the plan is executable.
    #[test]
    fn selection_never_undercharges(
        raw in prop::collection::vec((0.1f64..50.0, 0.01f64..5.0, prop::bool::ANY), 1..20),
        budget_amount in 0.001f64..20.0,
        patience in 1.0f64..4.0,
        objective_idx in 0usize..3,
    ) {
        let mut plans: Vec<QueryPlan> = raw
            .iter()
            .map(|&(t, p, existing)| plan(t, p, existing))
            .collect();
        // Guarantee P_exist is non-empty (the backend plan always exists).
        plans.push(plan(60.0, 0.005, true));
        let budget = BudgetFunction::of_shape(
            BudgetShape::Step,
            Money::from_dollars(budget_amount),
            SimDuration::from_secs(60.0 * patience),
        );
        let objective = [
            SelectionObjective::MinProfit,
            SelectionObjective::Cheapest,
            SelectionObjective::Fastest,
        ][objective_idx];
        let sel = select_plan(&plans, &budget, objective);
        let chosen = &plans[sel.selected];
        prop_assert!(chosen.is_existing(), "selected a plan that needs builds");
        prop_assert!(sel.payment >= chosen.price, "user underpays the price");
        prop_assert_eq!(sel.profit, sel.payment - chosen.price);
        prop_assert!(!sel.profit.is_negative());
        for &(idx, r) in &sel.regrets {
            prop_assert!(!plans[idx].is_existing(), "regret on an existing plan");
            prop_assert!(r.is_positive());
        }
    }

    /// Money: amortisation over n uses never recoups more than the build.
    #[test]
    fn amortization_never_overcharges(
        build_nanos in 0i128..1_000_000_000_000,
        n in 1u64..10_000,
        uses in 0u64..30_000,
    ) {
        let build = Money::from_nanos(build_nanos);
        let installment = build.amortize_over(n);
        let mut remaining = build;
        let mut collected = Money::ZERO;
        for _ in 0..uses {
            let due = installment.min(remaining);
            collected += due;
            remaining -= due;
        }
        prop_assert!(collected <= build);
        prop_assert_eq!(collected + remaining, build);
        if uses > n {
            // One extra use absorbs the rounding remainder.
            prop_assert!(remaining <= installment);
        }
    }

    /// Occupancy: the byte-seconds integral equals the hand-computed sum
    /// over an arbitrary add/remove schedule.
    #[test]
    fn occupancy_integral_matches_reference(
        steps in prop::collection::vec((0.01f64..100.0, 0u64..1_000_000, prop::bool::ANY), 1..30)
    ) {
        let mut occ = Occupancy::new();
        let mut t = 0.0;
        let mut level: u64 = 0;
        let mut reference = 0.0;
        for &(dt, delta, add) in &steps {
            let next = t + dt;
            reference += level as f64 * dt;
            if add {
                occ.add(SimTime::from_secs(next), delta);
                level += delta;
            } else {
                let d = delta.min(level);
                occ.remove(SimTime::from_secs(next), d);
                level -= d;
            }
            t = next;
        }
        occ.advance(SimTime::from_secs(t + 1.0));
        reference += level as f64 * 1.0;
        prop_assert!((occ.byte_seconds() - reference).abs() <= reference.abs() * 1e-9 + 1e-6);
        prop_assert_eq!(occ.bytes(), level);
    }

    /// LRU set: never exceeds capacity; most recently touched keys survive.
    #[test]
    fn lru_respects_capacity_and_recency(
        cap in 1usize..20,
        touches in prop::collection::vec(0u32..50, 1..200)
    ) {
        let mut lru = LruSet::new(cap);
        for &k in &touches {
            lru.touch(k);
            prop_assert!(lru.len() <= cap);
        }
        // The last min(cap, distinct-tail) touched keys must be present.
        let mut tail: Vec<u32> = Vec::new();
        for &k in touches.iter().rev() {
            if !tail.contains(&k) {
                tail.push(k);
            }
            if tail.len() == cap {
                break;
            }
        }
        for k in tail {
            prop_assert!(lru.contains(&k), "recently touched {k} evicted");
        }
    }

    /// Streaming stats: mean/min/max agree with the naive computation.
    #[test]
    fn streaming_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.record(x);
        }
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
        prop_assert_eq!(s.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Cache state: install/evict sequences keep disk usage equal to the
    /// sum of resident structure sizes.
    #[test]
    fn cache_disk_equals_sum_of_sizes(
        ops in prop::collection::vec((0u32..30, 1u64..1_000_000, prop::bool::ANY), 1..60)
    ) {
        let mut cache = CacheState::new();
        let mut t = 0.0;
        let mut resident: std::collections::HashMap<u32, u64> = Default::default();
        for &(id, size, install) in &ops {
            t += 1.0;
            let key = StructureKey::Column(ColumnId(id));
            let now = SimTime::from_secs(t);
            if install && !cache.contains(key) {
                cache.install(key, size, now, SimDuration::ZERO, Money::ZERO, 1);
                resident.insert(id, size);
            } else if !install {
                cache.evict(key, now);
                resident.remove(&id);
            }
            let expected: u64 = resident.values().sum();
            prop_assert_eq!(cache.disk_used(), expected);
            prop_assert_eq!(cache.len(), resident.len());
        }
    }
}
