//! Fleet determinism and shard invariance — the acceptance properties of
//! the sharded executor:
//!
//! 1. same seed ⇒ identical `FleetResult` (pure function of the config);
//! 2. fleet aggregates are invariant under the shard (worker-thread)
//!    count: 1 worker and 4 workers produce bit-identical cost and mean
//!    response time;
//! 3. cheapest-quote aggregates are invariant under the quote fan-out
//!    worker-pool size: gathering per-node bids from 1, 2, 4 or 8
//!    threads picks bit-identical winners (the deterministic merge of
//!    `fleet::router::CheapestQuote`).

use cloudcache::fleet::{
    run_fleet, CacheNode, CheapestQuote, FleetConfig, FleetResult, NodeSpec, QuoteOptions, Router,
    RouterKind,
};

fn config(router: RouterKind, shards: usize, seed: u64) -> FleetConfig {
    let mut config = FleetConfig::mixed(12, 3, 80);
    config.scale_factor = 10.0;
    config.cells = 6;
    config.shards = shards;
    config.router = router;
    config.seed = seed;
    config
}

/// Every measurement that must match between two runs, f64s compared by
/// bit pattern.
fn fingerprint(r: &FleetResult) -> Vec<(String, String)> {
    let mut parts = vec![
        ("router".to_string(), r.router.clone()),
        ("queries".to_string(), r.queries.to_string()),
        ("horizon".to_string(), r.horizon_secs.to_bits().to_string()),
        (
            "cost".to_string(),
            r.total_operating_cost().as_nanos().to_string(),
        ),
        (
            "mean".to_string(),
            r.mean_response_secs().to_bits().to_string(),
        ),
        ("payments".to_string(), r.payments.as_nanos().to_string()),
        ("profit".to_string(), r.profit.as_nanos().to_string()),
        ("hits".to_string(), r.cache_hits.to_string()),
        ("builds".to_string(), r.investments.to_string()),
        ("evictions".to_string(), r.evictions.to_string()),
    ];
    for t in &r.tenants {
        parts.push((
            format!("tenant{}", t.tenant.0),
            format!(
                "{}|{}|{}|{}",
                t.queries,
                t.response.mean().to_bits(),
                t.payments.as_nanos(),
                t.cache_hits
            ),
        ));
    }
    for n in &r.nodes {
        parts.push((
            format!("node{}", n.node),
            format!(
                "{}|{}|{}|{}|{}",
                n.queries,
                n.response.mean().to_bits(),
                n.total_operating_cost().as_nanos(),
                n.profit.as_nanos(),
                n.investments
            ),
        ));
    }
    parts
}

#[test]
fn same_seed_produces_identical_fleet_results() {
    for router in RouterKind::all() {
        let a = run_fleet(config(router, 1, 42));
        let b = run_fleet(config(router, 1, 42));
        assert_eq!(fingerprint(&a), fingerprint(&b), "router {}", a.router);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_fleet(config(RouterKind::CheapestQuote, 1, 1));
    let b = run_fleet(config(RouterKind::CheapestQuote, 1, 2));
    assert_ne!(
        a.mean_response_secs().to_bits(),
        b.mean_response_secs().to_bits(),
        "two seeds should not produce identical fleets"
    );
}

#[test]
fn aggregates_invariant_under_shard_count() {
    for router in RouterKind::all() {
        let sequential = run_fleet(config(router, 1, 7));
        let parallel = run_fleet(config(router, 4, 7));

        // The headline acceptance pair: fleet-level cost and mean
        // response time, exactly equal.
        assert_eq!(
            sequential.total_operating_cost(),
            parallel.total_operating_cost(),
            "cost varied with shard count under {}",
            sequential.router
        );
        assert_eq!(
            sequential.mean_response_secs().to_bits(),
            parallel.mean_response_secs().to_bits(),
            "mean response varied with shard count under {}",
            sequential.router
        );
        // And everything else too.
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "full fingerprint varied with shard count under {}",
            sequential.router
        );
    }
}

#[test]
fn aggregates_invariant_under_quote_thread_count() {
    // 8 nodes so the pool actually splits work; shards stay at 1 so only
    // the quote fan-out knob moves.
    let run = |threads: usize| {
        let mut c = FleetConfig::mixed(10, 8, 60);
        c.scale_factor = 10.0;
        c.cells = 5;
        c.shards = 1;
        c.router = RouterKind::CheapestQuote;
        c.seed = 23;
        c.quote_threads = threads;
        run_fleet(c)
    };
    let sequential = run(1);
    for threads in [2, 4, 8] {
        let pooled = run(threads);
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&pooled),
            "aggregates varied at quote_threads={threads}"
        );
    }
}

#[test]
fn oversubscribed_shards_are_harmless() {
    // More workers than cells clamps to the cell count.
    let few = run_fleet(config(RouterKind::LeastOutstanding, 2, 9));
    let many = run_fleet(config(RouterKind::LeastOutstanding, 64, 9));
    assert_eq!(fingerprint(&few), fingerprint(&many));
}

/// The persistent quote pool picks the sequential scan's winner on every
/// round of its lifetime — not just the first — at every pool size and
/// under both completion paths.
///
/// The executor clamps pools to the machine's spare parallelism, so this
/// test drives [`CheapestQuote`] directly: replica fleets (one per
/// router configuration) see the same query stream, every router routes
/// its own replica, the winner serves, and the chosen index must agree
/// with the sequential batched reference on every one of 60 consecutive
/// rounds — pool reuse across rounds with genuinely evolving node
/// state, exactly what the scoped-spawn → persistent-pool change must
/// not perturb.
#[test]
fn persistent_pool_winner_matches_sequential_across_rounds() {
    use cloudcache::catalog::tpch::{tpch_schema, ScaleFactor};
    use cloudcache::planner::{
        generate_candidates, CandidateIndex, CostParams, Estimator, PlannerContext,
    };
    use cloudcache::pricing::PriceCatalog;
    use cloudcache::simcore::{NetworkModel, SimTime};
    use cloudcache::simulator::Scheme;
    use cloudcache::workload::{paper_templates, WorkloadConfig, WorkloadGenerator};
    use std::sync::Arc;

    let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let cand_index = CandidateIndex::build(&schema, &candidates);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };
    let econ = cloudcache::econ::EconConfig {
        initial_credit: cloudcache::pricing::Money::from_dollars(0.02),
        investment: cloudcache::econ::InvestmentRule {
            min_regret: cloudcache::pricing::Money::from_dollars(1e-5),
            ..cloudcache::econ::InvestmentRule::default()
        },
        ..cloudcache::econ::EconConfig::default()
    };
    let build_fleet = || -> Vec<CacheNode> {
        (0..8)
            .map(|i| CacheNode::new(i, &NodeSpec::new(Scheme::EconCheap), &schema, &econ))
            .collect()
    };

    // (threads, batching, pinning): sequential batched is the reference;
    // pools of 2/4/8 workers, the per-node completion path, and
    // core-pinned pools must all agree — pinning is a placement hint, so
    // the winner sequence cannot move with it (or with whether the pins
    // actually took on this machine).
    let configs = [
        (1usize, true, false),
        (2, true, false),
        (4, true, true),
        (8, true, false),
        (8, true, true),
        (1, false, false),
        (8, false, true),
    ];
    let mut routers: Vec<CheapestQuote> = configs
        .iter()
        .map(|&(threads, batching, pinning)| {
            CheapestQuote::with_options(QuoteOptions {
                threads,
                batching,
                skeletons: None,
                pinning,
            })
        })
        .collect();
    let mut fleets: Vec<Vec<CacheNode>> = configs.iter().map(|_| build_fleet()).collect();

    let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 77);
    for round in 0..60 {
        let query = gen.next_query();
        let now = SimTime::from_secs((round + 1) as f64);
        let mut winners = Vec::with_capacity(configs.len());
        for (router, nodes) in routers.iter_mut().zip(&mut fleets) {
            for node in nodes.iter_mut() {
                node.accrue(now);
            }
            winners.push(router.route(nodes, &ctx, &query, now));
        }
        for (i, &winner) in winners.iter().enumerate() {
            assert_eq!(
                winner, winners[0],
                "round {round}: config {:?} disagreed with the sequential reference",
                configs[i]
            );
        }
        // The winner serves, so later rounds quote against evolved state.
        for (nodes, &winner) in fleets.iter_mut().zip(&winners) {
            let _ = nodes[winner].serve(&ctx, &query, now);
        }
    }
}
