//! Contracts every caching policy must honour, checked through the
//! simulator across all five schemes.

use cloudcache::pricing::Money;
use cloudcache::simulator::{run_simulation, RunResult, Scheme, SimConfig};

fn run(scheme: Scheme) -> RunResult {
    run_simulation(SimConfig::paper_cell(scheme, 1.0, 50.0, 25_000))
}

#[test]
fn bypass_caches_columns_but_never_profits_or_boots_nodes() {
    let r = run(Scheme::Bypass {
        cache_fraction: 0.3,
    });
    assert_eq!(r.profit, Money::ZERO, "bypass has no pricing economy");
    assert!(r.investments > 0, "yield rule must load columns");
    assert!(r.final_disk_bytes > 0);
}

#[test]
fn bypass_respects_its_capacity_cap() {
    let tiny = run_simulation(SimConfig::paper_cell(
        Scheme::Bypass {
            cache_fraction: 0.001,
        },
        1.0,
        50.0,
        25_000,
    ));
    // 0.1% of a 50 GB database = 50 MB cap.
    let cap = (50.0e9 * 0.001) as u64;
    assert!(
        tiny.final_disk_bytes <= cap + cap / 10,
        "disk {} exceeds cap {cap}",
        tiny.final_disk_bytes
    );
}

#[test]
fn econ_col_never_uses_indexes_or_extra_nodes() {
    let r = run(Scheme::EconCol);
    // No extra nodes ⇒ extra-node uptime is zero ⇒ the scheme's CPU cost
    // equals base-node uptime + backend per-use CPU only. We can't see
    // structures from the RunResult, but the invariant that *matters* —
    // money — is visible: econ-col's build spend only ever buys columns,
    // whose build cost is dominated by network transfer.
    assert!(r.investments > 0);
    assert!(
        r.build_spend.is_positive(),
        "column builds must be booked as spending"
    );
}

#[test]
fn all_schemes_answer_every_query() {
    for scheme in Scheme::paper_schemes() {
        let r = run(scheme);
        assert_eq!(r.response.count(), 25_000, "{}: dropped queries", r.scheme);
        assert!(r.mean_response_secs() > 0.0);
        assert!(
            r.response_hist.quantile(1.0).unwrap() < 3_600.0,
            "{}: absurd worst-case response",
            r.scheme
        );
    }
}

#[test]
fn economic_schemes_collect_payments_covering_profit() {
    for scheme in [
        Scheme::EconCol,
        Scheme::EconCheap,
        Scheme::EconFast,
        Scheme::Altruistic,
    ] {
        let r = run(scheme);
        assert!(r.payments.is_positive(), "{}: no revenue", r.scheme);
        assert!(
            r.payments >= r.profit,
            "{}: profit {} exceeds payments {}",
            r.scheme,
            r.profit,
            r.payments
        );
        assert!(!r.profit.is_negative(), "{}: negative profit", r.scheme);
    }
}

#[test]
fn altruistic_cloud_profits_less_than_econ_cheap() {
    // Definition 1's min-profit objective takes the smallest margin the
    // skyline offers; econ-cheap takes the widest (cheapest plan under a
    // flat payment). Same workload, so profits must order accordingly.
    let altruistic = run(Scheme::Altruistic);
    let cheap = run(Scheme::EconCheap);
    assert!(
        altruistic.profit <= cheap.profit,
        "altruistic {} should not out-profit econ-cheap {}",
        altruistic.profit,
        cheap.profit
    );
}

#[test]
fn operating_cost_components_are_nonnegative_and_complete() {
    for scheme in Scheme::paper_schemes() {
        let r = run(scheme);
        for (name, v) in [
            ("cpu", r.operating.cpu),
            ("disk", r.operating.disk),
            ("network", r.operating.network),
            ("io", r.operating.io),
            ("builds", r.build_spend),
        ] {
            assert!(!v.is_negative(), "{}: negative {name} cost", r.scheme);
        }
        assert_eq!(
            r.total_operating_cost(),
            r.operating.total() + r.build_spend
        );
    }
}
