//! Memoized planning — the bit-identity contract.
//!
//! The plan cache (`econ::plancache`) must be *observably absent*: a
//! manager running with memoization produces exactly the same
//! `QueryOutcome`s, account balances, quotes and investment decisions as
//! one planning every query from scratch, over arbitrary interleavings of
//! arrivals (including simultaneous ones), repeated instances, installs,
//! failures and evictions. The fleet's cheapest-quote routing must
//! likewise be unchanged. Alongside, the cache planning epoch must be
//! monotone — the property the memo's validity check rests on — the
//! 2-way associative sets must hold two live instances of one template
//! without thrashing, and templates with *more* live instances than
//! ways must ride the adaptive victim cache instead of thrashing.

use std::sync::Arc;

use cloudcache::cache::{CacheState, StructureKey};
use cloudcache::catalog::tpch::{tpch_schema, ScaleFactor};
use cloudcache::catalog::ColumnId;
use cloudcache::econ::{EconConfig, EconomyManager, InvestmentRule};
use cloudcache::fleet::{run_fleet, FleetConfig, RouterKind};
use cloudcache::planner::{
    generate_candidates, CandidateIndex, CostParams, Estimator, PlannerContext,
};
use cloudcache::pricing::{Money, PriceCatalog};
use cloudcache::simcore::{NetworkModel, SimDuration, SimTime};
use cloudcache::workload::{paper_templates, Query, WorkloadConfig, WorkloadGenerator};
use proptest::prelude::*;

struct Harness {
    schema: Arc<cloudcache::catalog::Schema>,
    candidates: Vec<cloudcache::cache::IndexDef>,
    cand_index: CandidateIndex,
    estimator: Estimator,
}

impl Harness {
    fn new() -> Self {
        let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let cand_index = CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        Harness {
            schema,
            candidates,
            cand_index,
            estimator,
        }
    }

    fn ctx(&self) -> PlannerContext<'_> {
        PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        }
    }
}

/// Economics that invest and fail structures within a short run.
fn biting_config(plan_cache: bool) -> EconConfig {
    EconConfig {
        initial_credit: Money::from_dollars(0.02),
        investment: InvestmentRule {
            min_regret: Money::from_dollars(1e-5),
            ..InvestmentRule::default()
        },
        plan_cache,
        ..EconConfig::default()
    }
}

/// A query pool mixing fresh instances with replayed ones, so the memo
/// sees both misses (new fingerprints) and hits (exact repeats).
fn query_pool(harness: &Harness, seed: u64, fresh: usize) -> Vec<Query> {
    WorkloadGenerator::new(Arc::clone(&harness.schema), WorkloadConfig::default(), seed)
        .take(fresh)
        .collect()
}

proptest! {
    /// Two managers — one memoized, one planning fresh — driven through
    /// the same randomized arrival sequence (repeats, bursts, ties and
    /// long idle gaps included, with interleaved quotes warming the memo)
    /// must report identical outcomes, balances and regret totals, while
    /// the cache epoch stays monotone.
    #[test]
    fn memoized_and_fresh_managers_agree(
        seed in 0u64..1_000,
        picks in prop::collection::vec((0usize..24, 0u8..6), 40..160),
    ) {
        let harness = Harness::new();
        let ctx = harness.ctx();
        let pool = query_pool(&harness, seed, 24);
        let mut memo = EconomyManager::new(biting_config(true));
        let mut fresh = EconomyManager::new(biting_config(false));

        let mut now = SimTime::ZERO;
        let mut last_epoch = 0u64;
        for &(pick, gap_code) in &picks {
            // Gap 0 produces simultaneous arrivals; large gaps trigger
            // maintenance backlogs and structure failure.
            let gap = match gap_code {
                0 => 0.0,
                1 => 0.25,
                2 => 1.0,
                3 => 5.0,
                4 => 60.0,
                _ => 1800.0,
            };
            now += SimDuration::from_secs(gap);
            let query = &pool[pick];

            let quote_memo = memo.quote_query(&ctx, query, now);
            let quote_fresh = fresh.quote_query(&ctx, query, now);
            prop_assert_eq!(quote_memo, quote_fresh, "quotes diverged at {}", now);

            let out_memo = memo.process_query(&ctx, query, now);
            let out_fresh = fresh.process_query(&ctx, query, now);
            prop_assert_eq!(&out_memo, &out_fresh, "outcomes diverged at {}", now);

            let epoch = memo.cache().epoch(now);
            prop_assert!(epoch >= last_epoch, "epoch regressed: {} < {}", epoch, last_epoch);
            last_epoch = epoch;

            prop_assert_eq!(memo.account().balance(), fresh.account().balance());
            prop_assert_eq!(memo.regret().total(), fresh.regret().total());
            prop_assert_eq!(memo.cache().len(), fresh.cache().len());
            prop_assert_eq!(memo.cache().disk_used(), fresh.cache().disk_used());
        }
        prop_assert!(memo.account().balances_exactly());
        prop_assert!(fresh.account().balances_exactly());
        // The run must actually have exercised the memo.
        let stats = memo.plan_cache_stats();
        prop_assert!(stats.hits + stats.misses > 0);
    }

    /// Template-thrash regime: the pool carries at least `k ≥ 3` live
    /// instances of one template — more than the sets' ways — so lookups
    /// constantly displace slots, admit them to the victim cache and
    /// promote them back. The victim cache must stay observably absent:
    /// memoized and fresh managers agree on every quote, outcome and
    /// balance bit for bit throughout.
    #[test]
    fn thrashing_templates_agree_through_the_victim_cache(
        seed in 0u64..500,
        k in 3usize..6,
        picks in prop::collection::vec((0usize..1_000, 0u8..4), 60..140),
    ) {
        let harness = Harness::new();
        let ctx = harness.ctx();
        let mut gen = WorkloadGenerator::new(
            Arc::clone(&harness.schema),
            WorkloadConfig::default(),
            seed.wrapping_add(101),
        );
        // k distinct instances of one template, cycled round-robin with
        // randomly interleaved other-template traffic.
        let anchor = gen.next_query();
        let mut rotation = vec![anchor.clone()];
        let mut noise = Vec::new();
        for _ in 0..2_000 {
            if rotation.len() >= k && !noise.is_empty() {
                break;
            }
            let q = gen.next_query();
            if q.template == anchor.template {
                if !rotation
                    .iter()
                    .any(|p| p.accesses == q.accesses && p.result_rows == q.result_rows)
                {
                    rotation.push(q);
                }
            } else {
                noise.push(q);
            }
        }
        if rotation.len() < 3 || noise.is_empty() {
            continue; // generator starved this case; the next seed won't
        }
        let mut memo = EconomyManager::new(biting_config(true));
        let mut fresh = EconomyManager::new(biting_config(false));
        let mut now = SimTime::ZERO;
        for (i, &(pick, gap_code)) in picks.iter().enumerate() {
            let gap = match gap_code {
                0 => 0.0,
                1 => 0.5,
                2 => 5.0,
                _ => 120.0,
            };
            now += SimDuration::from_secs(gap);
            // Two of every three arrivals rotate the thrashing template.
            let query = if i % 3 < 2 {
                &rotation[(pick + i) % rotation.len()]
            } else {
                &noise[pick % noise.len()]
            };
            let quote_memo = memo.quote_query(&ctx, query, now);
            let quote_fresh = fresh.quote_query(&ctx, query, now);
            prop_assert_eq!(quote_memo, quote_fresh, "quotes diverged at {}", now);
            let out_memo = memo.process_query(&ctx, query, now);
            let out_fresh = fresh.process_query(&ctx, query, now);
            prop_assert_eq!(&out_memo, &out_fresh, "outcomes diverged at {}", now);
            prop_assert_eq!(memo.account().balance(), fresh.account().balance());
            prop_assert_eq!(memo.regret().total(), fresh.regret().total());
        }
        prop_assert!(memo.account().balances_exactly());
        let stats = memo.plan_cache_stats();
        prop_assert!(stats.conflicts > 0, "thrash regime must conflict, saw {:?}", stats);
    }

    /// The planning epoch is monotone over random install / evict /
    /// advance sequences with in-flight builds.
    #[test]
    fn cache_epoch_is_monotone(
        ops in prop::collection::vec((0u8..3, 0u32..16, 0.0f64..40.0, 0.0f64..30.0), 1..80),
    ) {
        let mut cache = CacheState::new();
        let mut now = 0.0f64;
        let mut last_epoch = 0u64;
        for &(op, col, gap, build) in &ops {
            now += gap;
            let t = SimTime::from_secs(now);
            let key = StructureKey::Column(ColumnId(col));
            match op {
                0 => {
                    if !cache.contains(key) {
                        cache.install(
                            key,
                            64 + u64::from(col),
                            t,
                            SimDuration::from_secs(build),
                            Money::from_dollars(0.01),
                            10,
                        );
                    }
                }
                1 => {
                    let _ = cache.evict(key, t);
                }
                _ => cache.advance(t),
            }
            let epoch = cache.epoch(t);
            prop_assert!(
                epoch >= last_epoch,
                "epoch regressed after op {}: {} < {}",
                op,
                epoch,
                last_epoch
            );
            last_epoch = epoch;
        }
    }
}

/// Replayed instances under a stable cache must actually hit the memo —
/// the whole point of the subsystem. One concrete instance per template
/// (the memo is direct-mapped by template), replayed with the paper-scale
/// default economics (no investments fire in 700 queries at SF 10), so
/// the cache epoch stays put and every repeat after the first cycle hits.
#[test]
fn replayed_instances_hit_the_plan_cache() {
    let harness = Harness::new();
    let ctx = harness.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&harness.schema), WorkloadConfig::default(), 7);
    let templates = gen.templates().len();
    let mut picked: Vec<Option<Query>> = vec![None; templates];
    while picked.iter().any(Option::is_none) {
        let q = gen.next_query();
        let slot = q.template.0;
        picked[slot].get_or_insert(q);
    }
    let pool: Vec<Query> = picked.into_iter().map(Option::unwrap).collect();
    let mut manager = EconomyManager::new(EconConfig::default());
    for i in 0..700usize {
        let now = SimTime::from_secs((i + 1) as f64);
        let _ = manager.process_query(&ctx, &pool[i % pool.len()], now);
    }
    let stats = manager.plan_cache_stats();
    assert!(
        stats.hits >= 600,
        "replay workload should mostly hit the memo, saw {stats:?}"
    );
    assert!(
        stats.misses >= pool.len() as u64,
        "each distinct instance enumerates at least once, saw {stats:?}"
    );
}

/// A bid followed by a serve must reuse the bid's plan set even though
/// processing updates the observed arrival statistics (and with them the
/// amortisation horizon and maintenance window) between the two calls —
/// the fleet quote-round regime, under deliberately irregular arrivals.
#[test]
fn quote_then_serve_reuses_the_quotes_plan_set() {
    let harness = Harness::new();
    let ctx = harness.ctx();
    let pool = query_pool(&harness, 21, 12);
    let mut manager = EconomyManager::new(EconConfig::default());
    let gaps = [0.3, 7.0, 1.0, 0.0, 42.0, 2.5, 11.0, 0.9];
    let mut now = SimTime::ZERO;
    let n = 200usize;
    for i in 0..n {
        now += SimDuration::from_secs(gaps[i % gaps.len()]);
        let query = &pool[i % pool.len()];
        let _ = manager.quote_query(&ctx, query, now);
        let _ = manager.process_query(&ctx, query, now);
    }
    let stats = manager.plan_cache_stats();
    assert!(
        stats.hits >= n as u64,
        "every serve should hit the plan set its own quote enumerated, saw {stats:?}"
    );
}

/// Two live instances of one template must coexist in the memo — the
/// direct-mapped thrash case: alternating A, B, A, B… used to evict on
/// every lookup (zero hits); the 2-way associative sets hold both, so
/// every lookup after the first cycle hits.
#[test]
fn two_instances_of_one_template_stop_evicting_each_other() {
    let harness = Harness::new();
    let ctx = harness.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&harness.schema), WorkloadConfig::default(), 5);
    // Two distinct instances of the same template.
    let a = gen.next_query();
    let b = loop {
        let q = gen.next_query();
        if q.template == a.template {
            break q;
        }
    };
    assert_ne!(
        (a.accesses.clone(), a.result_rows),
        (b.accesses.clone(), b.result_rows),
        "instances must differ for the thrash case to mean anything"
    );
    let mut manager = EconomyManager::new(EconConfig::default());
    let n = 200usize;
    for i in 0..n {
        let now = SimTime::from_secs((i + 1) as f64);
        let q = if i % 2 == 0 { &a } else { &b };
        let _ = manager.process_query(&ctx, q, now);
    }
    let stats = manager.plan_cache_stats();
    assert_eq!(stats.misses, 2, "each instance enumerates exactly once");
    assert_eq!(
        stats.hits,
        n as u64 - 2,
        "every later lookup must hit, saw {stats:?}"
    );
}

/// Three live instances of one template overflow the 2-way set — the
/// regime that used to thrash no matter the replacement policy. The
/// victim cache adaptively absorbs the overflow: after its admission
/// bar clears (more conflicts than ways), the rotation settles into
/// victim hits and full re-enumerations stop entirely.
#[test]
fn three_instances_of_one_template_ride_the_victim_cache() {
    let harness = Harness::new();
    let ctx = harness.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&harness.schema), WorkloadConfig::default(), 5);
    let a = gen.next_query();
    let mut others = Vec::new();
    while others.len() < 2 {
        let q = gen.next_query();
        if q.template == a.template
            && (q.accesses != a.accesses || q.result_rows != a.result_rows)
            && !others
                .iter()
                .any(|p: &Query| p.accesses == q.accesses && p.result_rows == q.result_rows)
        {
            others.push(q);
        }
    }
    let rotation = [&a, &others[0], &others[1]];
    let mut manager = EconomyManager::new(EconConfig::default());
    let n = 300usize;
    for i in 0..n {
        let now = SimTime::from_secs((i + 1) as f64);
        let _ = manager.process_query(&ctx, rotation[i % 3], now);
    }
    let stats = manager.plan_cache_stats();
    // Warmup: A, B, C, A, B miss (the first two C/A displacements fall
    // under the admission bar and are dismantled); from the third
    // conflict on every displaced slot is admitted and every set miss is
    // rescued by the victim probe.
    assert_eq!(
        stats.misses, 5,
        "rotation must stop enumerating once the victim cache engages, saw {stats:?}"
    );
    assert_eq!(
        stats.victim_hits,
        n as u64 - 5,
        "steady state is one victim rescue per lookup, saw {stats:?}"
    );
    // Every rescue serves the memoized skeleton: either straight (a hit)
    // or via the cheap completion phase when the cache epoch moved under
    // it — never a fresh enumeration.
    assert_eq!(
        stats.hits + stats.completions,
        n as u64 - 5,
        "every rescue serves the memoized plan set, saw {stats:?}"
    );
}

/// When the cache epoch moves under a memoized template (investments,
/// evictions), the memo re-runs only the cheap completion phase from the
/// stored skeleton instead of a full re-enumeration.
#[test]
fn epoch_changes_recomplete_instead_of_re_enumerating() {
    let harness = Harness::new();
    let ctx = harness.ctx();
    let mut gen = WorkloadGenerator::new(Arc::clone(&harness.schema), WorkloadConfig::default(), 9);
    let templates = gen.templates().len();
    let mut picked: Vec<Option<Query>> = vec![None; templates];
    while picked.iter().any(Option::is_none) {
        let q = gen.next_query();
        let slot = q.template.0;
        picked[slot].get_or_insert(q);
    }
    let pool: Vec<Query> = picked.into_iter().map(Option::unwrap).collect();
    // Biting economics: investments fire within the run, bumping the
    // cache epoch under the memoized templates.
    let mut manager = EconomyManager::new(biting_config(true));
    let mut invested = 0usize;
    for i in 0..2_500usize {
        let now = SimTime::from_secs((i + 1) as f64);
        let o = manager.process_query(&ctx, &pool[i % pool.len()], now);
        invested += o.investments.len();
    }
    assert!(invested > 0, "economics must bite for this test to bite");
    let stats = manager.plan_cache_stats();
    assert_eq!(
        stats.misses,
        pool.len() as u64,
        "epoch changes must not cause full re-enumerations, saw {stats:?}"
    );
    assert!(
        stats.completions > 0,
        "epoch changes should re-run completions, saw {stats:?}"
    );
    assert!(stats.hits > stats.completions, "stable stretches dominate");
}

/// Cheapest-quote routing decisions must be unchanged by memoization:
/// identical per-node query counts, payments and responses whether the
/// fleet's economies memoize or plan fresh.
#[test]
fn fleet_routing_is_unchanged_by_memoization() {
    let run = |plan_cache: bool| {
        let mut config = FleetConfig::mixed(10, 3, 60);
        config.scale_factor = 10.0;
        config.cells = 5;
        config.shards = 2;
        config.router = RouterKind::CheapestQuote;
        config.seed = 17;
        config.econ.plan_cache = plan_cache;
        run_fleet(config)
    };
    let memo = run(true);
    let fresh = run(false);

    assert_eq!(memo.queries, fresh.queries);
    assert_eq!(memo.payments, fresh.payments);
    assert_eq!(memo.profit, fresh.profit);
    assert_eq!(memo.cache_hits, fresh.cache_hits);
    assert_eq!(memo.investments, fresh.investments);
    assert_eq!(memo.evictions, fresh.evictions);
    assert_eq!(
        memo.total_operating_cost(),
        fresh.total_operating_cost(),
        "operating cost must not depend on memoization"
    );
    assert_eq!(
        memo.mean_response_secs().to_bits(),
        fresh.mean_response_secs().to_bits()
    );
    for (m, f) in memo.nodes.iter().zip(&fresh.nodes) {
        assert_eq!(m.queries, f.queries, "node {} routed differently", m.node);
        assert_eq!(m.payments, f.payments);
    }
    for (m, f) in memo.tenants.iter().zip(&fresh.tenants) {
        assert_eq!(m.queries, f.queries);
        assert_eq!(m.payments, f.payments);
    }
}
