//! The paper-claim tests: the qualitative *shape* of Figures 4 and 5 must
//! reproduce (see DESIGN.md §3 for what "reproduced" means — absolute
//! dollars and seconds depend on the authors' unpublished trace).
//!
//! All assertions run against one shared grid (SF 2500 ≈ the paper's
//! 2.5 TB backend, 400 k queries per cell) computed once.

use std::sync::OnceLock;

use cloudcache::simulator::{run_simulation, RunResult, Scheme, SimConfig};

const SF: f64 = 2500.0;
const QUERIES: u64 = 400_000;

struct Grid {
    /// `[interval][scheme]` with schemes in paper order:
    /// bypass, econ-col, econ-cheap, econ-fast.
    at_1s: Vec<RunResult>,
    at_60s: Vec<RunResult>,
}

fn grid() -> &'static Grid {
    static GRID: OnceLock<Grid> = OnceLock::new();
    GRID.get_or_init(|| {
        let run_interval = |interval: f64| -> Vec<RunResult> {
            std::thread::scope(|scope| {
                let handles: Vec<_> = Scheme::paper_schemes()
                    .into_iter()
                    .map(|scheme| {
                        let cfg = SimConfig::paper_cell(scheme, interval, SF, QUERIES);
                        scope.spawn(move || run_simulation(cfg))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        Grid {
            at_1s: run_interval(1.0),
            at_60s: run_interval(60.0),
        }
    })
}

fn cost(r: &RunResult) -> f64 {
    r.total_operating_cost().as_dollars()
}

const BYPASS: usize = 0;
const ECON_COL: usize = 1;
const ECON_CHEAP: usize = 2;
const ECON_FAST: usize = 3;

#[test]
fn claim_1_operating_cost_is_viable_for_all_schemes() {
    // Fig. 4: "the cost of operating a cache is reasonable for all caching
    // schemes" — no scheme blows up (all within 3x of the cheapest).
    for cells in [&grid().at_1s, &grid().at_60s] {
        let min = cells.iter().map(cost).fold(f64::INFINITY, f64::min);
        for r in cells.iter() {
            assert!(
                cost(r) < 3.0 * min,
                "{} cost ${:.0} vs cheapest ${:.0}",
                r.scheme,
                cost(r),
                min
            );
        }
    }
}

#[test]
fn claim_2_econ_col_tracks_bypass_response_but_costs_less() {
    // Fig. 5: "the response time of net-only and econ-col are similar";
    // Fig. 4: "the cost for using these structures, however, is lower for
    // econ-col" (≈7% at 1 s in the paper).
    let g = &grid().at_1s;
    let ratio = g[ECON_COL].mean_response_secs() / g[BYPASS].mean_response_secs();
    assert!(
        (0.75..=1.15).contains(&ratio),
        "econ-col/bypass response ratio {ratio:.2} not 'similar'"
    );
    assert!(
        cost(&g[ECON_COL]) < cost(&g[BYPASS]),
        "econ-col ${:.0} must undercut bypass ${:.0}",
        cost(&g[ECON_COL]),
        cost(&g[BYPASS])
    );
}

#[test]
fn claim_3_econ_cheap_is_faster_and_cheaper_than_the_baselines() {
    // Fig. 4/5 at 1 s: econ-cheap responds faster than econ-col (indexes)
    // and is the cheap scheme overall ("about 45% cheaper than net-only"
    // in the paper's run; the direction is the claim).
    let g = &grid().at_1s;
    assert!(
        g[ECON_CHEAP].mean_response_secs() < g[ECON_COL].mean_response_secs(),
        "econ-cheap {:.2}s !< econ-col {:.2}s",
        g[ECON_CHEAP].mean_response_secs(),
        g[ECON_COL].mean_response_secs()
    );
    assert!(
        cost(&g[ECON_CHEAP]) < cost(&g[BYPASS]),
        "econ-cheap ${:.0} !< bypass ${:.0}",
        cost(&g[ECON_CHEAP]),
        cost(&g[BYPASS])
    );
    assert!(
        cost(&g[ECON_CHEAP]) < cost(&g[ECON_COL]),
        "econ-cheap ${:.0} !< econ-col ${:.0}",
        cost(&g[ECON_CHEAP]),
        cost(&g[ECON_COL])
    );
}

#[test]
fn claim_4_econ_fast_trades_money_for_speed() {
    // Fig. 5: "econ-fast further reduces the response time"; Fig. 4: "the
    // coordinator pays the overhead for the initialization of the extra
    // CPU nodes".
    let g = &grid().at_1s;
    assert!(
        g[ECON_FAST].mean_response_secs() <= g[ECON_CHEAP].mean_response_secs() * 1.01,
        "econ-fast {:.3}s should not lag econ-cheap {:.3}s",
        g[ECON_FAST].mean_response_secs(),
        g[ECON_CHEAP].mean_response_secs()
    );
    assert!(
        g[ECON_FAST].mean_response_secs() < g[ECON_COL].mean_response_secs(),
        "econ-fast must beat the index-less scheme"
    );
    assert!(
        cost(&g[ECON_FAST]) >= cost(&g[ECON_CHEAP]),
        "econ-fast ${:.0} should not be cheaper than econ-cheap ${:.0}",
        cost(&g[ECON_FAST]),
        cost(&g[ECON_CHEAP])
    );
}

#[test]
fn claim_5_cost_grows_with_the_interarrival_interval() {
    // Fig. 4: "As the time interval increases, the cost increases, too,
    // because of the extra cost of disk storage" (and per-use backend
    // spending spread over a longer horizon).
    let (g1, g60) = (&grid().at_1s, &grid().at_60s);
    for (a, b) in g1.iter().zip(g60.iter()) {
        assert!(
            cost(b) > cost(a),
            "{}: cost at 60s (${:.0}) must exceed cost at 1s (${:.0})",
            a.scheme,
            cost(b),
            cost(a)
        );
    }
}

#[test]
fn claim_6_econ_col_undercuts_econ_cheap_at_60s() {
    // Fig. 4: "The cost of econ-col is lower than that of econ-cheap for
    // the 60-seconds interval, because the first uses less disk space".
    let g = &grid().at_60s;
    assert!(
        cost(&g[ECON_COL]) < cost(&g[ECON_CHEAP]),
        "econ-col ${:.0} !< econ-cheap ${:.0} at 60s",
        cost(&g[ECON_COL]),
        cost(&g[ECON_CHEAP])
    );
}

#[test]
fn claim_7_adaptive_schemes_lose_ground_at_long_intervals() {
    // Fig. 5: "The response times for econ-cheap and econ-fast increase
    // with the increment of the inter-query interval", while bypass stays
    // flat (its yield rule ignores disk rent entirely).
    let (g1, g60) = (&grid().at_1s, &grid().at_60s);
    for idx in [ECON_CHEAP, ECON_FAST] {
        assert!(
            g60[idx].mean_response_secs() > g1[idx].mean_response_secs(),
            "{} response must degrade from 1s to 60s",
            g1[idx].scheme
        );
    }
    let bypass_drift =
        (g60[BYPASS].mean_response_secs() / g1[BYPASS].mean_response_secs() - 1.0).abs();
    assert!(
        bypass_drift < 0.10,
        "bypass response should stay ≈ flat, drifted {:.1}%",
        bypass_drift * 100.0
    );
}

#[test]
fn claim_8_the_economy_actually_caches_at_short_intervals() {
    // The self-tuning loop must be visibly on: investments happen and a
    // sizeable share of queries run in the cache at the 1 s point.
    let g = &grid().at_1s;
    for idx in [ECON_COL, ECON_CHEAP, ECON_FAST] {
        assert!(g[idx].investments > 0, "{} never invested", g[idx].scheme);
        assert!(
            g[idx].hit_rate() > 0.10,
            "{} hit rate {:.1}% too low",
            g[idx].scheme,
            g[idx].hit_rate() * 100.0
        );
    }
    // And the disk-cost story of Section VII-B: at 1 s the disk share of
    // the econ schemes is small.
    let disk_share = g[ECON_CHEAP].operating.disk.as_dollars() / cost(&g[ECON_CHEAP]);
    assert!(
        disk_share < 0.25,
        "disk share at 1s should be minor, got {:.1}%",
        disk_share * 100.0
    );
}
