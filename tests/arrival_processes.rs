//! The simulator under non-deterministic arrival processes — the paper
//! uses fixed intervals; Poisson and bursty arrivals probe the economy's
//! sensitivity to arrival variance (Section VI's viability conditions).

use cloudcache::simulator::{run_simulation, ArrivalKind, RunResult, Scheme, SimConfig};

fn run(arrival: ArrivalKind) -> RunResult {
    let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 1.0, 50.0, 30_000);
    cfg.arrival = arrival;
    run_simulation(cfg)
}

#[test]
fn poisson_arrivals_preserve_the_economy() {
    let fixed = run(ArrivalKind::Fixed { interval_secs: 1.0 });
    let poisson = run(ArrivalKind::Poisson { mean_gap_secs: 1.0 });
    assert!(poisson.investments > 0, "economy must still invest");
    assert!(poisson.cache_hits > 0, "economy must still cache");
    // Same mean load ⇒ same ballpark outcome.
    let ratio = poisson.mean_response_secs() / fixed.mean_response_secs();
    assert!(
        (0.5..2.0).contains(&ratio),
        "poisson/fixed response ratio {ratio:.2} out of ballpark"
    );
    let horizon_ratio = poisson.horizon_secs / fixed.horizon_secs;
    assert!(
        (0.9..1.1).contains(&horizon_ratio),
        "mean rate should match: horizon ratio {horizon_ratio:.3}"
    );
}

#[test]
fn bursty_arrivals_complete_and_cache() {
    let bursty = run(ArrivalKind::Bursty {
        on_gap_secs: 0.2,
        burst_len: 50,
        off_gap_secs: 120.0,
    });
    assert_eq!(bursty.queries, 30_000);
    assert!(bursty.investments > 0);
    assert!(bursty.mean_response_secs() > 0.0);
    assert!(bursty.total_operating_cost().is_positive());
}

#[test]
fn bursty_arrivals_churn_more_than_fixed() {
    // During off periods maintenance accrues unreimbursed (footnote 3), so
    // bursty workloads should see at least as many structure failures as a
    // steady stream of the same volume.
    let fixed = run(ArrivalKind::Fixed { interval_secs: 1.0 });
    let bursty = run(ArrivalKind::Bursty {
        on_gap_secs: 0.1,
        burst_len: 30,
        off_gap_secs: 600.0,
    });
    assert!(
        bursty.evictions >= fixed.evictions,
        "bursty evictions {} < fixed {}",
        bursty.evictions,
        fixed.evictions
    );
}

#[test]
fn mmpp_arrivals_complete_and_preserve_the_mean_rate() {
    // Calm 2 s / storm 0.5 s with equal sojourns ⇒ overall rate 1.25 q/s.
    let mmpp = run(ArrivalKind::Mmpp {
        calm_gap_secs: 2.0,
        storm_gap_secs: 0.5,
        calm_sojourn_secs: 100.0,
        storm_sojourn_secs: 100.0,
    });
    assert_eq!(mmpp.queries, 30_000);
    assert!(mmpp.investments > 0, "economy must still invest");
    let rate = mmpp.queries as f64 / mmpp.horizon_secs;
    assert!(
        (1.0..1.5).contains(&rate),
        "mmpp empirical rate {rate:.3} off the 1.25 q/s mix"
    );
}

#[test]
fn diurnal_arrivals_complete_and_preserve_the_mean_rate() {
    let diurnal = run(ArrivalKind::Diurnal {
        mean_gap_secs: 1.0,
        amplitude: 0.8,
        period_secs: 500.0,
        phase: 0.0,
    });
    assert_eq!(diurnal.queries, 30_000);
    assert!(diurnal.investments > 0);
    let horizon_ratio = diurnal.horizon_secs / 30_000.0;
    assert!(
        (0.9..1.1).contains(&horizon_ratio),
        "diurnal mean gap should hold over whole periods: {horizon_ratio:.3}"
    );
}

#[test]
fn invalid_new_arrival_kinds_are_rejected() {
    let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 1.0, 50.0, 100);
    cfg.arrival = ArrivalKind::Mmpp {
        calm_gap_secs: 1.0,
        storm_gap_secs: 0.0,
        calm_sojourn_secs: 10.0,
        storm_sojourn_secs: 10.0,
    };
    assert!(cfg.validate().is_err());
    cfg.arrival = ArrivalKind::Diurnal {
        mean_gap_secs: 1.0,
        amplitude: 1.0,
        period_secs: 100.0,
        phase: 0.0,
    };
    assert!(cfg.validate().is_err(), "amplitude 1 divides by zero rate");
}

#[test]
fn all_schemes_handle_poisson() {
    for scheme in Scheme::paper_schemes() {
        let mut cfg = SimConfig::paper_cell(scheme, 1.0, 50.0, 10_000);
        cfg.arrival = ArrivalKind::Poisson { mean_gap_secs: 1.0 };
        let r = run_simulation(cfg);
        assert_eq!(r.response.count(), 10_000, "{}", r.scheme);
    }
}
