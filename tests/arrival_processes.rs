//! The simulator under non-deterministic arrival processes — the paper
//! uses fixed intervals; Poisson and bursty arrivals probe the economy's
//! sensitivity to arrival variance (Section VI's viability conditions).

use cloudcache::simulator::{run_simulation, ArrivalKind, RunResult, Scheme, SimConfig};

fn run(arrival: ArrivalKind) -> RunResult {
    let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 1.0, 50.0, 30_000);
    cfg.arrival = arrival;
    run_simulation(cfg)
}

#[test]
fn poisson_arrivals_preserve_the_economy() {
    let fixed = run(ArrivalKind::Fixed { interval_secs: 1.0 });
    let poisson = run(ArrivalKind::Poisson { mean_gap_secs: 1.0 });
    assert!(poisson.investments > 0, "economy must still invest");
    assert!(poisson.cache_hits > 0, "economy must still cache");
    // Same mean load ⇒ same ballpark outcome.
    let ratio = poisson.mean_response_secs() / fixed.mean_response_secs();
    assert!(
        (0.5..2.0).contains(&ratio),
        "poisson/fixed response ratio {ratio:.2} out of ballpark"
    );
    let horizon_ratio = poisson.horizon_secs / fixed.horizon_secs;
    assert!(
        (0.9..1.1).contains(&horizon_ratio),
        "mean rate should match: horizon ratio {horizon_ratio:.3}"
    );
}

#[test]
fn bursty_arrivals_complete_and_cache() {
    let bursty = run(ArrivalKind::Bursty {
        on_gap_secs: 0.2,
        burst_len: 50,
        off_gap_secs: 120.0,
    });
    assert_eq!(bursty.queries, 30_000);
    assert!(bursty.investments > 0);
    assert!(bursty.mean_response_secs() > 0.0);
    assert!(bursty.total_operating_cost().is_positive());
}

#[test]
fn bursty_arrivals_churn_more_than_fixed() {
    // During off periods maintenance accrues unreimbursed (footnote 3), so
    // bursty workloads should see at least as many structure failures as a
    // steady stream of the same volume.
    let fixed = run(ArrivalKind::Fixed { interval_secs: 1.0 });
    let bursty = run(ArrivalKind::Bursty {
        on_gap_secs: 0.1,
        burst_len: 30,
        off_gap_secs: 600.0,
    });
    assert!(
        bursty.evictions >= fixed.evictions,
        "bursty evictions {} < fixed {}",
        bursty.evictions,
        fixed.evictions
    );
}

#[test]
fn all_schemes_handle_poisson() {
    for scheme in Scheme::paper_schemes() {
        let mut cfg = SimConfig::paper_cell(scheme, 1.0, 50.0, 10_000);
        cfg.arrival = ArrivalKind::Poisson { mean_gap_secs: 1.0 };
        let r = run_simulation(cfg);
        assert_eq!(r.response.count(), 10_000, "{}", r.scheme);
    }
}
