//! Capital-preserving evacuation: pricing and ranking for moving a dying
//! node's structures to survivors instead of writing them off.
//!
//! The paper already prices moving a column between configurations —
//! eq. 12 charges exactly the wire cost of the bytes — yet the fault
//! plane's first cut (PR 7) ledgered a crashed node's entire invested
//! capital as a loss. This module closes the gap: when a node enters a
//! planned-crash **warning window** or begins a **drain**, its cached
//! structures are ranked by regret- and payment-weighted value per byte,
//! their transfer to each survivor is priced at eq. 12's column-move
//! cost, and only the structures whose expected surplus exceeds that
//! cost migrate. The move settles through the economy — the receiver
//! withdraws the transfer price as investment capital, the victim's
//! residual write-off shrinks by the moved capital — so salvaged
//! capital + transfer spend + residual write-off reconcile *exactly*
//! against the pre-fault invested capital (the same zero-drift contract
//! crash-recover replay keeps).
//!
//! The module also hosts the router's [`RetryPolicy`]: deadline-budgeted
//! retry for queries routed at degraded or mid-crash nodes, with
//! deterministic backoff charged against the query's remaining budget
//! headroom and graceful downgrade to the backend plan when the budget
//! can no longer cover a retry.

use cache::StructureKey;
use econ::EconomyManager;
use planner::Estimator;
use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// When and whether the fault plane evacuates structures off dying nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvacuateSpec {
    /// How many seconds before a *planned* crash the evacuation fires
    /// (the warning window). Clamped so the warning never lands before
    /// half the crash instant; 0 disables pre-crash evacuation.
    pub warning_secs: f64,
    /// Also evacuate nodes the elastic control plane begins draining —
    /// voluntary retirement salvages capital the same way.
    pub on_drain: bool,
}

impl EvacuateSpec {
    /// Validates the spec (named-field error messages).
    ///
    /// # Errors
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.warning_secs.is_finite() || self.warning_secs < 0.0 {
            return Err(format!(
                "evacuation.warning_secs {} must be non-negative",
                self.warning_secs
            ));
        }
        Ok(())
    }
}

/// Deadline-budgeted retry for queries routed at degraded nodes.
///
/// Each retry costs deterministic backoff wall-clock *and* shrinks the
/// query's willingness-to-pay headroom over the backend price: attempt
/// `k` multiplies the headroom by `(1 − budget_decay)`. As the headroom
/// collapses toward the backend price, the economy's own case analysis
/// stops selecting cache plans the budget can no longer cover — the
/// graceful downgrade to the backend plan falls out of `B_Q(t)` rather
/// than a special code path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total routing attempts allowed per query (≥ 1; 1 means no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds (≥ 0).
    pub backoff_secs: f64,
    /// Multiplier applied to the backoff on each further retry (≥ 1).
    pub backoff_factor: f64,
    /// Fraction of the query's remaining budget headroom consumed by
    /// each retry, in (0, 1]. 1 collapses the budget to the backend
    /// price after one retry.
    pub budget_decay: f64,
}

impl RetryPolicy {
    /// Validates the policy (named-field error messages).
    ///
    /// # Errors
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts < 1 {
            return Err("retry.max_attempts must be at least 1".into());
        }
        if !self.backoff_secs.is_finite() || self.backoff_secs < 0.0 {
            return Err(format!(
                "retry.backoff_secs {} must be non-negative",
                self.backoff_secs
            ));
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(format!(
                "retry.backoff_factor {} must be at least 1",
                self.backoff_factor
            ));
        }
        if !self.budget_decay.is_finite() || self.budget_decay <= 0.0 || self.budget_decay > 1.0 {
            return Err(format!(
                "retry.budget_decay {} must be in (0, 1]",
                self.budget_decay
            ));
        }
        Ok(())
    }

    /// Backoff charged before retry `attempt` (1-based: the first retry
    /// is attempt 1), seconds. Deterministic geometric schedule.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        self.backoff_secs * self.backoff_factor.powi(attempt.saturating_sub(1) as i32)
    }

    /// The query's budget scale after one retry's decay: the headroom
    /// over the backend price (`scale − 1`) shrinks by `budget_decay`.
    /// Never drops below 1 (the backend price itself).
    #[must_use]
    pub fn decayed_budget_scale(&self, scale: f64) -> f64 {
        1.0 + (scale - 1.0).max(0.0) * (1.0 - self.budget_decay)
    }
}

/// One structure the evacuation planner priced for migration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvacuationCandidate {
    /// The structure to move.
    pub key: StructureKey,
    /// Its cached size (the bytes eq. 12 prices).
    pub size_bytes: u64,
    /// Capital originally invested in the structure (its build cost).
    pub invested: Money,
    /// Eq. 12 wire cost of moving those bytes to a survivor.
    pub transfer: Money,
    /// Wire time of the move (the receiver's availability delay).
    pub transfer_time: SimDuration,
    /// Expected surplus of moving vs writing off: the salvageable
    /// capital (`invested − transfer`) plus the demand signal (accrued
    /// regret and the amortized share already paid back by queries).
    /// Only structures with positive value migrate.
    pub value: Money,
}

/// Ranks `candidates` by value per byte, descending (exact `i128`
/// cross-multiplication — no float rounding), ties broken by ascending
/// structure key so the order is total and deterministic.
pub fn rank_candidates(candidates: &mut [EvacuationCandidate]) {
    candidates.sort_by(|a, b| {
        let lhs = a.value.as_nanos() * i128::from(b.size_bytes.max(1));
        let rhs = b.value.as_nanos() * i128::from(a.size_bytes.max(1));
        rhs.cmp(&lhs).then_with(|| a.key.cmp(&b.key))
    });
}

/// Prices every migratable structure on `economy` at `now` and returns
/// the ones worth moving, ranked best-first (see [`rank_candidates`]).
///
/// A structure is migratable when it occupies disk (extra CPU nodes
/// cannot be shipped) and its build has completed (`available_at ≤ now`
/// — a mid-transfer structure has no bytes to move yet). Its value is
///
/// ```text
/// value = (invested − transfer)            // salvageable capital
///       + regret_of(key)                   // demand the node turned away
///       + (invested − unamortized)         // capital queries already paid back
/// ```
///
/// and only candidates with `value > 0` **and positive salvage**
/// (`transfer < invested`) are returned. A structure nobody used and
/// nobody missed is cheaper to write off than to ship; a structure
/// whose wire cost exceeds its build cost is cheaper to *rebuild* on a
/// survivor than to ship, so moving it can never improve the loss line.
#[must_use]
pub fn evacuation_candidates(
    economy: &EconomyManager,
    estimator: &Estimator,
    now: SimTime,
) -> Vec<EvacuationCandidate> {
    let rates = &estimator.prices().rates;
    let mut out: Vec<EvacuationCandidate> = economy
        .cache()
        .iter()
        .filter(|s| s.key.occupies_disk() && s.available_at <= now)
        .filter_map(|s| {
            let transfer = rates.transfer_cost(s.size_bytes);
            let salvage = s.build_cost - transfer;
            let demand = economy.regret().regret_of(s.key) + (s.build_cost - s.unamortized);
            let value = salvage + demand;
            (salvage.is_positive() && value.is_positive()).then(|| EvacuationCandidate {
                key: s.key,
                size_bytes: s.size_bytes,
                invested: s.build_cost,
                transfer,
                transfer_time: estimator.network().transfer_time(s.size_bytes),
                value,
            })
        })
        .collect();
    rank_candidates(&mut out);
    out
}

/// One structure actually moved off a dying node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvacuatedMove {
    /// The moved structure, displayed (`column:…` / `index:…`).
    pub key: String,
    /// Bytes shipped.
    pub bytes: u64,
    /// Capital the structure carried on the victim's books.
    pub invested: Money,
    /// Eq. 12 wire cost the receiver paid.
    pub transfer: Money,
    /// Receiving node id.
    pub to: usize,
}

/// The settlement of one node's evacuation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvacuateRecord {
    /// The evacuated node's id.
    pub node: usize,
    /// Why the evacuation fired: `"warning"` (planned-crash window) or
    /// `"drain"` (voluntary retirement).
    pub reason: String,
    /// Structures moved to survivors.
    pub structures_moved: u64,
    /// Capital preserved: moved invested capital minus transfer spend.
    pub salvaged: Money,
    /// Total eq. 12 wire cost paid by receivers.
    pub transfer_spend: Money,
    /// Every move, in execution order (ranked best value-per-byte first).
    pub moves: Vec<EvacuatedMove>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::ColumnId;

    fn cand(col: u32, bytes: u64, value_nanos: i128) -> EvacuationCandidate {
        EvacuationCandidate {
            key: StructureKey::Column(ColumnId(col)),
            size_bytes: bytes,
            invested: Money::ZERO,
            transfer: Money::ZERO,
            transfer_time: SimDuration::ZERO,
            value: Money::from_nanos(value_nanos),
        }
    }

    #[test]
    fn ranking_is_value_per_byte_descending_with_key_ties() {
        // 100/10 = 10 per byte; 50/10 = 5; 90/9 = 10 (ties col 0 by key).
        let mut cands = vec![cand(2, 10, 50), cand(1, 9, 90), cand(0, 10, 100)];
        rank_candidates(&mut cands);
        let order: Vec<u64> = cands.iter().map(|c| c.size_bytes).collect();
        assert_eq!(order, vec![10, 9, 10]);
        // The two 10-per-byte candidates tie exactly; ascending key wins.
        let first = match cands[0].key {
            StructureKey::Column(c) => c.0,
            _ => unreachable!(),
        };
        assert_eq!(first, 0);
    }

    #[test]
    fn retry_policy_validates_by_name() {
        let ok = RetryPolicy {
            max_attempts: 3,
            backoff_secs: 2.0,
            backoff_factor: 2.0,
            budget_decay: 0.5,
        };
        assert!(ok.validate().is_ok());

        let mut p = ok;
        p.max_attempts = 0;
        assert!(p.validate().unwrap_err().contains("max_attempts"));

        let mut p = ok;
        p.backoff_secs = -1.0;
        assert!(p.validate().unwrap_err().contains("backoff_secs"));

        let mut p = ok;
        p.backoff_factor = 0.5;
        assert!(p.validate().unwrap_err().contains("backoff_factor"));

        let mut p = ok;
        p.budget_decay = 0.0;
        assert!(p.validate().unwrap_err().contains("budget_decay"));
        p.budget_decay = 1.5;
        assert!(p.validate().unwrap_err().contains("budget_decay"));
    }

    #[test]
    fn backoff_schedule_is_geometric() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff_secs: 2.0,
            backoff_factor: 3.0,
            budget_decay: 0.5,
        };
        assert_eq!(p.backoff_for(1), 2.0);
        assert_eq!(p.backoff_for(2), 6.0);
        assert_eq!(p.backoff_for(3), 18.0);
    }

    #[test]
    fn budget_decay_collapses_headroom_toward_backend_price() {
        let p = RetryPolicy {
            max_attempts: 3,
            backoff_secs: 1.0,
            backoff_factor: 1.0,
            budget_decay: 0.5,
        };
        let s1 = p.decayed_budget_scale(2.0);
        assert!((s1 - 1.5).abs() < 1e-12);
        let s2 = p.decayed_budget_scale(s1);
        assert!((s2 - 1.25).abs() < 1e-12);
        // Headroom never goes below the backend price itself.
        assert_eq!(p.decayed_budget_scale(1.0), 1.0);
        assert_eq!(p.decayed_budget_scale(0.5), 1.0);
    }

    #[test]
    fn evacuate_spec_validates() {
        assert!(EvacuateSpec {
            warning_secs: 60.0,
            on_drain: true
        }
        .validate()
        .is_ok());
        assert!(EvacuateSpec {
            warning_secs: f64::NAN,
            on_drain: false
        }
        .validate()
        .unwrap_err()
        .contains("warning_secs"));
    }
}
