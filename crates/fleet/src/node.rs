//! Cache nodes: one self-tuned cloud cache each, plus its accounting.
//!
//! A [`CacheNode`] wraps a [`CachePolicy`] (any of the paper's schemes)
//! with the per-node [`RunAccumulator`] and a backlog clock that models
//! how much work the node has promised but not yet delivered — the load
//! signal least-outstanding routing balances on.

use planner::{LazySkeleton, PlannerContext};
use policies::{CachePolicy, PolicyOutcome};
use pricing::{Money, ResourceRates};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use simulator::{make_policy, RunAccumulator, RunResult, Scheme};
use workload::Query;

/// Description of one cache node in the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The caching scheme this node operates.
    pub scheme: Scheme,
}

impl NodeSpec {
    /// A node running the given scheme.
    #[must_use]
    pub fn new(scheme: Scheme) -> Self {
        NodeSpec { scheme }
    }
}

/// One live cache node: policy + accounting + backlog clock.
///
/// `Send` (the policy box is `Send`-bounded), so a quote round can hand
/// disjoint `&mut` node chunks to the persistent pool's workers.
pub struct CacheNode {
    id: usize,
    policy: Box<dyn CachePolicy + Send>,
    acc: RunAccumulator,
    backlog_until: SimTime,
    /// Boot completes here; `ZERO` for seed nodes, spawn + eq. 10's boot
    /// time for elastically added ones. Unroutable before it.
    ready_at: SimTime,
    /// Set when the control plane begins draining the node: routing
    /// stops, in-flight work finishes, and the node waits for retirement.
    draining_since: Option<SimTime>,
    /// Transiently set while a timed-out quote round re-routes away from
    /// this node; never survives a routing step.
    route_suppressed: bool,
    /// Fault-plan degradation windows `(from_secs, until_secs, slowdown)`,
    /// sorted and disjoint. Inside a window the node delivers responses
    /// `slowdown`× slower (economics untouched — the fault is in the
    /// serving path, not the books).
    degrade: Vec<(f64, f64, f64)>,
}

impl CacheNode {
    /// Instantiates the node's policy against the fleet's schema/economy.
    #[must_use]
    pub fn new(
        id: usize,
        spec: &NodeSpec,
        schema: &std::sync::Arc<catalog::Schema>,
        econ: &econ::EconConfig,
    ) -> Self {
        CacheNode {
            id,
            policy: make_policy(&spec.scheme, schema, econ),
            acc: RunAccumulator::new(),
            backlog_until: SimTime::ZERO,
            ready_at: SimTime::ZERO,
            draining_since: None,
            route_suppressed: false,
            degrade: Vec::new(),
        }
    }

    /// Instantiates a node the control plane spawns mid-run: uptime is
    /// charged from `spawned_at` (eq. 11), eq. 10's boot cost is booked
    /// as build spend immediately, and the node only becomes routable at
    /// `ready_at` (spawn + boot time).
    #[must_use]
    pub fn new_booting(
        id: usize,
        spec: &NodeSpec,
        schema: &std::sync::Arc<catalog::Schema>,
        econ: &econ::EconConfig,
        spawned_at: SimTime,
        ready_at: SimTime,
        boot_cost: Money,
    ) -> Self {
        let mut acc = RunAccumulator::new_at(spawned_at);
        acc.book_build(boot_cost);
        CacheNode {
            id,
            policy: make_policy(&spec.scheme, schema, econ),
            acc,
            backlog_until: SimTime::ZERO,
            ready_at,
            draining_since: None,
            route_suppressed: false,
            degrade: Vec::new(),
        }
    }

    /// Wraps an already-built policy as a booting node — the
    /// crash-recovery path reconstructs a crashed node's policy by
    /// replaying its settlement journal, then boots the replacement here:
    /// uptime is charged from `spawned_at` (eq. 11), eq. 10's boot cost
    /// is booked as build spend, and the node becomes routable at
    /// `ready_at`.
    #[must_use]
    pub fn from_policy(
        id: usize,
        policy: Box<dyn CachePolicy + Send>,
        spawned_at: SimTime,
        ready_at: SimTime,
        boot_cost: Money,
    ) -> Self {
        let mut acc = RunAccumulator::new_at(spawned_at);
        acc.book_build(boot_cost);
        CacheNode {
            id,
            policy,
            acc,
            backlog_until: SimTime::ZERO,
            ready_at,
            draining_since: None,
            route_suppressed: false,
            degrade: Vec::new(),
        }
    }

    /// Node index within the fleet.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// True when routers may send this node queries at `now`: boot
    /// completed and no drain has begun. All shipped routing strategies
    /// skip unroutable nodes.
    #[must_use]
    pub fn routable(&self, now: SimTime) -> bool {
        self.draining_since.is_none() && !self.route_suppressed && now >= self.ready_at
    }

    /// Transiently hides the node from routing while a timed-out round
    /// re-routes to the next-best candidate. Callers must
    /// [`Self::unsuppress_route`] before the routing step ends.
    pub fn suppress_route(&mut self) {
        self.route_suppressed = true;
    }

    /// Clears [`Self::suppress_route`].
    pub fn unsuppress_route(&mut self) {
        self.route_suppressed = false;
    }

    /// Installs the fault plan's degradation windows for this node
    /// (`(from_secs, until_secs, slowdown)`, sorted and disjoint).
    pub fn set_degradations(&mut self, windows: Vec<(f64, f64, f64)>) {
        self.degrade = windows;
    }

    /// The serve-slowdown multiplier in effect at `now` (1.0 when the
    /// node is healthy).
    #[must_use]
    pub fn degrade_slowdown(&self, now: SimTime) -> f64 {
        let t = now.as_secs();
        for &(from, until, slowdown) in &self.degrade {
            if t >= from && t < until {
                return slowdown;
            }
        }
        1.0
    }

    /// When the node's boot completes (`ZERO` for seed nodes).
    #[must_use]
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// When this node's drain began, if one has.
    #[must_use]
    pub fn drain_since(&self) -> Option<SimTime> {
        self.draining_since
    }

    /// Marks the node draining: routers stop selecting it from `now` on,
    /// while its accounting keeps running until retirement.
    ///
    /// # Panics
    /// Panics if the node is already draining.
    pub fn begin_drain(&mut self, now: SimTime) {
        assert!(self.draining_since.is_none(), "node already draining");
        self.draining_since = Some(now);
    }

    /// User payments this node has collected so far.
    #[must_use]
    pub fn payments(&self) -> Money {
        self.acc.payments()
    }

    /// Cloud profit this node has accumulated so far.
    #[must_use]
    pub fn profit(&self) -> Money {
        self.acc.profit()
    }

    /// Sum of delivered response times so far (seconds).
    #[must_use]
    pub fn response_secs_total(&self) -> f64 {
        self.acc.response_secs_total()
    }

    /// The scheme name this node runs.
    #[must_use]
    pub fn scheme_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Queries this node has served.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.acc.queries()
    }

    /// This node's bid for serving `query` at `now` (see
    /// [`CachePolicy::quote`]).
    #[must_use]
    pub fn quote(&self, ctx: &PlannerContext<'_>, query: &Query, now: SimTime) -> Money {
        self.policy.quote(ctx, query, now)
    }

    /// This node's bid given the quote round's shared lazy plan skeleton
    /// (see [`CachePolicy::quote_with_skeleton`]) — bit-identical to
    /// [`Self::quote`], minus the redundant cache-independent planning.
    #[must_use]
    pub fn quote_with_skeleton(
        &self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> Money {
        self.policy.quote_with_skeleton(ctx, query, skeleton, now)
    }

    /// The economy manager backing this node's policy, when its quotes
    /// factor through batched completion (see
    /// [`CachePolicy::economy`]); `None` for non-economic schemes,
    /// which quote rounds bill individually.
    #[must_use]
    pub fn economy(&self) -> Option<&econ::EconomyManager> {
        self.policy.economy()
    }

    /// Mutable access to the node's economy manager — the evacuation
    /// path settles structure transfers directly against it. `None` for
    /// non-economic schemes.
    pub fn economy_mut(&mut self) -> Option<&mut econ::EconomyManager> {
        self.policy.economy_mut()
    }

    /// Books the eq. 12 wire cost of a received evacuated structure as
    /// this node's build spend — the transfer is investment capital
    /// exactly like a from-scratch build, so crash write-offs and the
    /// fleet's build-spend aggregate both see it.
    pub fn book_transfer(&mut self, cost: Money) {
        self.acc.book_build(cost);
    }

    /// This node's plan-cache counters, when it runs an economic scheme.
    /// The flight recorder diffs the fleet-wide sum of these around each
    /// routing/serving step to attribute memoization activity per query.
    #[must_use]
    pub fn plan_cache_stats(&self) -> Option<econ::PlanCacheStats> {
        self.policy
            .economy()
            .map(econ::EconomyManager::plan_cache_stats)
    }

    /// Cache disk this node currently occupies (bytes).
    #[must_use]
    pub fn disk_used(&self) -> u64 {
        self.policy.disk_used()
    }

    /// Outstanding backlog in seconds of promised-but-undelivered response
    /// time at `now`. Zero for an idle node.
    #[must_use]
    pub fn outstanding(&self, now: SimTime) -> f64 {
        self.backlog_until.saturating_since(now).as_secs()
    }

    /// Queues `secs` of re-routed work onto this node's backlog clock —
    /// the deterministic re-queue of a crashed peer's in-flight work
    /// (already scaled by the fault plan's penalty). Load-aware routing
    /// sees the extra backlog immediately; the books are untouched, since
    /// the crashed node already settled those queries.
    pub fn add_backlog(&mut self, now: SimTime, secs: f64) {
        self.backlog_until = self.backlog_until.max(now) + SimDuration::from_secs(secs);
    }

    /// Accrues extra-node uptime to `now`; call on every node at every
    /// fleet arrival instant, whether or not this node serves the query.
    pub fn accrue(&mut self, now: SimTime) {
        self.acc.accrue_uptime(self.policy.as_ref(), now);
    }

    /// Serves one routed query: runs the policy, books the outcome, and
    /// extends the backlog clock by the delivered response time.
    pub fn serve(
        &mut self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> PolicyOutcome {
        self.serve_delayed(ctx, query, now, 0.0)
    }

    /// Serves one routed query whose routing took `delay_secs` of
    /// retry/backoff wall-clock before this node won it. The delay is
    /// folded into the delivered response time *once*, so the response
    /// histogram records a single end-to-end latency per query — timed-out
    /// attempts never contribute a separate sample. The books are those
    /// of the serving node alone; backoff costs time, not money.
    pub fn serve_delayed(
        &mut self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
        delay_secs: f64,
    ) -> PolicyOutcome {
        debug_assert!(
            self.routable(now),
            "draining/booting nodes must not serve queries"
        );
        let mut outcome = self.policy.process_query(ctx, query, now);
        // A degraded node delivers the same economic outcome, just
        // slower: the slowdown stretches the response (and therefore the
        // backlog clock load-aware routing balances on), never the books
        // — so fault-injected runs still conserve money exactly.
        let slowdown = self.degrade_slowdown(now);
        if slowdown > 1.0 {
            outcome.response_time = outcome.response_time * slowdown;
        }
        if delay_secs > 0.0 {
            outcome.response_time += SimDuration::from_secs(delay_secs);
        }
        self.acc.record(&outcome, now);
        self.backlog_until = self.backlog_until.max(now) + outcome.response_time;
        outcome
    }

    /// Closes the node's run at the cell horizon (disk rent + uptime).
    #[must_use]
    pub fn finish(mut self, rates: &ResourceRates, horizon: SimTime) -> RunResult {
        self.acc.finish(self.policy.as_mut(), rates, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use planner::{generate_candidates, CostParams, Estimator};
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    #[test]
    fn backlog_grows_with_served_queries_and_drains_with_time() {
        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        let ctx = PlannerContext {
            schema: &schema,
            candidates: &candidates,
            cand_index: &cand_index,
            estimator: &estimator,
        };
        let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 3);
        let mut node = CacheNode::new(
            0,
            &NodeSpec::new(Scheme::EconCheap),
            &schema,
            &econ::EconConfig::default(),
        );
        let now = SimTime::from_secs(1.0);
        assert_eq!(node.outstanding(now), 0.0);
        node.accrue(now);
        let q = gen.next_query();
        let quote = node.quote(&ctx, &q, now);
        assert!(quote.is_positive(), "backend bid must be positive");
        let o = node.serve(&ctx, &q, now);
        assert!(node.outstanding(now) >= o.response_time.as_secs() - 1e-9);
        let later = now + o.response_time + simcore::SimDuration::from_secs(1.0);
        assert_eq!(node.outstanding(later), 0.0, "backlog drains");
        assert_eq!(node.queries(), 1);
    }
}
