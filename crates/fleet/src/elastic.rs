//! The elastic fleet control plane: economy-driven node scaling.
//!
//! The paper's economy already prices elasticity — extra CPU nodes cost
//! `c` $/s while they are up (eq. 11) and booting one costs `c × b`
//! (eq. 10) — but a fixed node population can never act on those prices.
//! This module closes the loop: a per-cell [`ElasticController`] watches
//! an EWMA-smoothed pressure signal over the live [`NodePopulation`] and
//! spawns or retires whole cache nodes from the same money flow the
//! economy's structure investments draw on.
//!
//! ```text
//!            ┌── signals (simulated state only) ──┐
//!            │ outstanding-backlog depth (EWMA)   │
//!            │ window mean response ("quote-round │
//!            │ latency"), profit & regret rates   │
//!            └────────────────┬───────────────────┘
//!                             ▼ deterministic review cadence
//!   rules: population-floor | backlog-pressure | response-pressure
//!        | idle-capacity    | cooldown | at-capacity | within-band
//!                             │
//!         ScaleUp ──────────── ▼ ───────────── DrainBegin
//!   clone tenant-weighted   [ledger]     stop routing, let in-flight
//!   template, charge boot   every        work finish, retire when the
//!   (eq. 10/11), routable   decision     structures can no longer pay
//!   after boot completes    explained    maintenance (footnote 3)
//! ```
//!
//! **Determinism is the contract.** The controller reads only simulated
//! state (backlogs, accumulators, cache ledgers — never wall-clock), its
//! review instants derive from the arrival stream alone, and every
//! decision is recorded in an explainable [`LedgerEntry`] (signal values
//! → rule fired → action). A run therefore remains a pure function of
//! its config: replaying the same seed at 1 vs N executor shards, any
//! quote-pool size, and either completion path must produce bit-identical
//! decision ledgers and aggregates — the `fleet_elastic` bench and
//! `tests/fleet_elastic.rs` pin this.

use std::sync::Arc;

use catalog::Schema;
use planner::PlannerContext;
use pricing::{Money, ResourceRates};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use simulator::RunResult;

use crate::config::FleetConfig;
use crate::node::{CacheNode, NodeSpec};

/// Configuration of the elastic control plane (one controller per cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticConfig {
    /// Seconds of simulated time between controller reviews.
    pub review_interval_secs: f64,
    /// EWMA weight of the newest pressure sample, in `(0, 1]` (1 =
    /// no smoothing).
    pub ewma_alpha: f64,
    /// Mean outstanding backlog (seconds per routable node, EWMA) above
    /// which the controller scales up.
    pub scale_up_backlog: f64,
    /// Mean outstanding backlog (EWMA) below which the controller may
    /// scale down. Must be below `scale_up_backlog`.
    pub scale_down_backlog: f64,
    /// Window mean response time (seconds) above which the controller
    /// scales up regardless of backlog; `0` disables the rule.
    pub max_response_secs: f64,
    /// Never drain below this many non-draining nodes.
    pub min_nodes: usize,
    /// Never grow beyond this many non-draining nodes.
    pub max_nodes: usize,
    /// Reviews to hold after a scale action before the next one — the
    /// anti-flap guard.
    pub cooldown_reviews: u32,
    /// Upper bound (seconds) a drained node may wait for its structures
    /// to fail before it is retired anyway. Structures whose upkeep never
    /// accrues (extra CPU nodes, free maintenance) would otherwise pin a
    /// drained node's uptime bill forever.
    pub drain_grace_secs: f64,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            review_interval_secs: 5.0,
            ewma_alpha: 0.3,
            scale_up_backlog: 1.0,
            scale_down_backlog: 0.05,
            max_response_secs: 0.0,
            min_nodes: 1,
            max_nodes: 16,
            cooldown_reviews: 2,
            drain_grace_secs: 120.0,
        }
    }
}

impl ElasticConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.review_interval_secs.is_finite() || self.review_interval_secs <= 0.0 {
            return Err("review_interval_secs must be positive".into());
        }
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err("ewma_alpha must be in (0, 1]".into());
        }
        if !self.scale_up_backlog.is_finite() || self.scale_up_backlog <= 0.0 {
            return Err("scale_up_backlog must be positive".into());
        }
        if !self.scale_down_backlog.is_finite()
            || self.scale_down_backlog < 0.0
            || self.scale_down_backlog >= self.scale_up_backlog
        {
            return Err("scale_down_backlog must be in [0, scale_up_backlog)".into());
        }
        if !self.max_response_secs.is_finite() || self.max_response_secs < 0.0 {
            return Err("max_response_secs must be non-negative (0 disables)".into());
        }
        if self.min_nodes == 0 {
            return Err("min_nodes must be at least 1".into());
        }
        if self.max_nodes < self.min_nodes {
            return Err("max_nodes must be at least min_nodes".into());
        }
        if !self.drain_grace_secs.is_finite() || self.drain_grace_secs < 0.0 {
            return Err("drain_grace_secs must be non-negative".into());
        }
        Ok(())
    }
}

/// The pressure signals one review evaluated — recorded verbatim in the
/// ledger so every decision is explainable after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PressureSignals {
    /// Mean outstanding backlog per routable node (seconds), raw.
    pub backlog: f64,
    /// EWMA-smoothed backlog — the value the thresholds compare against.
    pub backlog_ewma: f64,
    /// Mean delivered response time over the window since the previous
    /// review (seconds) — the simulated stand-in for quote-round latency.
    pub window_response_secs: f64,
    /// Fleet-cell profit accrual rate over the window ($/s).
    pub profit_rate: f64,
    /// Fleet-cell regret accrual rate over the window ($/s); negative
    /// when investment or retirement cleared more regret than accrued.
    pub regret_rate: f64,
}

/// What a ledgered review decided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ElasticAction {
    /// No population change.
    Hold,
    /// A node was spawned (booting; routable once the boot completes).
    ScaleUp {
        /// The new node's fleet-wide id.
        node: usize,
        /// Scheme of the cloned template.
        scheme: String,
    },
    /// A node stopped receiving traffic and began draining.
    DrainBegin {
        /// The draining node's id.
        node: usize,
    },
    /// A drained node was settled and removed from the population.
    Retire {
        /// The retired node's id.
        node: usize,
    },
}

/// One explainable control-plane decision: the signal values the review
/// saw, the rule that fired, and the action taken.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Cell whose controller made the decision.
    pub cell: usize,
    /// Simulated instant of the review.
    pub at_secs: f64,
    /// Nodes alive (routable + booting + draining) at the review.
    pub live: usize,
    /// Of those, routable.
    pub routable: usize,
    /// Of those, booting (spawned, boot not yet complete).
    pub booting: usize,
    /// Of those, draining.
    pub draining: usize,
    /// Name of the rule that fired (`backlog-pressure`, `idle-capacity`,
    /// `cooldown`, `within-band`, `drain-insolvent`, …).
    pub rule: String,
    /// The action taken.
    pub action: ElasticAction,
    /// The signals the rule evaluated.
    pub signals: PressureSignals,
}

/// Mergeable rollup of one run's control-plane activity.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ElasticSummary {
    /// Nodes spawned across cells.
    pub spawns: u64,
    /// Nodes retired across cells.
    pub retires: u64,
    /// Peak live nodes in any one cell.
    pub peak_nodes: usize,
    /// Live nodes at the end of the run, summed over cells.
    pub final_nodes: usize,
    /// Node-seconds of live uptime integrated over cells — the quantity
    /// eq. 11 bills at `c` $/s, and the cost lever elasticity pulls.
    pub node_seconds: f64,
    /// Every decision, ascending `(cell, at_secs)` (cells are folded in
    /// ascending order by the executor).
    pub ledger: Vec<LedgerEntry>,
}

impl ElasticSummary {
    /// Merges another cell's summary (callers merge in ascending cell
    /// order, which keeps the ledger sorted and the floats bit-stable).
    pub fn merge(&mut self, other: &ElasticSummary) {
        self.spawns += other.spawns;
        self.retires += other.retires;
        self.peak_nodes = self.peak_nodes.max(other.peak_nodes);
        self.final_nodes += other.final_nodes;
        self.node_seconds += other.node_seconds;
        self.ledger.extend(other.ledger.iter().cloned());
    }
}

/// The dynamic node set of one cell: live nodes (in ascending id order)
/// plus the settled results of nodes retired mid-run, and the live
/// node-seconds integral the summary reports.
pub struct NodePopulation {
    live: Vec<CacheNode>,
    settled: Vec<(usize, RunResult)>,
    next_id: usize,
    clock: SimTime,
    node_seconds: f64,
    peak_live: usize,
}

/// What a population hands back when the run closes.
pub struct PopulationFinish {
    /// Per-node results, settled nodes first, each tagged with its
    /// fleet-wide node id.
    pub nodes: Vec<(usize, RunResult)>,
    /// Live node-seconds integrated over the run.
    pub node_seconds: f64,
    /// Peak live node count.
    pub peak_live: usize,
    /// Live nodes at the horizon.
    pub final_live: usize,
}

impl NodePopulation {
    /// Wraps the cell's seed nodes.
    #[must_use]
    pub fn new(live: Vec<CacheNode>) -> Self {
        let peak_live = live.len();
        let next_id = live.iter().map(|n| n.id() + 1).max().unwrap_or(0);
        NodePopulation {
            live,
            settled: Vec::new(),
            next_id,
            clock: SimTime::ZERO,
            node_seconds: 0.0,
            peak_live,
        }
    }

    /// The live nodes, ascending id.
    #[must_use]
    pub fn live(&self) -> &[CacheNode] {
        &self.live
    }

    /// Mutable access for routing/serving.
    pub fn live_mut(&mut self) -> &mut [CacheNode] {
        &mut self.live
    }

    /// The id the next spawned node will receive.
    #[must_use]
    pub fn next_id(&self) -> usize {
        self.next_id
    }

    /// Routable live nodes at `now`.
    #[must_use]
    pub fn routable_count(&self, now: SimTime) -> usize {
        self.live.iter().filter(|n| n.routable(now)).count()
    }

    /// Advances the live-uptime integral to `now`.
    fn advance_clock(&mut self, now: SimTime) {
        self.node_seconds += self.live.len() as f64 * now.saturating_since(self.clock).as_secs();
        self.clock = self.clock.max(now);
    }

    /// Accrues every live node's uptime to `now` (call once per arrival
    /// instant, before routing).
    pub fn accrue(&mut self, now: SimTime) {
        self.advance_clock(now);
        for node in &mut self.live {
            node.accrue(now);
        }
    }

    /// Admits a freshly spawned node (its id must be [`Self::next_id`])
    /// at `at`.
    ///
    /// # Panics
    /// Panics if the node's id is not the population's next id.
    pub fn admit(&mut self, node: CacheNode, at: SimTime) {
        assert_eq!(node.id(), self.next_id, "spawned node ids are sequential");
        self.advance_clock(at);
        self.next_id += 1;
        self.live.push(node);
        self.peak_live = self.peak_live.max(self.live.len());
    }

    /// Settles and removes the live node at slice position `idx`,
    /// closing its ledger at `at` (disk-occupancy integral — eq. 13 —
    /// and uptime rent included). Returns its id.
    pub fn retire(&mut self, idx: usize, rates: &ResourceRates, at: SimTime) -> usize {
        self.advance_clock(at);
        let node = self.live.remove(idx);
        let id = node.id();
        self.settled.push((id, node.finish(rates, at)));
        id
    }

    /// Crashes the live node at slice position `idx` at instant `at`:
    /// the node is removed immediately (no drain), its books are settled
    /// at the crash instant exactly like a retirement — eq. 11 uptime and
    /// the eq. 13 disk byte-seconds integral are charged up to `at` —
    /// and its settled result is returned alongside its id so the fault
    /// plane can ledger the abandoned capital. `routable_count` drops at
    /// once, which is what lets the elastic population-floor rule respawn
    /// on the next review instead of waiting out a drain grace.
    pub fn crash(&mut self, idx: usize, rates: &ResourceRates, at: SimTime) -> (usize, &RunResult) {
        let id = self.retire(idx, rates, at);
        let (settled_id, run) = self.settled.last().expect("retire just settled a node");
        debug_assert_eq!(*settled_id, id);
        (id, run)
    }

    /// Closes the run at `horizon`: settles every remaining live node
    /// and returns all per-node results plus the uptime integral.
    #[must_use]
    pub fn finish(mut self, rates: &ResourceRates, horizon: SimTime) -> PopulationFinish {
        self.advance_clock(horizon);
        let final_live = self.live.len();
        let mut nodes = self.settled;
        for node in self.live {
            let id = node.id();
            nodes.push((id, node.finish(rates, horizon)));
        }
        PopulationFinish {
            nodes,
            node_seconds: self.node_seconds,
            peak_live: self.peak_live,
            final_live,
        }
    }
}

/// The tenant-weighted spawn template order: node specs sorted by how
/// many tenants map to their slot (`tenant id % nodes`), descending,
/// index-ascending on ties. A pure function of the fleet config, so the
/// k-th spawn clones the same scheme in every cell — which keeps
/// per-node-id rollups mergeable across cells.
#[must_use]
pub fn tenant_weighted_templates(fleet: &FleetConfig) -> Vec<NodeSpec> {
    let n = fleet.nodes.len();
    let mut weight = vec![0u64; n];
    for t in &fleet.tenants {
        weight[t.id.0 as usize % n] += 1;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight[i]), i));
    order.into_iter().map(|i| fleet.nodes[i].clone()).collect()
}

/// One cell's control plane: reviews the population on a fixed simulated
/// cadence and applies the scaling rules. See the module docs for the
/// signal flow.
pub struct ElasticController {
    cfg: ElasticConfig,
    cell: usize,
    schema: Arc<Schema>,
    econ: econ::EconConfig,
    rates: ResourceRates,
    templates: Vec<NodeSpec>,
    next_review: f64,
    cooldown_left: u32,
    backlog_ewma: Option<f64>,
    prev_served: u64,
    prev_response_sum: f64,
    prev_profit: Money,
    prev_regret: Money,
    spawn_count: usize,
    spawns: u64,
    retires: u64,
    ledger: Vec<LedgerEntry>,
}

impl ElasticController {
    /// Builds the controller for one cell of `fleet`.
    ///
    /// # Panics
    /// Panics if `fleet.elastic` is absent or invalid.
    #[must_use]
    pub fn new(fleet: &FleetConfig, cell: usize, schema: Arc<Schema>) -> Self {
        let cfg = fleet
            .elastic
            .clone()
            .expect("elastic controller needs an elastic config");
        if let Err(msg) = cfg.validate() {
            panic!("invalid elastic config: {msg}");
        }
        ElasticController {
            next_review: cfg.review_interval_secs,
            cfg,
            cell,
            schema,
            econ: fleet.econ.clone(),
            rates: fleet.prices.rates,
            templates: tenant_weighted_templates(fleet),
            cooldown_left: 0,
            backlog_ewma: None,
            prev_served: 0,
            prev_response_sum: 0.0,
            prev_profit: Money::ZERO,
            prev_regret: Money::ZERO,
            spawn_count: 0,
            spawns: 0,
            retires: 0,
            ledger: Vec::new(),
        }
    }

    /// The next scheduled review instant. Population-floor respawns
    /// land at reviews, so the executor's total-outage wait advances
    /// queries to this instant when no node is routable.
    #[must_use]
    pub fn next_review_at(&self) -> SimTime {
        SimTime::from_secs(self.next_review)
    }

    /// Runs every review due at or before `now` (the current arrival
    /// instant). Call once per arrival, before accrual and routing, so
    /// decisions take effect from the exact review instant.
    pub fn run_due_reviews(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        now: SimTime,
    ) {
        while self.next_review <= now.as_secs() {
            let at = SimTime::from_secs(self.next_review);
            self.review(pop, ctx, at);
            self.next_review += self.cfg.review_interval_secs;
        }
    }

    /// One review at `at`: evaluate signals, retire drained nodes whose
    /// structures can no longer pay maintenance, then apply at most one
    /// scale action.
    fn review(&mut self, pop: &mut NodePopulation, ctx: &PlannerContext<'_>, at: SimTime) {
        let signals = self.evaluate_signals(pop, at);
        self.retire_drained(pop, ctx, at, signals);
        self.scale(pop, ctx, at, signals);
    }

    /// Computes the review's pressure signals and advances the EWMA and
    /// window snapshots.
    fn evaluate_signals(&mut self, pop: &NodePopulation, at: SimTime) -> PressureSignals {
        let routable: Vec<&CacheNode> = pop.live().iter().filter(|n| n.routable(at)).collect();
        let backlog = if routable.is_empty() {
            0.0
        } else {
            routable.iter().map(|n| n.outstanding(at)).sum::<f64>() / routable.len() as f64
        };
        let ewma = match self.backlog_ewma {
            None => backlog,
            Some(prev) => self.cfg.ewma_alpha * backlog + (1.0 - self.cfg.ewma_alpha) * prev,
        };
        self.backlog_ewma = Some(ewma);

        let served: u64 = pop.live().iter().map(CacheNode::queries).sum::<u64>()
            + pop.settled.iter().map(|(_, r)| r.queries).sum::<u64>();
        let response_sum: f64 = pop
            .live()
            .iter()
            .map(|n| n.response_secs_total())
            .sum::<f64>()
            + pop
                .settled
                .iter()
                .map(|(_, r)| r.response.mean() * r.response.count() as f64)
                .sum::<f64>();
        let profit: Money = pop.live().iter().map(CacheNode::profit).sum::<Money>()
            + pop.settled.iter().map(|(_, r)| r.profit).sum::<Money>();
        let regret: Money = pop
            .live()
            .iter()
            .filter_map(|n| n.economy().map(|m| m.regret().total()))
            .sum();

        let window_served = served.saturating_sub(self.prev_served);
        let window_response_secs = if window_served == 0 {
            0.0
        } else {
            (response_sum - self.prev_response_sum) / window_served as f64
        };
        let interval = self.cfg.review_interval_secs;
        let profit_rate = (profit - self.prev_profit).as_dollars() / interval;
        let regret_rate = (regret - self.prev_regret).as_dollars() / interval;
        self.prev_served = served;
        self.prev_response_sum = response_sum;
        self.prev_profit = profit;
        self.prev_regret = regret;

        PressureSignals {
            backlog,
            backlog_ewma: ewma,
            window_response_secs,
            profit_rate,
            regret_rate,
        }
    }

    /// Retires every draining node whose in-flight work has finished and
    /// whose structures can no longer pay maintenance (footnote 3) — or
    /// whose drain outlived the configured grace bound.
    fn retire_drained(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        at: SimTime,
        signals: PressureSignals,
    ) {
        // Walk back to front so removals keep earlier indices stable.
        for idx in (0..pop.live().len()).rev() {
            let node = &pop.live()[idx];
            let Some(since) = node.drain_since() else {
                continue;
            };
            if node.outstanding(at) > 0.0 {
                continue; // in-flight work still finishing
            }
            let insolvent = node
                .economy()
                .is_none_or(|m| m.structures_insolvent(ctx.estimator, at));
            let grace_exceeded = at.saturating_since(since).as_secs() >= self.cfg.drain_grace_secs;
            if !(insolvent || grace_exceeded) {
                continue;
            }
            let rule = if insolvent {
                "drain-insolvent"
            } else {
                "drain-grace"
            };
            let id = pop.retire(idx, &self.rates, at);
            self.retires += 1;
            self.push_entry(pop, at, rule, ElasticAction::Retire { node: id }, signals);
        }
    }

    /// Applies at most one scale action per review, in rule-priority
    /// order, and ledgers the outcome.
    fn scale(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        at: SimTime,
        signals: PressureSignals,
    ) {
        let live = pop.live();
        let draining = live.iter().filter(|n| n.drain_since().is_some()).count();
        let non_draining = live.len() - draining;
        let active = live
            .iter()
            .filter(|n| n.drain_since().is_none() && n.routable(at))
            .count();

        if non_draining < self.cfg.min_nodes {
            // The floor outranks the cooldown: a fleet below its minimum
            // must recover immediately.
            let action = self.spawn(pop, ctx, at);
            self.push_entry(pop, at, "population-floor", action, signals);
            return;
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.push_entry(pop, at, "cooldown", ElasticAction::Hold, signals);
            return;
        }
        let response_pressure = self.cfg.max_response_secs > 0.0
            && signals.window_response_secs > self.cfg.max_response_secs;
        if signals.backlog_ewma >= self.cfg.scale_up_backlog || response_pressure {
            let rule = if signals.backlog_ewma >= self.cfg.scale_up_backlog {
                "backlog-pressure"
            } else {
                "response-pressure"
            };
            if non_draining >= self.cfg.max_nodes {
                self.push_entry(pop, at, "at-capacity", ElasticAction::Hold, signals);
            } else {
                let action = self.spawn(pop, ctx, at);
                self.cooldown_left = self.cfg.cooldown_reviews;
                self.push_entry(pop, at, rule, action, signals);
            }
            return;
        }
        if signals.backlog_ewma <= self.cfg.scale_down_backlog && active > self.cfg.min_nodes {
            // Deterministic victim: the active node that earned the least
            // (lowest payments), ties broken toward the highest id so
            // late spawns retire first.
            let victim = pop
                .live()
                .iter()
                .enumerate()
                .filter(|(_, n)| n.drain_since().is_none() && n.routable(at))
                .min_by(|(_, a), (_, b)| a.payments().cmp(&b.payments()).then(b.id().cmp(&a.id())))
                .map(|(idx, _)| idx)
                .expect("active > min_nodes >= 1");
            let id = pop.live()[victim].id();
            pop.live_mut()[victim].begin_drain(at);
            self.cooldown_left = self.cfg.cooldown_reviews;
            self.push_entry(
                pop,
                at,
                "idle-capacity",
                ElasticAction::DrainBegin { node: id },
                signals,
            );
            return;
        }
        self.push_entry(pop, at, "within-band", ElasticAction::Hold, signals);
    }

    /// Spawns one node from the tenant-weighted template cycle, charging
    /// eq. 10's boot cost (`c × b`) to the new node's ledger; the node
    /// becomes routable once the boot completes.
    fn spawn(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        at: SimTime,
    ) -> ElasticAction {
        let spec = self.templates[self.spawn_count % self.templates.len()].clone();
        self.spawn_count += 1;
        let (boot_cost, boot_time) = ctx.estimator.build_node();
        let id = pop.next_id();
        let node = CacheNode::new_booting(
            id,
            &spec,
            &self.schema,
            &self.econ,
            at,
            at + boot_time,
            boot_cost,
        );
        pop.admit(node, at);
        self.spawns += 1;
        ElasticAction::ScaleUp {
            node: id,
            scheme: spec.scheme.name().to_string(),
        }
    }

    fn push_entry(
        &mut self,
        pop: &NodePopulation,
        at: SimTime,
        rule: &str,
        action: ElasticAction,
        signals: PressureSignals,
    ) {
        let live = pop.live();
        let routable = live.iter().filter(|n| n.routable(at)).count();
        let draining = live.iter().filter(|n| n.drain_since().is_some()).count();
        let booting = live
            .iter()
            .filter(|n| n.drain_since().is_none() && !n.routable(at))
            .count();
        self.ledger.push(LedgerEntry {
            cell: self.cell,
            at_secs: at.as_secs(),
            live: live.len(),
            routable,
            booting,
            draining,
            rule: rule.to_string(),
            action,
            signals,
        });
    }

    /// The decision ledger so far, ascending `at_secs`. The executor's
    /// flight recorder diffs this around [`Self::run_due_reviews`] to
    /// fold new entries into the unified trace-event stream.
    #[must_use]
    pub fn ledger(&self) -> &[LedgerEntry] {
        &self.ledger
    }

    /// The controller's current backlog EWMA — its scaling pressure
    /// signal, sampled by the health plane's vitals snapshots (0 before
    /// the first review).
    #[must_use]
    pub fn pressure_ewma(&self) -> f64 {
        self.backlog_ewma.unwrap_or(0.0)
    }

    /// Nodes spawned so far (vitals snapshots sample this mid-run).
    #[must_use]
    pub fn spawns_so_far(&self) -> u64 {
        self.spawns
    }

    /// Nodes retired so far (vitals snapshots sample this mid-run).
    #[must_use]
    pub fn retires_so_far(&self) -> u64 {
        self.retires
    }

    /// Consumes the controller into the cell's summary; the population's
    /// [`PopulationFinish`] supplies the uptime integral.
    #[must_use]
    pub fn into_summary(self, finish: &PopulationFinish) -> ElasticSummary {
        ElasticSummary {
            spawns: self.spawns,
            retires: self.retires,
            peak_nodes: finish.peak_live,
            final_nodes: finish.final_live,
            node_seconds: finish.node_seconds,
            ledger: self.ledger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;

    #[test]
    fn default_config_validates() {
        assert!(ElasticConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = [
            ElasticConfig {
                review_interval_secs: 0.0,
                ..ElasticConfig::default()
            },
            ElasticConfig {
                ewma_alpha: 1.5,
                ..ElasticConfig::default()
            },
            ElasticConfig {
                scale_down_backlog: ElasticConfig::default().scale_up_backlog,
                ..ElasticConfig::default()
            },
            ElasticConfig {
                min_nodes: 0,
                ..ElasticConfig::default()
            },
            ElasticConfig {
                max_nodes: 0,
                ..ElasticConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} must be rejected");
        }
    }

    #[test]
    fn templates_are_tenant_weighted_and_deterministic() {
        // 5 tenants over 3 node slots: slot 0 ← tenants {0, 3}, slot 1 ←
        // {1, 4}, slot 2 ← {2}. Ties (slots 0 and 1 both weigh 2) break
        // index-ascending.
        let config = FleetConfig::uniform(5, 3, 10, 1.0);
        let order = tenant_weighted_templates(&config);
        assert_eq!(order.len(), 3);
        let again = tenant_weighted_templates(&config);
        assert_eq!(order, again, "pure function of the config");
    }

    #[test]
    fn summary_merge_accumulates_and_keeps_cell_order() {
        let entry = |cell: usize| LedgerEntry {
            cell,
            at_secs: 5.0,
            live: 2,
            routable: 2,
            booting: 0,
            draining: 0,
            rule: "within-band".into(),
            action: ElasticAction::Hold,
            signals: PressureSignals {
                backlog: 0.0,
                backlog_ewma: 0.0,
                window_response_secs: 0.0,
                profit_rate: 0.0,
                regret_rate: 0.0,
            },
        };
        let mut a = ElasticSummary {
            spawns: 1,
            retires: 0,
            peak_nodes: 3,
            final_nodes: 2,
            node_seconds: 10.0,
            ledger: vec![entry(0)],
        };
        let b = ElasticSummary {
            spawns: 2,
            retires: 1,
            peak_nodes: 5,
            final_nodes: 1,
            node_seconds: 7.5,
            ledger: vec![entry(1)],
        };
        a.merge(&b);
        assert_eq!(a.spawns, 3);
        assert_eq!(a.retires, 1);
        assert_eq!(a.peak_nodes, 5);
        assert_eq!(a.final_nodes, 3);
        assert!((a.node_seconds - 17.5).abs() < 1e-12);
        let cells: Vec<usize> = a.ledger.iter().map(|e| e.cell).collect();
        assert_eq!(cells, vec![0, 1]);
    }

    #[test]
    fn summary_roundtrips_serde() {
        let summary = ElasticSummary {
            spawns: 1,
            retires: 1,
            peak_nodes: 4,
            final_nodes: 3,
            node_seconds: 123.5,
            ledger: vec![LedgerEntry {
                cell: 2,
                at_secs: 15.0,
                live: 4,
                routable: 3,
                booting: 1,
                draining: 0,
                rule: "backlog-pressure".into(),
                action: ElasticAction::ScaleUp {
                    node: 4,
                    scheme: "econ-cheap".into(),
                },
                signals: PressureSignals {
                    backlog: 1.25,
                    backlog_ewma: 1.1,
                    window_response_secs: 0.4,
                    profit_rate: 0.01,
                    regret_rate: -0.002,
                },
            }],
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: ElasticSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }
}
