//! Fleet experiment configuration.

use econ::EconConfig;
use planner::CostParams;
use pricing::{Money, PriceCatalog};
use serde::{Deserialize, Serialize};
use simulator::{ArrivalKind, Scheme};
use telemetry::{HealthConfig, TenantSloSpec};
use workload::WorkloadConfig;

use crate::elastic::ElasticConfig;
use crate::faults::FaultPlan;
use crate::node::NodeSpec;
use crate::router::RouterKind;
use crate::tenant::{TenantId, TenantSpec};

/// Serde default for switches that ship enabled.
fn default_true() -> bool {
    true
}

/// Full description of one fleet simulation.
///
/// Tenants are partitioned into `cells` (tenant `id % cells`); each cell
/// owns a private replica of the `nodes` fleet and serves its tenants'
/// superposed stream. `shards` worker threads execute cells in parallel;
/// because cell membership and all seeds depend only on tenant ids, the
/// result is a pure function of everything *except* `shards` — see
/// [`crate::exec`] for the invariance argument.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// TPC-H scale factor of the shared backend database.
    pub scale_factor: f64,
    /// The tenant population.
    pub tenants: Vec<TenantSpec>,
    /// The cache nodes each cell instantiates.
    pub nodes: Vec<NodeSpec>,
    /// Routing strategy.
    pub router: RouterKind,
    /// Number of independent cells the tenants are partitioned into.
    pub cells: usize,
    /// Worker threads executing cells (affects wall-clock only).
    pub shards: usize,
    /// Worker threads a cheapest-quote round fans per-node bids out over
    /// (affects wall-clock only: the deterministic merge makes routing
    /// bit-identical at any pool size). The workers live in a
    /// **persistent** per-cell pool, spawned once and parked between
    /// rounds. The executor additionally clamps the pool so
    /// `shards × quote_threads` never oversubscribes the machine
    /// (see [`crate::exec::effective_quote_threads`]) — a pool that
    /// cannot actually run in parallel only adds wake-up cost per round.
    pub quote_threads: usize,
    /// Quote rounds complete the economic nodes' plans in one batched
    /// structure-major sweep instead of once per node (bit-identical
    /// results either way; `false` selects the per-node reference path
    /// the `fleet_scale` self-check compares against).
    pub quote_batching: bool,
    /// Pin quote-pool workers to cores (`sched_setaffinity`): each
    /// worker is sticky on the same node chunk every round, so pinning
    /// keeps those node states resident in one core's private cache. A
    /// placement hint only — results are bit-identical with pinning on,
    /// off, or unavailable (non-Linux, restrictive cpuset); the
    /// `fleet_scale` sweep runs both settings through its invariance
    /// check. Defaults on (including for older serialized configs).
    #[serde(default = "default_true")]
    pub pin_quote_workers: bool,
    /// Cost-model calibration.
    pub cost_params: CostParams,
    /// Resource prices.
    pub prices: PriceCatalog,
    /// Economy configuration shared by every economic node.
    pub econ: EconConfig,
    /// Candidate-index budget per cell (the paper's 65).
    pub candidate_indexes: usize,
    /// Elastic control plane; `None` runs the classic fixed population.
    /// When set, each cell's controller scales its node replica up and
    /// down on the configured review cadence (see [`crate::elastic`]);
    /// `nodes` then describes the *seed* population.
    pub elastic: Option<ElasticConfig>,
    /// Declarative fault plan; `None` runs fault-free. When set, each
    /// cell injects the plan's crashes / recoveries / degradations into
    /// its private fleet replica and layers the surge windows on every
    /// tenant's arrivals (see [`crate::faults`]). Faults are config, so
    /// faulted runs stay bit-replayable and shard-invariant.
    pub faults: Option<FaultPlan>,
    /// Health-plane snapshot cadence; `None` (the default, including
    /// for older serialized configs) takes no vitals snapshots. Purely
    /// observational: a snapshot-on run is bit-identical to the same
    /// run with snapshots off (see `crate::exec` — the scraper only
    /// reads state, on a simulated-time cadence).
    #[serde(default)]
    pub health: Option<HealthConfig>,
    /// Master seed; per-tenant seeds derive from `(seed, tenant id)`.
    pub seed: u64,
}

impl FleetConfig {
    /// A homogeneous fleet: `n_tenants` identical tenants with fixed
    /// inter-arrival `interval_secs`, `n_nodes` econ-cheap nodes, and the
    /// economics scaled the way the workspace's tests scale them (small
    /// initial capital, low regret floor) so that investment fires within
    /// a few hundred queries per cell.
    #[must_use]
    pub fn uniform(
        n_tenants: u32,
        n_nodes: usize,
        queries_per_tenant: u64,
        interval_secs: f64,
    ) -> Self {
        let tenants = (0..n_tenants)
            .map(|id| TenantSpec {
                id: TenantId(id),
                workload: WorkloadConfig::default(),
                arrival: ArrivalKind::Fixed { interval_secs },
                queries: queries_per_tenant,
                slo: None,
            })
            .collect();
        let nodes = (0..n_nodes)
            .map(|_| NodeSpec::new(Scheme::EconCheap))
            .collect();
        let econ = EconConfig {
            initial_credit: Money::from_dollars(0.02),
            investment: econ::InvestmentRule {
                min_regret: Money::from_dollars(1e-5),
                ..econ::InvestmentRule::default()
            },
            ..EconConfig::default()
        };
        FleetConfig {
            scale_factor: 50.0,
            tenants,
            nodes,
            router: RouterKind::CheapestQuote,
            cells: 8,
            shards: 1,
            quote_threads: 1,
            quote_batching: true,
            pin_quote_workers: true,
            cost_params: CostParams::default(),
            prices: PriceCatalog::ec2_2009(),
            econ,
            candidate_indexes: 65,
            elastic: None,
            faults: None,
            health: None,
            seed: 0xF1EE_7CA5,
        }
    }

    /// Builder style: attach an elastic control plane.
    #[must_use]
    pub fn with_elastic(mut self, elastic: ElasticConfig) -> Self {
        self.elastic = Some(elastic);
        self
    }

    /// Builder style: attach a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builder style: snapshot fleet vitals every `interval_secs` of
    /// simulated time.
    #[must_use]
    pub fn with_health(mut self, interval_secs: f64) -> Self {
        self.health = Some(HealthConfig {
            snapshot_interval_secs: interval_secs,
        });
        self
    }

    /// Builder style: give every tenant the same service-level
    /// objective — the SLO ledger then tracks deadline misses and spend
    /// caps for the whole population.
    #[must_use]
    pub fn with_slo(mut self, slo: TenantSloSpec) -> Self {
        for t in &mut self.tenants {
            t.slo = Some(slo);
        }
        self
    }

    /// Builder style: give every tenant the same arrival process — the
    /// scenario axis of the elasticity experiments (steady / bursty /
    /// diurnal).
    #[must_use]
    pub fn with_arrivals(mut self, arrival: ArrivalKind) -> Self {
        for t in &mut self.tenants {
            t.arrival = arrival;
        }
        self
    }

    /// A heterogeneous fleet: tenants cycle through fixed / Poisson /
    /// bursty arrivals and three budget-generosity tiers, modelling a
    /// population of differently-behaved customers on one marketplace.
    #[must_use]
    pub fn mixed(n_tenants: u32, n_nodes: usize, queries_per_tenant: u64) -> Self {
        let mut config = Self::uniform(n_tenants, n_nodes, queries_per_tenant, 1.0);
        for spec in &mut config.tenants {
            let id = spec.id.0;
            spec.arrival = match id % 3 {
                0 => ArrivalKind::Fixed { interval_secs: 1.0 },
                1 => ArrivalKind::Poisson { mean_gap_secs: 2.0 },
                _ => ArrivalKind::Bursty {
                    on_gap_secs: 0.25,
                    burst_len: 20,
                    off_gap_secs: 30.0,
                },
            };
            spec.workload.budget_scale_range = match id % 4 {
                0 => (1.05, 1.2),
                1 => (1.1, 1.5),
                2 => (1.2, 1.8),
                _ => (1.05, 1.5),
            };
        }
        config
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.scale_factor.is_finite() || self.scale_factor <= 0.0 {
            return Err("scale_factor must be positive".into());
        }
        if self.tenants.is_empty() {
            return Err("fleet needs at least one tenant".into());
        }
        if self.nodes.is_empty() {
            return Err("fleet needs at least one node".into());
        }
        if self.cells == 0 {
            return Err("cells must be positive".into());
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        if self.quote_threads == 0 {
            return Err("quote_threads must be positive".into());
        }
        if self.candidate_indexes == 0 {
            return Err("candidate_indexes must be positive".into());
        }
        let mut ids: Vec<u32> = self.tenants.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.tenants.len() {
            return Err("tenant ids must be unique".into());
        }
        for t in &self.tenants {
            if t.queries == 0 {
                return Err(format!("tenant {} submits zero queries", t.id.0));
            }
            t.workload
                .validate()
                .map_err(|(f, r)| format!("tenant {} workload.{f}: {r}", t.id.0))?;
            if let Some(slo) = &t.slo {
                slo.validate()
                    .map_err(|m| format!("tenant {} slo: {m}", t.id.0))?;
            }
        }
        self.cost_params
            .validate()
            .map_err(|f| format!("cost_params.{f} invalid"))?;
        self.econ.validate().map_err(|m| format!("econ: {m}"))?;
        if let Some(elastic) = &self.elastic {
            elastic.validate().map_err(|m| format!("elastic: {m}"))?;
        }
        if let Some(faults) = &self.faults {
            faults
                .validate(self.nodes.len())
                .map_err(|m| format!("faults: {m}"))?;
        }
        if let Some(health) = &self.health {
            health.validate().map_err(|m| format!("health: {m}"))?;
        }
        Ok(())
    }

    /// Total queries the population submits.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.tenants.iter().map(|t| t.queries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_mixed_validate() {
        assert!(FleetConfig::uniform(10, 4, 100, 1.0).validate().is_ok());
        assert!(FleetConfig::mixed(10, 4, 100).validate().is_ok());
    }

    #[test]
    fn mixed_population_is_heterogeneous() {
        let c = FleetConfig::mixed(9, 2, 10);
        let kinds: std::collections::HashSet<&'static str> = c
            .tenants
            .iter()
            .map(|t| match t.arrival {
                ArrivalKind::Fixed { .. } => "fixed",
                ArrivalKind::Poisson { .. } => "poisson",
                ArrivalKind::Bursty { .. } => "bursty",
                ArrivalKind::Mmpp { .. } => "mmpp",
                ArrivalKind::Diurnal { .. } => "diurnal",
            })
            .collect();
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = FleetConfig::uniform(4, 2, 10, 1.0);
        c.cells = 0;
        assert!(c.validate().is_err());

        let mut c = FleetConfig::uniform(4, 2, 10, 1.0);
        c.nodes.clear();
        assert!(c.validate().is_err());

        let mut c = FleetConfig::uniform(4, 2, 10, 1.0);
        c.tenants[1].id = c.tenants[0].id;
        assert!(c.validate().is_err(), "duplicate tenant ids");

        let mut c = FleetConfig::uniform(4, 2, 10, 1.0);
        c.tenants[2].queries = 0;
        assert!(c.validate().is_err());

        let mut c = FleetConfig::uniform(4, 2, 10, 1.0);
        c.quote_threads = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn pin_flag_defaults_on_for_older_configs() {
        use serde::{Deserialize, Serialize, Value};
        let c = FleetConfig::uniform(2, 2, 5, 1.0);
        let mut v = c.serialize();
        match &mut v {
            Value::Map(m) => m.retain(|(k, _)| k != "pin_quote_workers"),
            other => panic!("config serializes as a map, got {other:?}"),
        }
        let back = FleetConfig::deserialize(&v).unwrap();
        assert!(back.pin_quote_workers, "absent field means pinning on");
    }

    #[test]
    fn health_and_slo_default_absent_for_older_configs() {
        use serde::{Deserialize, Serialize, Value};
        let c = FleetConfig::uniform(2, 2, 5, 1.0);
        let mut v = c.serialize();
        match &mut v {
            Value::Map(m) => {
                m.retain(|(k, _)| k != "health");
                for (k, tenants) in m.iter_mut() {
                    if k != "tenants" {
                        continue;
                    }
                    let Value::Seq(seq) = tenants else {
                        panic!("tenants serialize as a sequence")
                    };
                    for t in seq {
                        match t {
                            Value::Map(tm) => tm.retain(|(k, _)| k != "slo"),
                            other => panic!("tenant serializes as a map, got {other:?}"),
                        }
                    }
                }
            }
            other => panic!("config serializes as a map, got {other:?}"),
        }
        let back = FleetConfig::deserialize(&v).unwrap();
        assert!(back.health.is_none(), "absent health means no snapshots");
        assert!(back.tenants.iter().all(|t| t.slo.is_none()));
    }

    #[test]
    fn with_health_and_with_slo_validate() {
        let spec = telemetry::TenantSloSpec {
            p99_target_secs: 8.0,
            spend_cap: Some(Money::from_dollars(0.05)),
        };
        let c = FleetConfig::uniform(4, 2, 10, 1.0)
            .with_health(5.0)
            .with_slo(spec);
        assert!(c.validate().is_ok());
        assert!(c.tenants.iter().all(|t| t.slo == Some(spec)));

        let mut bad = c.clone();
        bad.health = Some(HealthConfig {
            snapshot_interval_secs: -1.0,
        });
        assert!(bad.validate().is_err());

        let mut bad = c;
        bad.tenants[0].slo = Some(telemetry::TenantSloSpec {
            p99_target_secs: 0.0,
            spend_cap: None,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn config_roundtrips_serde() {
        let c = FleetConfig::mixed(5, 3, 20);
        let json = serde_json::to_string(&c).unwrap();
        let back: FleetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tenants.len(), 5);
        assert_eq!(back.nodes.len(), 3);
        assert_eq!(back.router, RouterKind::CheapestQuote);
        assert_eq!(back.total_queries(), 100);
    }
}
