//! # fleet — multi-tenant cache-fleet simulation with price-based routing
//!
//! The paper ("An Economic Model for Self-Tuned Cloud Caching", ICDE
//! 2009) models *one* cloud cache quoting prices `B_Q(t)` to its users.
//! This crate scales that economy out to a **marketplace**: a population
//! of tenants submits superposed query streams, several self-tuned cache
//! nodes compete to serve them, and a router decides who wins each query —
//! by rotation, by load, or by the nodes' own price quotes.
//!
//! ```text
//!  tenants (TenantSpec × N) ──heap-merge──▶ MergedStream
//!                                             │ time-ordered queries
//!                                             ▼
//!                                          Router ──quotes/load──▶ CacheNode × M
//!                                             │                      (each a full
//!                                             ▼                       CachePolicy)
//!                                        FleetResult  ◀─merge()─  per-cell partials
//! ```
//!
//! * [`tenant`] — [`TenantSpec`] populations and the binary-heap
//!   superposition ([`MergedStream`]).
//! * [`elastic`] — the economy-driven control plane: an EWMA pressure
//!   signal drives node spawn/drain/retire decisions on a deterministic
//!   review cadence, every decision explained in a ledger
//!   ([`ElasticController`], [`NodePopulation`], [`LedgerEntry`]).
//! * [`router`] — the [`Router`] trait with [`RoundRobin`],
//!   [`LeastOutstanding`] and [`CheapestQuote`] strategies; the latter
//!   extends the paper's economy into a competitive market where the node
//!   bidding the lowest `B_Q(t)` wins the query.
//! * [`node`] — [`CacheNode`]: one policy plus its accounting and backlog
//!   clock.
//! * [`exec`] — the sharded executor: tenants partition into cells, cells
//!   run on worker threads, and the merge is shard-count invariant (an
//!   8-core run is bit-identical to a 1-core run).
//! * [`result`] — mergeable rollups: [`FleetResult`] with per-tenant and
//!   per-node accounting.
//! * [`slo`] — reporting glue over the per-tenant SLO ledger the executor
//!   maintains (the ledger types live in `telemetry::health`): worst-
//!   tenant pickers and breach narration for `explain slo`.
//!
//! Start with [`FleetConfig::uniform`] and [`run_fleet`], or the
//! `fleet_market` example.

#![deny(missing_docs)]
// `deny` rather than the workspace-wide `forbid`: the persistent quote
// worker pool (`pool`) is the one place that needs `unsafe` — it shares a
// round-scoped borrowed closure with long-lived parked threads, the same
// guarantee `std::thread::scope` provides but paid once instead of per
// round. Every unsafe block lives in that module, behind a documented
// safety protocol.
#![deny(unsafe_code)]

pub mod config;
pub mod elastic;
pub mod evacuate;
pub mod exec;
pub mod faults;
pub mod node;
mod pool;
pub mod result;
pub mod router;
pub mod slo;
pub mod tenant;

pub use config::FleetConfig;
pub use elastic::{
    ElasticAction, ElasticConfig, ElasticController, ElasticSummary, LedgerEntry, NodePopulation,
    PressureSignals,
};
pub use evacuate::{
    evacuation_candidates, EvacuateRecord, EvacuateSpec, EvacuatedMove, EvacuationCandidate,
    RetryPolicy,
};
pub use exec::{effective_quote_threads, run_fleet, FleetSim, FleetTrace};
pub use faults::{
    CascadeSpec, CrashPhase, CrashRecord, CrashSpec, DegradeSpec, FaultGroup, FaultInjector,
    FaultOutcome, FaultPlan, FaultRecord, FaultSummary, ReconcileDrift, RecoverRecord, SurgeSpec,
};
pub use node::{CacheNode, NodeSpec};
pub use result::{FleetResult, NodeStats, TenantStats};
pub use router::{CheapestQuote, LeastOutstanding, QuoteOptions, RoundRobin, Router, RouterKind};
pub use slo::{
    narrate_breaches, spend_cap_breaches, worst_burn_rate, worst_p99, SloLedger, TenantSloRecord,
    TenantSloSpec, P99_MISS_BUDGET,
};
pub use tenant::{MergedStream, TenantId, TenantSpec, TenantStream};
