//! Fleet-side glue over the per-tenant SLO ledger.
//!
//! The ledger types themselves live in [`telemetry::health`] (the trace
//! format carries them, and `telemetry` must not depend on `fleet`); this
//! module re-exports them alongside the fleet and adds the rollup helpers
//! the `explain` tooling and benches narrate with: worst-tenant pickers
//! and one-line breach narration.
//!
//! Everything here is read-only reporting over an already-merged
//! [`SloLedger`] — the ledger is populated query-by-query inside
//! [`crate::exec`] and folded shard-invariantly with the rest of the
//! [`crate::FleetResult`].

pub use telemetry::{SloLedger, TenantSloRecord, TenantSloSpec, P99_MISS_BUDGET};

/// The tenant with the highest measured p99 response time, as
/// `(tenant id, p99 seconds)`. `None` when no tenant served a query.
#[must_use]
pub fn worst_p99(ledger: &SloLedger) -> Option<(u32, f64)> {
    ledger
        .tenants
        .iter()
        .filter_map(|r| r.p99_secs().map(|p| (r.tenant, p)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// The spec'd tenant with the highest SLO burn rate, as
/// `(tenant id, burn rate)`. Burn rate 1.0 means the tenant is consuming
/// its p99 error budget exactly as fast as it accrues; above 1.0 the
/// budget is burning down. `None` when no tenant carries an SLO.
#[must_use]
pub fn worst_burn_rate(ledger: &SloLedger) -> Option<(u32, f64)> {
    ledger
        .tenants
        .iter()
        .filter(|r| r.slo.is_some())
        .map(|r| (r.tenant, r.burn_rate()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Tenants whose exact spend exceeded their spend cap.
#[must_use]
pub fn spend_cap_breaches(ledger: &SloLedger) -> u64 {
    ledger
        .tenants
        .iter()
        .filter(|r| r.spend_cap_breached())
        .count() as u64
}

/// One human-readable line per breaching tenant, in tenant-id order:
/// which budget broke (p99 error budget, spend cap, or both) and by how
/// much. Empty when every tenant is inside its contract.
#[must_use]
pub fn narrate_breaches(ledger: &SloLedger) -> Vec<String> {
    ledger
        .breaches()
        .into_iter()
        .map(|r| {
            let mut parts = Vec::new();
            if r.p99_breached() {
                let target = r.slo.map(|s| s.p99_target_secs).unwrap_or(f64::NAN);
                parts.push(format!(
                    "p99 budget burned {:.1}x (miss rate {:.2}% vs {:.2}% budget, \
                     {} misses / {} queries, target {:.3}s, measured p99 {:.3}s)",
                    r.burn_rate(),
                    r.miss_rate() * 100.0,
                    P99_MISS_BUDGET * 100.0,
                    r.deadline_misses,
                    r.admitted,
                    target,
                    r.p99_secs().unwrap_or(0.0),
                ));
            }
            if r.spend_cap_breached() {
                let cap = r
                    .slo
                    .and_then(|s| s.spend_cap)
                    .map_or(0.0, |c| c.as_dollars());
                parts.push(format!(
                    "spend cap exceeded (${:.4} spent vs ${:.4} cap)",
                    r.spend.as_dollars(),
                    cap,
                ));
            }
            format!("tenant {}: {}", r.tenant, parts.join("; "))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::Money;

    fn record(tenant: u32, slo: Option<TenantSloSpec>) -> TenantSloRecord {
        TenantSloRecord::new(tenant, slo)
    }

    fn spec(target: f64, cap: Option<f64>) -> TenantSloSpec {
        TenantSloSpec {
            p99_target_secs: target,
            spend_cap: cap.map(Money::from_dollars),
        }
    }

    #[test]
    fn worst_pickers_scan_the_ledger() {
        let mut fast = record(0, Some(spec(10.0, None)));
        let mut slow = record(1, Some(spec(0.001, None)));
        for _ in 0..100 {
            fast.record_served(0.01, Money::ZERO, true);
            slow.record_served(0.5, Money::ZERO, false);
        }
        let ledger = SloLedger::from_records(vec![fast, slow]);
        let (worst, p99) = worst_p99(&ledger).unwrap();
        assert_eq!(worst, 1);
        assert!(p99 > 0.1);
        let (burning, rate) = worst_burn_rate(&ledger).unwrap();
        assert_eq!(burning, 1);
        // Every one of tenant 1's queries missed its 1ms target: miss
        // rate 1.0 against the 1% budget is a 100x burn.
        assert!((rate - 100.0).abs() < 1e-9);
    }

    #[test]
    fn worst_burn_rate_ignores_unspecced_tenants() {
        let mut free = record(7, None);
        for _ in 0..10 {
            free.record_served(60.0, Money::ZERO, false);
        }
        let ledger = SloLedger::from_records(vec![free]);
        assert!(worst_burn_rate(&ledger).is_none());
        assert!(worst_p99(&ledger).is_some());
    }

    #[test]
    fn narration_names_each_broken_budget() {
        let mut both = record(3, Some(spec(0.001, Some(0.000_000_1))));
        for _ in 0..100 {
            both.record_served(1.0, Money::from_dollars(0.01), false);
        }
        let mut clean = record(4, Some(spec(100.0, None)));
        clean.record_served(0.01, Money::ZERO, true);
        let ledger = SloLedger::from_records(vec![both, clean]);
        assert_eq!(spend_cap_breaches(&ledger), 1);
        let lines = narrate_breaches(&ledger);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("tenant 3:"));
        assert!(lines[0].contains("p99 budget burned"));
        assert!(lines[0].contains("spend cap exceeded"));
    }

    #[test]
    fn narration_is_empty_when_contracts_hold() {
        let mut ok = record(0, Some(spec(10.0, Some(1000.0))));
        for _ in 0..50 {
            ok.record_served(0.01, Money::from_dollars(0.001), true);
        }
        let ledger = SloLedger::from_records(vec![ok]);
        assert!(narrate_breaches(&ledger).is_empty());
        assert_eq!(spend_cap_breaches(&ledger), 0);
    }
}
