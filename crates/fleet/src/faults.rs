//! The deterministic fault-injection plane.
//!
//! Every scenario the fleet measured before this module ran on
//! well-behaved nodes: the paper's economy prices graceful lifecycles —
//! boot capital (eq. 10), uptime rent (eq. 11), disk rent (eq. 13),
//! insolvency-driven retirement (footnote 3) — but no node was ever lost
//! involuntarily. A [`FaultPlan`] closes that gap declaratively:
//!
//! * **Crashes** remove a node at a configured instant, whatever its
//!   lifecycle phase (active, mid-boot, mid-drain). The crash *settles*
//!   the node's books at that instant — uptime and the exact disk
//!   byte-seconds integral are charged as usual — and the capital sunk
//!   into its structures (`build_spend`) is ledgered as a **write-off**:
//!   invested, never to earn again. In-flight backlog is re-queued onto
//!   the lowest-id routable survivor, scaled by a penalty.
//! * **Crash-and-recover** additionally journals every `(instant, query)`
//!   the doomed node serves and, at the recovery instant, replays that
//!   journal into a freshly built policy. Because `process_query` is a
//!   deterministic function of policy state and the `(query, time)`
//!   sequence, the replay must reproduce the crashed node's economics
//!   *exactly*; the reconciliation check cross-foots replayed payments,
//!   profit, cache hits, account balance, regret, and disk occupancy
//!   against the pre-crash snapshot and records any drift. The replayed
//!   span's disk rent was already settled at the crash, so the recovered
//!   policy's occupancy integral is re-based at the recovery instant
//!   (see `policies::CachePolicy::rebase_occupancy`).
//! * **Degradations** slow a node's delivered responses by a multiplier
//!   inside a window; with a timeout configured, quote rounds that pick
//!   a degraded node whose backlog exceeds the timeout re-route to the
//!   next-best candidate — or, with a [`RetryPolicy`] configured, run a
//!   deadline-budgeted retry loop with deterministic backoff charged
//!   against the query's remaining budget headroom.
//! * **Surges** (flash crowds) compress the arrival processes inside
//!   windows via `workload::SurgeOverlay`.
//! * **Fault groups** ([`FaultGroup`]) crash several nodes at one
//!   instant, rack-failure style; a [`CascadeSpec`] lets every crash
//!   raise per-survivor follow-on crash probability from the run's
//!   deterministic RNG, so cascades stay a pure function of config.
//! * **Evacuation** ([`crate::evacuate::EvacuateSpec`]): inside a
//!   planned-crash warning window (or on drain), profitable structures
//!   migrate to survivors at eq. 12's column-move price instead of being
//!   written off — salvaged capital + transfer spend + residual
//!   write-off reconcile exactly against the pre-fault invested capital.
//!
//! **Determinism stays the contract.** Faults are part of the config:
//! injection instants are simulated time, every decision is a pure
//! function of simulated state, and each cell applies the same plan to
//! its private fleet replica — so fault-injected runs remain bit-identical
//! across shard counts, quote-pool sizes, and completion paths
//! (`tests/fleet_faults.rs` and `bench --bin fleet_faults` pin this).
//!
//! Injection instants are processed when the first arrival at or after
//! them is served; instants past the run's last arrival never fire.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use cache::StructureKey;
use catalog::Schema;
use planner::PlannerContext;
use pricing::{Money, ResourceRates};
use serde::{Deserialize, Serialize};
use simcore::{SimRng, SimTime};
use simulator::make_policy;
use workload::Query;

use crate::elastic::NodePopulation;
use crate::evacuate::{
    evacuation_candidates, EvacuateRecord, EvacuateSpec, EvacuatedMove, RetryPolicy,
};
use crate::node::{CacheNode, NodeSpec};

/// Stream-domain separator folded into the run seed for cascade draws, so
/// the fault plane's RNG never collides with workload or tenant streams.
const CASCADE_STREAM_SALT: u64 = 0xFA17_CA5C_ADE0_0001;

/// One scheduled node crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Seed node id (index into `FleetConfig::nodes`) to crash.
    pub node: usize,
    /// Simulated instant of the crash, seconds.
    pub at_secs: f64,
    /// When set, a replacement node is reconstructed by ledger replay
    /// this many seconds after the crash.
    pub recover_after_secs: Option<f64>,
}

/// One rack-style correlated crash: several seed nodes lost at one
/// instant (compiled to per-node crash events sharing it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultGroup {
    /// Seed node ids lost together (non-empty, unique within the group).
    pub nodes: Vec<usize>,
    /// Simulated instant of the group crash, seconds.
    pub at_secs: f64,
    /// When set, every member is reconstructed by ledger replay this
    /// many seconds after the crash.
    pub recover_after_secs: Option<f64>,
}

/// Correlated follow-on crashes: every crash raises each survivor's
/// probability of crashing `delay_secs` later, drawn from the run's
/// deterministic RNG — a cascade is a pure function of the config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeSpec {
    /// Per-survivor follow-on crash probability after a depth-0 crash,
    /// in `[0, 1]`.
    pub probability: f64,
    /// Multiplier applied to the probability per cascade depth, in
    /// `(0, 1]` — depth `d` crashes propagate at `probability × decay^d`.
    pub decay: f64,
    /// Seconds between a crash and the follow-on crashes it triggers
    /// (> 0, so a cascade never re-enters the same instant).
    pub delay_secs: f64,
    /// Maximum cascade depth (≥ 1): depth-`max_depth` crashes trigger no
    /// further follow-ons.
    pub max_depth: u32,
}

impl CascadeSpec {
    /// Validates the spec (named-field error messages).
    ///
    /// # Errors
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.probability.is_finite() || !(0.0..=1.0).contains(&self.probability) {
            return Err(format!(
                "cascade.probability {} must be in [0, 1]",
                self.probability
            ));
        }
        if !self.decay.is_finite() || self.decay <= 0.0 || self.decay > 1.0 {
            return Err(format!("cascade.decay {} must be in (0, 1]", self.decay));
        }
        if !self.delay_secs.is_finite() || self.delay_secs <= 0.0 {
            return Err(format!(
                "cascade.delay_secs {} must be positive",
                self.delay_secs
            ));
        }
        if self.max_depth < 1 {
            return Err("cascade.max_depth must be at least 1".into());
        }
        Ok(())
    }
}

/// One scheduled degradation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeSpec {
    /// Seed node id to degrade.
    pub node: usize,
    /// Window start, seconds.
    pub from_secs: f64,
    /// Window end (exclusive), seconds.
    pub until_secs: f64,
    /// Response-time multiplier inside the window (≥ 1).
    pub slowdown: f64,
}

/// One flash-crowd surge window layered on every tenant's arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgeSpec {
    /// Surge start, seconds.
    pub at_secs: f64,
    /// Surge duration, seconds.
    pub duration_secs: f64,
    /// Arrival-density multiplier inside the window (≥ 1).
    pub boost: f64,
}

/// A declarative, validated fault plan — part of the fleet config, so a
/// faulted run stays a pure function of its config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled crashes (at most one per seed node, counting groups).
    pub crashes: Vec<CrashSpec>,
    /// Rack-style correlated crashes (share the one-crash-per-node rule
    /// with `crashes`).
    #[serde(default)]
    pub groups: Vec<FaultGroup>,
    /// Deterministic follow-on crash propagation layered on every crash.
    #[serde(default)]
    pub cascade: Option<CascadeSpec>,
    /// Capital-preserving evacuation of dying nodes (warning windows
    /// before planned crashes, optionally on drain).
    #[serde(default)]
    pub evacuation: Option<EvacuateSpec>,
    /// Deadline-budgeted retry for queries routed at degraded winners
    /// (replaces the single timeout re-route when set).
    #[serde(default)]
    pub retry: Option<RetryPolicy>,
    /// Scheduled degradation windows.
    pub degradations: Vec<DegradeSpec>,
    /// Flash-crowd surge windows.
    pub surges: Vec<SurgeSpec>,
    /// Fraction of a crashed node's outstanding backlog re-queued onto
    /// the lowest-id routable survivor (≥ 0; 1 transfers it whole, the
    /// excess over 1 modelling re-dispatch overhead).
    pub requeue_penalty: f64,
    /// Per-query timeout: a quote round whose winner is degraded *and*
    /// has at least this much outstanding backlog re-routes to the
    /// next-best node (0 disables).
    pub timeout_secs: f64,
    /// The horizon every instant in this plan must fall inside, seconds.
    /// Validation is against this declared horizon; instants the actual
    /// run never reaches simply never fire.
    pub horizon_secs: f64,
}

impl FaultPlan {
    /// An empty plan bounded by `horizon_secs`.
    #[must_use]
    pub fn new(horizon_secs: f64) -> Self {
        FaultPlan {
            crashes: Vec::new(),
            groups: Vec::new(),
            cascade: None,
            evacuation: None,
            retry: None,
            degradations: Vec::new(),
            surges: Vec::new(),
            requeue_penalty: 1.0,
            timeout_secs: 0.0,
            horizon_secs,
        }
    }

    /// Builder style: crash every node in `nodes` together at `at_secs`
    /// (rack failure), no recovery.
    #[must_use]
    pub fn with_group(mut self, nodes: Vec<usize>, at_secs: f64) -> Self {
        self.groups.push(FaultGroup {
            nodes,
            at_secs,
            recover_after_secs: None,
        });
        self
    }

    /// Builder style: deterministic follow-on crash propagation — every
    /// crash gives each survivor a `probability × decay^depth` chance of
    /// crashing `delay_secs` later, to at most `max_depth` generations.
    #[must_use]
    pub fn with_cascade(
        mut self,
        probability: f64,
        decay: f64,
        delay_secs: f64,
        max_depth: u32,
    ) -> Self {
        self.cascade = Some(CascadeSpec {
            probability,
            decay,
            delay_secs,
            max_depth,
        });
        self
    }

    /// Builder style: evacuate profitable structures off dying nodes,
    /// starting `warning_secs` before each planned crash (and on drain
    /// when `on_drain`).
    #[must_use]
    pub fn with_evacuation(mut self, warning_secs: f64, on_drain: bool) -> Self {
        self.evacuation = Some(EvacuateSpec {
            warning_secs,
            on_drain,
        });
        self
    }

    /// Builder style: deadline-budgeted retry for degraded winners.
    #[must_use]
    pub fn with_retry(
        mut self,
        max_attempts: u32,
        backoff_secs: f64,
        backoff_factor: f64,
        budget_decay: f64,
    ) -> Self {
        self.retry = Some(RetryPolicy {
            max_attempts,
            backoff_secs,
            backoff_factor,
            budget_decay,
        });
        self
    }

    /// Builder style: crash `node` at `at_secs`, no recovery.
    #[must_use]
    pub fn with_crash(mut self, node: usize, at_secs: f64) -> Self {
        self.crashes.push(CrashSpec {
            node,
            at_secs,
            recover_after_secs: None,
        });
        self
    }

    /// Builder style: crash `node` at `at_secs` and replay-recover it
    /// `recover_after_secs` later.
    #[must_use]
    pub fn with_crash_recover(
        mut self,
        node: usize,
        at_secs: f64,
        recover_after_secs: f64,
    ) -> Self {
        self.crashes.push(CrashSpec {
            node,
            at_secs,
            recover_after_secs: Some(recover_after_secs),
        });
        self
    }

    /// Builder style: degrade `node` over `[from_secs, until_secs)`.
    #[must_use]
    pub fn with_degrade(
        mut self,
        node: usize,
        from_secs: f64,
        until_secs: f64,
        slowdown: f64,
    ) -> Self {
        self.degradations.push(DegradeSpec {
            node,
            from_secs,
            until_secs,
            slowdown,
        });
        self
    }

    /// Builder style: a flash-crowd surge.
    #[must_use]
    pub fn with_surge(mut self, at_secs: f64, duration_secs: f64, boost: f64) -> Self {
        self.surges.push(SurgeSpec {
            at_secs,
            duration_secs,
            boost,
        });
        self
    }

    /// Builder style: per-query timeout for degraded winners.
    #[must_use]
    pub fn with_timeout(mut self, timeout_secs: f64) -> Self {
        self.timeout_secs = timeout_secs;
        self
    }

    /// Validates the plan against a fleet with `n_seed_nodes` seed nodes.
    ///
    /// # Errors
    /// Returns a named-field message for the first invalid entry:
    /// out-of-horizon instants, unknown node ids, duplicate crashes for
    /// one node (which is what an overlapping crash/recover window is —
    /// a crashed id never returns, its replacement gets a fresh id),
    /// overlapping degradation windows per node, and overlapping surges.
    pub fn validate(&self, n_seed_nodes: usize) -> Result<(), String> {
        if !self.horizon_secs.is_finite() || self.horizon_secs <= 0.0 {
            return Err("horizon_secs must be positive".into());
        }
        if !self.requeue_penalty.is_finite() || self.requeue_penalty < 0.0 {
            return Err("requeue_penalty must be non-negative".into());
        }
        if !self.timeout_secs.is_finite() || self.timeout_secs < 0.0 {
            return Err("timeout_secs must be non-negative (0 disables)".into());
        }
        let mut crashed = std::collections::HashSet::new();
        for (i, c) in self.crashes.iter().enumerate() {
            if c.node >= n_seed_nodes {
                return Err(format!(
                    "crashes[{i}].node {} is not a seed node (fleet has {n_seed_nodes})",
                    c.node
                ));
            }
            if !c.at_secs.is_finite() || c.at_secs <= 0.0 || c.at_secs >= self.horizon_secs {
                return Err(format!(
                    "crashes[{i}].at_secs {} must be within (0, horizon_secs)",
                    c.at_secs
                ));
            }
            if let Some(after) = c.recover_after_secs {
                if !after.is_finite() || after <= 0.0 {
                    return Err(format!(
                        "crashes[{i}].recover_after_secs {after} must be positive"
                    ));
                }
                if c.at_secs + after >= self.horizon_secs {
                    return Err(format!(
                        "crashes[{i}]: recovery at {} falls outside horizon_secs",
                        c.at_secs + after
                    ));
                }
            }
            if !crashed.insert(c.node) {
                return Err(format!(
                    "crashes[{i}].node {}: crash/recover windows overlap (one crash per node)",
                    c.node
                ));
            }
        }
        for (i, g) in self.groups.iter().enumerate() {
            if g.nodes.is_empty() {
                return Err(format!("groups[{i}].nodes must not be empty"));
            }
            if !g.at_secs.is_finite() || g.at_secs <= 0.0 || g.at_secs >= self.horizon_secs {
                return Err(format!(
                    "groups[{i}].at_secs {} must be within (0, horizon_secs)",
                    g.at_secs
                ));
            }
            if let Some(after) = g.recover_after_secs {
                if !after.is_finite() || after <= 0.0 {
                    return Err(format!(
                        "groups[{i}].recover_after_secs {after} must be positive"
                    ));
                }
                if g.at_secs + after >= self.horizon_secs {
                    return Err(format!(
                        "groups[{i}]: recovery at {} falls outside horizon_secs",
                        g.at_secs + after
                    ));
                }
            }
            for &node in &g.nodes {
                if node >= n_seed_nodes {
                    return Err(format!(
                        "groups[{i}].nodes: {node} is not a seed node (fleet has {n_seed_nodes})"
                    ));
                }
                if !crashed.insert(node) {
                    return Err(format!(
                        "groups[{i}].nodes: node {node} already crashes (one crash per node)"
                    ));
                }
            }
        }
        if crashed.len() >= n_seed_nodes {
            return Err("crashes must leave at least one seed node alive".into());
        }
        if let Some(c) = &self.cascade {
            c.validate()?;
        }
        if let Some(e) = &self.evacuation {
            e.validate()?;
        }
        if let Some(r) = &self.retry {
            r.validate()?;
        }
        for (i, d) in self.degradations.iter().enumerate() {
            if d.node >= n_seed_nodes {
                return Err(format!(
                    "degradations[{i}].node {} is not a seed node (fleet has {n_seed_nodes})",
                    d.node
                ));
            }
            if !d.from_secs.is_finite()
                || !d.until_secs.is_finite()
                || d.from_secs < 0.0
                || d.from_secs >= d.until_secs
                || d.until_secs > self.horizon_secs
            {
                return Err(format!(
                    "degradations[{i}]: window [{}, {}) must be non-empty within [0, horizon_secs]",
                    d.from_secs, d.until_secs
                ));
            }
            if !d.slowdown.is_finite() || d.slowdown < 1.0 {
                return Err(format!(
                    "degradations[{i}].slowdown {} must be at least 1",
                    d.slowdown
                ));
            }
            for (j, e) in self.degradations.iter().enumerate().take(i) {
                if e.node == d.node && d.from_secs < e.until_secs && e.from_secs < d.until_secs {
                    return Err(format!(
                        "degradations[{i}] overlaps degradations[{j}] on node {}",
                        d.node
                    ));
                }
            }
        }
        for (i, s) in self.surges.iter().enumerate() {
            if !s.at_secs.is_finite()
                || s.at_secs < 0.0
                || !s.duration_secs.is_finite()
                || s.duration_secs <= 0.0
                || s.at_secs + s.duration_secs > self.horizon_secs
            {
                return Err(format!(
                    "surges[{i}]: window [{}, {}) must be non-empty within [0, horizon_secs]",
                    s.at_secs,
                    s.at_secs + s.duration_secs
                ));
            }
            if !s.boost.is_finite() || s.boost < 1.0 {
                return Err(format!("surges[{i}].boost {} must be at least 1", s.boost));
            }
            for (j, p) in self.surges.iter().enumerate().take(i) {
                if s.at_secs < p.at_secs + p.duration_secs
                    && p.at_secs < s.at_secs + s.duration_secs
                {
                    return Err(format!("surges[{i}] overlaps surges[{j}]"));
                }
            }
        }
        Ok(())
    }

    /// The surge windows as sorted `(start, end, boost)` tuples — the
    /// form `workload::SurgeOverlay` consumes.
    #[must_use]
    pub fn surge_windows(&self) -> Vec<(f64, f64, f64)> {
        let mut w: Vec<(f64, f64, f64)> = self
            .surges
            .iter()
            .map(|s| (s.at_secs, s.at_secs + s.duration_secs, s.boost))
            .collect();
        w.sort_by(|a, b| a.0.total_cmp(&b.0));
        w
    }

    /// The degradation windows for one seed node, sorted `(from, until,
    /// slowdown)`.
    #[must_use]
    pub fn degrade_windows(&self, node: usize) -> Vec<(f64, f64, f64)> {
        let mut w: Vec<(f64, f64, f64)> = self
            .degradations
            .iter()
            .filter(|d| d.node == node)
            .map(|d| (d.from_secs, d.until_secs, d.slowdown))
            .collect();
        w.sort_by(|a, b| a.0.total_cmp(&b.0));
        w
    }
}

/// The lifecycle phase a node was in when it crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPhase {
    /// Booted, routable, serving traffic.
    Active,
    /// Spawned but the eq. 10 boot had not completed.
    MidBoot,
    /// Draining toward voluntary retirement when the crash pre-empted it.
    MidDrain,
}

impl CrashPhase {
    /// Stable lower-case label (explain output).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CrashPhase::Active => "active",
            CrashPhase::MidBoot => "mid-boot",
            CrashPhase::MidDrain => "mid-drain",
        }
    }
}

/// The settlement of one crash: what the node had earned, what it was
/// charged at the crash instant, and what capital was written off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecord {
    /// The crashed node's id.
    pub node: usize,
    /// Lifecycle phase at the crash instant.
    pub phase: CrashPhase,
    /// Queries the node had served.
    pub queries: u64,
    /// Payments it had collected.
    pub payments: Money,
    /// Profit it had accumulated.
    pub profit: Money,
    /// Operating cost settled at the crash instant — eq. 11 uptime and
    /// the eq. 13 disk byte-seconds integral, charged up to the instant.
    pub operating: Money,
    /// Invested build capital (structures + boot) written off as a loss
    /// — net of any capital evacuation moved to survivors first.
    pub write_off: Money,
    /// Capital evacuation preserved before this crash: moved invested
    /// capital minus the transfer spend (zero when nothing moved).
    #[serde(default)]
    pub salvaged: Money,
    /// Eq. 12 wire cost receivers paid for this node's evacuated
    /// structures. `write_off + salvaged + transfer_spend` equals the
    /// node's pre-fault invested capital exactly.
    #[serde(default)]
    pub transfer_spend: Money,
    /// Cascade generation: 0 for planned crashes, `d + 1` for crashes
    /// triggered by a depth-`d` crash.
    #[serde(default)]
    pub cascade_depth: u32,
    /// Cache disk occupied when the node died (bytes).
    pub disk_bytes: u64,
    /// Seconds of in-flight backlog re-queued (post-penalty).
    pub requeued_secs: f64,
    /// Survivor the backlog was re-queued onto (`None` if no routable
    /// node remained at the instant).
    pub requeued_to: Option<usize>,
    /// True when a replay-recovery is scheduled for this crash.
    pub recover_planned: bool,
}

/// Exact differences between a replayed ledger and the pre-crash
/// snapshot; all-zero when the recovery reconciled.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconcileDrift {
    /// Replayed − snapshot query count.
    pub queries: i64,
    /// Replayed − snapshot payments.
    pub payments: Money,
    /// Replayed − snapshot profit.
    pub profit: Money,
    /// Replayed − snapshot cache hits.
    pub cache_hits: i64,
    /// Replayed − snapshot account balance.
    pub balance: Money,
    /// Replayed − snapshot accrued regret.
    pub regret: Money,
    /// Replayed − snapshot disk occupancy (bytes).
    pub disk_bytes: i64,
}

impl ReconcileDrift {
    /// True when every component is exactly zero — the ledger replay
    /// reproduced the crashed node's economics bit for bit.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.queries == 0
            && self.payments == Money::ZERO
            && self.profit == Money::ZERO
            && self.cache_hits == 0
            && self.balance == Money::ZERO
            && self.regret == Money::ZERO
            && self.disk_bytes == 0
    }
}

/// One completed replay-recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverRecord {
    /// The node whose ledger was replayed.
    pub crashed: usize,
    /// The replacement node's fresh id.
    pub replacement: usize,
    /// Eq. 10 boot capital charged to the replacement.
    pub boot_cost: Money,
    /// When the replacement becomes routable, seconds.
    pub ready_at_secs: f64,
    /// Journal length replayed.
    pub replayed_queries: u64,
    /// Replay-vs-snapshot reconciliation result.
    pub drift: ReconcileDrift,
}

/// What one fault event did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// A node crashed and was settled.
    Crash(CrashRecord),
    /// A crashed node was reconstructed by ledger replay.
    Recover(RecoverRecord),
    /// A dying node's profitable structures migrated to survivors.
    Evacuate(EvacuateRecord),
}

/// One ledgered fault event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Cell the event fired in (each cell applies the plan to its own
    /// fleet replica).
    pub cell: usize,
    /// Simulated instant, seconds.
    pub at_secs: f64,
    /// What happened.
    pub event: FaultOutcome,
}

/// Mergeable rollup of one run's fault activity.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Crashes injected across cells.
    pub crashes: u64,
    /// Replay-recoveries completed across cells.
    pub recoveries: u64,
    /// Of those, recoveries whose reconciliation drift was exactly zero.
    pub reconciled: u64,
    /// Degraded-winner timeouts that re-routed a query.
    pub timeouts: u64,
    /// Build capital written off across all crashes (net of salvage).
    pub write_off: Money,
    /// Backlog seconds re-queued across all crashes (post-penalty).
    pub requeued_secs: f64,
    /// Evacuations executed (warning windows + drains with ≥ 1 move).
    #[serde(default)]
    pub evacuations: u64,
    /// Structures migrated to survivors across all evacuations.
    #[serde(default)]
    pub structures_moved: u64,
    /// Capital preserved by evacuation (moved invested − transfer spend).
    #[serde(default)]
    pub salvaged: Money,
    /// Eq. 12 wire cost receivers paid across all evacuations.
    #[serde(default)]
    pub transfer_spend: Money,
    /// Deadline-budgeted retries the router executed.
    #[serde(default)]
    pub retries: u64,
    /// Crashes triggered by cascade propagation (depth ≥ 1).
    #[serde(default)]
    pub cascade_crashes: u64,
    /// Deepest cascade generation reached (0 when no cascade fired).
    #[serde(default)]
    pub max_cascade_depth: u32,
    /// Every fault event, ascending `(cell, at_secs)` (cells fold in
    /// ascending order).
    pub records: Vec<FaultRecord>,
}

impl FaultSummary {
    /// Merges another cell's summary (callers merge in ascending cell
    /// order, keeping the records sorted and the floats bit-stable).
    pub fn merge(&mut self, other: &FaultSummary) {
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.reconciled += other.reconciled;
        self.timeouts += other.timeouts;
        self.write_off += other.write_off;
        self.requeued_secs += other.requeued_secs;
        self.evacuations += other.evacuations;
        self.structures_moved += other.structures_moved;
        self.salvaged += other.salvaged;
        self.transfer_spend += other.transfer_spend;
        self.retries += other.retries;
        self.cascade_crashes += other.cascade_crashes;
        self.max_cascade_depth = self.max_cascade_depth.max(other.max_cascade_depth);
        self.records.extend(other.records.iter().cloned());
    }
}

/// Pre-crash economics snapshot the recovery replay must reproduce.
struct CrashSnapshot {
    queries: u64,
    payments: Money,
    profit: Money,
    cache_hits: u64,
    balance: Money,
    regret: Money,
    disk_bytes: u64,
}

/// One replayable entry in a doomed node's settlement journal. Serves
/// and evacuation releases replay through the same deterministic policy
/// methods, so a recovered node reproduces the crashed node's economics
/// bit for bit even when evacuation moved structures out first.
enum JournalEntry {
    /// The node served `query` at the instant.
    Serve(SimTime, Query),
    /// Evacuation released this structure at the instant.
    Release(SimTime, StructureKey),
}

/// A compiled fault event awaiting its instant.
struct FaultEvent {
    at: f64,
    /// Evacuations order before crashes, crashes before recoveries on
    /// instant ties (rank 0 / 1 / 2), then by node id — a total,
    /// deterministic order.
    rank: u8,
    node: usize,
    recover_after: Option<f64>,
    /// Cascade generation (0 for planned events).
    depth: u32,
}

const RANK_EVACUATE: u8 = 0;
const RANK_CRASH: u8 = 1;
const RANK_RECOVER: u8 = 2;

/// One cell's fault-injection engine: the compiled event list, the
/// served-query journals of doomed nodes, and the fault ledger.
pub struct FaultInjector {
    cell: usize,
    timeout_secs: f64,
    requeue_penalty: f64,
    cascade: Option<CascadeSpec>,
    evacuation: Option<EvacuateSpec>,
    retry: Option<RetryPolicy>,
    /// Cascade draws: forked per cell from the run seed, consumed in the
    /// deterministic event order — a pure function of the config.
    rng: SimRng,
    events: Vec<FaultEvent>,
    next: usize,
    /// Nodes with a pending crash event (planned or cascade-scheduled):
    /// never evacuation receivers, never cascade re-targets.
    doomed: BTreeSet<usize>,
    /// Nodes already evacuated (a node evacuates at most once).
    evacuated: BTreeSet<usize>,
    /// Capital moved off each evacuated node pending its crash
    /// settlement: `(moved invested, transfer spend)`.
    salvage_pending: HashMap<usize, (Money, Money)>,
    /// Settlement journals, keyed by seed node id; only nodes with a
    /// scheduled recovery are journaled (keys are pre-seeded so the hot
    /// path is one hash probe).
    journals: HashMap<usize, Vec<JournalEntry>>,
    snapshots: HashMap<usize, CrashSnapshot>,
    specs: Vec<NodeSpec>,
    econ: econ::EconConfig,
    schema: Arc<Schema>,
    crashes: u64,
    recoveries: u64,
    reconciled: u64,
    timeouts: u64,
    write_off: Money,
    requeued_secs: f64,
    evacuations: u64,
    structures_moved: u64,
    salvaged: Money,
    transfer_spend: Money,
    retries: u64,
    cascade_crashes: u64,
    max_cascade_depth: u32,
    records: Vec<FaultRecord>,
}

impl FaultInjector {
    /// Compiles a validated plan for one cell of a fleet whose seed
    /// nodes are `specs`. `seed` is the run seed — cascade draws fork a
    /// per-cell stream off it, keeping faulted runs pure functions of
    /// their config.
    #[must_use]
    pub fn new(
        plan: &FaultPlan,
        specs: &[NodeSpec],
        econ: econ::EconConfig,
        schema: Arc<Schema>,
        cell: usize,
        seed: u64,
    ) -> Self {
        let mut events = Vec::new();
        let mut journals = HashMap::new();
        let mut doomed = BTreeSet::new();
        let planned: Vec<(usize, f64, Option<f64>)> = plan
            .crashes
            .iter()
            .map(|c| (c.node, c.at_secs, c.recover_after_secs))
            .chain(plan.groups.iter().flat_map(|g| {
                g.nodes
                    .iter()
                    .map(move |&n| (n, g.at_secs, g.recover_after_secs))
            }))
            .collect();
        for (node, at_secs, recover_after_secs) in planned {
            events.push(FaultEvent {
                at: at_secs,
                rank: RANK_CRASH,
                node,
                recover_after: recover_after_secs,
                depth: 0,
            });
            doomed.insert(node);
            if let Some(after) = recover_after_secs {
                events.push(FaultEvent {
                    at: at_secs + after,
                    rank: RANK_RECOVER,
                    node,
                    recover_after: None,
                    depth: 0,
                });
                journals.insert(node, Vec::new());
            }
            if let Some(evac) = &plan.evacuation {
                if evac.warning_secs > 0.0 {
                    // Never warn before half the crash instant — a plan
                    // whose warning window swallows the whole run would
                    // evacuate a node that has built nothing yet.
                    events.push(FaultEvent {
                        at: (at_secs - evac.warning_secs).max(at_secs * 0.5),
                        rank: RANK_EVACUATE,
                        node,
                        recover_after: None,
                        depth: 0,
                    });
                }
            }
        }
        events.sort_by(|a, b| {
            a.at.total_cmp(&b.at)
                .then(a.rank.cmp(&b.rank))
                .then(a.node.cmp(&b.node))
        });
        let mut root = SimRng::new(seed ^ CASCADE_STREAM_SALT);
        FaultInjector {
            cell,
            timeout_secs: plan.timeout_secs,
            requeue_penalty: plan.requeue_penalty,
            cascade: plan.cascade,
            evacuation: plan.evacuation,
            retry: plan.retry,
            rng: root.fork(cell as u64),
            events,
            next: 0,
            doomed,
            evacuated: BTreeSet::new(),
            salvage_pending: HashMap::new(),
            journals,
            snapshots: HashMap::new(),
            specs: specs.to_vec(),
            econ,
            schema,
            crashes: 0,
            recoveries: 0,
            reconciled: 0,
            timeouts: 0,
            write_off: Money::ZERO,
            requeued_secs: 0.0,
            evacuations: 0,
            structures_moved: 0,
            salvaged: Money::ZERO,
            transfer_spend: Money::ZERO,
            retries: 0,
            cascade_crashes: 0,
            max_cascade_depth: 0,
            records: Vec::new(),
        }
    }

    /// The per-query timeout for degraded winners (0 disables).
    #[must_use]
    pub fn timeout_secs(&self) -> f64 {
        self.timeout_secs
    }

    /// The deadline-budgeted retry policy, when the plan configured one.
    #[must_use]
    pub fn retry(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// The instant of the next unprocessed event, due or not (a
    /// scheduled recovery can end a total outage — the executor's
    /// outage wait advances queries to it).
    #[must_use]
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|e| SimTime::from_secs(e.at))
    }

    /// The instant of the next unprocessed event due at or before `now`.
    #[must_use]
    pub fn next_due(&self, now: SimTime) -> Option<SimTime> {
        self.events
            .get(self.next)
            .filter(|e| e.at <= now.as_secs())
            .map(|e| SimTime::from_secs(e.at))
    }

    /// Journals one served query for nodes awaiting recovery. Call after
    /// every serve with the winning node's id — a single hash probe for
    /// nodes that are not doomed.
    pub fn note_served(&mut self, node: usize, now: SimTime, query: &Query) {
        if let Some(journal) = self.journals.get_mut(&node) {
            journal.push(JournalEntry::Serve(now, query.clone()));
        }
    }

    /// Counts one degraded-winner timeout re-route.
    pub fn note_timeout(&mut self) {
        self.timeouts += 1;
    }

    /// Counts one deadline-budgeted retry.
    pub fn note_retry(&mut self) {
        self.retries += 1;
    }

    /// Processes the next due event (callers loop on [`Self::next_due`]).
    ///
    /// # Panics
    /// Panics if no event is pending (guard with [`Self::next_due`]).
    pub fn process_next(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        rates: &ResourceRates,
    ) {
        let event = &self.events[self.next];
        self.next += 1;
        let at = SimTime::from_secs(event.at);
        let node = event.node;
        let recover_after = event.recover_after;
        let depth = event.depth;
        match event.rank {
            RANK_EVACUATE => self.evacuate(pop, ctx, node, at, "warning"),
            RANK_CRASH => self.crash(pop, rates, node, at, recover_after.is_some(), depth),
            _ => self.recover(pop, ctx, node, at),
        }
    }

    /// Evacuates any nodes the elastic control plane has begun draining
    /// (voluntary retirement salvages capital the same way a planned
    /// crash's warning window does). Call after controller reviews; a
    /// deterministic no-op unless the plan enables drain evacuation.
    pub fn sweep_draining(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        now: SimTime,
    ) {
        if !self.evacuation.is_some_and(|e| e.on_drain) {
            return;
        }
        let mut draining: Vec<usize> = pop
            .live()
            .iter()
            .filter(|n| n.drain_since().is_some() && !self.evacuated.contains(&n.id()))
            .map(CacheNode::id)
            .collect();
        draining.sort_unstable();
        for node in draining {
            self.evacuate(pop, ctx, node, now, "drain");
        }
    }

    /// Moves the profitable structures of dying node `node` to survivors
    /// at eq. 12's column-move price. Ranked best value-per-byte first;
    /// each structure goes to the lowest-id routable survivor that can
    /// afford the transfer and does not already hold it. A node
    /// evacuates at most once; nodes without an economy (or already
    /// retired) are deterministic no-ops.
    ///
    /// The victim deliberately *stays in rotation* after a `"warning"`
    /// evacuation — draining it would make the elastic control plane
    /// spawn replacements that become fodder for cascade follow-ons, so
    /// the evacuated and written-off runs would no longer see the same
    /// fault energy — but its **investment scan is frozen**: a build
    /// started inside the warning window dies unamortized at the crash,
    /// so without the freeze the victim immediately rebuilds the hot
    /// structures it just shipped out and the rebuilt capital lands in
    /// the write-off anyway.
    fn evacuate(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        node: usize,
        at: SimTime,
        reason: &str,
    ) {
        if !self.evacuated.insert(node) {
            return;
        }
        let Some(vidx) = pop.live().iter().position(|n| n.id() == node) else {
            return;
        };
        if reason == "warning" {
            if let Some(m) = pop.live_mut()[vidx].economy_mut() {
                m.freeze_investment();
            }
        }
        let candidates = match pop.live()[vidx].economy() {
            Some(m) => evacuation_candidates(m, ctx.estimator, at),
            None => return,
        };
        let mut moves = Vec::new();
        let mut moved_invested = Money::ZERO;
        let mut moved_transfer = Money::ZERO;
        for cand in candidates {
            // Lowest-id routable survivor that can take the structure:
            // not dying itself, economy-backed, absent the key, solvent
            // enough to withdraw the transfer price as investment.
            let receiver = pop
                .live()
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    n.id() != node
                        && n.routable(at)
                        && !self.doomed.contains(&n.id())
                        && n.economy().is_some_and(|m| {
                            !m.cache().contains(cand.key) && m.account().can_afford(cand.transfer)
                        })
                })
                .min_by_key(|(_, n)| n.id());
            let Some((ridx, _)) = receiver else { continue };
            let to = pop.live()[ridx].id();
            let removed = pop.live_mut()[vidx]
                .economy_mut()
                .and_then(|m| m.evacuate_release(cand.key, at));
            if removed.is_none() {
                continue;
            }
            let received = pop.live_mut()[ridx].economy_mut().is_some_and(|m| {
                m.evacuate_receive(
                    cand.key,
                    cand.size_bytes,
                    cand.transfer,
                    cand.transfer_time,
                    at,
                    ctx.estimator,
                )
            });
            debug_assert!(received, "receiver eligibility was checked before release");
            pop.live_mut()[ridx].book_transfer(cand.transfer);
            if let Some(journal) = self.journals.get_mut(&node) {
                journal.push(JournalEntry::Release(at, cand.key));
            }
            moved_invested += cand.invested;
            moved_transfer += cand.transfer;
            moves.push(EvacuatedMove {
                key: cand.key.to_string(),
                bytes: cand.size_bytes,
                invested: cand.invested,
                transfer: cand.transfer,
                to,
            });
        }
        if moves.is_empty() {
            return;
        }
        let salvaged = moved_invested - moved_transfer;
        self.evacuations += 1;
        self.structures_moved += moves.len() as u64;
        self.salvaged += salvaged;
        self.transfer_spend += moved_transfer;
        self.salvage_pending
            .insert(node, (moved_invested, moved_transfer));
        self.records.push(FaultRecord {
            cell: self.cell,
            at_secs: at.as_secs(),
            event: FaultOutcome::Evacuate(EvacuateRecord {
                node,
                reason: reason.to_string(),
                structures_moved: moves.len() as u64,
                salvaged,
                transfer_spend: moved_transfer,
                moves,
            }),
        });
    }

    /// Crashes node `node` at `at`: settle, write off (net of salvage),
    /// re-queue, and schedule cascade follow-ons. A node the control
    /// plane already retired is a deterministic no-op.
    fn crash(
        &mut self,
        pop: &mut NodePopulation,
        rates: &ResourceRates,
        node: usize,
        at: SimTime,
        recover_planned: bool,
        depth: u32,
    ) {
        self.doomed.remove(&node);
        let Some(idx) = pop.live().iter().position(|n| n.id() == node) else {
            // Already drained and retired by the elastic control plane —
            // nothing left to crash (and nothing to recover later).
            self.journals.remove(&node);
            self.salvage_pending.remove(&node);
            return;
        };
        let live = &pop.live()[idx];
        let phase = if live.drain_since().is_some() {
            CrashPhase::MidDrain
        } else if at < live.ready_at() {
            CrashPhase::MidBoot
        } else {
            CrashPhase::Active
        };
        let outstanding = live.outstanding(at);
        let (balance, regret) = live
            .economy()
            .map(|m| (m.account().balance(), m.regret().total()))
            .unwrap_or((Money::ZERO, Money::ZERO));

        let (id, run) = pop.crash(idx, rates, at);
        debug_assert_eq!(id, node);
        // Evacuation already moved part of the invested capital to
        // survivors; only the residual is lost. The identity
        // `write_off + salvaged + transfer_spend == build_spend` (the
        // pre-fault invested capital) holds exactly, in nanodollars.
        let (moved_invested, moved_transfer) = self
            .salvage_pending
            .remove(&node)
            .unwrap_or((Money::ZERO, Money::ZERO));
        let write_off = run.build_spend - moved_invested;
        if recover_planned {
            self.snapshots.insert(
                node,
                CrashSnapshot {
                    queries: run.queries,
                    payments: run.payments,
                    profit: run.profit,
                    cache_hits: run.cache_hits,
                    balance,
                    regret,
                    disk_bytes: run.final_disk_bytes,
                },
            );
        }
        let record = CrashRecord {
            node,
            phase,
            queries: run.queries,
            payments: run.payments,
            profit: run.profit,
            operating: run.operating.total(),
            write_off,
            salvaged: moved_invested - moved_transfer,
            transfer_spend: moved_transfer,
            cascade_depth: depth,
            disk_bytes: run.final_disk_bytes,
            requeued_secs: 0.0,
            requeued_to: None,
            recover_planned,
        };

        // Deterministic re-queue: the lowest-id routable survivor absorbs
        // the dead node's in-flight work, scaled by the penalty.
        let requeue = outstanding * self.requeue_penalty;
        let mut record = record;
        if requeue > 0.0 {
            let survivor = pop
                .live_mut()
                .iter_mut()
                .filter(|n| n.routable(at))
                .min_by_key(|n| n.id());
            if let Some(survivor) = survivor {
                survivor.add_backlog(at, requeue);
                record.requeued_secs = requeue;
                record.requeued_to = Some(survivor.id());
                self.requeued_secs += requeue;
            }
        }
        self.crashes += 1;
        self.write_off += write_off;
        if depth > 0 {
            self.cascade_crashes += 1;
            self.max_cascade_depth = self.max_cascade_depth.max(depth);
        }
        self.records.push(FaultRecord {
            cell: self.cell,
            at_secs: at.as_secs(),
            event: FaultOutcome::Crash(record),
        });
        self.schedule_cascade(pop, at, depth);
    }

    /// Draws follow-on crashes for the survivors of a depth-`depth`
    /// crash. Survivors are visited in ascending node-id order and the
    /// RNG is consumed once per eligible survivor, so the cascade is a
    /// pure function of the config; at least one non-doomed node is
    /// always left standing, and cascade crashes get no recovery (nobody
    /// planned for them) and no warning window (nobody saw them coming).
    fn schedule_cascade(&mut self, pop: &NodePopulation, at: SimTime, depth: u32) {
        let Some(cascade) = self.cascade else { return };
        if depth >= cascade.max_depth {
            return;
        }
        let p = cascade.probability * cascade.decay.powi(depth as i32);
        if p <= 0.0 {
            return;
        }
        let mut survivors: Vec<usize> = pop.live().iter().map(CacheNode::id).collect();
        survivors.sort_unstable();
        let mut standing = survivors
            .iter()
            .filter(|id| !self.doomed.contains(id))
            .count();
        let follow_at = at.as_secs() + cascade.delay_secs;
        for id in survivors {
            if standing <= 1 {
                break;
            }
            if self.doomed.contains(&id) {
                continue;
            }
            if !self.rng.gen_bool(p) {
                continue;
            }
            let event = FaultEvent {
                at: follow_at,
                rank: RANK_CRASH,
                node: id,
                recover_after: None,
                depth: depth + 1,
            };
            let pos = self.events[self.next..]
                .iter()
                .position(|e| {
                    follow_at
                        .total_cmp(&e.at)
                        .then(RANK_CRASH.cmp(&e.rank))
                        .then(id.cmp(&e.node))
                        .is_lt()
                })
                .map_or(self.events.len(), |p| self.next + p);
            self.events.insert(pos, event);
            self.doomed.insert(id);
            standing -= 1;
        }
    }

    /// Reconstructs crashed node `node` at `at` by replaying its journal
    /// into a fresh policy, reconciling against the pre-crash snapshot,
    /// and booting the replacement.
    fn recover(
        &mut self,
        pop: &mut NodePopulation,
        ctx: &PlannerContext<'_>,
        node: usize,
        at: SimTime,
    ) {
        let Some(snapshot) = self.snapshots.remove(&node) else {
            return; // the crash itself was a no-op
        };
        let journal = self.journals.remove(&node).unwrap_or_default();

        let mut policy = make_policy(&self.specs[node].scheme, &self.schema, &self.econ);
        let mut payments = Money::ZERO;
        let mut profit = Money::ZERO;
        let mut cache_hits = 0u64;
        let mut replayed = 0u64;
        for entry in &journal {
            match entry {
                JournalEntry::Serve(t, q) => {
                    let o = policy.process_query(ctx, q, *t);
                    payments += o.payment;
                    profit += o.profit;
                    cache_hits += u64::from(o.ran_in_cache);
                    replayed += 1;
                }
                // Evacuation releases replay through the same method the
                // live node used, so the replayed cache and regret ledger
                // land exactly where the snapshot left them.
                JournalEntry::Release(t, key) => {
                    if let Some(m) = policy.economy_mut() {
                        let _ = m.evacuate_release(*key, *t);
                    }
                }
            }
        }
        let (balance, regret) = policy
            .economy()
            .map(|m| (m.account().balance(), m.regret().total()))
            .unwrap_or((Money::ZERO, Money::ZERO));
        let drift = ReconcileDrift {
            queries: replayed as i64 - snapshot.queries as i64,
            payments: payments - snapshot.payments,
            profit: profit - snapshot.profit,
            cache_hits: cache_hits as i64 - snapshot.cache_hits as i64,
            balance: balance - snapshot.balance,
            regret: regret - snapshot.regret,
            disk_bytes: policy.disk_used() as i64 - snapshot.disk_bytes as i64,
        };
        // The replayed span's disk rent was settled when the crashed
        // node's books closed; the replacement pays rent from here on.
        policy.rebase_occupancy(at);

        let (boot_cost, boot_time) = ctx.estimator.build_node();
        let replacement = pop.next_id();
        let ready_at = at + boot_time;
        let fresh = CacheNode::from_policy(replacement, policy, at, ready_at, boot_cost);
        pop.admit(fresh, at);

        self.recoveries += 1;
        if drift.is_zero() {
            self.reconciled += 1;
        }
        self.records.push(FaultRecord {
            cell: self.cell,
            at_secs: at.as_secs(),
            event: FaultOutcome::Recover(RecoverRecord {
                crashed: node,
                replacement,
                boot_cost,
                ready_at_secs: ready_at.as_secs(),
                replayed_queries: replayed,
                drift,
            }),
        });
    }

    /// The fault ledger so far (the executor's flight recorder diffs this
    /// to fold new records into the trace stream).
    #[must_use]
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Capital written off so far, net of salvage (the health plane's
    /// vitals snapshots sample this mid-run).
    #[must_use]
    pub fn write_off_so_far(&self) -> Money {
        self.write_off
    }

    /// Consumes the injector into the cell's summary.
    #[must_use]
    pub fn into_summary(self) -> FaultSummary {
        FaultSummary {
            crashes: self.crashes,
            recoveries: self.recoveries,
            reconciled: self.reconciled,
            timeouts: self.timeouts,
            write_off: self.write_off,
            requeued_secs: self.requeued_secs,
            evacuations: self.evacuations,
            structures_moved: self.structures_moved,
            salvaged: self.salvaged,
            transfer_spend: self.transfer_spend,
            retries: self.retries,
            cascade_crashes: self.cascade_crashes,
            max_cascade_depth: self.max_cascade_depth,
            records: self.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(100.0)
    }

    #[test]
    fn empty_plan_validates() {
        assert!(plan().validate(3).is_ok());
    }

    #[test]
    fn crash_fields_are_validated_by_name() {
        let err = plan().with_crash(5, 10.0).validate(3).unwrap_err();
        assert!(err.contains("crashes[0].node"), "{err}");

        let err = plan().with_crash(0, 100.0).validate(3).unwrap_err();
        assert!(err.contains("crashes[0].at_secs"), "{err}");

        let err = plan().with_crash(0, 0.0).validate(3).unwrap_err();
        assert!(err.contains("crashes[0].at_secs"), "{err}");

        let err = plan()
            .with_crash_recover(0, 10.0, -1.0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("crashes[0].recover_after_secs"), "{err}");

        let err = plan()
            .with_crash_recover(0, 60.0, 50.0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("outside horizon"), "{err}");
    }

    #[test]
    fn overlapping_crash_recover_windows_are_rejected() {
        let err = plan()
            .with_crash_recover(1, 10.0, 20.0)
            .with_crash(1, 40.0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("crashes[1].node 1"), "{err}");
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn crashing_every_seed_node_is_rejected() {
        let err = plan()
            .with_crash(0, 10.0)
            .with_crash(1, 20.0)
            .validate(2)
            .unwrap_err();
        assert!(err.contains("at least one seed node"), "{err}");
    }

    #[test]
    fn degrade_fields_are_validated_by_name() {
        let err = plan()
            .with_degrade(7, 0.0, 10.0, 2.0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("degradations[0].node"), "{err}");

        let err = plan()
            .with_degrade(0, 10.0, 10.0, 2.0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("degradations[0]"), "{err}");

        let err = plan()
            .with_degrade(0, 0.0, 10.0, 0.5)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("degradations[0].slowdown"), "{err}");

        let err = plan()
            .with_degrade(0, 0.0, 10.0, 2.0)
            .with_degrade(0, 5.0, 15.0, 3.0)
            .validate(3)
            .unwrap_err();
        assert!(
            err.contains("degradations[1] overlaps degradations[0]"),
            "{err}"
        );

        // Same windows on different nodes do not overlap.
        assert!(plan()
            .with_degrade(0, 0.0, 10.0, 2.0)
            .with_degrade(1, 5.0, 15.0, 3.0)
            .validate(3)
            .is_ok());
    }

    #[test]
    fn surge_fields_are_validated_by_name() {
        let err = plan().with_surge(90.0, 20.0, 2.0).validate(3).unwrap_err();
        assert!(err.contains("surges[0]"), "{err}");

        let err = plan().with_surge(0.0, 10.0, 0.9).validate(3).unwrap_err();
        assert!(err.contains("surges[0].boost"), "{err}");

        let err = plan()
            .with_surge(0.0, 10.0, 2.0)
            .with_surge(5.0, 10.0, 2.0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("surges[1] overlaps surges[0]"), "{err}");
    }

    #[test]
    fn scalar_fields_are_validated() {
        let mut p = plan();
        p.requeue_penalty = -1.0;
        assert!(p.validate(3).unwrap_err().contains("requeue_penalty"));

        let mut p = plan();
        p.timeout_secs = f64::NAN;
        assert!(p.validate(3).unwrap_err().contains("timeout_secs"));

        let p = FaultPlan::new(0.0);
        assert!(p.validate(3).unwrap_err().contains("horizon_secs"));
    }

    #[test]
    fn window_accessors_are_sorted() {
        let p = plan()
            .with_degrade(0, 50.0, 60.0, 2.0)
            .with_degrade(0, 10.0, 20.0, 3.0)
            .with_surge(40.0, 10.0, 2.0)
            .with_surge(5.0, 10.0, 4.0);
        assert_eq!(
            p.degrade_windows(0),
            vec![(10.0, 20.0, 3.0), (50.0, 60.0, 2.0)]
        );
        assert!(p.degrade_windows(1).is_empty());
        assert_eq!(p.surge_windows(), vec![(5.0, 15.0, 4.0), (40.0, 50.0, 2.0)]);
    }

    #[test]
    fn drift_zero_detection() {
        assert!(ReconcileDrift::default().is_zero());
        let d = ReconcileDrift {
            balance: Money::from_dollars(1e-9),
            ..ReconcileDrift::default()
        };
        assert!(!d.is_zero());
    }

    #[test]
    fn summary_merge_accumulates() {
        let record = |cell: usize| FaultRecord {
            cell,
            at_secs: 10.0,
            event: FaultOutcome::Crash(CrashRecord {
                node: 0,
                phase: CrashPhase::Active,
                queries: 5,
                payments: Money::from_dollars(1.0),
                profit: Money::from_dollars(0.1),
                operating: Money::from_dollars(0.5),
                write_off: Money::from_dollars(0.2),
                salvaged: Money::from_dollars(0.05),
                transfer_spend: Money::from_dollars(0.01),
                cascade_depth: 1,
                disk_bytes: 1024,
                requeued_secs: 0.5,
                requeued_to: Some(1),
                recover_planned: false,
            }),
        };
        let mut a = FaultSummary {
            crashes: 1,
            recoveries: 0,
            reconciled: 0,
            timeouts: 2,
            write_off: Money::from_dollars(0.2),
            requeued_secs: 0.5,
            evacuations: 1,
            structures_moved: 3,
            salvaged: Money::from_dollars(0.05),
            transfer_spend: Money::from_dollars(0.01),
            retries: 4,
            cascade_crashes: 1,
            max_cascade_depth: 1,
            records: vec![record(0)],
        };
        let b = FaultSummary {
            crashes: 1,
            recoveries: 1,
            reconciled: 1,
            timeouts: 0,
            write_off: Money::from_dollars(0.3),
            requeued_secs: 0.25,
            evacuations: 2,
            structures_moved: 1,
            salvaged: Money::from_dollars(0.02),
            transfer_spend: Money::from_dollars(0.005),
            retries: 1,
            cascade_crashes: 2,
            max_cascade_depth: 2,
            records: vec![record(1)],
        };
        a.merge(&b);
        assert_eq!(a.crashes, 2);
        assert_eq!(a.recoveries, 1);
        assert_eq!(a.reconciled, 1);
        assert_eq!(a.timeouts, 2);
        assert_eq!(a.write_off, Money::from_dollars(0.5));
        assert!((a.requeued_secs - 0.75).abs() < 1e-12);
        assert_eq!(a.evacuations, 3);
        assert_eq!(a.structures_moved, 4);
        assert_eq!(a.salvaged, Money::from_dollars(0.07));
        assert_eq!(a.transfer_spend, Money::from_dollars(0.015));
        assert_eq!(a.retries, 5);
        assert_eq!(a.cascade_crashes, 3);
        assert_eq!(a.max_cascade_depth, 2, "depth merges via max, not sum");
        let cells: Vec<usize> = a.records.iter().map(|r| r.cell).collect();
        assert_eq!(cells, vec![0, 1]);
    }

    #[test]
    fn summary_roundtrips_serde() {
        let summary = FaultSummary {
            crashes: 1,
            recoveries: 1,
            reconciled: 1,
            timeouts: 3,
            write_off: Money::from_dollars(0.125),
            requeued_secs: 1.5,
            evacuations: 1,
            structures_moved: 2,
            salvaged: Money::from_dollars(0.04),
            transfer_spend: Money::from_dollars(0.002),
            retries: 6,
            cascade_crashes: 1,
            max_cascade_depth: 1,
            records: vec![
                FaultRecord {
                    cell: 2,
                    at_secs: 28.0,
                    event: FaultOutcome::Evacuate(EvacuateRecord {
                        node: 1,
                        reason: "warning".into(),
                        structures_moved: 2,
                        salvaged: Money::from_dollars(0.04),
                        transfer_spend: Money::from_dollars(0.002),
                        moves: vec![EvacuatedMove {
                            key: "column:3".into(),
                            bytes: 4096,
                            invested: Money::from_dollars(0.03),
                            transfer: Money::from_dollars(0.001),
                            to: 0,
                        }],
                    }),
                },
                FaultRecord {
                    cell: 2,
                    at_secs: 30.0,
                    event: FaultOutcome::Recover(RecoverRecord {
                        crashed: 1,
                        replacement: 4,
                        boot_cost: Money::from_dollars(0.01),
                        ready_at_secs: 32.5,
                        replayed_queries: 17,
                        drift: ReconcileDrift::default(),
                    }),
                },
            ],
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: FaultSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn old_summaries_without_salvage_fields_still_deserialize() {
        // A PR-7-era summary predates the evacuation/cascade fields;
        // serde defaults must fill them so committed benches stay
        // readable.
        let json = r#"{"crashes":1,"recoveries":0,"reconciled":0,"timeouts":0,
            "write_off":250,"requeued_secs":0.5,"records":[]}"#;
        let back: FaultSummary = serde_json::from_str(json).unwrap();
        assert_eq!(back.salvaged, Money::ZERO);
        assert_eq!(back.retries, 0);
        assert_eq!(back.max_cascade_depth, 0);
    }

    #[test]
    fn group_and_cascade_fields_are_validated_by_name() {
        let err = plan().with_group(vec![], 10.0).validate(3).unwrap_err();
        assert!(err.contains("groups[0].nodes"), "{err}");

        let err = plan().with_group(vec![0, 5], 10.0).validate(3).unwrap_err();
        assert!(err.contains("groups[0].nodes: 5"), "{err}");

        let err = plan().with_group(vec![0, 0], 10.0).validate(3).unwrap_err();
        assert!(err.contains("already crashes"), "{err}");

        let err = plan()
            .with_crash(1, 20.0)
            .with_group(vec![1, 2], 10.0)
            .validate(4)
            .unwrap_err();
        assert!(err.contains("already crashes"), "{err}");

        let err = plan()
            .with_group(vec![0, 1, 2], 10.0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("at least one seed node"), "{err}");

        let err = plan()
            .with_cascade(1.5, 0.5, 30.0, 2)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("cascade.probability"), "{err}");

        let err = plan()
            .with_cascade(0.5, 0.0, 30.0, 2)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("cascade.decay"), "{err}");

        let err = plan()
            .with_cascade(0.5, 0.5, 0.0, 2)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("cascade.delay_secs"), "{err}");

        let err = plan()
            .with_cascade(0.5, 0.5, 30.0, 0)
            .validate(3)
            .unwrap_err();
        assert!(err.contains("cascade.max_depth"), "{err}");

        let err = plan().with_evacuation(-1.0, true).validate(3).unwrap_err();
        assert!(err.contains("evacuation.warning_secs"), "{err}");

        let err = plan().with_retry(0, 1.0, 2.0, 0.5).validate(3).unwrap_err();
        assert!(err.contains("retry.max_attempts"), "{err}");

        assert!(plan()
            .with_group(vec![0, 1], 10.0)
            .with_cascade(0.5, 0.5, 30.0, 2)
            .with_evacuation(5.0, true)
            .with_retry(3, 1.0, 2.0, 0.5)
            .validate(3)
            .is_ok());
    }

    #[test]
    fn warning_events_compile_before_their_crashes() {
        let p = plan()
            .with_crash(0, 40.0)
            .with_group(vec![1], 8.0)
            .with_evacuation(10.0, false);
        let schema =
            std::sync::Arc::new(catalog::tpch::tpch_schema(catalog::tpch::ScaleFactor(1.0)));
        let specs = vec![
            NodeSpec::new(simulator::Scheme::EconCheap),
            NodeSpec::new(simulator::Scheme::EconCheap),
            NodeSpec::new(simulator::Scheme::EconCheap),
        ];
        let inj = FaultInjector::new(&p, &specs, econ::EconConfig::default(), schema, 0, 7);
        let order: Vec<(f64, u8, usize)> =
            inj.events.iter().map(|e| (e.at, e.rank, e.node)).collect();
        // Node 1's warning clamps to half its crash instant (8 − 10 < 4);
        // node 0 warns the full 10 s ahead.
        assert_eq!(
            order,
            vec![(4.0, 0, 1), (8.0, 1, 1), (30.0, 0, 0), (40.0, 1, 0)]
        );
    }

    #[test]
    fn event_order_is_crash_before_recover_then_by_node() {
        let p = plan()
            .with_crash_recover(1, 10.0, 5.0)
            .with_crash(2, 15.0)
            .with_crash(0, 10.0);
        let schema =
            std::sync::Arc::new(catalog::tpch::tpch_schema(catalog::tpch::ScaleFactor(1.0)));
        let specs = vec![
            NodeSpec::new(simulator::Scheme::EconCheap),
            NodeSpec::new(simulator::Scheme::EconCheap),
            NodeSpec::new(simulator::Scheme::EconCheap),
        ];
        let inj = FaultInjector::new(&p, &specs, econ::EconConfig::default(), schema, 0, 42);
        let order: Vec<(f64, u8, usize)> =
            inj.events.iter().map(|e| (e.at, e.rank, e.node)).collect();
        assert_eq!(
            order,
            vec![(10.0, 1, 0), (10.0, 1, 1), (15.0, 1, 2), (15.0, 2, 1)]
        );
        assert_eq!(inj.next_due(SimTime::from_secs(9.0)), None);
        assert_eq!(
            inj.next_due(SimTime::from_secs(12.0)),
            Some(SimTime::from_secs(10.0))
        );
    }
}
