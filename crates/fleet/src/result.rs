//! Mergeable fleet accounting: per-tenant and per-node rollups.
//!
//! Every measurement a fleet run produces supports `merge()`, because the
//! sharded executor produces one partial result per cell and folds them —
//! always in ascending cell order, so the floating-point statistics are a
//! deterministic function of the cell partition alone, never of how many
//! worker threads happened to run (see `crate::exec`). Money is exact
//! fixed-point, so its sums are invariant under *any* merge order.

use metrics::{CostBreakdown, LogHistogram, StreamingStats};
use pricing::Money;
use serde::{Deserialize, Serialize};
use simulator::RunResult;
use telemetry::{HealthSeries, SloLedger};

use crate::elastic::ElasticSummary;
use crate::faults::FaultSummary;
use crate::tenant::TenantId;

/// What one tenant experienced over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant identity.
    pub tenant: TenantId,
    /// Queries this tenant had served.
    pub queries: u64,
    /// Response times this tenant observed (seconds).
    pub response: StreamingStats,
    /// What this tenant paid the fleet.
    pub payments: Money,
    /// Of this tenant's queries, how many ran in a cache.
    pub cache_hits: u64,
}

impl TenantStats {
    /// Empty stats for a tenant.
    #[must_use]
    pub fn new(tenant: TenantId) -> Self {
        TenantStats {
            tenant,
            queries: 0,
            response: StreamingStats::new(),
            payments: Money::ZERO,
            cache_hits: 0,
        }
    }

    /// Merges another partial for the *same* tenant.
    ///
    /// # Panics
    /// Panics if the tenant identities differ.
    pub fn merge(&mut self, other: &TenantStats) {
        assert_eq!(self.tenant, other.tenant, "cannot merge different tenants");
        self.queries += other.queries;
        self.response.merge(&other.response);
        self.payments += other.payments;
        self.cache_hits += other.cache_hits;
    }
}

/// One cache node's accounting, rolled up across cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node index within the fleet.
    pub node: usize,
    /// Scheme the node runs (`econ-cheap`, `bypass`, …).
    pub scheme: String,
    /// Queries routed to this node.
    pub queries: u64,
    /// Response times this node delivered (seconds).
    pub response: StreamingStats,
    /// Per-resource operating cost booked against this node.
    pub operating: CostBreakdown,
    /// Structure-build spending.
    pub build_spend: Money,
    /// User payments this node collected.
    pub payments: Money,
    /// Profit this node accumulated.
    pub profit: Money,
    /// Queries answered in this node's cache.
    pub cache_hits: u64,
    /// Structures built.
    pub investments: u64,
    /// Structures evicted / failed.
    pub evictions: u64,
    /// Cache disk occupied at the end of the run, summed over cells.
    pub final_disk_bytes: u64,
}

impl NodeStats {
    /// Seeds node stats from one cell's per-node run result.
    #[must_use]
    pub fn from_run(node: usize, run: &RunResult) -> Self {
        NodeStats {
            node,
            scheme: run.scheme.clone(),
            queries: run.queries,
            response: run.response.clone(),
            operating: run.operating,
            build_spend: run.build_spend,
            payments: run.payments,
            profit: run.profit,
            cache_hits: run.cache_hits,
            investments: run.investments,
            evictions: run.evictions,
            final_disk_bytes: run.final_disk_bytes,
        }
    }

    /// Merges the same node's partial from another cell.
    ///
    /// # Panics
    /// Panics if node index or scheme differ.
    pub fn merge(&mut self, other: &NodeStats) {
        assert_eq!(self.node, other.node, "cannot merge different nodes");
        assert_eq!(
            self.scheme, other.scheme,
            "node scheme changed between cells"
        );
        self.queries += other.queries;
        self.response.merge(&other.response);
        self.operating.merge(&other.operating);
        self.build_spend += other.build_spend;
        self.payments += other.payments;
        self.profit += other.profit;
        self.cache_hits += other.cache_hits;
        self.investments += other.investments;
        self.evictions += other.evictions;
        self.final_disk_bytes += other.final_disk_bytes;
    }

    /// Total operating cost of this node (execution + infrastructure +
    /// builds).
    #[must_use]
    pub fn total_operating_cost(&self) -> Money {
        self.operating.total() + self.build_spend
    }
}

/// Everything measured over one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// Routing strategy name.
    pub router: String,
    /// Number of cells the tenant population was partitioned into.
    pub cells: usize,
    /// Queries served fleet-wide.
    pub queries: u64,
    /// Latest arrival across cells (seconds) — the run horizon.
    pub horizon_secs: f64,
    /// Fleet-wide response-time statistics (seconds).
    pub response: StreamingStats,
    /// Fleet-wide response-time histogram.
    pub response_hist: LogHistogram,
    /// Fleet-wide per-resource operating cost.
    pub operating: CostBreakdown,
    /// Fleet-wide structure-build spending.
    pub build_spend: Money,
    /// User payments collected fleet-wide.
    pub payments: Money,
    /// Cloud profit fleet-wide.
    pub profit: Money,
    /// Queries answered in a cache.
    pub cache_hits: u64,
    /// Structures built fleet-wide.
    pub investments: u64,
    /// Structures evicted fleet-wide.
    pub evictions: u64,
    /// Node-seconds of live node uptime integrated over cells — the
    /// quantity eq. 11 bills at `c` $/s. For a fixed population this is
    /// `nodes × Σ cell horizons`; an elastic run's control plane shrinks
    /// it by draining idle nodes (its summary carries the same value).
    pub node_seconds: f64,
    /// Per-tenant accounting, ascending tenant id.
    pub tenants: Vec<TenantStats>,
    /// Per-node accounting, ascending node index.
    pub nodes: Vec<NodeStats>,
    /// Elastic control-plane activity (spawns, retires, uptime integral,
    /// decision ledger); `None` for fixed-population runs.
    pub elastic: Option<ElasticSummary>,
    /// Fault-plane activity (crashes, recoveries, write-offs, re-queues);
    /// `None` for fault-free runs.
    pub faults: Option<FaultSummary>,
    /// Per-tenant SLO ledger (always computed — one histogram record
    /// plus counter bumps per query — so traced and untraced runs stay
    /// bit-identical). Defaults empty for older serialized results.
    #[serde(default)]
    pub slo: SloLedger,
    /// Cadenced vitals snapshots; `None` when the run had no health
    /// config. Excluded from `bench::fleet_fingerprint`, which is what
    /// lets snapshot-on and snapshot-off runs compare bit-identical.
    #[serde(default)]
    pub health: Option<HealthSeries>,
}

impl FleetResult {
    /// An empty result for a run partitioned into `cells` cells; tenant
    /// and node rollups fill in as cell partials merge.
    #[must_use]
    pub fn empty(router: &str, cells: usize) -> Self {
        FleetResult {
            router: router.to_string(),
            cells,
            queries: 0,
            horizon_secs: 0.0,
            response: StreamingStats::new(),
            response_hist: LogHistogram::latency(),
            operating: CostBreakdown::ZERO,
            build_spend: Money::ZERO,
            payments: Money::ZERO,
            profit: Money::ZERO,
            cache_hits: 0,
            investments: 0,
            evictions: 0,
            node_seconds: 0.0,
            tenants: Vec::new(),
            nodes: Vec::new(),
            elastic: None,
            faults: None,
            slo: SloLedger::new(),
            health: None,
        }
    }

    /// Merges another fleet partial (a cell group) into this one.
    ///
    /// Tenants are disjoint across cells, so their stats concatenate and
    /// re-sort by id; node slots are shared, so they merge index-wise.
    /// Callers must merge in a fixed order (ascending cell id) for
    /// bit-reproducible floating-point aggregates.
    ///
    /// # Panics
    /// Panics if the partials disagree on router or node schemes.
    pub fn merge(&mut self, other: &FleetResult) {
        assert_eq!(self.router, other.router, "cannot merge different routers");
        self.queries += other.queries;
        self.horizon_secs = self.horizon_secs.max(other.horizon_secs);
        self.response.merge(&other.response);
        self.response_hist.merge(&other.response_hist);
        self.operating.merge(&other.operating);
        self.build_spend += other.build_spend;
        self.payments += other.payments;
        self.profit += other.profit;
        self.cache_hits += other.cache_hits;
        self.investments += other.investments;
        self.evictions += other.evictions;
        self.node_seconds += other.node_seconds;
        for t in &other.tenants {
            self.tenants.push(t.clone());
        }
        self.tenants.sort_by_key(|t| t.tenant);
        for n in &other.nodes {
            match self.nodes.iter_mut().find(|m| m.node == n.node) {
                Some(mine) => mine.merge(n),
                None => self.nodes.push(n.clone()),
            }
        }
        self.nodes.sort_by_key(|n| n.node);
        if let Some(theirs) = &other.elastic {
            self.elastic
                .get_or_insert_with(ElasticSummary::default)
                .merge(theirs);
        }
        if let Some(theirs) = &other.faults {
            self.faults
                .get_or_insert_with(FaultSummary::default)
                .merge(theirs);
        }
        self.slo.merge(&other.slo);
        if let Some(theirs) = &other.health {
            match &mut self.health {
                Some(mine) => mine.merge(theirs),
                None => self.health = Some(theirs.clone()),
            }
        }
    }

    /// Total operating cost of the fleet (execution + infrastructure +
    /// builds) — the Fig. 4 measurement at fleet scale.
    #[must_use]
    pub fn total_operating_cost(&self) -> Money {
        self.operating.total() + self.build_spend
    }

    /// Mean response time over all tenants (seconds).
    #[must_use]
    pub fn mean_response_secs(&self) -> f64 {
        self.response.mean()
    }

    /// Fleet-wide cache hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// One-line summary row for comparison tables.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} cost ${:>10.4}  mean resp {:>8.3}s  p99 {:>8.3}s  hits {:>5.1}%  builds {:>5}  payments ${:>10.4}",
            self.router,
            self.total_operating_cost().as_dollars(),
            self.mean_response_secs(),
            self.response_hist.p99().unwrap_or(0.0),
            self.hit_rate() * 100.0,
            self.investments,
            self.payments.as_dollars(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant_partial(id: u32, responses: &[f64], paid: f64) -> TenantStats {
        let mut t = TenantStats::new(TenantId(id));
        for &r in responses {
            t.queries += 1;
            t.response.record(r);
        }
        t.payments = Money::from_dollars(paid);
        t
    }

    #[test]
    fn tenant_merge_accumulates() {
        let mut a = tenant_partial(3, &[1.0, 2.0], 5.0);
        let b = tenant_partial(3, &[3.0], 2.5);
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.response.count(), 3);
        assert_eq!(a.payments, Money::from_dollars(7.5));
    }

    #[test]
    #[should_panic(expected = "different tenants")]
    fn tenant_merge_rejects_mismatched_ids() {
        let mut a = tenant_partial(1, &[], 0.0);
        a.merge(&tenant_partial(2, &[], 0.0));
    }

    #[test]
    fn fleet_merge_is_indexwise_for_nodes_and_sorted_for_tenants() {
        let mut a = FleetResult::empty("cheapest-quote", 4);
        a.tenants.push(tenant_partial(2, &[1.0], 1.0));
        a.queries = 1;
        let mut b = FleetResult::empty("cheapest-quote", 4);
        b.tenants.push(tenant_partial(1, &[2.0], 2.0));
        b.queries = 1;
        a.merge(&b);
        assert_eq!(a.queries, 2);
        let ids: Vec<u32> = a.tenants.iter().map(|t| t.tenant.0).collect();
        assert_eq!(ids, vec![1, 2], "tenants re-sorted by id");
    }

    #[test]
    #[should_panic(expected = "different routers")]
    fn fleet_merge_rejects_mismatched_routers() {
        let mut a = FleetResult::empty("round-robin", 1);
        a.merge(&FleetResult::empty("cheapest-quote", 1));
    }
}
