//! The sharded fleet executor.
//!
//! ## Decomposition and invariance
//!
//! Tenants are partitioned into **cells** by `tenant id % cells`. Each
//! cell owns a private replica of the node fleet and serves its tenants'
//! heap-merged stream single-threadedly — within a cell, tenants genuinely
//! share cache state, compete for the same structures, and are routed by
//! live load/price signals. Across cells there is no shared state, which
//! is what lets **shards** (worker threads) execute cells concurrently.
//!
//! The result is a pure function of the config *minus* `shards`:
//!
//! 1. cell membership and every seed derive from tenant ids only;
//! 2. each cell's simulation is single-threaded and deterministic;
//! 3. partial results are folded in ascending cell order, so even the
//!    order-sensitive floating-point merges are fixed.
//!
//! An 8-thread run therefore produces bit-identical fleet aggregates to a
//! 1-thread run — the property `tests/fleet_determinism.rs` pins.
//!
//! Worker threads take cells by striding (`worker w` runs cells
//! `w, w+shards, …`); since workers only *compute* partials and the fold
//! happens after all joins, scheduling jitter cannot leak into results.

use std::sync::Arc;

use catalog::tpch::{tpch_schema, ScaleFactor};
use catalog::Schema;
use planner::{generate_candidates, Estimator, PlannerContext, SkeletonCache};
use simcore::{NetworkModel, SimTime};
use simulator::RunResult;
use workload::paper_templates;

use pricing::Money;
use telemetry::{
    HealthSeries, LifecyclePhase, MetricsRegistry, NodeCrashEvent, NodeEvacuateEvent,
    NodeLifecycleEvent, NodeRecoverEvent, NoopSink, PlanCacheDelta, QueryRetryEvent,
    QuoteRoundEvent, Recorder, SettlementEvent, SloLedger, TenantSloRecord, TraceEvent, TraceSink,
    VitalsFrame,
};

use crate::config::FleetConfig;
use crate::elastic::{ElasticAction, ElasticController, ElasticSummary, NodePopulation};
use crate::faults::{FaultInjector, FaultOutcome, FaultRecord, FaultSummary};
use crate::node::CacheNode;
use crate::result::{FleetResult, NodeStats, TenantStats};
use crate::router::QuoteOptions;
use crate::tenant::{MergedStream, TenantStream};

/// The quote-pool size the executor actually uses: the configured
/// `quote_threads`, clamped so `shards × pool` never oversubscribes the
/// machine's `parallelism`. A pool that cannot run in parallel adds a
/// wake/park pair per round for nothing — the PR 3 quote-thread sweep
/// measured exactly that failure mode (45.5k → 5.9k q/s at 8 spawned
/// threads on a saturated machine). Results are invariant in the pool
/// size by construction, so the clamp is wall-clock-only.
#[must_use]
pub fn effective_quote_threads(
    requested: usize,
    shard_workers: usize,
    parallelism: usize,
) -> usize {
    requested
        .max(1)
        .min((parallelism / shard_workers.max(1)).max(1))
}

/// A prepared fleet simulation: schema, candidates and estimator built
/// once and shared (read-only) by every cell on every worker thread,
/// plus the fleet-wide skeleton cache the cells' quote rounds share.
pub struct FleetSim {
    schema: Arc<Schema>,
    candidates: Vec<cache::IndexDef>,
    cand_index: planner::CandidateIndex,
    estimator: Estimator,
    skeletons: Arc<SkeletonCache>,
    config: FleetConfig,
}

/// One cell's partial measurements, produced on a worker thread.
struct CellResult {
    horizon: SimTime,
    tenants: Vec<TenantStats>,
    /// Per-node results tagged with fleet-wide node ids — positions are
    /// not ids once the control plane retires or spawns nodes mid-run.
    nodes: Vec<(usize, RunResult)>,
    /// Live node-seconds integrated over the cell (eq. 11's quantity).
    node_seconds: f64,
    /// Control-plane activity, when the cell ran elastically.
    elastic: Option<ElasticSummary>,
    /// Fault-plane activity, when the cell ran under a fault plan.
    faults: Option<FaultSummary>,
    /// The cell's metrics registry — populated only on traced runs
    /// (`None` under the no-op sink, keeping the hot path allocation-free).
    registry: Option<MetricsRegistry>,
    /// Per-tenant SLO ledger — always computed, so traced and untraced
    /// runs stay bit-identical.
    slo: SloLedger,
    /// Cadenced vitals snapshots, when the config asked for them.
    health: Option<HealthSeries>,
}

/// What a traced run recorded alongside its [`FleetResult`]: the full
/// event stream (ascending cell, then per-cell arrival order) and the
/// per-cell registries merged in ascending cell order. Registry merging
/// is exact, so the snapshot is bit-identical at any shard count.
#[derive(Debug)]
pub struct FleetTrace {
    /// Every trace event the run emitted.
    pub events: Vec<TraceEvent>,
    /// Merged metrics registry.
    pub registry: MetricsRegistry,
}

impl FleetSim {
    /// Prepares a fleet simulation from a validated config.
    ///
    /// # Panics
    /// Panics if the config is invalid.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid fleet config: {msg}");
        }
        let schema = Arc::new(tpch_schema(ScaleFactor(config.scale_factor)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, config.candidate_indexes);
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            config.cost_params.clone(),
            config.prices.clone(),
            NetworkModel::paper_sdss(),
        );
        FleetSim {
            schema,
            candidates,
            cand_index,
            estimator,
            skeletons: Arc::new(SkeletonCache::new()),
            config,
        }
    }

    /// `(hits, misses)` of the fleet-wide skeleton cache so far.
    #[must_use]
    pub fn skeleton_cache_stats(&self) -> (u64, u64) {
        self.skeletons.stats()
    }

    /// Full counter snapshot of the fleet-wide skeleton cache —
    /// hits, misses and admission-filter stores. The `fleet_scale`
    /// bench records these in its JSON so admission-filter tuning has
    /// committed data to work from.
    #[must_use]
    pub fn skeleton_cache_counters(&self) -> planner::SkeletonCacheCounters {
        self.skeletons.counters()
    }

    /// The quote-pool size this sim's cells will actually use — the
    /// configured `quote_threads` after the executor's oversubscription
    /// clamp ([`effective_quote_threads`]), on the current machine. The
    /// single source the `fleet_scale` bench reports from.
    #[must_use]
    pub fn quote_pool_threads(&self) -> usize {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let shard_workers = self.config.shards.min(self.config.cells).max(1);
        effective_quote_threads(self.config.quote_threads, shard_workers, parallelism)
    }

    /// The backend schema.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Executes the fleet run across `config.shards` worker threads.
    #[must_use]
    pub fn run(&self) -> FleetResult {
        let partials = self.run_cells(|_| NoopSink);
        self.fold(partials.iter().map(|(partial, _)| partial))
    }

    /// Executes the fleet run with the flight recorder on: every cell
    /// records its trace events and metrics registry, and the partials
    /// are stitched in ascending cell order.
    ///
    /// The headline telemetry invariant — instrumentation only observes —
    /// makes the returned [`FleetResult`] bit-identical to [`Self::run`]'s
    /// (the `fleet_elastic` bench and `bench --bin explain selfcheck`
    /// verify this on every run, and CI gates on it).
    #[must_use]
    pub fn run_traced(&self) -> (FleetResult, FleetTrace) {
        let partials = self.run_cells(|_| Recorder::new());
        let result = self.fold(partials.iter().map(|(partial, _)| partial));
        let mut events = Vec::new();
        let mut registry = MetricsRegistry::new();
        for (partial, recorder) in partials {
            events.extend(recorder.into_events());
            if let Some(cell_registry) = &partial.registry {
                registry.merge(cell_registry);
            }
        }
        (result, FleetTrace { events, registry })
    }

    /// Simulates every cell (striding workers when `shards > 1`), giving
    /// each cell its own sink from `make_sink`. Returns partials in
    /// ascending cell order regardless of shard scheduling.
    fn run_cells<S, F>(&self, make_sink: F) -> Vec<(CellResult, S)>
    where
        S: TraceSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        let cells = self.config.cells;
        let shards = self.config.shards.min(cells).max(1);

        if shards == 1 {
            (0..cells)
                .map(|c| {
                    let mut sink = make_sink(c);
                    let partial = self.simulate_cell(c, &mut sink);
                    (partial, sink)
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|worker| {
                        let sim = &*self;
                        let make_sink = &make_sink;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            let mut cell = worker;
                            while cell < cells {
                                let mut sink = make_sink(cell);
                                let partial = sim.simulate_cell(cell, &mut sink);
                                out.push((cell, (partial, sink)));
                                cell += shards;
                            }
                            out
                        })
                    })
                    .collect();
                let mut slots: Vec<Option<(CellResult, S)>> = (0..cells).map(|_| None).collect();
                for handle in handles {
                    for (cell, result) in handle.join().expect("fleet worker panicked") {
                        slots[cell] = Some(result);
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("every cell simulated"))
                    .collect()
            })
        }
    }

    /// Folds cell partials in ascending cell order — the
    /// shard-count-invariant merge.
    fn fold<'a>(&self, partials: impl Iterator<Item = &'a CellResult>) -> FleetResult {
        let cells = self.config.cells;
        let mut fleet = FleetResult::empty(self.config.router.name(), cells);
        for partial in partials {
            let mut piece = FleetResult::empty(self.config.router.name(), cells);
            piece.horizon_secs = partial.horizon.as_secs();
            piece.tenants = partial.tenants.clone();
            piece.node_seconds = partial.node_seconds;
            piece.elastic = partial.elastic.clone();
            piece.faults = partial.faults.clone();
            piece.slo = partial.slo.clone();
            piece.health = partial.health.clone();
            for &(node_idx, ref run) in &partial.nodes {
                piece.queries += run.queries;
                piece.response.merge(&run.response);
                piece.response_hist.merge(&run.response_hist);
                piece.operating.merge(&run.operating);
                piece.build_spend += run.build_spend;
                piece.payments += run.payments;
                piece.profit += run.profit;
                piece.cache_hits += run.cache_hits;
                piece.investments += run.investments;
                piece.evictions += run.evictions;
                piece.nodes.push(NodeStats::from_run(node_idx, run));
            }
            fleet.merge(&piece);
        }
        fleet
    }

    /// Simulates one cell: its tenants' merged stream over a private
    /// replica of the node fleet. Single-threaded and deterministic.
    ///
    /// When `sink` is enabled the cell additionally assembles trace
    /// events (quote rounds, settlements, node lifecycle) and a metrics
    /// registry; under the default [`NoopSink`] both gates are a single
    /// branch and no event is ever built.
    fn simulate_cell(&self, cell: usize, sink: &mut dyn TraceSink) -> CellResult {
        let cells = self.config.cells;
        let rates = &self.config.prices.rates;
        // Flash-crowd surges time-warp every tenant's arrivals — the
        // windows come from the config, so surge runs stay pure functions
        // of it.
        let surge_windows = self
            .config
            .faults
            .as_ref()
            .map(|p| p.surge_windows())
            .unwrap_or_default();
        let streams: Vec<TenantStream> = self
            .config
            .tenants
            .iter()
            .filter(|t| t.id.0 as usize % cells == cell)
            .map(|t| {
                if surge_windows.is_empty() {
                    TenantStream::new(t.clone(), Arc::clone(&self.schema), self.config.seed)
                } else {
                    TenantStream::with_surges(
                        t.clone(),
                        Arc::clone(&self.schema),
                        self.config.seed,
                        surge_windows.clone(),
                    )
                }
            })
            .collect();
        let mut tenant_stats: Vec<TenantStats> = streams
            .iter()
            .map(|s| TenantStats::new(s.spec().id))
            .collect();
        // The SLO ledger rides alongside `tenant_stats`, slot for slot.
        // It is unconditionally maintained — one histogram record plus a
        // few counter bumps per query — because the telemetry invariant
        // (`run_traced() == run()`) compares full `FleetResult`s.
        let mut slo_records: Vec<TenantSloRecord> = streams
            .iter()
            .map(|s| TenantSloRecord::new(s.spec().id.0, s.spec().slo))
            .collect();
        // O(1) tenant → stats-slot lookup for the hot loop below.
        let slot_of: std::collections::HashMap<crate::tenant::TenantId, usize> = tenant_stats
            .iter()
            .enumerate()
            .map(|(i, t)| (t.tenant, i))
            .collect();
        let merged = MergedStream::new(streams);

        // Degradation windows apply to seed nodes only — replacements
        // (elastic spawns, crash recoveries) are fresh machines.
        let nodes: Vec<CacheNode> = self
            .config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut node = CacheNode::new(i, spec, &self.schema, &self.config.econ);
                if let Some(plan) = &self.config.faults {
                    node.set_degradations(plan.degrade_windows(i));
                }
                node
            })
            .collect();
        let mut population = NodePopulation::new(nodes);
        let mut injector = self.config.faults.as_ref().map(|plan| {
            FaultInjector::new(
                plan,
                &self.config.nodes,
                self.config.econ.clone(),
                Arc::clone(&self.schema),
                cell,
                self.config.seed,
            )
        });
        let mut controller = self
            .config
            .elastic
            .as_ref()
            .map(|_| ElasticController::new(&self.config, cell, Arc::clone(&self.schema)));
        let mut router = self.config.router.make(QuoteOptions {
            threads: self.quote_pool_threads(),
            batching: self.config.quote_batching,
            // A single-cell run has nothing to de-duplicate across cells:
            // the within-round LazySkeleton sharing already builds each
            // skeleton once, so the fleet-wide cache would only add a
            // shard-lock probe per miss. Skip it.
            skeletons: (self.config.cells > 1).then(|| Arc::clone(&self.skeletons)),
            pinning: self.config.pin_quote_workers,
        });
        let ctx = PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        };

        // The flight recorder: `registry` doubles as the "tracing on"
        // gate so the no-op path costs one branch per site.
        let mut registry = sink.enabled().then(MetricsRegistry::new);
        let mut ledger_seen = 0usize;
        let mut fault_seen = 0usize;
        // Vitals scraper state: the series plus the next tick ordinal.
        // Tick instants are `k × interval` by multiplication (never by
        // accumulation), so every cell lands frames on the exact same
        // grid and the cross-cell merge can align them index-wise.
        let mut health = self
            .config
            .health
            .as_ref()
            .map(|h| (HealthSeries::new(h.snapshot_interval_secs), 1u64));

        let mut horizon = SimTime::ZERO;
        for (now, tenant, query) in merged {
            horizon = now;
            // Control-plane reviews and fault events due before this
            // arrival run first, interleaved at their exact simulated
            // instants (reviews win exact ties), so routing below sees
            // the post-review, post-fault population.
            if let Some(inj) = injector.as_mut() {
                while let Some(fault_at) = inj.next_due(now) {
                    if let Some(controller) = &mut controller {
                        controller.run_due_reviews(&mut population, &ctx, fault_at);
                    }
                    inj.process_next(&mut population, &ctx, rates);
                }
            }
            if let Some(controller) = &mut controller {
                controller.run_due_reviews(&mut population, &ctx, now);
            }
            if let Some(inj) = injector.as_mut() {
                // Capital-preserving evacuation of control-plane drains:
                // newly draining nodes migrate their profitable
                // structures before retirement instead of scrapping them.
                inj.sweep_draining(&mut population, &ctx, now);
            }
            // Total-outage wait: a correlated crash can momentarily
            // leave no routable node (the survivors already retired,
            // the population-floor respawns still booting). The query
            // queues until capacity returns — its effective serve
            // instant advances through the control-plane actions due in
            // the window (reviews and fault events run at their exact
            // instants), and the wait folds into its end-to-end latency
            // sample exactly like retry backoff.
            let arrived = now;
            let mut now = now;
            while population.routable_count(now) == 0 {
                let mut next: Option<f64> = population
                    .live()
                    .iter()
                    .filter(|n| n.drain_since().is_none() && now.as_secs() < n.ready_at().as_secs())
                    .map(|n| n.ready_at().as_secs())
                    .min_by(f64::total_cmp);
                if let Some(controller) = &controller {
                    let review = controller.next_review_at().as_secs();
                    next = Some(next.map_or(review, |t| t.min(review)));
                }
                if let Some(at) = injector.as_ref().and_then(|i| i.next_event_at()) {
                    let at = at.as_secs();
                    next = Some(next.map_or(at, |t| t.min(at)));
                }
                let Some(next) = next.filter(|t| *t > now.as_secs()) else {
                    panic!("no routable node and no pending control-plane action to restore one");
                };
                now = SimTime::from_secs(next);
                if let Some(inj) = injector.as_mut() {
                    while let Some(fault_at) = inj.next_due(now) {
                        if let Some(controller) = &mut controller {
                            controller.run_due_reviews(&mut population, &ctx, fault_at);
                        }
                        inj.process_next(&mut population, &ctx, rates);
                    }
                }
                if let Some(controller) = &mut controller {
                    controller.run_due_reviews(&mut population, &ctx, now);
                }
                if let Some(inj) = injector.as_mut() {
                    inj.sweep_draining(&mut population, &ctx, now);
                }
            }
            let outage_wait = now.saturating_since(arrived).as_secs();
            horizon = horizon.max(now);
            if let Some(registry) = registry.as_mut() {
                if let Some(controller) = &controller {
                    let ledger = controller.ledger();
                    for entry in &ledger[ledger_seen..] {
                        emit_lifecycle(sink, registry, entry);
                    }
                    ledger_seen = ledger.len();
                }
                if let Some(inj) = injector.as_ref() {
                    let records = inj.records();
                    for record in &records[fault_seen..] {
                        emit_fault(sink, registry, record);
                    }
                    fault_seen = records.len();
                }
            }
            population.accrue(now);
            // The cadenced scraper: emit every frame whose tick instant
            // has passed. Ticks sample the *current* (post-accrue) state
            // — a deterministic function of the arrival sequence, so
            // frames are bit-identical at any shard count.
            if let Some((series, next_tick)) = health.as_mut() {
                #[allow(clippy::cast_precision_loss)]
                while (*next_tick as f64) * series.interval_secs <= now.as_secs() {
                    #[allow(clippy::cast_precision_loss)]
                    let at = (*next_tick as f64) * series.interval_secs;
                    series.frames.push(capture_vitals(
                        at,
                        &population,
                        controller.as_ref(),
                        injector.as_ref(),
                        &slo_records,
                    ));
                    *next_tick += 1;
                }
            }
            // Plan-cache totals only move inside route/serve below (the
            // population is fixed for the rest of the step), so diffing
            // them around each phase attributes memoization activity to
            // this query exactly.
            let before_route = registry.as_ref().map(|_| {
                (
                    plan_cache_totals(population.live()),
                    population.routable_count(now),
                )
            });
            let mut chosen = router.route(population.live_mut(), &ctx, &query, now);
            // Per-query timeout fallback: a degraded winner whose backlog
            // already exceeds the timeout is suppressed for one more
            // round and the query re-routes to the next-best candidate —
            // once (legacy), or under the plan's deadline-budgeted
            // [`RetryPolicy`] with deterministic backoff charged against
            // the query's remaining budget headroom. Pure simulation
            // state drives every decision, so traced and untraced runs
            // take the identical path.
            let mut retry_wait = 0.0_f64;
            let mut retried_query: Option<workload::Query> = None;
            if let Some(inj) = injector.as_mut() {
                let timeout = inj.timeout_secs();
                if timeout > 0.0 {
                    if let Some(policy) = inj.retry().copied() {
                        let mut suppressed: Vec<usize> = Vec::new();
                        let mut scale = query.budget_scale;
                        let mut attempt = 1u32;
                        // Retry while the winner is degraded past the
                        // timeout, attempts remain, an alternative node
                        // exists, and the budget still has headroom to
                        // pay for a retry. When the headroom is gone the
                        // decayed budget itself downgrades the plan: a
                        // `B_Q(t)` pinned at the backend price makes the
                        // economy serve the backend plan organically.
                        while attempt < policy.max_attempts
                            && population.routable_count(now) > 1
                            && scale - 1.0 > 1e-9
                        {
                            let winner = &population.live()[chosen];
                            if !(winner.degrade_slowdown(now) > 1.0
                                && winner.outstanding(now) >= timeout)
                            {
                                break;
                            }
                            let backoff = policy.backoff_for(attempt);
                            retry_wait += backoff;
                            scale = policy.decayed_budget_scale(scale);
                            let from_node = winner.id();
                            population.live_mut()[chosen].suppress_route();
                            suppressed.push(chosen);
                            let mut decayed = query.clone();
                            decayed.budget_scale = scale;
                            chosen = router.route(population.live_mut(), &ctx, &decayed, now);
                            inj.note_retry();
                            slo_records[slot_of[&tenant]].retries += 1;
                            if let Some(registry) = registry.as_mut() {
                                registry.counter_add("fault.retries", 1);
                                registry.observe("fault.retry_backoff", backoff);
                                sink.emit(TraceEvent::QueryRetry(QueryRetryEvent {
                                    cell,
                                    at_secs: now.as_secs(),
                                    tenant: tenant.0,
                                    template: query.template.0,
                                    query: query.id.0,
                                    from_node,
                                    to_node: population.live()[chosen].id(),
                                    attempt,
                                    backoff_secs: backoff,
                                    budget_scale: scale,
                                }));
                            }
                            retried_query = Some(decayed);
                            attempt += 1;
                        }
                        for idx in suppressed {
                            population.live_mut()[idx].unsuppress_route();
                        }
                    } else if population.routable_count(now) > 1 {
                        let winner = &population.live()[chosen];
                        if winner.degrade_slowdown(now) > 1.0 && winner.outstanding(now) >= timeout
                        {
                            population.live_mut()[chosen].suppress_route();
                            let rerouted = router.route(population.live_mut(), &ctx, &query, now);
                            population.live_mut()[chosen].unsuppress_route();
                            chosen = rerouted;
                            inj.note_timeout();
                            slo_records[slot_of[&tenant]].timeouts += 1;
                            if let Some(registry) = registry.as_mut() {
                                registry.counter_add("fault.timeouts", 1);
                            }
                        }
                    }
                }
            }
            let after_route = if let Some((before, routable)) = before_route {
                let totals = plan_cache_totals(population.live());
                let delta = plan_cache_delta(before, totals);
                sink.emit(TraceEvent::QuoteRound(QuoteRoundEvent {
                    cell,
                    at_secs: now.as_secs(),
                    tenant: tenant.0,
                    template: query.template.0,
                    query: query.id.0,
                    winner: population.live()[chosen].id(),
                    winning_quote: router.last_winning_quote(),
                    routable,
                    plan_cache: delta,
                }));
                Some(totals)
            } else {
                None
            };
            // Retried queries serve with their decayed budget and fold
            // the accumulated backoff into the delivered latency exactly
            // once — the response histogram records a single end-to-end
            // sample per query, never one per timed-out attempt.
            let eff_query = retried_query.as_ref().unwrap_or(&query);
            let outcome = population.live_mut()[chosen].serve_delayed(
                &ctx,
                eff_query,
                now,
                outage_wait + retry_wait,
            );
            if let Some(inj) = injector.as_mut() {
                // Journal the serve for nodes awaiting replay-recovery
                // (one hash probe for everyone else). The *effective*
                // query is journaled, so recovery replay reproduces the
                // decayed-budget economics bit for bit.
                inj.note_served(population.live()[chosen].id(), now, eff_query);
            }
            if let Some(registry) = registry.as_mut() {
                let after_serve = plan_cache_totals(population.live());
                let serve_delta =
                    plan_cache_delta(after_route.expect("traced route recorded"), after_serve);
                let step_delta =
                    plan_cache_delta(before_route.expect("traced route recorded").0, after_serve);
                record_settlement(registry, &outcome, step_delta);
                sink.emit(TraceEvent::Settlement(SettlementEvent {
                    cell,
                    at_secs: now.as_secs(),
                    tenant: tenant.0,
                    template: query.template.0,
                    query: query.id.0,
                    node: population.live()[chosen].id(),
                    response_secs: outcome.response_time.as_secs(),
                    ran_in_cache: outcome.ran_in_cache,
                    payment: outcome.payment,
                    profit: outcome.profit,
                    exec: outcome.exec_breakdown,
                    build_spend: outcome.build_spend,
                    used_structures: outcome
                        .used_structures
                        .iter()
                        .map(ToString::to_string)
                        .collect(),
                    investments: outcome.investments,
                    evictions: outcome.evictions,
                    plan_cache: serve_delta,
                }));
            }

            let stats = &mut tenant_stats[slot_of[&tenant]];
            stats.queries += 1;
            stats.response.record(outcome.response_time.as_secs());
            stats.payments += outcome.payment;
            stats.cache_hits += u64::from(outcome.ran_in_cache);
            let slo = &mut slo_records[slot_of[&tenant]];
            slo.record_served(
                outcome.response_time.as_secs(),
                outcome.payment,
                outcome.ran_in_cache,
            );
            if outage_wait > 0.0 {
                slo.fault_delays += 1;
            }
        }

        if let Some(registry) = registry.as_mut() {
            // Placement telemetry, outside the invariance contract (like
            // the skeleton-cache counters): how many quote workers this
            // cell's router actually pinned to a core.
            registry.counter_add("pool.pinned_workers", router.pinned_workers());
        }

        let finish = population.finish(rates, horizon);
        let node_seconds = finish.node_seconds;
        let elastic = controller.map(|c| c.into_summary(&finish));
        let faults = injector.map(FaultInjector::into_summary);
        CellResult {
            horizon,
            tenants: tenant_stats,
            nodes: finish.nodes,
            node_seconds,
            elastic,
            faults,
            registry,
            slo: SloLedger::from_records(slo_records),
            health: health.map(|(series, _)| series),
        }
    }
}

/// Samples one [`VitalsFrame`] from the cell's live state. Every field
/// is a pure function of the simulation state at the sampling call, so
/// frames are deterministic across shard counts and identical between
/// traced and untraced runs.
fn capture_vitals(
    at_secs: f64,
    population: &NodePopulation,
    controller: Option<&ElasticController>,
    injector: Option<&FaultInjector>,
    slo_records: &[TenantSloRecord],
) -> VitalsFrame {
    let t = SimTime::from_secs(at_secs);
    let live = population.live();
    let plan = plan_cache_totals(live);
    let mut backlog_secs = 0.0;
    let mut node_cash = Money::ZERO;
    let mut routable_nodes = 0u64;
    let mut draining_nodes = 0u64;
    for node in live {
        if node.routable(t) {
            routable_nodes += 1;
            backlog_secs += node.outstanding(t);
        }
        if node.drain_since().is_some() {
            draining_nodes += 1;
        }
        if let Some(economy) = node.economy() {
            node_cash += economy.account().balance();
        }
    }
    VitalsFrame {
        at_secs,
        queries: slo_records.iter().map(|r| r.admitted).sum(),
        cache_hits: slo_records.iter().map(|r| r.cache_hits).sum(),
        deadline_misses: slo_records.iter().map(|r| r.deadline_misses).sum(),
        backlog_secs,
        pressure_ewma: controller.map_or(0.0, ElasticController::pressure_ewma),
        node_cash,
        live_nodes: live.len() as u64,
        routable_nodes,
        draining_nodes,
        plan_hits: plan.0,
        plan_misses: plan.1,
        victim_hits: plan.4,
        spawns: controller.map_or(0, ElasticController::spawns_so_far),
        retires: controller.map_or(0, ElasticController::retires_so_far),
        write_off: injector.map_or(Money::ZERO, FaultInjector::write_off_so_far),
    }
}

/// Fleet-wide plan-cache counter totals over the live population
/// (hits, misses, refreshes, completions, victim hits). Monotone within
/// a query step: nodes only leave the population during control-plane
/// reviews, which run before the step's sampling starts.
fn plan_cache_totals(nodes: &[CacheNode]) -> (u64, u64, u64, u64, u64) {
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    for node in nodes {
        if let Some(stats) = node.plan_cache_stats() {
            totals.0 += stats.hits;
            totals.1 += stats.misses;
            totals.2 += stats.refreshes;
            totals.3 += stats.completions;
            totals.4 += stats.victim_hits;
        }
    }
    totals
}

/// Delta of two [`plan_cache_totals`] samples taken within one step.
fn plan_cache_delta(
    before: (u64, u64, u64, u64, u64),
    after: (u64, u64, u64, u64, u64),
) -> PlanCacheDelta {
    PlanCacheDelta {
        hits: after.0.saturating_sub(before.0),
        misses: after.1.saturating_sub(before.1),
        refreshes: after.2.saturating_sub(before.2),
        completions: after.3.saturating_sub(before.3),
        victim_hits: after.4.saturating_sub(before.4),
    }
}

/// Folds one new elastic-ledger entry into the trace stream and the
/// cell registry.
fn emit_lifecycle(
    sink: &mut dyn TraceSink,
    registry: &mut MetricsRegistry,
    entry: &crate::elastic::LedgerEntry,
) {
    registry.counter_add("elastic.reviews", 1);
    let (phase, node, scheme, counter) = match &entry.action {
        ElasticAction::Hold => (LifecyclePhase::Hold, None, String::new(), "elastic.holds"),
        ElasticAction::ScaleUp { node, scheme } => (
            LifecyclePhase::Spawn,
            Some(*node),
            scheme.clone(),
            "elastic.spawns",
        ),
        ElasticAction::DrainBegin { node } => (
            LifecyclePhase::DrainBegin,
            Some(*node),
            String::new(),
            "elastic.drains",
        ),
        ElasticAction::Retire { node } => (
            LifecyclePhase::Retire,
            Some(*node),
            String::new(),
            "elastic.retires",
        ),
    };
    registry.counter_add(counter, 1);
    sink.emit(TraceEvent::NodeLifecycle(NodeLifecycleEvent {
        cell: entry.cell,
        at_secs: entry.at_secs,
        phase,
        node,
        rule: entry.rule.clone(),
        scheme,
        live: entry.live,
        routable: entry.routable,
        booting: entry.booting,
        draining: entry.draining,
        backlog: entry.signals.backlog,
        backlog_ewma: entry.signals.backlog_ewma,
        window_response_secs: entry.signals.window_response_secs,
        profit_rate: entry.signals.profit_rate,
        regret_rate: entry.signals.regret_rate,
    }));
}

/// Folds one new fault-ledger record into the trace stream and the cell
/// registry.
fn emit_fault(sink: &mut dyn TraceSink, registry: &mut MetricsRegistry, record: &FaultRecord) {
    match &record.event {
        FaultOutcome::Crash(c) => {
            registry.counter_add("fault.crashes", 1);
            registry.counter_add("fault.cascade_crashes", u64::from(c.cascade_depth > 0));
            registry.gauge_add("fault.write_off", c.write_off);
            if c.requeued_secs > 0.0 {
                registry.observe("fault.requeue_secs", c.requeued_secs);
            }
            sink.emit(TraceEvent::NodeCrash(NodeCrashEvent {
                cell: record.cell,
                at_secs: record.at_secs,
                node: c.node,
                phase: c.phase.label().to_string(),
                queries: c.queries,
                payments: c.payments,
                profit: c.profit,
                operating: c.operating,
                write_off: c.write_off,
                salvaged: c.salvaged,
                transfer_spend: c.transfer_spend,
                cascade_depth: c.cascade_depth,
                disk_bytes: c.disk_bytes,
                requeued_secs: c.requeued_secs,
                requeued_to: c.requeued_to,
                recover_planned: c.recover_planned,
            }));
        }
        FaultOutcome::Evacuate(e) => {
            registry.counter_add("fault.evacuations", 1);
            registry.counter_add("fault.structures_moved", e.structures_moved);
            registry.gauge_add("fault.salvaged", e.salvaged);
            registry.gauge_add("fault.transfer_spend", e.transfer_spend);
            let mut receivers: Vec<usize> = e.moves.iter().map(|m| m.to).collect();
            receivers.sort_unstable();
            receivers.dedup();
            sink.emit(TraceEvent::NodeEvacuate(NodeEvacuateEvent {
                cell: record.cell,
                at_secs: record.at_secs,
                node: e.node,
                reason: e.reason.clone(),
                structures_moved: e.structures_moved,
                salvaged: e.salvaged,
                transfer_spend: e.transfer_spend,
                receivers,
            }));
        }
        FaultOutcome::Recover(r) => {
            registry.counter_add("fault.recoveries", 1);
            registry.counter_add("fault.reconciled", u64::from(r.drift.is_zero()));
            sink.emit(TraceEvent::NodeRecover(NodeRecoverEvent {
                cell: record.cell,
                at_secs: record.at_secs,
                crashed: r.crashed,
                replacement: r.replacement,
                boot_cost: r.boot_cost,
                ready_at_secs: r.ready_at_secs,
                replayed_queries: r.replayed_queries,
                reconciled: r.drift.is_zero(),
            }));
        }
    }
}

/// Books one settled query into the cell registry. `step_delta` is the
/// whole step's plan-cache activity (route + serve), so the registry's
/// `plan_cache.*` counters cover activity on nodes that later retire —
/// unlike an end-of-run sum over surviving nodes.
fn record_settlement(
    registry: &mut MetricsRegistry,
    outcome: &policies::PolicyOutcome,
    step_delta: PlanCacheDelta,
) {
    registry.counter_add("fleet.queries", 1);
    registry.counter_add("fleet.cache_hits", u64::from(outcome.ran_in_cache));
    registry.counter_add("fleet.investments", u64::from(outcome.investments));
    registry.counter_add("fleet.evictions", u64::from(outcome.evictions));
    registry.gauge_add("fleet.payments", outcome.payment);
    registry.gauge_add("fleet.profit", outcome.profit);
    registry.gauge_add("fleet.build_spend", outcome.build_spend);
    registry.gauge_add("fleet.exec.cpu", outcome.exec_breakdown.cpu);
    registry.gauge_add("fleet.exec.disk", outcome.exec_breakdown.disk);
    registry.gauge_add("fleet.exec.network", outcome.exec_breakdown.network);
    registry.gauge_add("fleet.exec.io", outcome.exec_breakdown.io);
    registry.counter_add("plan_cache.hits", step_delta.hits);
    registry.counter_add("plan_cache.misses", step_delta.misses);
    registry.counter_add("plan_cache.refreshes", step_delta.refreshes);
    registry.counter_add("plan_cache.completions", step_delta.completions);
    registry.counter_add("plan_cache.victim_hits", step_delta.victim_hits);
    registry.observe("fleet.response_secs", outcome.response_time.as_secs());
}

/// One-shot convenience: prepare and run.
#[must_use]
pub fn run_fleet(config: FleetConfig) -> FleetResult {
    FleetSim::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterKind;

    fn small(router: RouterKind, shards: usize) -> FleetResult {
        let mut config = FleetConfig::uniform(8, 3, 60, 1.0);
        config.scale_factor = 10.0;
        config.cells = 4;
        config.shards = shards;
        config.router = router;
        run_fleet(config)
    }

    #[test]
    fn fleet_serves_every_query_once() {
        let r = small(RouterKind::RoundRobin, 1);
        assert_eq!(r.queries, 8 * 60);
        assert_eq!(r.response.count(), 8 * 60);
        let tenant_total: u64 = r.tenants.iter().map(|t| t.queries).sum();
        let node_total: u64 = r.nodes.iter().map(|n| n.queries).sum();
        assert_eq!(tenant_total, r.queries);
        assert_eq!(node_total, r.queries);
        assert_eq!(r.tenants.len(), 8);
        // 4 cells × 3 node slots roll up into 3 fleet-level node rows.
        assert_eq!(r.nodes.len(), 3);
        assert!(r.total_operating_cost().is_positive());
        assert!(r.mean_response_secs() > 0.0);
    }

    #[test]
    fn round_robin_spreads_queries_evenly() {
        let r = small(RouterKind::RoundRobin, 1);
        let counts: Vec<u64> = r.nodes.iter().map(|n| n.queries).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= self::small_imbalance(&r),
            "round-robin imbalance: {counts:?}"
        );
    }

    /// Round-robin is per-cell, so imbalance is bounded by one query per
    /// cell.
    fn small_imbalance(r: &FleetResult) -> u64 {
        r.cells as u64
    }

    #[test]
    fn all_routers_complete_and_disagree_somewhere() {
        let rr = small(RouterKind::RoundRobin, 1);
        let lo = small(RouterKind::LeastOutstanding, 1);
        let cq = small(RouterKind::CheapestQuote, 1);
        for r in [&rr, &lo, &cq] {
            assert_eq!(r.queries, 480);
        }
        // Different strategies must produce observably different routing
        // (identical everything would mean the router is not consulted).
        let loads = |r: &FleetResult| -> Vec<u64> { r.nodes.iter().map(|n| n.queries).collect() };
        assert!(
            loads(&rr) != loads(&cq) || loads(&lo) != loads(&cq),
            "cheapest-quote matched both baselines exactly"
        );
    }

    #[test]
    #[should_panic(expected = "invalid fleet config")]
    fn invalid_config_panics() {
        let mut config = FleetConfig::uniform(2, 1, 10, 1.0);
        config.cells = 0;
        let _ = FleetSim::new(config);
    }
}
