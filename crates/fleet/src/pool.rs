//! A persistent worker pool for quote fan-out.
//!
//! The previous parallel quote path spawned scoped threads on **every**
//! round; at fleet scale that spawn/join cost swamped the per-node
//! completion work it was parallelising (the PR 3 `fleet_scale` sweep
//! measured a 45.5k → 5.9k q/s collapse at 8 quote threads). A
//! [`QuotePool`] spawns its workers once, parks them on a condvar
//! between rounds, and hands each round's borrowed closure to them
//! through a type-erased pointer — the per-round cost drops from thread
//! creation to a wake/park pair.
//!
//! ## Safety model
//!
//! [`QuotePool::run`] publishes a pointer to a caller-borrowed
//! `dyn Fn(usize) + Sync` closure and **blocks until every worker has
//! finished calling it** (the `active` count reaching zero gates the
//! return), so the closure and everything it borrows strictly outlive
//! every use — the same guarantee `std::thread::scope` provides, paid
//! once instead of per round. The guarantee holds under panics too: a
//! leader panic drains the round from a drop guard before unwinding,
//! and a worker panic is caught (so `active` still reaches zero) and
//! re-raised by the leader after the round. Workers only read the
//! pointer inside a round (the `round` counter gates them), and the
//! pointer is cleared before `run` returns. This is the one place in
//! the workspace that needs `unsafe`; everything else stays
//! `deny(unsafe_code)`.
//!
//! ## Core pinning
//!
//! Pool workers are *sticky*: worker `w` runs chunk `w + 1` in every
//! round, so each worker touches the same node states round after round.
//! Pinning worker `w` to core `(w + 1) mod cores` (the leader keeps
//! core 0's share by exclusion) keeps those states in one core's private
//! cache instead of migrating with the scheduler. The pin is a raw
//! `sched_setaffinity` syscall — the vendored tree carries no `libc`, so
//! the two supported Linux ISAs issue it through inline asm and every
//! other target compiles a no-op returning `false`. Pinning is purely a
//! placement hint: round results are bit-identical with it on, off, or
//! partially applied (the affinity mask never changes *what* runs, only
//! *where*), and a failed pin (restrictive cpuset, exotic kernel) is
//! silently tolerated — [`QuotePool::pinned_workers`] reports how many
//! pins actually took, for telemetry.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Pins the calling thread to `cpu` via a raw `sched_setaffinity(2)`
/// syscall (pid 0 = calling thread). Returns whether the kernel accepted
/// the mask. No `libc` in the vendored tree, hence inline asm on the
/// supported Linux ISAs and a `false`-returning no-op elsewhere.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn pin_current_thread(cpu: usize) -> bool {
    let mut mask = [0u64; 16]; // 1024 CPUs, same cap as glibc's cpu_set_t
    if cpu >= mask.len() * 64 {
        return false;
    }
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let size = std::mem::size_of_val(&mask);
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    // SAFETY: sched_setaffinity only reads `size` bytes of the live
    // `mask` buffer; rcx/r11 are the registers the syscall instruction
    // itself clobbers.
    #[allow(unsafe_code)]
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") size,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly),
        );
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as above; aarch64 returns the result in x0.
    #[allow(unsafe_code)]
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") 122isize, // __NR_sched_setaffinity
            inlateout("x0") 0isize => ret,
            in("x1") size,
            in("x2") mask.as_ptr(),
            options(nostack, readonly),
        );
    }
    ret == 0
}

/// Non-Linux (or unsupported-ISA) fallback: pinning quietly does nothing.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// Hands out the disjoint fixed-size chunks of a mutable slice across
/// threads, each at most once — the shape a quote round needs to give
/// every pool participant exclusive access to its node chunk without
/// `unsafe` leaking outside this module. Exclusivity is enforced at
/// runtime by per-chunk claim flags, so the API cannot alias even if
/// misused (a double claim just returns `None`).
pub(crate) struct ChunkSlices<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk_len: usize,
    claimed: Vec<AtomicBool>,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a `ChunkSlices` only ever releases disjoint `&mut` subslices
// (each chunk index at most once, gated by an atomic claim), so sharing
// the dispenser across threads is sound whenever moving the elements'
// mutable borrows across threads is — i.e. `T: Send`.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for ChunkSlices<'_, T> {}

impl<'a, T> ChunkSlices<'a, T> {
    /// Wraps `slice` for dispensing in chunks of `chunk_len`.
    ///
    /// # Panics
    /// Panics if `chunk_len` is zero.
    pub(crate) fn new(slice: &'a mut [T], chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let len = slice.len();
        let chunks = len.div_ceil(chunk_len);
        ChunkSlices {
            ptr: slice.as_mut_ptr(),
            len,
            chunk_len,
            claimed: (0..chunks).map(|_| AtomicBool::new(false)).collect(),
            _marker: PhantomData,
        }
    }

    /// Number of chunks available.
    pub(crate) fn chunks(&self) -> usize {
        self.claimed.len()
    }

    /// Claims chunk `chunk`, returning its mutable subslice — or `None`
    /// when the index is out of range or the chunk was already claimed.
    #[allow(clippy::mut_from_ref)] // disjointness enforced by the claim flags
    pub(crate) fn take(&self, chunk: usize) -> Option<&mut [T]> {
        let flag = self.claimed.get(chunk)?;
        if flag.swap(true, Ordering::AcqRel) {
            return None;
        }
        let start = chunk * self.chunk_len;
        let end = (start + self.chunk_len).min(self.len);
        // SAFETY: the claim flag guarantees this range is handed out at
        // most once, ranges of distinct chunks are disjoint, and the
        // phantom borrow keeps the backing slice alive and exclusively
        // borrowed for 'a.
        #[allow(unsafe_code)]
        Some(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) })
    }
}

/// Type-erased pointer to the current round's closure. Only dereferenced
/// while the publishing [`QuotePool::run`] call is blocked waiting for
/// the round to finish.
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (concurrent calls are allowed) and its
// lifetime is enforced dynamically by the round protocol described in the
// module docs.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

struct State {
    /// Round counter; a bump tells parked workers a new job is published.
    round: u64,
    /// The published round closure, present exactly while a round runs.
    job: Option<Job>,
    /// Workers that have not yet finished the current round.
    active: usize,
    /// Set when a worker's job call panicked this round (the panic is
    /// caught so the count still reaches zero; the leader re-raises).
    worker_panicked: bool,
    /// Set once, on drop: workers exit instead of waiting for a round.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between rounds.
    work: Condvar,
    /// The round leader parks here while workers finish.
    done: Condvar,
}

/// A pool of parked worker threads executing one borrowed closure per
/// round, created once per router and reused for every quote round.
pub(crate) struct QuotePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// How many workers successfully pinned themselves to a core.
    pinned: Arc<AtomicU64>,
}

impl QuotePool {
    /// Spawns `workers` parked worker threads. Worker `w` calls each
    /// round's closure with chunk index `w + 1` (the round leader runs
    /// chunk 0 itself); with `pin` set it first pins itself to core
    /// `(w + 1) mod cores` (see the module docs). A pin the platform or
    /// kernel refuses is tolerated; the worker just runs unpinned.
    pub(crate) fn with_pinning(workers: usize, pin: bool) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                round: 0,
                job: None,
                active: 0,
                worker_panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let pinned = Arc::new(AtomicU64::new(0));
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let pinned = Arc::clone(&pinned);
                std::thread::spawn(move || {
                    if pin && pin_current_thread((w + 1) % cores) {
                        pinned.fetch_add(1, Ordering::Relaxed);
                    }
                    worker_loop(&shared, w + 1);
                })
            })
            .collect();
        QuotePool {
            shared,
            workers: handles,
            pinned,
        }
    }

    /// Worker threads in the pool (chunk indexes 1..=workers).
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Workers whose core pin took effect (0 when pinning was off, on a
    /// non-Linux target, or wherever the kernel refused the mask).
    /// Telemetry only — results never depend on placement.
    pub(crate) fn pinned_workers(&self) -> u64 {
        self.pinned.load(Ordering::Relaxed)
    }

    /// Runs one round: every worker calls `job(its chunk index)`, the
    /// caller runs `job(0)` concurrently, and `run` returns only after
    /// all calls completed — **including when `job` panics**, on either
    /// side. A leader panic still waits for every worker before
    /// unwinding (the pointer must never outlive the round); a worker
    /// panic is caught so the round completes, then re-raised here —
    /// the same observable behavior `std::thread::scope` gave the old
    /// per-round spawns. `job` must tolerate chunk indexes beyond the
    /// round's real chunk count (return immediately).
    ///
    /// # Panics
    /// Re-raises a panic from any worker's `job` call.
    pub(crate) fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        // SAFETY: erasing the borrow's lifetime is sound because this
        // function does not return — by return or by unwind (the
        // `RoundGuard` below) — until `active` is zero, i.e. until no
        // worker can touch the pointer again (see module docs).
        #[allow(unsafe_code)]
        let erased = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                job as *const (dyn Fn(usize) + Sync),
            )
        });
        {
            let mut st = lock_ignoring_poison(&self.shared.state);
            debug_assert_eq!(st.active, 0, "previous round still running");
            st.job = Some(erased);
            st.round = st.round.wrapping_add(1);
            st.active = self.workers.len();
            st.worker_panicked = false;
            drop(st);
            self.shared.work.notify_all();
        }

        /// Blocks until the round drains, whether the leader's `job(0)`
        /// returned or unwound — the soundness linchpin of the erased
        /// lifetime above.
        struct RoundGuard<'a>(&'a Shared);
        impl Drop for RoundGuard<'_> {
            fn drop(&mut self) {
                let mut st = lock_ignoring_poison(&self.0.state);
                while st.active > 0 {
                    st = wait_ignoring_poison(&self.0.done, st);
                }
                st.job = None;
            }
        }
        let guard = RoundGuard(&self.shared);
        // The leader contributes chunk 0 while workers run theirs.
        job(0);
        drop(guard);
        if lock_ignoring_poison(&self.shared.state).worker_panicked {
            panic!("quote worker panicked");
        }
    }
}

/// Locks a pool mutex, continuing through poison: the pool's own
/// invariants (counters, flags) are maintained under the lock without
/// running user code, so a poisoned state is still consistent — and the
/// unwind paths that get here must not double-panic.
fn lock_ignoring_poison<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`lock_ignoring_poison`], for condvar waits.
fn wait_ignoring_poison<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Drop for QuotePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("quote pool poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, chunk: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock_ignoring_poison(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.round != seen {
                    seen = st.round;
                    break st.job.as_ref().expect("round published without job").0;
                }
                st = wait_ignoring_poison(&shared.work, st);
            }
        };
        // A panicking job must still decrement `active` — otherwise the
        // leader waits forever — so catch, record, and let the leader
        // re-raise after the round. (`AssertUnwindSafe`: nothing of the
        // worker's survives the catch except the flag.)
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: `run` keeps the closure (and its borrows) alive
            // until this worker decrements `active` below.
            #[allow(unsafe_code)]
            unsafe {
                (*job)(chunk);
            }
        }));
        let mut st = lock_ignoring_poison(&shared.state);
        if outcome.is_err() {
            st.worker_panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once_per_round() {
        let pool = QuotePool::with_pinning(3, false);
        assert_eq!(pool.workers(), 3);
        for _ in 0..50 {
            let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(&|chunk| {
                counts[chunk].fetch_add(1, Ordering::SeqCst);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "chunk {i}");
            }
        }
    }

    #[test]
    fn rounds_see_fresh_borrows() {
        // Each round borrows a different stack-local — the lifetime-erase
        // protocol must confine every use to its own round.
        let pool = QuotePool::with_pinning(2, false);
        for round in 0..20usize {
            let sum = AtomicUsize::new(0);
            let local = [round; 3];
            pool.run(&|chunk| {
                if chunk < local.len() {
                    sum.fetch_add(local[chunk], Ordering::SeqCst);
                }
            });
            assert_eq!(sum.load(Ordering::SeqCst), round * 3);
        }
    }

    #[test]
    fn chunk_slices_dispense_disjoint_exclusive_chunks() {
        let mut data = [0u32; 10];
        let slices = ChunkSlices::new(&mut data, 4);
        assert_eq!(slices.chunks(), 3);
        let a = slices.take(0).expect("first claim");
        assert!(slices.take(0).is_none(), "double claim refused");
        let b = slices.take(2).expect("tail chunk");
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2, "last chunk is the remainder");
        assert!(slices.take(3).is_none(), "out of range");
        a[0] = 7;
        b[1] = 9;
        drop(slices);
        assert_eq!(data[0], 7);
        assert_eq!(data[9], 9);
    }

    #[test]
    fn worker_panics_are_caught_drained_and_reraised() {
        let pool = QuotePool::with_pinning(2, false);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|chunk| {
                assert!(chunk != 1, "boom in worker");
            });
        }))
        .expect_err("the worker panic must re-raise in the leader");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "quote worker panicked");
        // The pool survives and runs clean rounds afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn leader_panic_drains_the_round_before_unwinding() {
        let pool = QuotePool::with_pinning(3, false);
        let worker_calls = AtomicUsize::new(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|chunk| {
                if chunk == 0 {
                    panic!("boom in leader");
                }
                worker_calls.fetch_add(1, Ordering::SeqCst);
            });
        }))
        .expect_err("leader panic propagates");
        // The guard waited for every worker, so all three ran to
        // completion before the unwind released the round's borrows.
        assert_eq!(worker_calls.load(Ordering::SeqCst), 3);
        // And the pool is still usable.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pinned_pools_run_rounds_identically() {
        // Whether the pins take is a platform/kernel question; what the
        // pool *computes* must not depend on it.
        let pinned = QuotePool::with_pinning(3, true);
        let unpinned = QuotePool::with_pinning(3, false);
        assert_eq!(unpinned.pinned_workers(), 0, "pinning off means zero pins");
        for round in 0..20usize {
            let sums = [AtomicUsize::new(0), AtomicUsize::new(0)];
            for (which, pool) in [&pinned, &unpinned].into_iter().enumerate() {
                pool.run(&|chunk| {
                    sums[which].fetch_add(round * 10 + chunk, Ordering::SeqCst);
                });
            }
            assert_eq!(
                sums[0].load(Ordering::SeqCst),
                sums[1].load(Ordering::SeqCst)
            );
        }
        assert!(pinned.pinned_workers() <= 3, "at most one pin per worker");
    }

    #[test]
    fn pin_current_thread_does_not_disturb_the_caller() {
        // The syscall either takes or is refused; either way the thread
        // keeps running and the answer is a plain bool.
        let _took = pin_current_thread(0);
        let absurd = pin_current_thread(1 << 20);
        assert!(!absurd, "beyond-mask CPUs are rejected without a syscall");
    }

    #[test]
    fn oversized_chunk_indexes_are_callable() {
        // A pool larger than a round's chunk count simply calls the job
        // with indexes the job ignores.
        let pool = QuotePool::with_pinning(4, false);
        let hits = AtomicUsize::new(0);
        pool.run(&|chunk| {
            if chunk < 2 {
                hits.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
