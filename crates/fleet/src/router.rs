//! Query routing across the fleet's cache nodes.
//!
//! The [`Router`] trait picks which node serves each arriving query.
//! Three strategies ship:
//!
//! * [`RoundRobin`] — oblivious rotation, the classic load-spreading
//!   baseline;
//! * [`LeastOutstanding`] — joins the node with the smallest backlog of
//!   promised-but-undelivered response time (join-the-shortest-queue);
//! * [`CheapestQuote`] — the marketplace extension of the paper's economy:
//!   every node's policy quotes its price `B_Q(t)` for the query and the
//!   cheapest bid wins. Nodes that invested well quote low and attract
//!   the traffic that amortizes their structures — the self-tuning loop
//!   of Section IV-A, played as a competition between clouds.
//!
//! A cheapest-quote round shares one lazily-built, cache-independent
//! [`LazySkeleton`] across every node: the first node whose plan cache
//! misses builds it (through the fleet-wide [`SkeletonCache`] when one
//! is attached), every other node binds it against its own cache state,
//! and a round where every node hits builds nothing. The binding itself
//! is **batched**: the economic nodes of a chunk complete in one
//! structure-major sweep ([`econ::QuoteBatch`]) instead of once per
//! node. With `threads > 1` the chunks fan out over a **persistent**
//! worker pool (spawned once, parked between rounds — see the private
//! `pool` module); the merge folds per-chunk minima in ascending node
//! order, so the winner is **bit-identical** to the sequential scan at
//! any pool size and under either completion path
//! (`tests/fleet_determinism.rs` and `tests/batch_completion.rs` pin
//! this).
//!
//! All strategies break ties toward the lowest node index, so routing is
//! a deterministic function of the (node states, query, time) tuple.

use std::sync::{Arc, Mutex};

use econ::QuoteBatch;
use planner::{LazySkeleton, PlannerContext, SkeletonCache};
use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use workload::Query;

use crate::node::CacheNode;
use crate::pool::{ChunkSlices, QuotePool};

/// A routing strategy.
pub trait Router {
    /// Strategy name as it appears in reports.
    fn name(&self) -> &'static str;

    /// Picks the node (index into `nodes`) that serves `query` at `now`.
    ///
    /// Nodes are borrowed mutably so quote fan-out can hand disjoint
    /// chunks to worker threads; routing itself must not serve the query.
    ///
    /// # Panics
    /// Implementations may panic if `nodes` is empty; fleet configs are
    /// validated to have at least one node.
    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> usize;

    /// The winning bid of the most recent [`Router::route`] call, for
    /// strategies that price queries — `None` for oblivious strategies
    /// (round-robin, least-outstanding) and before the first round. The
    /// flight recorder stamps this into its quote-round events.
    fn last_winning_quote(&self) -> Option<Money> {
        None
    }

    /// Worker threads currently pinned to a core (0 for strategies
    /// without a pool, with pinning off, or where the platform refused
    /// the pins). Telemetry only — routing results never depend on
    /// placement.
    fn pinned_workers(&self) -> u64 {
        0
    }
}

/// Oblivious rotation over the nodes.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        _ctx: &PlannerContext<'_>,
        _query: &Query,
        now: SimTime,
    ) -> usize {
        // Rotate from the cursor to the next routable node (elastic
        // fleets carry draining/booting nodes in the slice).
        for off in 0..nodes.len() {
            let idx = (self.next + off) % nodes.len();
            if nodes[idx].routable(now) {
                self.next = (idx + 1) % nodes.len();
                return idx;
            }
        }
        panic!("no routable node (the control plane must keep at least one active)");
    }
}

/// Join-the-shortest-queue on outstanding backlog seconds.
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl Router for LeastOutstanding {
    fn name(&self) -> &'static str {
        "least-outstanding"
    }

    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        _ctx: &PlannerContext<'_>,
        _query: &Query,
        now: SimTime,
    ) -> usize {
        let mut best = None;
        let mut best_load = f64::INFINITY;
        for (i, node) in nodes.iter().enumerate() {
            if !node.routable(now) {
                continue;
            }
            let load = node.outstanding(now);
            if load < best_load {
                best = Some(i);
                best_load = load;
            }
        }
        best.expect("no routable node (the control plane must keep at least one active)")
    }
}

/// Construction-time options for cheapest-quote routing.
#[derive(Debug, Clone)]
pub struct QuoteOptions {
    /// Workers a quote round fans per-node bids out over (1 =
    /// sequential; clamped to at least 1). Results are invariant in it
    /// by construction.
    pub threads: usize,
    /// Quote with batched structure-major completion
    /// ([`econ::QuoteBatch`]) instead of one completion pass per node.
    /// Bit-identical either way (the `fleet_scale` self-check and
    /// `tests/batch_completion.rs` enforce it); batching is the fast
    /// path and the default — the switch exists for that cross-check.
    pub batching: bool,
    /// Fleet-wide skeleton cache: rounds that must build the query's
    /// [`planner::PlanSkeleton`] first probe this cache under the
    /// query's planning fingerprint, de-duplicating builds across
    /// concurrently simulated cells.
    pub skeletons: Option<Arc<SkeletonCache>>,
    /// Pin pool workers to cores (`sched_setaffinity`): worker `w` is
    /// sticky on chunk `w + 1` every round, so pinning keeps each
    /// chunk's node states resident in one core's private cache. A
    /// placement hint only — results are bit-identical with pinning on,
    /// off, or refused by the platform ([`Router::pinned_workers`]
    /// reports how many pins took). Default on; a no-op off Linux.
    pub pinning: bool,
}

impl Default for QuoteOptions {
    fn default() -> Self {
        QuoteOptions {
            threads: 1,
            batching: true,
            skeletons: None,
            pinning: true,
        }
    }
}

/// Price-based routing: the node quoting the lowest `B_Q(t)` wins the bid.
///
/// The round plans the query at most once (the shared [`LazySkeleton`],
/// built by the first node that needs it — resolved through the
/// fleet-wide [`SkeletonCache`] when one is attached) and gathers
/// per-node completions. With `threads > 1` the nodes split into
/// contiguous chunks fanned out over a **persistent** worker pool
/// ([`QuotePool`]): workers are spawned once and parked between rounds,
/// so the per-round parallelism cost is a wake/park pair instead of
/// thread spawns. Within each chunk the economic nodes' bids come from
/// one batched structure-major completion sweep ([`QuoteBatch`]) unless
/// per-node completion was requested.
///
/// Either way the chosen node is the lowest-indexed minimum bidder: each
/// chunk reports its first minimal bid and the merge folds chunks in
/// ascending node order keeping strict minima — bit-identical to the
/// sequential scan at any pool size.
pub struct CheapestQuote {
    threads: usize,
    batching: bool,
    skeletons: Option<Arc<SkeletonCache>>,
    pinning: bool,
    /// Lazily spawned persistent worker pool (`threads − 1` workers).
    pool: Option<QuotePool>,
    /// Per-chunk reusable batching workspaces; slot `c` is only ever
    /// touched by the round participant running chunk `c`.
    batches: Vec<Mutex<QuoteBatch>>,
    /// Per-chunk round results.
    results: Vec<Mutex<ChunkResult>>,
    /// The winning bid of the most recent round (flight-recorder data;
    /// never consulted by routing itself).
    last_quote: Option<Money>,
}

/// One chunk's contribution to a pooled quote round.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ChunkResult {
    /// The chunk's participant has not reported yet.
    Pending,
    /// The chunk held no routable node (all draining/booting).
    Empty,
    /// The chunk's first minimal bidder and its bid.
    Best(usize, Money),
}

impl std::fmt::Debug for CheapestQuote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheapestQuote")
            .field("threads", &self.threads)
            .field("batching", &self.batching)
            .field("shared_skeletons", &self.skeletons.is_some())
            .field("pinning", &self.pinning)
            .field("pool_live", &self.pool.is_some())
            .finish()
    }
}

impl Default for CheapestQuote {
    fn default() -> Self {
        CheapestQuote::new(1)
    }
}

impl CheapestQuote {
    /// A cheapest-quote router fanning bids out over `threads` workers
    /// (1 = sequential; clamped to at least 1), with batched completion
    /// and no shared skeleton cache.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        CheapestQuote::with_options(QuoteOptions {
            threads,
            ..QuoteOptions::default()
        })
    }

    /// A cheapest-quote router with explicit [`QuoteOptions`].
    #[must_use]
    pub fn with_options(options: QuoteOptions) -> Self {
        CheapestQuote {
            threads: options.threads.max(1),
            batching: options.batching,
            skeletons: options.skeletons,
            pinning: options.pinning,
            pool: None,
            batches: Vec::new(),
            results: Vec::new(),
            last_quote: None,
        }
    }

    /// Grows the per-chunk workspaces to cover `chunks` slots.
    fn ensure_chunk_state(&mut self, chunks: usize) {
        while self.batches.len() < chunks {
            self.batches.push(Mutex::new(QuoteBatch::new()));
        }
        while self.results.len() < chunks {
            self.results.push(Mutex::new(ChunkResult::Pending));
        }
    }

    /// One chunk's scan: the first routable node with the minimal bid,
    /// quoting every node individually (the per-node reference path).
    /// `None` when the chunk holds no routable node (elastic fleets carry
    /// draining/booting nodes in the slice; they neither bid nor plan).
    fn chunk_best_per_node(
        nodes: &[CacheNode],
        base: usize,
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> Option<(usize, Money)> {
        let mut best: Option<(usize, Money)> = None;
        for (j, node) in nodes.iter().enumerate() {
            if !node.routable(now) {
                continue;
            }
            let bid = node.quote_with_skeleton(ctx, query, skeleton, now);
            if best.is_none_or(|(_, b)| bid < b) {
                best = Some((base + j, bid));
            }
        }
        best
    }

    /// One chunk's scan with bids drawn from a batched structure-major
    /// completion round — identical bids, hence identical winner.
    /// Unroutable nodes are excluded from the batch entirely (no
    /// classification, no completion, no memo warming), exactly as the
    /// per-node path skips them.
    fn chunk_best_batched(
        batch: &mut QuoteBatch,
        nodes: &[CacheNode],
        base: usize,
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> Option<(usize, Money)> {
        let bids = batch.quote_round(
            nodes.len(),
            |j| {
                if nodes[j].routable(now) {
                    nodes[j].economy()
                } else {
                    None
                }
            },
            |j| {
                if nodes[j].routable(now) {
                    nodes[j].quote_with_skeleton(ctx, query, skeleton, now)
                } else {
                    Money::ZERO // placeholder; unroutable bids are never read
                }
            },
            ctx,
            query,
            skeleton,
            now,
        );
        let mut best: Option<(usize, Money)> = None;
        for (j, &bid) in bids.iter().enumerate() {
            if !nodes[j].routable(now) {
                continue;
            }
            if best.is_none_or(|(_, b)| bid < b) {
                best = Some((base + j, bid));
            }
        }
        best
    }

    /// Sequential scan (one chunk spanning every node).
    fn route_sequential(
        &mut self,
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> usize {
        let best = if self.batching {
            self.ensure_chunk_state(1);
            let batch = self.batches[0].get_mut().expect("batch workspace poisoned");
            Self::chunk_best_batched(batch, nodes, 0, ctx, query, skeleton, now)
        } else {
            Self::chunk_best_per_node(nodes, 0, ctx, query, skeleton, now)
        };
        let (winner, bid) =
            best.expect("no routable node (the control plane must keep at least one active)");
        self.last_quote = Some(bid);
        winner
    }

    /// Persistent-pool scan: nodes split into contiguous chunks, every
    /// pool participant (the caller runs chunk 0) reports its chunk's
    /// first minimal bid, and the fold walks chunks in ascending node
    /// order keeping strict minima — exactly the sequential scan's
    /// lowest-indexed winner.
    fn route_pooled(
        &mut self,
        threads: usize,
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> usize {
        self.ensure_chunk_state(threads);
        // Re-clamp the persistent pool to the round's thread count: an
        // elastic fleet's node population changes mid-run, and `route`
        // clamps `threads` to the *current* population — so the pool must
        // grow back after the population does, and shrink when a smaller
        // population leaves workers that could never claim a chunk
        // (wake/park cost per round for nothing). Population changes are
        // review-cadence rare, so respawning on change is cheap.
        if self
            .pool
            .as_ref()
            .is_none_or(|p| p.workers() + 1 != threads)
        {
            self.pool = Some(QuotePool::with_pinning(threads - 1, self.pinning));
        }
        let chunk_len = nodes.len().div_ceil(threads);
        let slices = ChunkSlices::new(nodes, chunk_len);
        let n_chunks = slices.chunks();
        for slot in &mut self.results[..n_chunks] {
            *slot.get_mut().expect("result slot poisoned") = ChunkResult::Pending;
        }

        let batching = self.batching;
        let batches = &self.batches;
        let results = &self.results;
        let job = |chunk: usize| {
            let Some(chunk_nodes) = slices.take(chunk) else {
                return; // pool larger than this round's chunk count
            };
            let base = chunk * chunk_len;
            let best = if batching {
                let mut batch = batches[chunk].lock().expect("batch workspace poisoned");
                Self::chunk_best_batched(&mut batch, chunk_nodes, base, ctx, query, skeleton, now)
            } else {
                Self::chunk_best_per_node(chunk_nodes, base, ctx, query, skeleton, now)
            };
            *results[chunk].lock().expect("result slot poisoned") = match best {
                Some((i, bid)) => ChunkResult::Best(i, bid),
                None => ChunkResult::Empty,
            };
        };
        self.pool.as_ref().expect("pool just ensured").run(&job);

        let mut best: Option<(usize, Money)> = None;
        for slot in &self.results[..n_chunks] {
            match *slot.lock().expect("result slot poisoned") {
                ChunkResult::Pending => unreachable!("every chunk computed"),
                ChunkResult::Empty => {}
                ChunkResult::Best(i, bid) => {
                    if best.is_none_or(|(_, b)| bid < b) {
                        best = Some((i, bid));
                    }
                }
            }
        }
        let (winner, bid) =
            best.expect("no routable node (the control plane must keep at least one active)");
        self.last_quote = Some(bid);
        winner
    }
}

impl Router for CheapestQuote {
    fn name(&self) -> &'static str {
        "cheapest-quote"
    }

    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> usize {
        // The cache-independent half of every node's planning: built at
        // most once per round, by the first node whose memo misses —
        // resolved through the fleet-wide cache when one is attached.
        // (The Arc clone keeps the cache borrowable for the round while
        // `self` is mutably borrowed below.)
        let shared = self.skeletons.clone();
        let skeleton = match &shared {
            Some(cache) => LazySkeleton::with_cache(ctx, query, cache),
            None => LazySkeleton::new(ctx, query),
        };
        let threads = self.threads.min(nodes.len());
        if threads <= 1 {
            self.route_sequential(nodes, ctx, query, &skeleton, now)
        } else {
            self.route_pooled(threads, nodes, ctx, query, &skeleton, now)
        }
    }

    fn last_winning_quote(&self) -> Option<Money> {
        self.last_quote
    }

    fn pinned_workers(&self) -> u64 {
        self.pool.as_ref().map_or(0, QuotePool::pinned_workers)
    }
}

/// Serializable selector for the shipped routing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`].
    LeastOutstanding,
    /// [`CheapestQuote`].
    CheapestQuote,
}

impl RouterKind {
    /// All shipped strategies, in comparison order.
    #[must_use]
    pub fn all() -> [RouterKind; 3] {
        [
            RouterKind::RoundRobin,
            RouterKind::LeastOutstanding,
            RouterKind::CheapestQuote,
        ]
    }

    /// Display name (matches the instantiated router's
    /// [`Router::name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::CheapestQuote => "cheapest-quote",
        }
    }

    /// Instantiates a fresh router of this kind. `quote` configures the
    /// cheapest-quote strategy (pool size, batching, shared skeletons)
    /// and is ignored by the other strategies; results are invariant in
    /// every quote option by construction.
    #[must_use]
    pub fn make(&self, quote: QuoteOptions) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::<RoundRobin>::default(),
            RouterKind::LeastOutstanding => Box::new(LeastOutstanding),
            RouterKind::CheapestQuote => Box::new(CheapestQuote::with_options(quote)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_names_line_up() {
        for kind in RouterKind::all() {
            assert_eq!(kind.make(QuoteOptions::default()).name(), kind.name());
        }
    }

    #[test]
    fn round_robin_cycles() {
        // Routing choices that need no node state can be checked without
        // building nodes by driving the counter directly.
        let mut rr = RoundRobin::default();
        assert_eq!(rr.next, 0);
        rr.next = 3;
        assert_eq!(rr.next % 4, 3);
    }

    #[test]
    fn cheapest_quote_clamps_thread_count() {
        let r = CheapestQuote::new(0);
        assert_eq!(r.threads, 1);
        assert_eq!(CheapestQuote::new(8).threads, 8);
        assert!(r.pool.is_none(), "pool is lazy");
        assert!(r.batching, "batched completion is the default");
    }

    #[test]
    fn pool_reclamps_when_the_node_population_changes() {
        use catalog::tpch::{tpch_schema, ScaleFactor};
        use planner::{generate_candidates, CostParams, Estimator};
        use pricing::PriceCatalog;
        use simulator::Scheme;
        use std::sync::Arc;
        use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            simcore::NetworkModel::paper_sdss(),
        );
        let ctx = PlannerContext {
            schema: &schema,
            candidates: &candidates,
            cand_index: &cand_index,
            estimator: &estimator,
        };
        let econ = econ::EconConfig::default();
        let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 5);
        let mut nodes: Vec<CacheNode> = (0..4)
            .map(|i| {
                crate::node::CacheNode::new(
                    i,
                    &crate::node::NodeSpec::new(Scheme::EconCheap),
                    &schema,
                    &econ,
                )
            })
            .collect();

        let mut r = CheapestQuote::new(8);
        let now = SimTime::from_secs(1.0);
        let q = gen.next_query();
        let _ = r.route(&mut nodes, &ctx, &q, now);
        // 8 requested threads clamp to the 4-node population: 3 workers.
        assert_eq!(r.pool.as_ref().expect("pool spawned").workers(), 3);

        // The population shrinks (elastic scale-down): the pool follows.
        let q = gen.next_query();
        let _ = r.route(&mut nodes[..2], &ctx, &q, SimTime::from_secs(2.0));
        assert_eq!(r.pool.as_ref().expect("pool live").workers(), 1);

        // …and grows back when the population does.
        let q = gen.next_query();
        let _ = r.route(&mut nodes, &ctx, &q, SimTime::from_secs(3.0));
        assert_eq!(r.pool.as_ref().expect("pool live").workers(), 3);
    }

    #[test]
    fn draining_nodes_are_never_routed() {
        use catalog::tpch::{tpch_schema, ScaleFactor};
        use planner::{generate_candidates, CostParams, Estimator};
        use pricing::PriceCatalog;
        use simulator::Scheme;
        use std::sync::Arc;
        use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            simcore::NetworkModel::paper_sdss(),
        );
        let ctx = PlannerContext {
            schema: &schema,
            candidates: &candidates,
            cand_index: &cand_index,
            estimator: &estimator,
        };
        let econ = econ::EconConfig::default();
        let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 9);
        let mut nodes: Vec<CacheNode> = (0..3)
            .map(|i| {
                crate::node::CacheNode::new(
                    i,
                    &crate::node::NodeSpec::new(Scheme::EconCheap),
                    &schema,
                    &econ,
                )
            })
            .collect();
        nodes[0].begin_drain(SimTime::from_secs(0.5));

        let mut rr = RoundRobin::default();
        let mut lo = LeastOutstanding;
        let mut cq_batched = CheapestQuote::new(1);
        let mut cq_per_node = CheapestQuote::with_options(QuoteOptions {
            batching: false,
            ..QuoteOptions::default()
        });
        for i in 0..12 {
            let now = SimTime::from_secs(1.0 + i as f64);
            let q = gen.next_query();
            assert_ne!(rr.route(&mut nodes, &ctx, &q, now), 0, "round-robin");
            assert_ne!(lo.route(&mut nodes, &ctx, &q, now), 0, "least-outstanding");
            assert_ne!(cq_batched.route(&mut nodes, &ctx, &q, now), 0, "cq batched");
            assert_ne!(
                cq_per_node.route(&mut nodes, &ctx, &q, now),
                0,
                "cq per-node"
            );
        }
    }
}
