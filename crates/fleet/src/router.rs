//! Query routing across the fleet's cache nodes.
//!
//! The [`Router`] trait picks which node serves each arriving query.
//! Three strategies ship:
//!
//! * [`RoundRobin`] — oblivious rotation, the classic load-spreading
//!   baseline;
//! * [`LeastOutstanding`] — joins the node with the smallest backlog of
//!   promised-but-undelivered response time (join-the-shortest-queue);
//! * [`CheapestQuote`] — the marketplace extension of the paper's economy:
//!   every node's policy quotes its price `B_Q(t)` for the query
//!   ([`policies::CachePolicy::quote`]) and the cheapest bid wins. Nodes
//!   that invested well quote low and attract the traffic that amortizes
//!   their structures — the self-tuning loop of Section IV-A, played as a
//!   competition between clouds.
//!
//! All strategies break ties toward the lowest node index, so routing is
//! a deterministic function of the (node states, query, time) tuple.

use planner::PlannerContext;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use workload::Query;

use crate::node::CacheNode;

/// A routing strategy.
pub trait Router {
    /// Strategy name as it appears in reports.
    fn name(&self) -> &'static str;

    /// Picks the node (index into `nodes`) that serves `query` at `now`.
    ///
    /// # Panics
    /// Implementations may panic if `nodes` is empty; fleet configs are
    /// validated to have at least one node.
    fn route(
        &mut self,
        nodes: &[CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> usize;
}

/// Oblivious rotation over the nodes.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(
        &mut self,
        nodes: &[CacheNode],
        _ctx: &PlannerContext<'_>,
        _query: &Query,
        _now: SimTime,
    ) -> usize {
        let chosen = self.next % nodes.len();
        self.next = (self.next + 1) % nodes.len();
        chosen
    }
}

/// Join-the-shortest-queue on outstanding backlog seconds.
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl Router for LeastOutstanding {
    fn name(&self) -> &'static str {
        "least-outstanding"
    }

    fn route(
        &mut self,
        nodes: &[CacheNode],
        _ctx: &PlannerContext<'_>,
        _query: &Query,
        now: SimTime,
    ) -> usize {
        let mut best = 0;
        let mut best_load = f64::INFINITY;
        for (i, node) in nodes.iter().enumerate() {
            let load = node.outstanding(now);
            if load < best_load {
                best = i;
                best_load = load;
            }
        }
        best
    }
}

/// Price-based routing: the node quoting the lowest `B_Q(t)` wins the bid.
#[derive(Debug, Default)]
pub struct CheapestQuote;

impl Router for CheapestQuote {
    fn name(&self) -> &'static str {
        "cheapest-quote"
    }

    fn route(
        &mut self,
        nodes: &[CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> usize {
        let mut best = 0;
        let mut best_bid = None;
        for (i, node) in nodes.iter().enumerate() {
            let bid = node.quote(ctx, query, now);
            if best_bid.is_none_or(|b| bid < b) {
                best = i;
                best_bid = Some(bid);
            }
        }
        best
    }
}

/// Serializable selector for the shipped routing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`].
    LeastOutstanding,
    /// [`CheapestQuote`].
    CheapestQuote,
}

impl RouterKind {
    /// All shipped strategies, in comparison order.
    #[must_use]
    pub fn all() -> [RouterKind; 3] {
        [
            RouterKind::RoundRobin,
            RouterKind::LeastOutstanding,
            RouterKind::CheapestQuote,
        ]
    }

    /// Display name (matches the instantiated router's
    /// [`Router::name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::CheapestQuote => "cheapest-quote",
        }
    }

    /// Instantiates a fresh router of this kind.
    #[must_use]
    pub fn make(&self) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::<RoundRobin>::default(),
            RouterKind::LeastOutstanding => Box::new(LeastOutstanding),
            RouterKind::CheapestQuote => Box::new(CheapestQuote),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_names_line_up() {
        for kind in RouterKind::all() {
            assert_eq!(kind.make().name(), kind.name());
        }
    }

    #[test]
    fn round_robin_cycles() {
        // Routing choices that need no node state can be checked without
        // building nodes by driving the counter directly.
        let mut rr = RoundRobin::default();
        assert_eq!(rr.next, 0);
        rr.next = 3;
        assert_eq!(rr.next % 4, 3);
    }
}
