//! Query routing across the fleet's cache nodes.
//!
//! The [`Router`] trait picks which node serves each arriving query.
//! Three strategies ship:
//!
//! * [`RoundRobin`] — oblivious rotation, the classic load-spreading
//!   baseline;
//! * [`LeastOutstanding`] — joins the node with the smallest backlog of
//!   promised-but-undelivered response time (join-the-shortest-queue);
//! * [`CheapestQuote`] — the marketplace extension of the paper's economy:
//!   every node's policy quotes its price `B_Q(t)` for the query and the
//!   cheapest bid wins. Nodes that invested well quote low and attract
//!   the traffic that amortizes their structures — the self-tuning loop
//!   of Section IV-A, played as a competition between clouds.
//!
//! A cheapest-quote round shares one lazily-built, cache-independent
//! [`LazySkeleton`] across every node: the first node whose plan cache
//! misses builds it, every other node binds it against its own cache
//! state ([`CacheNode::quote_with_skeleton`]), and a round where every
//! node hits builds nothing — the per-node work drops from full
//! enumeration to the cheap completion phase. With
//! `quote_threads > 1` the completions fan out over a scoped worker
//! pool; the merge folds per-chunk minima in ascending node order, so
//! the winner is **bit-identical** to the sequential scan at any thread
//! count (`tests/fleet_determinism.rs` pins this).
//!
//! All strategies break ties toward the lowest node index, so routing is
//! a deterministic function of the (node states, query, time) tuple.

use planner::{LazySkeleton, PlannerContext};
use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use workload::Query;

use crate::node::CacheNode;

/// A routing strategy.
pub trait Router {
    /// Strategy name as it appears in reports.
    fn name(&self) -> &'static str;

    /// Picks the node (index into `nodes`) that serves `query` at `now`.
    ///
    /// Nodes are borrowed mutably so quote fan-out can hand disjoint
    /// chunks to worker threads; routing itself must not serve the query.
    ///
    /// # Panics
    /// Implementations may panic if `nodes` is empty; fleet configs are
    /// validated to have at least one node.
    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> usize;
}

/// Oblivious rotation over the nodes.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        _ctx: &PlannerContext<'_>,
        _query: &Query,
        _now: SimTime,
    ) -> usize {
        let chosen = self.next % nodes.len();
        self.next = (self.next + 1) % nodes.len();
        chosen
    }
}

/// Join-the-shortest-queue on outstanding backlog seconds.
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl Router for LeastOutstanding {
    fn name(&self) -> &'static str {
        "least-outstanding"
    }

    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        _ctx: &PlannerContext<'_>,
        _query: &Query,
        now: SimTime,
    ) -> usize {
        let mut best = 0;
        let mut best_load = f64::INFINITY;
        for (i, node) in nodes.iter().enumerate() {
            let load = node.outstanding(now);
            if load < best_load {
                best = i;
                best_load = load;
            }
        }
        best
    }
}

/// Price-based routing: the node quoting the lowest `B_Q(t)` wins the bid.
///
/// The round plans the query at most once (the shared [`LazySkeleton`],
/// built by the first node that needs it) and gathers per-node
/// completions — sequentially, or from a scoped worker pool when
/// constructed with more than one thread. Either way the chosen node is
/// the lowest-indexed minimum bidder, bit-identical across thread
/// counts.
#[derive(Debug)]
pub struct CheapestQuote {
    threads: usize,
}

impl Default for CheapestQuote {
    fn default() -> Self {
        CheapestQuote::new(1)
    }
}

impl CheapestQuote {
    /// A cheapest-quote router fanning bids out over `threads` workers
    /// (1 = sequential; clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        CheapestQuote {
            threads: threads.max(1),
        }
    }

    /// Sequential reference scan: first node with the minimal bid.
    fn route_sequential(
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> usize {
        let mut best = 0;
        let mut best_bid = None;
        for (i, node) in nodes.iter().enumerate() {
            let bid = node.quote_with_skeleton(ctx, query, skeleton, now);
            if best_bid.is_none_or(|b| bid < b) {
                best = i;
                best_bid = Some(bid);
            }
        }
        best
    }

    /// Worker-pool scan: nodes split into contiguous chunks, each worker
    /// returns its chunk's first minimal bid, and the fold walks chunks
    /// in ascending node order keeping strict minima — exactly the
    /// sequential scan's lowest-indexed winner.
    fn route_pooled(
        threads: usize,
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> usize {
        let chunk_len = nodes.len().div_ceil(threads);
        let chunk_best: Vec<(usize, Money)> = std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .chunks_mut(chunk_len)
                .enumerate()
                .map(|(c, chunk)| {
                    scope.spawn(move || {
                        let base = c * chunk_len;
                        let mut best: Option<(usize, Money)> = None;
                        for (j, node) in chunk.iter().enumerate() {
                            let bid = node.quote_with_skeleton(ctx, query, skeleton, now);
                            if best.is_none_or(|(_, b)| bid < b) {
                                best = Some((base + j, bid));
                            }
                        }
                        best.expect("config validation: chunks are non-empty")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("quote worker panicked"))
                .collect()
        });
        let mut best = chunk_best[0];
        for &(i, bid) in &chunk_best[1..] {
            if bid < best.1 {
                best = (i, bid);
            }
        }
        best.0
    }
}

impl Router for CheapestQuote {
    fn name(&self) -> &'static str {
        "cheapest-quote"
    }

    fn route(
        &mut self,
        nodes: &mut [CacheNode],
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> usize {
        // The cache-independent half of every node's planning: built at
        // most once per round, by the first node whose memo misses.
        let skeleton = LazySkeleton::new(ctx, query);
        let threads = self.threads.min(nodes.len());
        if threads <= 1 {
            Self::route_sequential(nodes, ctx, query, &skeleton, now)
        } else {
            Self::route_pooled(threads, nodes, ctx, query, &skeleton, now)
        }
    }
}

/// Serializable selector for the shipped routing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`].
    LeastOutstanding,
    /// [`CheapestQuote`].
    CheapestQuote,
}

impl RouterKind {
    /// All shipped strategies, in comparison order.
    #[must_use]
    pub fn all() -> [RouterKind; 3] {
        [
            RouterKind::RoundRobin,
            RouterKind::LeastOutstanding,
            RouterKind::CheapestQuote,
        ]
    }

    /// Display name (matches the instantiated router's
    /// [`Router::name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstanding => "least-outstanding",
            RouterKind::CheapestQuote => "cheapest-quote",
        }
    }

    /// Instantiates a fresh router of this kind. `quote_threads` sizes
    /// the cheapest-quote worker pool (ignored by the other strategies);
    /// results are invariant in it by construction.
    #[must_use]
    pub fn make(&self, quote_threads: usize) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::<RoundRobin>::default(),
            RouterKind::LeastOutstanding => Box::new(LeastOutstanding),
            RouterKind::CheapestQuote => Box::new(CheapestQuote::new(quote_threads)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_names_line_up() {
        for kind in RouterKind::all() {
            assert_eq!(kind.make(1).name(), kind.name());
        }
    }

    #[test]
    fn round_robin_cycles() {
        // Routing choices that need no node state can be checked without
        // building nodes by driving the counter directly.
        let mut rr = RoundRobin::default();
        assert_eq!(rr.next, 0);
        rr.next = 3;
        assert_eq!(rr.next % 4, 3);
    }

    #[test]
    fn cheapest_quote_clamps_thread_count() {
        let r = CheapestQuote::new(0);
        assert_eq!(r.threads, 1);
        assert_eq!(CheapestQuote::new(8).threads, 8);
    }
}
