//! Tenant populations and the superposed multi-tenant query stream.
//!
//! A [`TenantSpec`] describes one tenant: its workload mix (a full
//! [`WorkloadConfig`]), its arrival process and how many queries it
//! submits. A population of tenants is superposed into a single
//! time-ordered stream by [`MergedStream`], a binary-heap merge built on
//! [`simcore::EventQueue`] (min-first, FIFO on ties), so the fleet serves
//! queries exactly in global arrival order no matter how tenants' clocks
//! interleave.
//!
//! Every tenant derives its own generator and arrival seeds from
//! `(fleet seed, tenant id)` alone — never from the cell or shard it lands
//! on — which is what makes fleet runs invariant under the executor's
//! parallelism (see [`crate::exec`]).

use std::sync::Arc;

use catalog::Schema;
use serde::{Deserialize, Serialize};
use simcore::arrival::ArrivalProcess;
use simcore::{EventQueue, SimRng, SimTime};
use simulator::{make_arrivals, ArrivalKind};
use telemetry::TenantSloSpec;
use workload::{Query, SurgeOverlay, WorkloadConfig, WorkloadGenerator};

/// Identity of one tenant in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

/// One tenant's contract with the fleet: who they are, what they ask, and
/// how their queries arrive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant identity (unique within a fleet).
    pub id: TenantId,
    /// The tenant's workload mix (templates, locality, budget scales).
    pub workload: WorkloadConfig,
    /// The tenant's arrival process.
    pub arrival: ArrivalKind,
    /// Queries this tenant submits over the run.
    pub queries: u64,
    /// The tenant's service-level objective (p99 response target, spend
    /// cap); `None` for tenants without a contract. Purely
    /// observational: the SLO ledger tracks it, nothing routes on it.
    /// Defaults absent so older serialized configs still load.
    #[serde(default)]
    pub slo: Option<TenantSloSpec>,
}

impl TenantSpec {
    /// Derives the tenant's two private seeds (generator, arrivals) from
    /// the fleet seed. Pure function of `(fleet_seed, id)`.
    #[must_use]
    fn seeds(&self, fleet_seed: u64) -> (u64, u64) {
        let mut rng = SimRng::new(
            fleet_seed ^ (u64::from(self.id.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        (rng.next_u64(), rng.next_u64())
    }
}

/// One tenant's live query stream: generator + arrival process + budget
/// of remaining queries.
pub struct TenantStream {
    spec: TenantSpec,
    generator: WorkloadGenerator,
    arrivals: Box<dyn ArrivalProcess>,
    arrival_rng: SimRng,
    remaining: u64,
}

impl TenantStream {
    /// Builds the stream from its spec, deriving seeds from the fleet seed.
    ///
    /// # Panics
    /// Panics if the workload config is invalid.
    #[must_use]
    pub fn new(spec: TenantSpec, schema: Arc<Schema>, fleet_seed: u64) -> Self {
        let (gen_seed, arrival_seed) = spec.seeds(fleet_seed);
        let generator = WorkloadGenerator::new(schema, spec.workload.clone(), gen_seed);
        let arrivals = make_arrivals(&spec.arrival);
        TenantStream {
            remaining: spec.queries,
            spec,
            generator,
            arrivals,
            arrival_rng: SimRng::new(arrival_seed),
        }
    }

    /// [`Self::new`], with the fault plan's flash-crowd surge windows
    /// (`(start, end, boost)`, sorted and disjoint) layered on the
    /// tenant's arrival process. Seeds and the underlying random draws
    /// are untouched — the overlay only time-warps the output instants —
    /// so surge runs remain shard- and pool-invariant.
    ///
    /// # Panics
    /// Panics if the workload config or the surge windows are invalid.
    #[must_use]
    pub fn with_surges(
        spec: TenantSpec,
        schema: Arc<Schema>,
        fleet_seed: u64,
        windows: Vec<(f64, f64, f64)>,
    ) -> Self {
        let (gen_seed, arrival_seed) = spec.seeds(fleet_seed);
        let generator = WorkloadGenerator::new(schema, spec.workload.clone(), gen_seed);
        let arrivals = Box::new(SurgeOverlay::new(make_arrivals(&spec.arrival), windows));
        TenantStream {
            remaining: spec.queries,
            spec,
            generator,
            arrivals,
            arrival_rng: SimRng::new(arrival_seed),
        }
    }

    /// The spec this stream was built from.
    #[must_use]
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Next `(arrival, query)` of this tenant, or `None` when its query
    /// budget is exhausted.
    pub fn next_arrival(&mut self) -> Option<(SimTime, Query)> {
        if self.remaining == 0 {
            return None;
        }
        let at = self.arrivals.next_arrival(&mut self.arrival_rng)?;
        self.remaining -= 1;
        Some((at, self.generator.next_query()))
    }
}

/// The superposed fleet stream: a binary-heap merge of tenant streams.
///
/// Pulls one pending arrival per tenant into a min-first event queue and
/// refills from the popped tenant, so memory is `O(tenants)` and each pop
/// is `O(log tenants)`. Ties on the arrival instant break FIFO (stable in
/// tenant order for the initial fill), keeping the merged order a pure
/// function of the tenant population.
pub struct MergedStream {
    streams: Vec<TenantStream>,
    queue: EventQueue<(usize, Query)>,
}

impl MergedStream {
    /// Builds the merge, priming the heap with each tenant's first arrival.
    #[must_use]
    pub fn new(streams: Vec<TenantStream>) -> Self {
        let mut merged = MergedStream {
            streams,
            queue: EventQueue::new(),
        };
        for i in 0..merged.streams.len() {
            merged.refill(i);
        }
        merged
    }

    fn refill(&mut self, ordinal: usize) {
        if let Some((at, query)) = self.streams[ordinal].next_arrival() {
            self.queue.schedule(at, (ordinal, query));
        }
    }

    /// Pending tenants (streams not yet exhausted have an entry queued).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl Iterator for MergedStream {
    type Item = (SimTime, TenantId, Query);

    /// Pops the globally earliest arrival across all tenants.
    fn next(&mut self) -> Option<Self::Item> {
        let (at, (ordinal, query)) = self.queue.pop()?;
        let tenant = self.streams[ordinal].spec().id;
        self.refill(ordinal);
        Some((at, tenant, query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};

    fn schema() -> Arc<Schema> {
        Arc::new(tpch_schema(ScaleFactor(1.0)))
    }

    fn spec(id: u32, interval: f64, queries: u64) -> TenantSpec {
        TenantSpec {
            id: TenantId(id),
            workload: WorkloadConfig::default(),
            arrival: ArrivalKind::Fixed {
                interval_secs: interval,
            },
            queries,
            slo: None,
        }
    }

    #[test]
    fn merge_is_globally_time_ordered() {
        let schema = schema();
        let streams: Vec<TenantStream> = [spec(0, 3.0, 10), spec(1, 5.0, 10), spec(2, 7.0, 10)]
            .into_iter()
            .map(|s| TenantStream::new(s, Arc::clone(&schema), 42))
            .collect();
        let merged = MergedStream::new(streams);
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        for (at, _, _) in merged {
            assert!(at >= prev, "merge went backwards");
            prev = at;
            count += 1;
        }
        assert_eq!(count, 30);
    }

    #[test]
    fn merge_respects_query_budgets() {
        let schema = schema();
        let streams = vec![
            TenantStream::new(spec(0, 1.0, 3), Arc::clone(&schema), 1),
            TenantStream::new(spec(1, 1.0, 5), Arc::clone(&schema), 1),
        ];
        let merged = MergedStream::new(streams);
        let mut per_tenant = [0u64; 2];
        for (_, tenant, _) in merged {
            per_tenant[tenant.0 as usize] += 1;
        }
        assert_eq!(per_tenant, [3, 5]);
    }

    #[test]
    fn tenant_streams_are_independent_of_population() {
        // Tenant 1's queries must be identical whether or not tenant 0
        // exists — the property cell partitioning relies on.
        let schema = schema();
        let solo: Vec<_> = {
            let mut m = MergedStream::new(vec![TenantStream::new(
                spec(1, 2.0, 5),
                Arc::clone(&schema),
                7,
            )]);
            std::iter::from_fn(|| m.next()).collect()
        };
        let duo: Vec<_> = {
            let mut m = MergedStream::new(vec![
                TenantStream::new(spec(0, 3.0, 5), Arc::clone(&schema), 7),
                TenantStream::new(spec(1, 2.0, 5), Arc::clone(&schema), 7),
            ]);
            std::iter::from_fn(|| m.next())
                .filter(|(_, t, _)| *t == TenantId(1))
                .collect()
        };
        assert_eq!(solo.len(), duo.len());
        for ((at_a, _, q_a), (at_b, _, q_b)) in solo.iter().zip(&duo) {
            assert_eq!(at_a, at_b);
            assert_eq!(q_a, q_b);
        }
    }

    #[test]
    fn fixed_interval_ties_break_in_tenant_order() {
        let schema = schema();
        let streams = vec![
            TenantStream::new(spec(0, 4.0, 2), Arc::clone(&schema), 9),
            TenantStream::new(spec(1, 4.0, 2), Arc::clone(&schema), 9),
        ];
        let mut merged = MergedStream::new(streams);
        let order: Vec<u32> = std::iter::from_fn(|| merged.next())
            .map(|(_, t, _)| t.0)
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1]);
    }
}
