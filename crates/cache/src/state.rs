//! The materialised cache state.

use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

use crate::occupancy::Occupancy;
use crate::structure::StructureKey;

/// Direct-mapped structure storage: slot `id` holds the structure with
/// that dense id. Column ids, candidate-index ids and node ordinals are
/// all small dense integers (bounded by the schema width, the candidate
/// registry and the fleet's node options respectively), so a plain slot
/// vector turns every planner probe — the quote round's hottest
/// operation — into one bounds-checked load instead of a hash lookup.
///
/// Iteration order is ascending id (stable across runs, unlike a
/// `RandomState` map). No `CacheState` consumer depends on iteration
/// order anyway: `failed_structures` sorts its result and the remaining
/// `iter` users are order-independent reductions.
#[derive(Debug, Clone, Default)]
struct DenseSlots {
    slots: Vec<Option<CachedStructure>>,
    live: usize,
}

impl DenseSlots {
    #[inline]
    fn get(&self, id: u32) -> Option<&CachedStructure> {
        match self.slots.get(id as usize) {
            Some(slot) => slot.as_ref(),
            None => None,
        }
    }

    #[inline]
    fn get_mut(&mut self, id: u32) -> Option<&mut CachedStructure> {
        match self.slots.get_mut(id as usize) {
            Some(slot) => slot.as_mut(),
            None => None,
        }
    }

    #[inline]
    fn contains(&self, id: u32) -> bool {
        self.get(id).is_some()
    }

    fn insert(&mut self, id: u32, s: CachedStructure) {
        let at = id as usize;
        if at >= self.slots.len() {
            self.slots.resize_with(at + 1, || None);
        }
        debug_assert!(self.slots[at].is_none(), "caller checks for duplicates");
        self.slots[at] = Some(s);
        self.live += 1;
    }

    fn remove(&mut self, id: u32) -> Option<CachedStructure> {
        let removed = self.slots.get_mut(id as usize).and_then(Option::take);
        self.live -= usize::from(removed.is_some());
        removed
    }

    fn values(&self) -> impl Iterator<Item = &CachedStructure> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }
}

/// A structure currently built in the cache, with its economic bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedStructure {
    /// Identity.
    pub key: StructureKey,
    /// Disk footprint (0 for CPU nodes).
    pub size_bytes: u64,
    /// When the build was *started* (investment instant).
    pub built_at: SimTime,
    /// When the structure becomes usable (build start + build duration;
    /// eq. 10's node boot time `b`, or the column-transfer/index-sort time).
    pub available_at: SimTime,
    /// Last instant a selected plan used it (LRU key).
    pub last_used: SimTime,
    /// Maintenance has been reimbursed up to this instant (footnote 3 of
    /// the paper: each selected plan pays the maintenance accrued since the
    /// previous paying plan). Starts at `available_at` — nothing can pay
    /// for a structure that is still being built.
    pub maint_paid_until: SimTime,
    /// Maintenance accrual written off because it exceeded the per-plan
    /// backlog window — the "non-usage" signal that drives structure
    /// failure (footnote 3).
    pub maint_forgiven: Money,
    /// What the cloud paid to build it.
    pub build_cost: Money,
    /// Amortisation installment charged per selected plan that uses it
    /// (`Build(S)/n`, eq. 7).
    pub per_use_charge: Money,
    /// Build cost not yet recouped through installments.
    pub unamortized: Money,
}

impl CachedStructure {
    /// True if usable at `now`.
    #[must_use]
    pub fn is_available(&self, now: SimTime) -> bool {
        self.available_at <= now
    }

    /// The amortisation installment due if a plan selects this structure
    /// now: `min(per_use_charge, unamortized)` — once the build cost is
    /// fully recouped, usage is free of amortisation (the paper's "total
    /// amortization of investment cost").
    #[must_use]
    pub fn amortization_due(&self) -> Money {
        self.per_use_charge.min(self.unamortized)
    }

    /// Records an installment payment.
    pub fn pay_amortization(&mut self, amount: Money) {
        self.unamortized = self.unamortized.saturating_sub(amount);
    }
}

/// Everything currently built in the cloud cache.
///
/// The base CPU node (the one the coordinator always keeps) is *not* a
/// structure — it exists from t = 0 and its cost is part of baseline
/// operating expenditure. Extra nodes, columns and indexes are structures.
#[derive(Debug, Clone, Default)]
pub struct CacheState {
    columns: DenseSlots,
    indexes: DenseSlots,
    nodes: DenseSlots,
    occupancy: Occupancy,
    /// Settled portion of the planning epoch: bumped on every install and
    /// evict, and absorbs [`Self::pending`] entries as time passes them.
    epoch_base: u64,
    /// Availability instants of in-flight builds that have not yet been
    /// folded into `epoch_base`, sorted ascending. A build completing is a
    /// planning-relevant transition (a plan's `missing` set shrinks) even
    /// though no install/evict happens at that instant, so each entry
    /// crossed by the clock contributes +1 to [`Self::epoch`].
    pending: Vec<SimTime>,
    /// Bumped whenever a settlement mutates ledger state the planner
    /// quotes (amortisation dues, maintenance checkpoints) without an
    /// install/evict. See [`Self::settle_seq`].
    settle_seq: u64,
}

impl CacheState {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up any structure by key.
    #[inline]
    #[must_use]
    pub fn get(&self, key: StructureKey) -> Option<&CachedStructure> {
        match key {
            StructureKey::Column(c) => self.columns.get(c.0),
            StructureKey::Index(i) => self.indexes.get(i.0),
            StructureKey::Node(n) => self.nodes.get(n),
        }
    }

    fn get_mut(&mut self, key: StructureKey) -> Option<&mut CachedStructure> {
        match key {
            StructureKey::Column(c) => self.columns.get_mut(c.0),
            StructureKey::Index(i) => self.indexes.get_mut(i.0),
            StructureKey::Node(n) => self.nodes.get_mut(n),
        }
    }

    /// True if the structure exists *and* is usable at `now`.
    #[must_use]
    pub fn is_available(&self, key: StructureKey, now: SimTime) -> bool {
        self.get(key).is_some_and(|s| s.is_available(now))
    }

    /// True if the structure exists (possibly still building).
    #[must_use]
    pub fn contains(&self, key: StructureKey) -> bool {
        self.get(key).is_some()
    }

    /// Number of *extra* CPU nodes usable at `now`.
    #[must_use]
    pub fn available_extra_nodes(&self, now: SimTime) -> u32 {
        self.nodes.values().filter(|s| s.is_available(now)).count() as u32
    }

    /// The lowest free extra-node ordinal (for booting the next node).
    ///
    /// With `n` nodes present, the lowest free ordinal is at most `n` by
    /// pigeonhole, so the probe is bounded by the node count.
    #[must_use]
    pub fn next_node_ordinal(&self) -> u32 {
        (0..=self.nodes.len() as u32)
            .find(|&n| !self.nodes.contains(n))
            .expect("pigeonhole: <= len nodes occupy [0, len]")
    }

    /// The planning epoch at `now`: a monotone counter that changes
    /// whenever the cache state observable by the planner can have changed
    /// — on every install, on every evict, and whenever an in-flight build
    /// crosses its `available_at` instant (a `P_pos` plan's structure
    /// becoming usable moves plans into `P_exist` without any install).
    ///
    /// Two calls with the same epoch (and non-decreasing `now`) are
    /// guaranteed to see the same structure set, the same availability
    /// partition, and the same per-structure amortisation state — which is
    /// what makes "cache unchanged" an O(log n) check for the plan cache.
    /// Per-structure *maintenance accrual* still grows with `now` between
    /// epochs; consumers that quote maintenance must recompute it.
    ///
    /// Monotone as long as `now` is fed in non-decreasing order (the
    /// simulator's arrival order).
    #[must_use]
    pub fn epoch(&self, now: SimTime) -> u64 {
        let crossed = self.pending.partition_point(|&t| t <= now);
        self.epoch_base + crossed as u64
    }

    /// Bumps the settled epoch and folds every pending availability
    /// transition at or before `now`, keeping [`Self::epoch`] continuous:
    /// callers at later instants see `epoch_base` grown by exactly the
    /// entries they previously counted via `partition_point`.
    fn bump_epoch(&mut self, now: SimTime) {
        let crossed = self.pending.partition_point(|&t| t <= now);
        self.pending.drain(..crossed);
        self.epoch_base += crossed as u64 + 1;
    }

    /// Current cache disk usage in bytes.
    #[must_use]
    pub fn disk_used(&self) -> u64 {
        self.occupancy.bytes()
    }

    /// The exact disk byte-seconds integral accrued so far.
    #[must_use]
    pub fn disk_byte_seconds(&self) -> f64 {
        self.occupancy.byte_seconds()
    }

    /// Re-bases the occupancy integral at `now`: accrues to `now`, then
    /// writes off the accumulated byte-seconds while keeping the cached
    /// structures. Crash-recovery replay calls this once after replaying
    /// a settled history, so the recovered cache pays disk rent only
    /// from the recovery instant forward (see [`crate::Occupancy::rebase`]).
    pub fn rebase_occupancy(&mut self, now: SimTime) {
        self.occupancy.rebase(now);
    }

    /// Accrues the occupancy integral up to `now` and folds pending
    /// availability transitions into the settled epoch (keeping
    /// [`Self::epoch`] values continuous while bounding the pending list).
    pub fn advance(&mut self, now: SimTime) {
        self.occupancy.advance(now);
        let crossed = self.pending.partition_point(|&t| t <= now);
        if crossed > 0 {
            self.pending.drain(..crossed);
            self.epoch_base += crossed as u64;
        }
    }

    /// Installs a structure at `now` that becomes available after
    /// `build_time`, with build cost amortised over `amortize_n` uses.
    ///
    /// # Panics
    /// Panics if the structure already exists or `amortize_n == 0`.
    pub fn install(
        &mut self,
        key: StructureKey,
        size_bytes: u64,
        now: SimTime,
        build_time: SimDuration,
        build_cost: Money,
        amortize_n: u64,
    ) {
        assert!(!self.contains(key), "structure {key} already cached");
        assert!(amortize_n > 0, "amortization horizon must be positive");
        let s = CachedStructure {
            key,
            size_bytes,
            built_at: now,
            available_at: now + build_time,
            last_used: now,
            maint_paid_until: now + build_time,
            build_cost,
            per_use_charge: build_cost.amortize_over(amortize_n),
            unamortized: build_cost,
            maint_forgiven: Money::ZERO,
        };
        if key.occupies_disk() {
            self.occupancy.add(now, size_bytes);
        } else {
            self.occupancy.advance(now);
        }
        self.bump_epoch(now);
        if s.available_at > now {
            // The build completing later is itself a planning transition;
            // record it so `epoch` changes when the clock crosses it.
            let at = self.pending.partition_point(|&t| t <= s.available_at);
            self.pending.insert(at, s.available_at);
        }
        match key {
            StructureKey::Column(c) => {
                self.columns.insert(c.0, s);
            }
            StructureKey::Index(i) => {
                self.indexes.insert(i.0, s);
            }
            StructureKey::Node(n) => {
                self.nodes.insert(n, s);
            }
        }
    }

    /// Removes a structure (eviction / failure), freeing its disk.
    ///
    /// Returns the removed structure, or `None` if absent.
    pub fn evict(&mut self, key: StructureKey, now: SimTime) -> Option<CachedStructure> {
        let removed = match key {
            StructureKey::Column(c) => self.columns.remove(c.0),
            StructureKey::Index(i) => self.indexes.remove(i.0),
            StructureKey::Node(n) => self.nodes.remove(n),
        };
        if let Some(ref s) = removed {
            if key.occupies_disk() {
                self.occupancy.remove(now, s.size_bytes);
            } else {
                self.occupancy.advance(now);
            }
            self.bump_epoch(now);
            if s.available_at > now {
                // Evicted while still building: drop its (not yet crossed)
                // pending transition so it cannot fire spuriously later.
                if let Some(pos) = self.pending.iter().position(|&t| t == s.available_at) {
                    self.pending.remove(pos);
                }
            }
        }
        removed
    }

    /// Settlement counter: changes whenever amortisation installments are
    /// collected or maintenance checkpoints move (mutations that shift
    /// quoted plan prices but bump no [`Self::epoch`]). Plan memoization
    /// re-quotes those components when this counter (or the clock) moved
    /// since the memo was priced.
    #[must_use]
    pub fn settle_seq(&self) -> u64 {
        self.settle_seq
    }

    /// Marks structures as used at `now` (LRU refresh).
    pub fn touch(&mut self, keys: &[StructureKey], now: SimTime) {
        for &key in keys {
            if let Some(s) = self.get_mut(key) {
                s.last_used = s.last_used.max(now);
            }
        }
    }

    /// Charges the amortisation installment on each structure and returns
    /// the total charged.
    pub fn charge_amortization(&mut self, keys: &[StructureKey]) -> Money {
        let mut total = Money::ZERO;
        let mut settled = 0;
        for &key in keys {
            if let Some(s) = self.get_mut(key) {
                let due = s.amortization_due();
                s.pay_amortization(due);
                total += due;
                settled += u64::from(!due.is_zero());
            }
        }
        self.settle_seq += settled;
        total
    }

    /// Settles maintenance on each structure up to `now` given a
    /// per-structure maintenance pricer; returns the total due (footnote 3).
    ///
    /// A plan pays for at most `window` of backlog; older accrual is
    /// *written off* into [`CachedStructure::maint_forgiven`] — the
    /// non-usage signal the failure policy consumes. Without the cap, the
    /// first user after a long idle (or build) period would be billed the
    /// whole backlog and no rational budget would ever adopt a freshly
    /// built structure.
    pub fn settle_maintenance<F>(
        &mut self,
        keys: &[StructureKey],
        now: SimTime,
        window: SimDuration,
        price: F,
    ) -> Money
    where
        F: Fn(&CachedStructure, SimDuration) -> Money,
    {
        let mut total = Money::ZERO;
        let mut settled = 0;
        for &key in keys {
            if let Some(s) = self.get_mut(key) {
                let span = now.saturating_since(s.maint_paid_until);
                if !span.is_zero() {
                    let charged_span = span.min(window);
                    total += price(s, charged_span);
                    if span > window {
                        let forgiven =
                            price(s, SimDuration::from_secs(span.as_secs() - window.as_secs()));
                        s.maint_forgiven += forgiven;
                    }
                    s.maint_paid_until = now;
                    settled += 1;
                }
            }
        }
        self.settle_seq += settled;
        total
    }

    /// Settles one selected plan's usage of `keys` in a single pass per
    /// structure: refreshes the LRU stamp, charges the amortisation
    /// installment and settles maintenance up to `now` (capped at
    /// `window`, older backlog written off) — exactly equivalent to
    /// [`Self::touch`] + [`Self::charge_amortization`] +
    /// [`Self::settle_maintenance`], but with one `get_mut` per structure
    /// instead of three.
    ///
    /// Returns `(amortization collected, maintenance collected)`.
    pub fn settle_usage<F>(
        &mut self,
        keys: &[StructureKey],
        now: SimTime,
        window: SimDuration,
        price: F,
    ) -> (Money, Money)
    where
        F: Fn(&CachedStructure, SimDuration) -> Money,
    {
        let mut amortization = Money::ZERO;
        let mut maintenance = Money::ZERO;
        let mut settled = 0;
        for &key in keys {
            if let Some(s) = self.get_mut(key) {
                s.last_used = s.last_used.max(now);
                let due = s.amortization_due();
                s.pay_amortization(due);
                amortization += due;
                let mut changed = !due.is_zero();
                let span = now.saturating_since(s.maint_paid_until);
                if !span.is_zero() {
                    let charged_span = span.min(window);
                    maintenance += price(s, charged_span);
                    if span > window {
                        let forgiven =
                            price(s, SimDuration::from_secs(span.as_secs() - window.as_secs()));
                        s.maint_forgiven += forgiven;
                    }
                    s.maint_paid_until = now;
                    changed = true;
                }
                settled += u64::from(changed);
            }
        }
        self.settle_seq += settled;
        (amortization, maintenance)
    }

    /// All structures, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &CachedStructure> {
        self.columns
            .values()
            .chain(self.indexes.values())
            .chain(self.nodes.values())
    }

    /// Number of structures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len() + self.indexes.len() + self.nodes.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys of structures whose unreimbursed maintenance at `now` (the
    /// written-off backlog plus the accrual since the last payment)
    /// exceeds `fail_factor ×` build cost — the paper's structure
    /// *failure* ("excessive maintenance cost of a structure due to
    /// non-usage of it in selected query plans can be the reason of
    /// structure failure").
    ///
    /// The result is sorted by key so eviction order is independent of
    /// hash-map iteration order.
    #[must_use]
    pub fn failed_structures<F>(
        &self,
        now: SimTime,
        fail_factor: f64,
        price: F,
    ) -> Vec<StructureKey>
    where
        F: Fn(&CachedStructure, SimDuration) -> Money,
    {
        let mut failed: Vec<StructureKey> = self
            .iter()
            .filter(|s| {
                let span = now.saturating_since(s.maint_paid_until);
                let unpaid = s.maint_forgiven + price(s, span);
                let threshold = s.build_cost.scale(fail_factor);
                !threshold.is_zero() && unpaid > threshold
            })
            .map(|s| s.key)
            .collect();
        failed.sort_unstable();
        failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::ColumnId;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn col(i: u32) -> StructureKey {
        StructureKey::Column(ColumnId(i))
    }

    #[test]
    fn install_and_availability() {
        let mut st = CacheState::new();
        st.install(col(1), 1000, t(0.0), d(10.0), Money::from_dollars(5.0), 10);
        assert!(st.contains(col(1)));
        assert!(!st.is_available(col(1), t(5.0)), "still building");
        assert!(st.is_available(col(1), t(10.0)));
        assert_eq!(st.disk_used(), 1000);
        assert_eq!(st.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_install_panics() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(0.0), Money::ZERO, 1);
        st.install(col(1), 10, t(0.0), d(0.0), Money::ZERO, 1);
    }

    #[test]
    fn nodes_do_not_use_disk() {
        let mut st = CacheState::new();
        st.install(
            StructureKey::Node(0),
            0,
            t(0.0),
            d(60.0),
            Money::from_cents(10),
            100,
        );
        assert_eq!(st.disk_used(), 0);
        assert_eq!(st.available_extra_nodes(t(30.0)), 0);
        assert_eq!(st.available_extra_nodes(t(60.0)), 1);
        assert_eq!(st.next_node_ordinal(), 1);
    }

    #[test]
    fn eviction_frees_disk() {
        let mut st = CacheState::new();
        st.install(col(1), 700, t(0.0), d(0.0), Money::ZERO, 1);
        st.install(col(2), 300, t(0.0), d(0.0), Money::ZERO, 1);
        let removed = st.evict(col(1), t(5.0)).unwrap();
        assert_eq!(removed.size_bytes, 700);
        assert_eq!(st.disk_used(), 300);
        assert!(st.evict(col(1), t(5.0)).is_none());
    }

    #[test]
    fn occupancy_integral_tracks_installs_and_evicts() {
        let mut st = CacheState::new();
        st.install(col(1), 100, t(0.0), d(0.0), Money::ZERO, 1);
        st.evict(col(1), t(10.0));
        st.advance(t(20.0));
        assert_eq!(st.disk_byte_seconds(), 1000.0);
    }

    #[test]
    fn amortization_installments_stop_at_build_cost() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(0.0), Money::from_dollars(1.0), 4);
        let uses = [col(1)];
        let mut collected = Money::ZERO;
        for _ in 0..10 {
            collected += st.charge_amortization(&uses);
        }
        assert_eq!(collected, Money::from_dollars(1.0), "never overcharges");
        assert_eq!(st.get(col(1)).unwrap().unamortized, Money::ZERO);
    }

    #[test]
    fn maintenance_settles_incrementally() {
        let mut st = CacheState::new();
        st.install(col(1), 1_000, t(0.0), d(0.0), Money::ZERO, 1);
        // Price: $1 per byte-hour.
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_hours())
        };
        let window = SimDuration::from_hours(10.0);
        let due1 = st.settle_maintenance(&[col(1)], t(3600.0), window, price);
        assert_eq!(due1, Money::from_dollars(1000.0));
        // Immediately settling again owes nothing.
        let due2 = st.settle_maintenance(&[col(1)], t(3600.0), window, price);
        assert_eq!(due2, Money::ZERO);
        let due3 = st.settle_maintenance(&[col(1)], t(7200.0), window, price);
        assert_eq!(due3, Money::from_dollars(1000.0));
    }

    #[test]
    fn touch_refreshes_last_used_monotonically() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(0.0), Money::ZERO, 1);
        st.touch(&[col(1)], t(50.0));
        assert_eq!(st.get(col(1)).unwrap().last_used, t(50.0));
        st.touch(&[col(1)], t(40.0)); // stale touch does not regress
        assert_eq!(st.get(col(1)).unwrap().last_used, t(50.0));
        st.touch(&[col(9)], t(60.0)); // absent key ignored
    }

    #[test]
    fn failure_detection_uses_unpaid_maintenance() {
        let mut st = CacheState::new();
        st.install(col(1), 1_000, t(0.0), d(0.0), Money::from_dollars(1.0), 10);
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_hours() * 0.001)
        };
        // After 1 hour: unpaid = $1.0; threshold at factor 0.5 = $0.5.
        let failed = st.failed_structures(t(3600.0), 0.5, price);
        assert_eq!(failed, vec![col(1)]);
        // Recently settled structures do not fail (full window: nothing
        // is forgiven).
        st.settle_maintenance(&[col(1)], t(3600.0), SimDuration::from_hours(2.0), price);
        assert!(st.failed_structures(t(3600.0), 0.5, price).is_empty());
    }

    #[test]
    fn maintenance_clock_starts_at_availability() {
        let mut st = CacheState::new();
        st.install(col(1), 100, t(0.0), d(50.0), Money::from_dollars(1.0), 10);
        assert_eq!(st.get(col(1)).unwrap().maint_paid_until, t(50.0));
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs())
        };
        // Settling at t=60 owes only the 10 s since availability.
        let due = st.settle_maintenance(&[col(1)], t(60.0), d(1e6), price);
        assert_eq!(due, Money::from_dollars(1000.0));
    }

    #[test]
    fn backlog_beyond_window_is_forgiven_not_charged() {
        let mut st = CacheState::new();
        st.install(col(1), 1, t(0.0), d(0.0), Money::from_dollars(1.0), 10);
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs())
        };
        // 100 s idle, 10 s window: charge 10, forgive 90.
        let due = st.settle_maintenance(&[col(1)], t(100.0), d(10.0), price);
        assert_eq!(due, Money::from_dollars(10.0));
        assert_eq!(
            st.get(col(1)).unwrap().maint_forgiven,
            Money::from_dollars(90.0)
        );
        // Forgiven backlog counts toward failure.
        let failed = st.failed_structures(t(100.0), 1.0, price);
        assert_eq!(failed, vec![col(1)], "write-offs exceed build cost");
    }

    #[test]
    fn epoch_bumps_on_install_and_evict() {
        let mut st = CacheState::new();
        let e0 = st.epoch(t(0.0));
        st.install(col(1), 10, t(0.0), d(0.0), Money::ZERO, 1);
        let e1 = st.epoch(t(0.0));
        assert!(e1 > e0, "install must bump the epoch");
        st.evict(col(1), t(1.0));
        assert!(st.epoch(t(1.0)) > e1, "evict must bump the epoch");
    }

    #[test]
    fn epoch_bumps_when_inflight_build_becomes_available() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(50.0), Money::ZERO, 1);
        let during = st.epoch(t(10.0));
        assert_eq!(
            st.epoch(t(49.9)),
            during,
            "no transition while still building"
        );
        assert_eq!(
            st.epoch(t(50.0)),
            during + 1,
            "availability is a planning transition"
        );
        // Folding via advance must not change observed values.
        st.advance(t(60.0));
        assert_eq!(st.epoch(t(60.0)), during + 1);
    }

    #[test]
    fn epoch_ignores_evicted_inflight_builds() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(100.0), Money::ZERO, 1);
        let e = st.epoch(t(1.0));
        st.evict(col(1), t(1.0)); // still building
        let after_evict = st.epoch(t(1.0));
        assert_eq!(after_evict, e + 1, "evict bumps once");
        assert_eq!(
            st.epoch(t(100.0)),
            after_evict,
            "the dead build's availability must not fire"
        );
    }

    #[test]
    fn epoch_is_monotone_over_a_mixed_sequence() {
        let mut st = CacheState::new();
        let mut last = st.epoch(t(0.0));
        let mut check = |st: &CacheState, now: SimTime| {
            let e = st.epoch(now);
            assert!(e >= last, "epoch regressed: {e} < {last}");
            last = e;
        };
        st.install(col(1), 10, t(0.0), d(5.0), Money::ZERO, 1);
        check(&st, t(0.0));
        st.install(col(2), 10, t(1.0), d(0.0), Money::ZERO, 1);
        check(&st, t(1.0));
        st.advance(t(3.0));
        check(&st, t(3.0));
        check(&st, t(5.0));
        st.evict(col(2), t(6.0));
        check(&st, t(6.0));
        st.advance(t(10.0));
        check(&st, t(10.0));
    }

    #[test]
    fn settle_usage_matches_the_three_pass_equivalent() {
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs() * 1e-3)
        };
        let window = d(40.0);
        let build = |st: &mut CacheState| {
            st.install(col(1), 1_000, t(0.0), d(0.0), Money::from_dollars(1.0), 4);
            st.install(col(2), 500, t(0.0), d(0.0), Money::from_dollars(2.0), 4);
        };
        let keys = [col(1), col(2), col(9)]; // col(9) absent: ignored
        let now = t(100.0);

        let mut a = CacheState::new();
        build(&mut a);
        a.touch(&keys, now);
        let amort_a = a.charge_amortization(&keys);
        let maint_a = a.settle_maintenance(&keys, now, window, price);

        let mut b = CacheState::new();
        build(&mut b);
        let (amort_b, maint_b) = b.settle_usage(&keys, now, window, price);

        assert_eq!(amort_a, amort_b);
        assert_eq!(maint_a, maint_b);
        for &k in &keys[..2] {
            assert_eq!(a.get(k), b.get(k), "per-structure state must match");
        }
    }

    #[test]
    fn failed_structures_are_sorted() {
        let mut st = CacheState::new();
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs())
        };
        for i in (1..6).rev() {
            st.install(col(i), 100, t(0.0), d(0.0), Money::from_dollars(0.001), 1);
        }
        let failed = st.failed_structures(t(1_000.0), 1.0, price);
        assert_eq!(failed.len(), 5);
        assert!(failed.windows(2).all(|w| w[0] < w[1]), "{failed:?}");
    }

    #[test]
    fn next_node_ordinal_fills_gaps() {
        let mut st = CacheState::new();
        for n in 0..3 {
            st.install(StructureKey::Node(n), 0, t(0.0), d(0.0), Money::ZERO, 1);
        }
        assert_eq!(st.next_node_ordinal(), 3);
        st.evict(StructureKey::Node(1), t(1.0));
        assert_eq!(st.next_node_ordinal(), 1);
    }

    #[test]
    fn zero_build_cost_structures_never_fail() {
        let mut st = CacheState::new();
        st.install(col(1), 1_000, t(0.0), d(0.0), Money::ZERO, 1);
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs())
        };
        assert!(st.failed_structures(t(1e6), 1.0, price).is_empty());
    }
}
