//! The materialised cache state.

use catalog::ColumnId;
use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::collections::HashMap;

use crate::occupancy::Occupancy;
use crate::structure::{IndexId, StructureKey};

/// A structure currently built in the cache, with its economic bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedStructure {
    /// Identity.
    pub key: StructureKey,
    /// Disk footprint (0 for CPU nodes).
    pub size_bytes: u64,
    /// When the build was *started* (investment instant).
    pub built_at: SimTime,
    /// When the structure becomes usable (build start + build duration;
    /// eq. 10's node boot time `b`, or the column-transfer/index-sort time).
    pub available_at: SimTime,
    /// Last instant a selected plan used it (LRU key).
    pub last_used: SimTime,
    /// Maintenance has been reimbursed up to this instant (footnote 3 of
    /// the paper: each selected plan pays the maintenance accrued since the
    /// previous paying plan). Starts at `available_at` — nothing can pay
    /// for a structure that is still being built.
    pub maint_paid_until: SimTime,
    /// Maintenance accrual written off because it exceeded the per-plan
    /// backlog window — the "non-usage" signal that drives structure
    /// failure (footnote 3).
    pub maint_forgiven: Money,
    /// What the cloud paid to build it.
    pub build_cost: Money,
    /// Amortisation installment charged per selected plan that uses it
    /// (`Build(S)/n`, eq. 7).
    pub per_use_charge: Money,
    /// Build cost not yet recouped through installments.
    pub unamortized: Money,
}

impl CachedStructure {
    /// True if usable at `now`.
    #[must_use]
    pub fn is_available(&self, now: SimTime) -> bool {
        self.available_at <= now
    }

    /// The amortisation installment due if a plan selects this structure
    /// now: `min(per_use_charge, unamortized)` — once the build cost is
    /// fully recouped, usage is free of amortisation (the paper's "total
    /// amortization of investment cost").
    #[must_use]
    pub fn amortization_due(&self) -> Money {
        self.per_use_charge.min(self.unamortized)
    }

    /// Records an installment payment.
    pub fn pay_amortization(&mut self, amount: Money) {
        self.unamortized = self.unamortized.saturating_sub(amount);
    }
}

/// Everything currently built in the cloud cache.
///
/// The base CPU node (the one the coordinator always keeps) is *not* a
/// structure — it exists from t = 0 and its cost is part of baseline
/// operating expenditure. Extra nodes, columns and indexes are structures.
#[derive(Debug, Clone, Default)]
pub struct CacheState {
    columns: HashMap<ColumnId, CachedStructure>,
    indexes: HashMap<IndexId, CachedStructure>,
    nodes: HashMap<u32, CachedStructure>,
    occupancy: Occupancy,
}

impl CacheState {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up any structure by key.
    #[must_use]
    pub fn get(&self, key: StructureKey) -> Option<&CachedStructure> {
        match key {
            StructureKey::Column(c) => self.columns.get(&c),
            StructureKey::Index(i) => self.indexes.get(&i),
            StructureKey::Node(n) => self.nodes.get(&n),
        }
    }

    fn get_mut(&mut self, key: StructureKey) -> Option<&mut CachedStructure> {
        match key {
            StructureKey::Column(c) => self.columns.get_mut(&c),
            StructureKey::Index(i) => self.indexes.get_mut(&i),
            StructureKey::Node(n) => self.nodes.get_mut(&n),
        }
    }

    /// True if the structure exists *and* is usable at `now`.
    #[must_use]
    pub fn is_available(&self, key: StructureKey, now: SimTime) -> bool {
        self.get(key).is_some_and(|s| s.is_available(now))
    }

    /// True if the structure exists (possibly still building).
    #[must_use]
    pub fn contains(&self, key: StructureKey) -> bool {
        self.get(key).is_some()
    }

    /// Number of *extra* CPU nodes usable at `now`.
    #[must_use]
    pub fn available_extra_nodes(&self, now: SimTime) -> u32 {
        self.nodes.values().filter(|s| s.is_available(now)).count() as u32
    }

    /// The lowest free extra-node ordinal (for booting the next node).
    #[must_use]
    pub fn next_node_ordinal(&self) -> u32 {
        (0..)
            .find(|n| !self.nodes.contains_key(n))
            .expect("u32 space")
    }

    /// Current cache disk usage in bytes.
    #[must_use]
    pub fn disk_used(&self) -> u64 {
        self.occupancy.bytes()
    }

    /// The exact disk byte-seconds integral accrued so far.
    #[must_use]
    pub fn disk_byte_seconds(&self) -> f64 {
        self.occupancy.byte_seconds()
    }

    /// Accrues the occupancy integral up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        self.occupancy.advance(now);
    }

    /// Installs a structure at `now` that becomes available after
    /// `build_time`, with build cost amortised over `amortize_n` uses.
    ///
    /// # Panics
    /// Panics if the structure already exists or `amortize_n == 0`.
    pub fn install(
        &mut self,
        key: StructureKey,
        size_bytes: u64,
        now: SimTime,
        build_time: SimDuration,
        build_cost: Money,
        amortize_n: u64,
    ) {
        assert!(!self.contains(key), "structure {key} already cached");
        assert!(amortize_n > 0, "amortization horizon must be positive");
        let s = CachedStructure {
            key,
            size_bytes,
            built_at: now,
            available_at: now + build_time,
            last_used: now,
            maint_paid_until: now + build_time,
            build_cost,
            per_use_charge: build_cost.amortize_over(amortize_n),
            unamortized: build_cost,
            maint_forgiven: Money::ZERO,
        };
        if key.occupies_disk() {
            self.occupancy.add(now, size_bytes);
        } else {
            self.occupancy.advance(now);
        }
        match key {
            StructureKey::Column(c) => {
                self.columns.insert(c, s);
            }
            StructureKey::Index(i) => {
                self.indexes.insert(i, s);
            }
            StructureKey::Node(n) => {
                self.nodes.insert(n, s);
            }
        }
    }

    /// Removes a structure (eviction / failure), freeing its disk.
    ///
    /// Returns the removed structure, or `None` if absent.
    pub fn evict(&mut self, key: StructureKey, now: SimTime) -> Option<CachedStructure> {
        let removed = match key {
            StructureKey::Column(c) => self.columns.remove(&c),
            StructureKey::Index(i) => self.indexes.remove(&i),
            StructureKey::Node(n) => self.nodes.remove(&n),
        };
        if let Some(ref s) = removed {
            if key.occupies_disk() {
                self.occupancy.remove(now, s.size_bytes);
            } else {
                self.occupancy.advance(now);
            }
        }
        removed
    }

    /// Marks structures as used at `now` (LRU refresh).
    pub fn touch(&mut self, keys: &[StructureKey], now: SimTime) {
        for &key in keys {
            if let Some(s) = self.get_mut(key) {
                s.last_used = s.last_used.max(now);
            }
        }
    }

    /// Charges the amortisation installment on each structure and returns
    /// the total charged.
    pub fn charge_amortization(&mut self, keys: &[StructureKey]) -> Money {
        let mut total = Money::ZERO;
        for &key in keys {
            if let Some(s) = self.get_mut(key) {
                let due = s.amortization_due();
                s.pay_amortization(due);
                total += due;
            }
        }
        total
    }

    /// Settles maintenance on each structure up to `now` given a
    /// per-structure maintenance pricer; returns the total due (footnote 3).
    ///
    /// A plan pays for at most `window` of backlog; older accrual is
    /// *written off* into [`CachedStructure::maint_forgiven`] — the
    /// non-usage signal the failure policy consumes. Without the cap, the
    /// first user after a long idle (or build) period would be billed the
    /// whole backlog and no rational budget would ever adopt a freshly
    /// built structure.
    pub fn settle_maintenance<F>(
        &mut self,
        keys: &[StructureKey],
        now: SimTime,
        window: SimDuration,
        price: F,
    ) -> Money
    where
        F: Fn(&CachedStructure, SimDuration) -> Money,
    {
        let mut total = Money::ZERO;
        for &key in keys {
            if let Some(s) = self.get_mut(key) {
                let span = now.saturating_since(s.maint_paid_until);
                if !span.is_zero() {
                    let charged_span = span.min(window);
                    total += price(s, charged_span);
                    if span > window {
                        let forgiven =
                            price(s, SimDuration::from_secs(span.as_secs() - window.as_secs()));
                        s.maint_forgiven += forgiven;
                    }
                    s.maint_paid_until = now;
                }
            }
        }
        total
    }

    /// All structures, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &CachedStructure> {
        self.columns
            .values()
            .chain(self.indexes.values())
            .chain(self.nodes.values())
    }

    /// Number of structures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len() + self.indexes.len() + self.nodes.len()
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys of structures whose unreimbursed maintenance at `now` (the
    /// written-off backlog plus the accrual since the last payment)
    /// exceeds `fail_factor ×` build cost — the paper's structure
    /// *failure* ("excessive maintenance cost of a structure due to
    /// non-usage of it in selected query plans can be the reason of
    /// structure failure").
    #[must_use]
    pub fn failed_structures<F>(
        &self,
        now: SimTime,
        fail_factor: f64,
        price: F,
    ) -> Vec<StructureKey>
    where
        F: Fn(&CachedStructure, SimDuration) -> Money,
    {
        self.iter()
            .filter(|s| {
                let span = now.saturating_since(s.maint_paid_until);
                let unpaid = s.maint_forgiven + price(s, span);
                let threshold = s.build_cost.scale(fail_factor);
                !threshold.is_zero() && unpaid > threshold
            })
            .map(|s| s.key)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn col(i: u32) -> StructureKey {
        StructureKey::Column(ColumnId(i))
    }

    #[test]
    fn install_and_availability() {
        let mut st = CacheState::new();
        st.install(col(1), 1000, t(0.0), d(10.0), Money::from_dollars(5.0), 10);
        assert!(st.contains(col(1)));
        assert!(!st.is_available(col(1), t(5.0)), "still building");
        assert!(st.is_available(col(1), t(10.0)));
        assert_eq!(st.disk_used(), 1000);
        assert_eq!(st.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_install_panics() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(0.0), Money::ZERO, 1);
        st.install(col(1), 10, t(0.0), d(0.0), Money::ZERO, 1);
    }

    #[test]
    fn nodes_do_not_use_disk() {
        let mut st = CacheState::new();
        st.install(
            StructureKey::Node(0),
            0,
            t(0.0),
            d(60.0),
            Money::from_cents(10),
            100,
        );
        assert_eq!(st.disk_used(), 0);
        assert_eq!(st.available_extra_nodes(t(30.0)), 0);
        assert_eq!(st.available_extra_nodes(t(60.0)), 1);
        assert_eq!(st.next_node_ordinal(), 1);
    }

    #[test]
    fn eviction_frees_disk() {
        let mut st = CacheState::new();
        st.install(col(1), 700, t(0.0), d(0.0), Money::ZERO, 1);
        st.install(col(2), 300, t(0.0), d(0.0), Money::ZERO, 1);
        let removed = st.evict(col(1), t(5.0)).unwrap();
        assert_eq!(removed.size_bytes, 700);
        assert_eq!(st.disk_used(), 300);
        assert!(st.evict(col(1), t(5.0)).is_none());
    }

    #[test]
    fn occupancy_integral_tracks_installs_and_evicts() {
        let mut st = CacheState::new();
        st.install(col(1), 100, t(0.0), d(0.0), Money::ZERO, 1);
        st.evict(col(1), t(10.0));
        st.advance(t(20.0));
        assert_eq!(st.disk_byte_seconds(), 1000.0);
    }

    #[test]
    fn amortization_installments_stop_at_build_cost() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(0.0), Money::from_dollars(1.0), 4);
        let uses = [col(1)];
        let mut collected = Money::ZERO;
        for _ in 0..10 {
            collected += st.charge_amortization(&uses);
        }
        assert_eq!(collected, Money::from_dollars(1.0), "never overcharges");
        assert_eq!(st.get(col(1)).unwrap().unamortized, Money::ZERO);
    }

    #[test]
    fn maintenance_settles_incrementally() {
        let mut st = CacheState::new();
        st.install(col(1), 1_000, t(0.0), d(0.0), Money::ZERO, 1);
        // Price: $1 per byte-hour.
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_hours())
        };
        let window = SimDuration::from_hours(10.0);
        let due1 = st.settle_maintenance(&[col(1)], t(3600.0), window, price);
        assert_eq!(due1, Money::from_dollars(1000.0));
        // Immediately settling again owes nothing.
        let due2 = st.settle_maintenance(&[col(1)], t(3600.0), window, price);
        assert_eq!(due2, Money::ZERO);
        let due3 = st.settle_maintenance(&[col(1)], t(7200.0), window, price);
        assert_eq!(due3, Money::from_dollars(1000.0));
    }

    #[test]
    fn touch_refreshes_last_used_monotonically() {
        let mut st = CacheState::new();
        st.install(col(1), 10, t(0.0), d(0.0), Money::ZERO, 1);
        st.touch(&[col(1)], t(50.0));
        assert_eq!(st.get(col(1)).unwrap().last_used, t(50.0));
        st.touch(&[col(1)], t(40.0)); // stale touch does not regress
        assert_eq!(st.get(col(1)).unwrap().last_used, t(50.0));
        st.touch(&[col(9)], t(60.0)); // absent key ignored
    }

    #[test]
    fn failure_detection_uses_unpaid_maintenance() {
        let mut st = CacheState::new();
        st.install(col(1), 1_000, t(0.0), d(0.0), Money::from_dollars(1.0), 10);
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_hours() * 0.001)
        };
        // After 1 hour: unpaid = $1.0; threshold at factor 0.5 = $0.5.
        let failed = st.failed_structures(t(3600.0), 0.5, price);
        assert_eq!(failed, vec![col(1)]);
        // Recently settled structures do not fail (full window: nothing
        // is forgiven).
        st.settle_maintenance(&[col(1)], t(3600.0), SimDuration::from_hours(2.0), price);
        assert!(st.failed_structures(t(3600.0), 0.5, price).is_empty());
    }

    #[test]
    fn maintenance_clock_starts_at_availability() {
        let mut st = CacheState::new();
        st.install(col(1), 100, t(0.0), d(50.0), Money::from_dollars(1.0), 10);
        assert_eq!(st.get(col(1)).unwrap().maint_paid_until, t(50.0));
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs())
        };
        // Settling at t=60 owes only the 10 s since availability.
        let due = st.settle_maintenance(&[col(1)], t(60.0), d(1e6), price);
        assert_eq!(due, Money::from_dollars(1000.0));
    }

    #[test]
    fn backlog_beyond_window_is_forgiven_not_charged() {
        let mut st = CacheState::new();
        st.install(col(1), 1, t(0.0), d(0.0), Money::from_dollars(1.0), 10);
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs())
        };
        // 100 s idle, 10 s window: charge 10, forgive 90.
        let due = st.settle_maintenance(&[col(1)], t(100.0), d(10.0), price);
        assert_eq!(due, Money::from_dollars(10.0));
        assert_eq!(
            st.get(col(1)).unwrap().maint_forgiven,
            Money::from_dollars(90.0)
        );
        // Forgiven backlog counts toward failure.
        let failed = st.failed_structures(t(100.0), 1.0, price);
        assert_eq!(failed, vec![col(1)], "write-offs exceed build cost");
    }

    #[test]
    fn zero_build_cost_structures_never_fail() {
        let mut st = CacheState::new();
        st.install(col(1), 1_000, t(0.0), d(0.0), Money::ZERO, 1);
        let price = |s: &CachedStructure, span: SimDuration| {
            Money::from_dollars(s.size_bytes as f64 * span.as_secs())
        };
        assert!(st.failed_structures(t(1e6), 1.0, price).is_empty());
    }
}
