//! Exact disk-occupancy integral.
//!
//! The Fig. 4 operating cost charges cache disk at `c_d` dollars per byte
//! per second (eq. 13/15). Occupancy changes at discrete instants (build,
//! evict), so the byte-seconds integral is exact: between changes the
//! integrand is constant.

use simcore::SimTime;

/// Piecewise-constant `bytes(t)` with an exact running `∫ bytes dt`.
#[derive(Debug, Clone)]
pub struct Occupancy {
    bytes: u64,
    last_change: SimTime,
    byte_seconds: f64,
}

impl Default for Occupancy {
    fn default() -> Self {
        Self::new()
    }
}

impl Occupancy {
    /// Empty occupancy starting at t = 0.
    #[must_use]
    pub fn new() -> Self {
        Occupancy {
            bytes: 0,
            last_change: SimTime::ZERO,
            byte_seconds: 0.0,
        }
    }

    /// Current bytes occupied.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Accrues the integral up to `now` without changing the level.
    ///
    /// # Panics
    /// Panics if `now` precedes the last recorded change.
    pub fn advance(&mut self, now: SimTime) {
        let dt = (now - self.last_change).as_secs();
        self.byte_seconds += self.bytes as f64 * dt;
        self.last_change = now;
    }

    /// Adds `delta` bytes at `now` (accrues first).
    pub fn add(&mut self, now: SimTime, delta: u64) {
        self.advance(now);
        self.bytes = self.bytes.saturating_add(delta);
    }

    /// Removes `delta` bytes at `now` (accrues first).
    ///
    /// # Panics
    /// Panics if removing more than present — occupancy accounting must
    /// never go negative silently.
    pub fn remove(&mut self, now: SimTime, delta: u64) {
        self.advance(now);
        assert!(
            delta <= self.bytes,
            "removing {delta} bytes from occupancy of {}",
            self.bytes
        );
        self.bytes -= delta;
    }

    /// The byte-seconds integral accrued so far (up to the last
    /// `advance`/`add`/`remove` call).
    #[must_use]
    pub fn byte_seconds(&self) -> f64 {
        self.byte_seconds
    }

    /// Re-bases the integral at `now`: accrues to `now`, then zeroes the
    /// accumulated byte-seconds while keeping the occupancy level.
    ///
    /// Crash-recovery replay reconstructs cache *contents* at original
    /// timestamps, but the span the replay walks through was already
    /// settled (charged) when the crashed node's books closed — the
    /// recovered node must only pay rent from its recovery instant
    /// forward, so the replayed integral is written off here.
    ///
    /// # Panics
    /// Panics if `now` precedes the last recorded change.
    pub fn rebase(&mut self, now: SimTime) {
        self.advance(now);
        self.byte_seconds = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn integral_of_constant_level() {
        let mut o = Occupancy::new();
        o.add(t(0.0), 100);
        o.advance(t(10.0));
        assert_eq!(o.byte_seconds(), 1000.0);
        assert_eq!(o.bytes(), 100);
    }

    #[test]
    fn integral_of_step_changes() {
        let mut o = Occupancy::new();
        o.add(t(0.0), 100); // 100 B over [0, 5) = 500
        o.add(t(5.0), 100); // 200 B over [5, 10) = 1000
        o.remove(t(10.0), 150); // 50 B over [10, 20) = 500
        o.advance(t(20.0));
        assert_eq!(o.byte_seconds(), 2000.0);
        assert_eq!(o.bytes(), 50);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut o = Occupancy::new();
        o.add(t(0.0), 10);
        o.advance(t(5.0));
        o.advance(t(5.0));
        assert_eq!(o.byte_seconds(), 50.0);
    }

    #[test]
    fn rebase_zeroes_the_integral_but_keeps_the_level() {
        let mut o = Occupancy::new();
        o.add(t(0.0), 100);
        o.rebase(t(10.0)); // 1000 byte-seconds written off
        assert_eq!(o.byte_seconds(), 0.0);
        assert_eq!(o.bytes(), 100);
        o.advance(t(15.0)); // rent restarts from the rebase instant
        assert_eq!(o.byte_seconds(), 500.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn time_going_backwards_panics() {
        let mut o = Occupancy::new();
        o.advance(t(10.0));
        o.advance(t(5.0));
    }

    #[test]
    #[should_panic(expected = "removing")]
    fn removing_too_much_panics() {
        let mut o = Occupancy::new();
        o.add(t(0.0), 10);
        o.remove(t(1.0), 11);
    }
}
