//! Least-recently-used bookkeeping.
//!
//! Section IV-B of the paper: "These structures are garbage collected
//! using LRU policy, so that the structure cache can be searched and
//! processed efficiently for each incoming query plan." [`LruSet`] tracks
//! last-touch order for an arbitrary key type and evicts the stalest
//! entries when the set exceeds its capacity.

use std::collections::HashMap;
use std::hash::Hash;

/// A capacity-bounded set with LRU eviction.
///
/// Implementation: a `HashMap<K, u64>` of logical touch stamps plus a
/// monotone counter. Eviction scans for the minimum stamp — O(n), which is
/// fine for the pool sizes here (≤ a few hundred candidate structures);
/// the constant factor beats a linked-list LRU at this scale.
#[derive(Debug, Clone)]
pub struct LruSet<K: Eq + Hash + Clone> {
    stamps: HashMap<K, u64>,
    clock: u64,
    capacity: usize,
}

impl<K: Eq + Hash + Clone> LruSet<K> {
    /// Creates a set that holds at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruSet {
            stamps: HashMap::with_capacity(capacity + 1),
            clock: 0,
            capacity,
        }
    }

    /// Number of keys currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// True if `key` is tracked.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.stamps.contains_key(key)
    }

    /// Touches `key` (inserting it if new); returns the key evicted to make
    /// room, if any.
    pub fn touch(&mut self, key: K) -> Option<K> {
        self.clock += 1;
        self.stamps.insert(key, self.clock);
        if self.stamps.len() > self.capacity {
            let victim = self
                .stamps
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            self.stamps.remove(&victim);
            Some(victim)
        } else {
            None
        }
    }

    /// Removes a key explicitly.
    pub fn remove(&mut self, key: &K) -> bool {
        self.stamps.remove(key).is_some()
    }

    /// Keys ordered least-recently-used first.
    #[must_use]
    pub fn keys_lru_first(&self) -> Vec<K> {
        let mut entries: Vec<(&K, &u64)> = self.stamps.iter().collect();
        entries.sort_by_key(|(_, &stamp)| stamp);
        entries.into_iter().map(|(k, _)| k.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_touched() {
        let mut lru = LruSet::new(2);
        assert!(lru.touch("a").is_none());
        assert!(lru.touch("b").is_none());
        assert_eq!(lru.touch("c"), Some("a"));
        assert!(lru.contains(&"b") && lru.contains(&"c"));
    }

    #[test]
    fn touching_refreshes_recency() {
        let mut lru = LruSet::new(2);
        lru.touch("a");
        lru.touch("b");
        lru.touch("a"); // refresh a; b is now stalest
        assert_eq!(lru.touch("c"), Some("b"));
    }

    #[test]
    fn remove_frees_slot() {
        let mut lru = LruSet::new(1);
        lru.touch("a");
        assert!(lru.remove(&"a"));
        assert!(!lru.remove(&"a"));
        assert!(lru.touch("b").is_none());
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn lru_order_listing() {
        let mut lru = LruSet::new(10);
        lru.touch(1);
        lru.touch(2);
        lru.touch(3);
        lru.touch(1);
        assert_eq!(lru.keys_lru_first(), vec![2, 3, 1]);
        assert!(!lru.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: LruSet<u8> = LruSet::new(0);
    }
}
