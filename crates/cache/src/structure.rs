//! Cache structure identities and index definitions.

use catalog::{ColumnId, Schema, TableId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a candidate index in the candidate registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IndexId(pub u32);

impl IndexId {
    /// The id as a dense vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// Identity of a cache structure — the paper's `S ∈ {N, T, I}`.
///
/// The regret array (`regretS`), the investment rule (eq. 3), amortisation
/// and maintenance accounting all key by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StructureKey {
    /// The `ordinal`-th *extra* CPU node (beyond the always-on base node).
    Node(u32),
    /// A cached table column.
    Column(ColumnId),
    /// A built index (id into the candidate registry).
    Index(IndexId),
}

impl StructureKey {
    /// True for structures that occupy cache disk (columns and indexes).
    #[must_use]
    pub fn occupies_disk(self) -> bool {
        !matches!(self, StructureKey::Node(_))
    }
}

impl fmt::Display for StructureKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureKey::Node(n) => write!(f, "node#{n}"),
            StructureKey::Column(c) => write!(f, "col:{c}"),
            StructureKey::Index(i) => write!(f, "idx:{i}"),
        }
    }
}

/// A candidate index definition.
///
/// Indexes are B-tree-like structures over `key_columns` of one table;
/// building one costs a sort of the keyed data plus fetching any key
/// column absent from the cache (eq. 14 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Registry id.
    pub id: IndexId,
    /// Indexed table.
    pub table: TableId,
    /// Key columns, most-significant first (prefix rules apply).
    pub key_columns: Vec<ColumnId>,
}

/// Bytes of the row locator stored per index entry.
pub const ROW_LOCATOR_BYTES: u64 = 8;

impl IndexDef {
    /// Index size: one entry per row, each entry holding the key columns
    /// plus a row locator (eq. 15 charges `size(I) · c_d` maintenance).
    #[must_use]
    pub fn size_bytes(&self, schema: &Schema) -> u64 {
        let rows = schema.table(self.table).row_count;
        let entry: u64 = self
            .key_columns
            .iter()
            .map(|&c| schema.column(c).byte_width())
            .sum::<u64>()
            + ROW_LOCATOR_BYTES;
        rows.saturating_mul(entry)
    }

    /// True if this index can serve a predicate on `column` (leading-prefix
    /// rule: only the first key column is sargable on its own).
    #[must_use]
    pub fn serves_predicate(&self, column: ColumnId) -> bool {
        self.key_columns.first() == Some(&column)
    }

    /// True if the index key covers all of `columns` (an index-only plan
    /// needs no base column fetch for covered columns).
    #[must_use]
    pub fn covers(&self, columns: &[ColumnId]) -> bool {
        columns.iter().all(|c| self.key_columns.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};

    #[test]
    fn structure_keys_are_distinct_and_displayable() {
        let n = StructureKey::Node(2);
        let c = StructureKey::Column(ColumnId(2));
        let i = StructureKey::Index(IndexId(2));
        assert_ne!(n, c);
        assert_ne!(c, i);
        assert_eq!(n.to_string(), "node#2");
        assert_eq!(c.to_string(), "col:C2");
        assert_eq!(i.to_string(), "idx:I2");
    }

    #[test]
    fn only_disk_structures_occupy_disk() {
        assert!(!StructureKey::Node(0).occupies_disk());
        assert!(StructureKey::Column(ColumnId(0)).occupies_disk());
        assert!(StructureKey::Index(IndexId(0)).occupies_disk());
    }

    #[test]
    fn index_size_counts_keys_and_locator() {
        let schema = tpch_schema(ScaleFactor(1.0));
        let shipdate = schema.column_by_name("lineitem.l_shipdate").unwrap();
        let idx = IndexDef {
            id: IndexId(0),
            table: shipdate.table,
            key_columns: vec![shipdate.id],
        };
        let rows = schema.table(shipdate.table).row_count;
        assert_eq!(idx.size_bytes(&schema), rows * (4 + ROW_LOCATOR_BYTES));
    }

    #[test]
    fn prefix_rule_for_predicates() {
        let idx = IndexDef {
            id: IndexId(1),
            table: TableId(0),
            key_columns: vec![ColumnId(5), ColumnId(6)],
        };
        assert!(idx.serves_predicate(ColumnId(5)));
        assert!(!idx.serves_predicate(ColumnId(6)), "non-leading key");
        assert!(!idx.serves_predicate(ColumnId(7)));
    }

    #[test]
    fn covering_check() {
        let idx = IndexDef {
            id: IndexId(2),
            table: TableId(0),
            key_columns: vec![ColumnId(1), ColumnId(2), ColumnId(3)],
        };
        assert!(idx.covers(&[ColumnId(2), ColumnId(1)]));
        assert!(!idx.covers(&[ColumnId(1), ColumnId(9)]));
        assert!(idx.covers(&[]));
    }
}
