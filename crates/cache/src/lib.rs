//! # cache — the cloud cache substrate
//!
//! Section V-C of the paper: *"the cache needs to decide on building and
//! maintaining three different types of structures: 1) CPU nodes N,
//! 2) table columns T, and 3) indexes I."* This crate holds the
//! materialised state of that cache:
//!
//! * [`structure::StructureKey`] — the identity of a cache structure
//!   (node / column / index); the unit the regret ledger, the investment
//!   rule and the maintenance accounting all index by.
//! * [`structure::IndexDef`] — candidate index definitions (key columns,
//!   size model).
//! * [`state::CacheState`] — what is currently built: which columns and
//!   indexes are on disk, how many extra CPU nodes are up, per-structure
//!   amortisation debt and maintenance checkpoints, and the exact
//!   byte-seconds disk-occupancy integral that the Fig. 4 operating cost
//!   charges (via [`occupancy::Occupancy`]).
//! * [`lru::LruSet`] — the LRU bookkeeping the paper prescribes for the
//!   structure pool ("garbage collected using LRU policy", Section IV-B).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod lru;
pub mod occupancy;
pub mod state;
pub mod structure;

pub use lru::LruSet;
pub use occupancy::Occupancy;
pub use state::{CacheState, CachedStructure};
pub use structure::{IndexDef, IndexId, StructureKey, ROW_LOCATOR_BYTES};
