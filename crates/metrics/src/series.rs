//! Bounded-memory time series for run plots.

use serde::{Deserialize, Serialize};

/// A `(time, value)` series that decimates itself to stay under a point
/// budget: when full, every other point is dropped and the sampling stride
/// doubles. Plots keep their shape; memory stays O(budget).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
    budget: usize,
    stride: u64,
    seen: u64,
}

impl TimeSeries {
    /// Creates a series that holds at most `budget` points (min 16).
    #[must_use]
    pub fn new(budget: usize) -> Self {
        TimeSeries {
            points: Vec::new(),
            budget: budget.max(16),
            stride: 1,
            seen: 0,
        }
    }

    /// Records a point; may be dropped by decimation.
    ///
    /// # Panics
    /// Panics on NaN coordinates.
    pub fn record(&mut self, t: f64, v: f64) {
        assert!(!t.is_nan() && !v.is_nan(), "NaN point");
        let keep = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        if !keep {
            return;
        }
        if self.points.len() >= self.budget {
            // Drop every other retained point and double the stride.
            let mut i = 0;
            self.points.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
            if !(self.seen - 1).is_multiple_of(self.stride) {
                return; // current point no longer on the coarser grid
            }
        }
        self.points.push((t, v));
    }

    /// Retained points, in arrival order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Total points offered (including decimated ones).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_series_keeps_everything() {
        let mut s = TimeSeries::new(100);
        for i in 0..50 {
            s.record(f64::from(i), f64::from(i) * 2.0);
        }
        assert_eq!(s.points().len(), 50);
        assert_eq!(s.seen(), 50);
    }

    #[test]
    fn decimation_bounds_memory() {
        let mut s = TimeSeries::new(64);
        for i in 0..100_000 {
            s.record(f64::from(i), 1.0);
        }
        assert!(s.points().len() <= 64, "kept {}", s.points().len());
        assert_eq!(s.seen(), 100_000);
    }

    #[test]
    fn decimated_series_preserves_time_order_and_span() {
        let mut s = TimeSeries::new(32);
        for i in 0..10_000 {
            s.record(f64::from(i), f64::from(i));
        }
        let pts = s.points();
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(pts[0].0, 0.0, "first point always kept");
        assert!(pts.last().unwrap().0 > 8_000.0, "tail sampled");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        TimeSeries::new(16).record(f64::NAN, 0.0);
    }
}
