//! Per-resource operating-cost breakdown.
//!
//! The analysis in Section VII-B of the paper repeatedly decomposes the
//! operating cost by resource ("the disk cost is negligible for this
//! scenario", "the overall reduced cost … is directly proportional to the
//! cost saved by reduced CPU usage"). The simulator therefore books every
//! dollar against a [`Resource`], and Fig. 4 sums them.

use pricing::Money;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// The four priced resources of the paper's cost model (Section V), plus
/// structure-build spending tracked separately for the investment analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// CPU node time (the paper's `c`/`u`).
    Cpu,
    /// Cache disk occupancy (`c_d`).
    Disk,
    /// WAN transfer (`c_b`).
    Network,
    /// Logical I/O operations.
    Io,
}

/// All resources, for iteration.
pub const ALL_RESOURCES: [Resource; 4] = [
    Resource::Cpu,
    Resource::Disk,
    Resource::Network,
    Resource::Io,
];

/// Exact per-resource cost totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// CPU-time dollars.
    pub cpu: Money,
    /// Disk-occupancy dollars.
    pub disk: Money,
    /// Network-transfer dollars.
    pub network: Money,
    /// I/O-operation dollars.
    pub io: Money,
}

impl CostBreakdown {
    /// All-zero breakdown.
    pub const ZERO: CostBreakdown = CostBreakdown {
        cpu: Money::ZERO,
        disk: Money::ZERO,
        network: Money::ZERO,
        io: Money::ZERO,
    };

    /// Books an amount against one resource.
    pub fn add_to(&mut self, resource: Resource, amount: Money) {
        match resource {
            Resource::Cpu => self.cpu += amount,
            Resource::Disk => self.disk += amount,
            Resource::Network => self.network += amount,
            Resource::Io => self.io += amount,
        }
    }

    /// The amount booked against one resource.
    #[must_use]
    pub fn get(&self, resource: Resource) -> Money {
        match resource {
            Resource::Cpu => self.cpu,
            Resource::Disk => self.disk,
            Resource::Network => self.network,
            Resource::Io => self.io,
        }
    }

    /// Sum across resources.
    #[must_use]
    pub fn total(&self) -> Money {
        self.cpu + self.disk + self.network + self.io
    }

    /// Merges another breakdown into this one (parallel shard rollups).
    ///
    /// Money is exact fixed-point, so merging is associative and
    /// commutative — shard aggregation order cannot change the result.
    pub fn merge(&mut self, other: &CostBreakdown) {
        *self += *other;
    }

    /// Fraction of the total in one resource (0 when total is 0).
    #[must_use]
    pub fn fraction(&self, resource: Resource) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.get(resource).as_dollars() / total.as_dollars()
        }
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            cpu: self.cpu + rhs.cpu,
            disk: self.disk + rhs.disk,
            network: self.network + rhs.network,
            io: self.io + rhs.io,
        }
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, rhs: CostBreakdown) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_to_and_total() {
        let mut b = CostBreakdown::ZERO;
        b.add_to(Resource::Cpu, Money::from_dollars(1.0));
        b.add_to(Resource::Network, Money::from_dollars(2.0));
        b.add_to(Resource::Cpu, Money::from_dollars(0.5));
        assert_eq!(b.cpu, Money::from_dollars(1.5));
        assert_eq!(b.total(), Money::from_dollars(3.5));
        assert_eq!(b.get(Resource::Io), Money::ZERO);
    }

    #[test]
    fn breakdown_addition() {
        let mut a = CostBreakdown::ZERO;
        a.add_to(Resource::Disk, Money::from_dollars(1.0));
        let mut b = CostBreakdown::ZERO;
        b.add_to(Resource::Disk, Money::from_dollars(2.0));
        b.add_to(Resource::Io, Money::from_dollars(3.0));
        let c = a + b;
        assert_eq!(c.disk, Money::from_dollars(3.0));
        assert_eq!(c.io, Money::from_dollars(3.0));
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn merge_matches_operator_addition() {
        let mut a = CostBreakdown::ZERO;
        a.add_to(Resource::Cpu, Money::from_dollars(1.0));
        let mut b = CostBreakdown::ZERO;
        b.add_to(Resource::Cpu, Money::from_dollars(2.0));
        b.add_to(Resource::Network, Money::from_dollars(0.5));
        let via_add = a + b;
        a.merge(&b);
        assert_eq!(a, via_add);
        assert_eq!(a.cpu, Money::from_dollars(3.0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = CostBreakdown::ZERO;
        for (i, r) in ALL_RESOURCES.iter().enumerate() {
            b.add_to(*r, Money::from_dollars((i + 1) as f64));
        }
        let total: f64 = ALL_RESOURCES.iter().map(|&r| b.fraction(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(CostBreakdown::ZERO.fraction(Resource::Cpu), 0.0);
    }
}
