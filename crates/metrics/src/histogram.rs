//! Log-bucketed histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// A histogram with logarithmically spaced buckets, suitable for latencies
/// spanning milliseconds to hours.
///
/// Buckets cover `[min_value, max_value)` with `buckets_per_decade` buckets
/// per factor of 10; values outside the range clamp to the edge buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    min_value: f64,
    buckets_per_decade: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
}

impl LogHistogram {
    /// Creates a histogram covering `[min_value, max_value)`.
    ///
    /// # Panics
    /// Panics unless `0 < min_value < max_value` and
    /// `buckets_per_decade > 0`.
    #[must_use]
    pub fn new(min_value: f64, max_value: f64, buckets_per_decade: u32) -> Self {
        assert!(
            min_value > 0.0 && max_value > min_value,
            "need 0 < min < max, got [{min_value}, {max_value})"
        );
        assert!(
            buckets_per_decade > 0,
            "need at least one bucket per decade"
        );
        let decades = (max_value / min_value).log10();
        let n = (decades * f64::from(buckets_per_decade)).ceil() as usize + 1;
        LogHistogram {
            min_value,
            buckets_per_decade: f64::from(buckets_per_decade),
            counts: vec![0; n],
            total: 0,
            underflow: 0,
        }
    }

    /// Default latency histogram: 1 ms .. 10⁵ s, 20 buckets per decade.
    #[must_use]
    pub fn latency() -> Self {
        Self::new(1e-3, 1e5, 20)
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.min_value {
            return None;
        }
        let idx = ((x / self.min_value).log10() * self.buckets_per_decade) as usize;
        Some(idx.min(self.counts.len() - 1))
    }

    /// Records an observation.
    ///
    /// # Panics
    /// Panics on NaN or negative values.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite() && x >= 0.0, "bad observation {x}");
        self.total += 1;
        match self.bucket_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.underflow += 1,
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`); `None` if empty.
    ///
    /// Returns the geometric midpoint of the bucket containing the
    /// quantile, so the error is bounded by the bucket width.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.min_value / 2.0);
        }
        let mut last_occupied = None;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 {
                last_occupied = Some(i);
            }
            if seen >= target {
                return Some(self.bucket_midpoint(i));
            }
        }
        // Unreachable while counts are consistent with `total` (the scan
        // accumulates every observation), but stay well-defined: report
        // the highest occupied bucket's midpoint, never a value beyond
        // the histogram's range.
        Some(self.bucket_midpoint(last_occupied.unwrap_or(0)))
    }

    /// Geometric midpoint of bucket `i` — the value every quantile query
    /// resolving to that bucket reports.
    fn bucket_midpoint(&self, i: usize) -> f64 {
        let lo = self.min_value * 10f64.powf(i as f64 / self.buckets_per_decade);
        let hi = self.min_value * 10f64.powf((i + 1) as f64 / self.buckets_per_decade);
        (lo * hi).sqrt()
    }

    /// Median shorthand.
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Count-weighted p50 — [`Self::quantile`] at 0.5. `None` when
    /// empty; with a single sample every percentile reports that
    /// sample's bucket midpoint (see `quantile`'s ceil-target rule).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Count-weighted p99 — [`Self::quantile`] at 0.99. Same edge
    /// behavior as [`Self::p50`]: `None` when empty, the lone bucket
    /// midpoint for a single sample.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Count-weighted p99.9 — [`Self::quantile`] at 0.999. Same edge
    /// behavior as [`Self::p50`].
    #[must_use]
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// How many observations fell in buckets whose entire range lies at
    /// or above `threshold` (underflow never counts). Bucket-granular by
    /// construction: observations in the bucket *containing* the
    /// threshold are not counted, so the answer is a lower bound on
    /// `#{x ≥ threshold}` with error bounded by one bucket's count.
    #[must_use]
    pub fn count_at_or_above(&self, threshold: f64) -> u64 {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "bad threshold {threshold}"
        );
        let Some(cut) = self.bucket_of(threshold) else {
            // Threshold below range: every in-range observation counts.
            return self.total - self.underflow;
        };
        // Whole buckets strictly above the one holding the threshold.
        self.counts[cut + 1..].iter().sum()
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if geometries differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.min_value, other.min_value, "geometry mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "geometry mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.underflow += other.underflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let mut h = LogHistogram::new(0.01, 1000.0, 40);
        for i in 1..=1000 {
            h.record(f64::from(i) / 10.0); // 0.1 .. 100.0 uniformly
        }
        assert_eq!(h.count(), 1000);
        let med = h.median().unwrap();
        assert!((40.0..63.0).contains(&med), "median {med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((90.0..110.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = LogHistogram::latency();
        assert!(h.median().is_none());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn extremes_clamp_without_losing_counts() {
        let mut h = LogHistogram::new(1.0, 10.0, 10);
        h.record(0.0001); // underflow
        h.record(1e9); // clamps into top bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.01).unwrap() < 1.0);
        assert!(h.quantile(1.0).unwrap() >= 10.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_none_at_every_pin() {
        let h = LogHistogram::latency();
        for q in [0.0, 0.5, 1.0] {
            assert!(h.quantile(q).is_none(), "empty p{} must be None", q * 100.0);
        }
    }

    #[test]
    fn single_sample_pins_p0_p50_p100_to_its_bucket_midpoint() {
        let mut h = LogHistogram::latency();
        h.record(2.0);
        let p0 = h.quantile(0.0).unwrap();
        let p50 = h.quantile(0.5).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        // All three quantiles of a one-sample histogram are the same
        // bucket midpoint, and that midpoint brackets the sample within
        // one bucket width (a factor of 10^(1/20) here).
        assert_eq!(p0.to_bits(), p50.to_bits());
        assert_eq!(p50.to_bits(), p100.to_bits());
        let width = 10f64.powf(1.0 / 20.0);
        assert!(p50 >= 2.0 / width && p50 <= 2.0 * width, "p50 {p50}");
    }

    #[test]
    fn single_underflow_sample_reports_below_range_consistently() {
        let mut h = LogHistogram::new(1.0, 10.0, 10);
        h.record(0.001);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(0.5), "p{}", q * 100.0);
        }
    }

    #[test]
    fn quantiles_never_exceed_top_bucket_midpoint() {
        let mut h = LogHistogram::new(1.0, 10.0, 10);
        h.record(1e9); // clamps into the top bucket
        let top = h.quantile(1.0).unwrap();
        // The report stays within the histogram's range convention: the
        // top bucket's midpoint, not an edge beyond it.
        assert!(top < 10.0 * 10f64.powf(0.1), "top {top}");
        assert_eq!(h.quantile(0.0).unwrap().to_bits(), top.to_bits());
    }

    #[test]
    fn named_percentiles_delegate_to_quantile() {
        let mut h = LogHistogram::new(0.01, 1000.0, 40);
        for i in 1..=1000 {
            h.record(f64::from(i) / 10.0);
        }
        assert_eq!(
            h.p50().unwrap().to_bits(),
            h.quantile(0.50).unwrap().to_bits()
        );
        assert_eq!(
            h.p99().unwrap().to_bits(),
            h.quantile(0.99).unwrap().to_bits()
        );
        assert_eq!(
            h.p999().unwrap().to_bits(),
            h.quantile(0.999).unwrap().to_bits()
        );
        assert!(h.p50() < h.p99() && h.p99() <= h.p999());
    }

    #[test]
    fn named_percentiles_share_quantile_edge_behavior() {
        let empty = LogHistogram::latency();
        assert!(empty.p50().is_none() && empty.p99().is_none() && empty.p999().is_none());
        let mut one = LogHistogram::latency();
        one.record(2.0);
        // A single sample pins every named percentile to the same bucket
        // midpoint.
        let p50 = one.p50().unwrap();
        assert_eq!(p50.to_bits(), one.p99().unwrap().to_bits());
        assert_eq!(p50.to_bits(), one.p999().unwrap().to_bits());
    }

    #[test]
    fn count_at_or_above_is_bucket_granular() {
        let mut h = LogHistogram::new(1.0, 1000.0, 10);
        h.record(0.1); // underflow — never counted
        h.record(2.0);
        h.record(50.0);
        h.record(500.0);
        assert_eq!(h.count_at_or_above(0.001), 3, "below range counts all");
        assert_eq!(h.count_at_or_above(10.0), 2);
        assert_eq!(h.count_at_or_above(100.0), 1);
        assert_eq!(h.count_at_or_above(1e9), 0, "above the top bucket");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::new(0.1, 100.0, 10);
        let mut b = LogHistogram::new(0.1, 100.0, 10);
        for _ in 0..100 {
            a.record(1.0);
            b.record(10.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let med = a.median().unwrap();
        assert!((0.5..15.0).contains(&med));
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_different_geometry() {
        let mut a = LogHistogram::new(0.1, 100.0, 10);
        let b = LogHistogram::new(1.0, 100.0, 10);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "bad observation")]
    fn negative_rejected() {
        LogHistogram::latency().record(-1.0);
    }
}
