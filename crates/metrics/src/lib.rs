//! # metrics — streaming statistics for simulation runs
//!
//! Figures 4 and 5 of the paper report *operating cost* and *average
//! response time* per scheme and inter-arrival interval. This crate
//! collects those measurements while a simulation runs:
//!
//! * [`stream::StreamingStats`] — single-pass mean/variance/min/max
//!   (Welford's algorithm), used for response times over up to a million
//!   queries without storing them.
//! * [`histogram::LogHistogram`] — log-bucketed latency histogram with
//!   percentile queries.
//! * [`breakdown::CostBreakdown`] — exact per-resource operating cost
//!   (CPU / disk / network / I/O), the decomposition Section VII-B reasons
//!   with ("the disc space cost … is very small and significant for the 1
//!   second and 60 seconds measurements, respectively").
//! * [`series::TimeSeries`] — bounded-memory time series for plots.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod breakdown;
pub mod histogram;
pub mod series;
pub mod stream;

pub use breakdown::{CostBreakdown, Resource};
pub use histogram::LogHistogram;
pub use series::TimeSeries;
pub use stream::StreamingStats;
