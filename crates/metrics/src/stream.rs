//! Single-pass mean/variance statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Streaming count/mean/variance/min/max over `f64` observations.
///
/// Welford's update is numerically stable over millions of samples —
/// the naive sum-of-squares form loses precision exactly in the regime the
/// Fig. 5 harness runs in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records an observation.
    ///
    /// # Panics
    /// Panics on NaN — a NaN observation means an upstream model bug.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 if fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroish() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..300] {
            a.record(x);
        }
        for &x in &xs[300..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        StreamingStats::new().record(f64::NAN);
    }

    #[test]
    fn stable_over_many_samples() {
        let mut s = StreamingStats::new();
        for _ in 0..1_000_000 {
            s.record(1e9 + 1.0);
        }
        assert!((s.mean() - (1e9 + 1.0)).abs() < 1e-3);
        assert!(s.variance() < 1e-3, "variance {}", s.variance());
    }
}
