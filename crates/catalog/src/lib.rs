//! # catalog — relational schemas and statistics for the simulated cloud
//!
//! The paper's experiments run "a TPCH-based workload … against a 2.5 TB
//! back-end database" that "simulates the query evolution of a million
//! SDSS-like queries" (Section VII-A). This crate provides the static data
//! model those experiments need:
//!
//! * [`types::DataType`] — column types with on-disk byte widths.
//! * [`schema::Schema`] / [`schema::Table`] / [`column::Column`] — the
//!   relational catalog, including per-column sizes (the cache stores and
//!   prices *columns*, eq. 12/13 of the paper).
//! * [`tpch`] — the full 8-table TPC-H schema at an arbitrary scale factor
//!   (`SF 2500 ≈ 2.5 TB` reproduces the paper's backend).
//! * [`sdss`] — an SDSS-like astronomical schema (`PhotoObj`, `SpecObj`,
//!   `Neighbors`) used by the survey example.
//! * [`stats`] / [`selectivity`] — per-column statistics and the
//!   selectivity model the plan cost estimator consumes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod column;
pub mod ids;
pub mod schema;
pub mod sdss;
pub mod selectivity;
pub mod stats;
pub mod tpch;
pub mod types;

pub use column::Column;
pub use ids::{ColumnId, TableId};
pub use schema::{Schema, Table};
pub use stats::ColumnStats;
pub use types::DataType;
