//! Per-column statistics.
//!
//! The planner's cost estimator plays the role of the paper's DBMS
//! optimizer: it turns a plan into `q_tot` (total work units) and `io_tot`
//! (logical I/Os). Both need cardinality estimates, which come from these
//! statistics.

use serde::{Deserialize, Serialize};

/// Statistics the selectivity model keeps per column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct: u64,
    /// Fraction of rows that are NULL (TPC-H has none, SDSS does).
    pub null_fraction: f64,
    /// Skew of the value distribution: 0 = uniform, larger = more skewed
    /// (used as a Zipf-like exponent by the selectivity model).
    pub skew: f64,
}

impl ColumnStats {
    /// Uniformly distributed column with `distinct` values, no NULLs.
    #[must_use]
    pub fn uniform(distinct: u64) -> Self {
        ColumnStats {
            distinct: distinct.max(1),
            null_fraction: 0.0,
            skew: 0.0,
        }
    }

    /// Skewed column.
    #[must_use]
    pub fn skewed(distinct: u64, skew: f64) -> Self {
        assert!(skew.is_finite() && skew >= 0.0, "skew must be >= 0");
        ColumnStats {
            distinct: distinct.max(1),
            null_fraction: 0.0,
            skew,
        }
    }

    /// Selectivity of an equality predicate `col = const` under the
    /// uniform-distinct assumption.
    #[must_use]
    pub fn equality_selectivity(&self) -> f64 {
        (1.0 - self.null_fraction) / self.distinct as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_no_nulls() {
        let s = ColumnStats::uniform(10);
        assert_eq!(s.distinct, 10);
        assert_eq!(s.null_fraction, 0.0);
        assert!((s.equality_selectivity() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_distinct_clamped_to_one() {
        let s = ColumnStats::uniform(0);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.equality_selectivity(), 1.0);
    }

    #[test]
    fn nulls_reduce_equality_selectivity() {
        let s = ColumnStats {
            distinct: 4,
            null_fraction: 0.5,
            skew: 0.0,
        };
        assert!((s.equality_selectivity() - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_skew_rejected() {
        let _ = ColumnStats::skewed(10, -1.0);
    }
}
