//! An SDSS-like astronomical schema.
//!
//! The paper motivates the economy with the Sloan Digital Sky Survey
//! (Section VII-A simulates "a million SDSS-like queries"). The TPC-H
//! schema carries the published experiments; this module provides a
//! SkyServer-flavoured schema (`photoobj`, `specobj`, `neighbors`) for the
//! `sdss_survey` example, so the library is demonstrably not TPC-H-specific.
//!
//! The column set is a representative subset of the real `PhotoObjAll`
//! (which has 500+ columns — the pattern that makes *column-granularity*
//! caching attractive: queries touch a handful of the hundreds).

use crate::schema::Schema;
use crate::stats::ColumnStats;
use crate::types::DataType::{Float64, Int32, Int64};

/// Builds an SDSS-like schema with roughly `photo_rows` photometric objects.
///
/// DR7-scale is ~3.5 × 10⁸ rows; pass smaller values for quick examples.
///
/// # Panics
/// Panics if `photo_rows == 0`.
#[must_use]
pub fn sdss_schema(photo_rows: u64) -> Schema {
    assert!(photo_rows > 0, "need at least one object");
    let mut b = Schema::builder();
    let u = ColumnStats::uniform;
    let sk = ColumnStats::skewed;

    // Representative subset of PhotoObjAll: id, position, 5-band
    // magnitudes+errors, flags, type, extinction.
    b.table(
        "photoobj",
        photo_rows,
        &[
            ("objid", Int64, u(photo_rows)),
            ("ra", Float64, u(photo_rows)),
            ("dec", Float64, u(photo_rows)),
            ("run", Int32, u(2_000)),
            ("rerun", Int32, u(10)),
            ("camcol", Int32, u(6)),
            ("field", Int32, u(1_000)),
            ("obj_type", Int32, sk(6, 1.0)),
            ("flags", Int64, sk(1_000, 1.5)),
            ("psfmag_u", Float64, u(30_000)),
            ("psfmag_g", Float64, u(30_000)),
            ("psfmag_r", Float64, u(30_000)),
            ("psfmag_i", Float64, u(30_000)),
            ("psfmag_z", Float64, u(30_000)),
            ("psfmagerr_u", Float64, u(10_000)),
            ("psfmagerr_g", Float64, u(10_000)),
            ("psfmagerr_r", Float64, u(10_000)),
            ("psfmagerr_i", Float64, u(10_000)),
            ("psfmagerr_z", Float64, u(10_000)),
            ("petrorad_r", Float64, u(20_000)),
            ("extinction_r", Float64, u(5_000)),
            ("htmid", Int64, u(photo_rows / 4)),
        ],
    );
    let spec_rows = (photo_rows / 200).max(1); // ~0.5% have spectra
    b.table(
        "specobj",
        spec_rows,
        &[
            ("specobjid", Int64, u(spec_rows)),
            ("bestobjid", Int64, u(spec_rows)),
            ("z", Float64, u(spec_rows / 2)),
            ("zerr", Float64, u(10_000)),
            ("spec_class", Int32, sk(6, 1.2)),
            ("sn_median", Float64, u(10_000)),
        ],
    );
    let neighbor_rows = photo_rows.saturating_mul(9); // avg 9 neighbours
    b.table(
        "neighbors",
        neighbor_rows,
        &[
            ("objid", Int64, u(photo_rows)),
            ("neighborobjid", Int64, u(photo_rows)),
            ("distance_arcmin", Float64, u(100_000)),
            ("neighbor_type", Int32, sk(6, 1.0)),
        ],
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_three_tables() {
        let s = sdss_schema(1_000_000);
        assert_eq!(s.tables().len(), 3);
        assert!(s.table_by_name("photoobj").is_some());
        assert!(s.table_by_name("specobj").is_some());
        assert!(s.table_by_name("neighbors").is_some());
    }

    #[test]
    fn spectra_are_a_small_subset() {
        let s = sdss_schema(1_000_000);
        let photo = s.table_by_name("photoobj").unwrap().row_count;
        let spec = s.table_by_name("specobj").unwrap().row_count;
        assert!(spec * 100 < photo);
        assert_eq!(spec, 5_000);
    }

    #[test]
    fn magnitudes_resolvable() {
        let s = sdss_schema(1000);
        for band in ["u", "g", "r", "i", "z"] {
            assert!(
                s.column_by_name(&format!("photoobj.psfmag_{band}"))
                    .is_some(),
                "missing band {band}"
            );
        }
    }

    #[test]
    fn tiny_survey_ok() {
        let s = sdss_schema(1);
        assert_eq!(s.table_by_name("specobj").unwrap().row_count, 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_rows_rejected() {
        let _ = sdss_schema(0);
    }
}
