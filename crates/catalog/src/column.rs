//! Column metadata.

use crate::ids::{ColumnId, TableId};
use crate::stats::ColumnStats;
use crate::types::DataType;
use serde::{Deserialize, Serialize};

/// A column of a back-end table.
///
/// Columns are the unit of caching in the paper's infrastructure
/// ("the columns of the original tables in the back-end databases are
/// cached, in order to facilitate a comparison with [bypass-yield]",
/// Section V-C), so each column carries everything the cost model needs:
/// its byte width, its row count (via the owning table) and statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Schema-wide unique id.
    pub id: ColumnId,
    /// Owning table.
    pub table: TableId,
    /// Column name, e.g. `"l_shipdate"`.
    pub name: String,
    /// Storage type.
    pub ty: DataType,
    /// Statistics for selectivity estimation.
    pub stats: ColumnStats,
}

impl Column {
    /// Bytes one row of this column occupies.
    #[must_use]
    pub fn byte_width(&self) -> u64 {
        self.ty.byte_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_delegates_to_type() {
        let c = Column {
            id: ColumnId(0),
            table: TableId(0),
            name: "x".into(),
            ty: DataType::Char(10),
            stats: ColumnStats::uniform(100),
        };
        assert_eq!(c.byte_width(), 10);
    }
}
