//! Selectivity estimation for predicates.
//!
//! Plays the role of the paper's DBMS optimizer cardinality model: the
//! planner multiplies per-predicate selectivities (independence assumption,
//! the standard System-R simplification) to size intermediate results,
//! which feed `q_tot` / `io_tot` in eq. 8 and the result size `S(Q)` in
//! eq. 9.

use crate::column::Column;
use serde::{Deserialize, Serialize};

/// A predicate's shape, as far as cardinality estimation cares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredicateKind {
    /// `col = const`.
    Equality,
    /// `col < const` / `col > const` / `BETWEEN` covering the given
    /// fraction of the value domain.
    Range {
        /// Fraction of the domain the range covers, in `[0, 1]`.
        fraction: f64,
    },
    /// `col IN (k values)`.
    InList {
        /// Number of list items.
        items: u32,
    },
    /// `col LIKE 'prefix%'` — fixed heuristic selectivity.
    PrefixMatch,
}

/// Default selectivity for prefix matches (System-R style magic constant).
pub const PREFIX_MATCH_SELECTIVITY: f64 = 0.05;

/// Estimates the selectivity of a predicate over `column`.
///
/// Returns a value in `(0, 1]`; estimates are floored at `1 / rows`-ish
/// scale via the distinct count so downstream sizes never hit exactly zero
/// (zero-size results would make eq. 9 degenerate).
#[must_use]
pub fn estimate(column: &Column, kind: PredicateKind) -> f64 {
    let sel = match kind {
        PredicateKind::Equality => column.stats.equality_selectivity(),
        PredicateKind::Range { fraction } => {
            assert!(
                (0.0..=1.0).contains(&fraction),
                "range fraction {fraction} out of [0,1]"
            );
            fraction * (1.0 - column.stats.null_fraction)
        }
        PredicateKind::InList { items } => {
            (f64::from(items) * column.stats.equality_selectivity()).min(1.0)
        }
        PredicateKind::PrefixMatch => PREFIX_MATCH_SELECTIVITY,
    };
    sel.clamp(1e-9, 1.0)
}

/// Combines per-predicate selectivities under the independence assumption.
#[must_use]
pub fn conjunction(selectivities: &[f64]) -> f64 {
    selectivities.iter().product::<f64>().clamp(1e-12, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ColumnId, TableId};
    use crate::stats::ColumnStats;
    use crate::types::DataType;

    fn col(distinct: u64) -> Column {
        Column {
            id: ColumnId(0),
            table: TableId(0),
            name: "x".into(),
            ty: DataType::Int32,
            stats: ColumnStats::uniform(distinct),
        }
    }

    #[test]
    fn equality_is_one_over_distinct() {
        let c = col(1000);
        assert!((estimate(&c, PredicateKind::Equality) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn range_is_domain_fraction() {
        let c = col(100);
        let s = estimate(&c, PredicateKind::Range { fraction: 0.25 });
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn in_list_scales_with_items_and_caps_at_one() {
        let c = col(10);
        let s = estimate(&c, PredicateKind::InList { items: 3 });
        assert!((s - 0.3).abs() < 1e-12);
        let s = estimate(&c, PredicateKind::InList { items: 100 });
        assert_eq!(s, 1.0);
    }

    #[test]
    fn prefix_match_uses_magic_constant() {
        let c = col(10);
        assert_eq!(
            estimate(&c, PredicateKind::PrefixMatch),
            PREFIX_MATCH_SELECTIVITY
        );
    }

    #[test]
    fn estimates_never_zero() {
        let c = col(u64::MAX);
        assert!(estimate(&c, PredicateKind::Equality) > 0.0);
        assert!(estimate(&c, PredicateKind::Range { fraction: 0.0 }) > 0.0);
    }

    #[test]
    fn conjunction_multiplies() {
        let s = conjunction(&[0.5, 0.1]);
        assert!((s - 0.05).abs() < 1e-12);
        assert_eq!(conjunction(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_range_fraction_panics() {
        let c = col(10);
        let _ = estimate(&c, PredicateKind::Range { fraction: 1.5 });
    }
}
