//! Column data types with on-disk byte widths.
//!
//! The cost model (eqs. 12–15 of the paper) needs only one property of a
//! type: how many bytes a value occupies, because column transfer cost,
//! storage cost and index size are all linear in bytes.

use serde::{Deserialize, Serialize};

/// A column's storage type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit integer (4 bytes).
    Int32,
    /// 64-bit integer (8 bytes).
    Int64,
    /// 64-bit float (8 bytes).
    Float64,
    /// Fixed-point decimal stored as 8 bytes (TPC-H money columns).
    Decimal,
    /// Calendar date stored as 4 bytes.
    Date,
    /// Fixed-width character string of `n` bytes.
    Char(u16),
    /// Variable-width string with the given *average* width in bytes.
    Varchar(u16),
}

impl DataType {
    /// Bytes one value of this type occupies on disk (average for varchar).
    #[must_use]
    pub fn byte_width(self) -> u64 {
        match self {
            DataType::Int32 | DataType::Date => 4,
            DataType::Int64 | DataType::Float64 | DataType::Decimal => 8,
            DataType::Char(n) | DataType::Varchar(n) => u64::from(n),
        }
    }

    /// True if values of this type are naturally ordered (indexable with a
    /// range-scan-friendly B-tree).
    #[must_use]
    pub fn is_orderable(self) -> bool {
        true // all our types order; kept for future blob/json types
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(DataType::Int32.byte_width(), 4);
        assert_eq!(DataType::Int64.byte_width(), 8);
        assert_eq!(DataType::Float64.byte_width(), 8);
        assert_eq!(DataType::Decimal.byte_width(), 8);
        assert_eq!(DataType::Date.byte_width(), 4);
        assert_eq!(DataType::Char(25).byte_width(), 25);
        assert_eq!(DataType::Varchar(117).byte_width(), 117);
    }

    #[test]
    fn all_types_orderable() {
        assert!(DataType::Varchar(10).is_orderable());
    }
}
