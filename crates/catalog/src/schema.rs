//! Schema: the set of back-end tables and their columns.

use crate::column::Column;
use crate::ids::{ColumnId, TableId};
use crate::stats::ColumnStats;
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A back-end table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Schema-wide id.
    pub id: TableId,
    /// Table name, e.g. `"lineitem"`.
    pub name: String,
    /// Number of rows.
    pub row_count: u64,
    /// Ids of this table's columns (in declaration order).
    pub columns: Vec<ColumnId>,
}

/// The full relational catalog the cloud serves.
///
/// Construction goes through [`SchemaBuilder`], which assigns dense ids,
/// so lookups by id are `Vec` indexing and lookups by name are one hash
/// probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<Table>,
    columns: Vec<Column>,
    table_by_name: HashMap<String, TableId>,
    column_by_name: HashMap<String, ColumnId>,
}

impl Schema {
    /// Starts building a schema.
    #[must_use]
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// All tables in declaration order.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All columns in declaration order (dense by [`ColumnId`]).
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Looks up a table by id.
    ///
    /// # Panics
    /// Panics on an id from a different schema.
    #[must_use]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Looks up a column by id.
    ///
    /// # Panics
    /// Panics on an id from a different schema.
    #[must_use]
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.index()]
    }

    /// Looks up a table by name.
    #[must_use]
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.table_by_name.get(name).map(|&id| self.table(id))
    }

    /// Looks up a column by its qualified `"table.column"` name.
    #[must_use]
    pub fn column_by_name(&self, qualified: &str) -> Option<&Column> {
        self.column_by_name
            .get(qualified)
            .map(|&id| self.column(id))
    }

    /// Total bytes of one column across all rows — the `size(T)` of
    /// eqs. 12/13 in the paper.
    #[must_use]
    pub fn column_bytes(&self, id: ColumnId) -> u64 {
        let col = self.column(id);
        let rows = self.table(col.table).row_count;
        rows.saturating_mul(col.byte_width())
    }

    /// Total bytes of a table (sum of its column sizes).
    #[must_use]
    pub fn table_bytes(&self, id: TableId) -> u64 {
        self.table(id)
            .columns
            .iter()
            .map(|&c| self.column_bytes(c))
            .sum()
    }

    /// Total bytes of the whole database.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| self.table_bytes(t.id)).sum()
    }

    /// Number of columns.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }
}

/// Incremental schema builder; assigns dense ids in declaration order.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    tables: Vec<Table>,
    columns: Vec<Column>,
    table_by_name: HashMap<String, TableId>,
    column_by_name: HashMap<String, ColumnId>,
}

impl SchemaBuilder {
    /// Declares a table and its columns; returns the new table's id.
    ///
    /// # Panics
    /// Panics on duplicate table or column names.
    pub fn table(
        &mut self,
        name: &str,
        row_count: u64,
        columns: &[(&str, DataType, ColumnStats)],
    ) -> TableId {
        let table_id = TableId(self.tables.len() as u32);
        assert!(
            self.table_by_name
                .insert(name.to_owned(), table_id)
                .is_none(),
            "duplicate table `{name}`"
        );
        let mut ids = Vec::with_capacity(columns.len());
        for (col_name, ty, stats) in columns {
            let col_id = ColumnId(self.columns.len() as u32);
            let qualified = format!("{name}.{col_name}");
            assert!(
                self.column_by_name.insert(qualified, col_id).is_none(),
                "duplicate column `{name}.{col_name}`"
            );
            self.columns.push(Column {
                id: col_id,
                table: table_id,
                name: (*col_name).to_owned(),
                ty: *ty,
                stats: *stats,
            });
            ids.push(col_id);
        }
        self.tables.push(Table {
            id: table_id,
            name: name.to_owned(),
            row_count,
            columns: ids,
        });
        table_id
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> Schema {
        Schema {
            tables: self.tables,
            columns: self.columns,
            table_by_name: self.table_by_name,
            column_by_name: self.column_by_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Schema {
        let mut b = Schema::builder();
        b.table(
            "t1",
            100,
            &[
                ("a", DataType::Int32, ColumnStats::uniform(100)),
                ("b", DataType::Char(10), ColumnStats::uniform(5)),
            ],
        );
        b.table(
            "t2",
            10,
            &[("c", DataType::Int64, ColumnStats::uniform(10))],
        );
        b.build()
    }

    #[test]
    fn dense_ids_in_declaration_order() {
        let s = tiny();
        assert_eq!(s.tables().len(), 2);
        assert_eq!(s.column_count(), 3);
        assert_eq!(s.columns()[0].name, "a");
        assert_eq!(s.columns()[2].name, "c");
        assert_eq!(s.columns()[2].table, TableId(1));
    }

    #[test]
    fn lookups_by_name() {
        let s = tiny();
        assert_eq!(s.table_by_name("t1").unwrap().row_count, 100);
        assert!(s.table_by_name("nope").is_none());
        let b = s.column_by_name("t1.b").unwrap();
        assert_eq!(b.ty, DataType::Char(10));
        assert!(s.column_by_name("t1.c").is_none(), "c belongs to t2");
    }

    #[test]
    fn sizes_are_rows_times_width() {
        let s = tiny();
        let a = s.column_by_name("t1.a").unwrap().id;
        let b = s.column_by_name("t1.b").unwrap().id;
        assert_eq!(s.column_bytes(a), 400);
        assert_eq!(s.column_bytes(b), 1000);
        assert_eq!(s.table_bytes(TableId(0)), 1400);
        assert_eq!(s.total_bytes(), 1400 + 80);
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_rejected() {
        let mut b = Schema::builder();
        b.table("t", 1, &[]);
        b.table("t", 1, &[]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_rejected() {
        let mut b = Schema::builder();
        b.table(
            "t",
            1,
            &[
                ("a", DataType::Int32, ColumnStats::uniform(1)),
                ("a", DataType::Int32, ColumnStats::uniform(1)),
            ],
        );
    }
}
