//! Newtype identifiers for catalog entities.
//!
//! Plain `u32` indices wrapped so that a table id can never be confused
//! with a column id at a call site. Ids are dense (assigned in schema
//! declaration order), which lets downstream crates use them as `Vec`
//! indices — the regret array of the paper (`regretS`) indexes by
//! structure, which indexes by column id.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a table within a [`Schema`](crate::Schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Identifier of a column, unique across the whole schema (not per-table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

impl TableId {
    /// The id as a dense vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ColumnId {
    /// The id as a dense vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(TableId(1) < TableId(2));
        assert!(ColumnId(5) > ColumnId(4));
        assert_eq!(TableId(3).to_string(), "T3");
        assert_eq!(ColumnId(7).to_string(), "C7");
        assert_eq!(ColumnId(7).index(), 7);
        assert_eq!(TableId(2).index(), 2);
    }
}
