//! The TPC-H schema at an arbitrary scale factor.
//!
//! The paper's backend is "a 2.5 TB back-end database" driven by "7 TPCH
//! query templates" (Section VII-A). TPC-H defines row counts per scale
//! factor `SF` (SF 1 ≈ 1 GB), so [`tpch_schema`]`(2500)` reproduces the
//! paper's 2.5 TB database.
//!
//! Row counts follow the TPC-H specification §4.2.5; column widths follow
//! the standard layout (fixed-width keys/decimals/dates plus the spec's
//! average variable-width strings).

use crate::schema::Schema;
use crate::stats::ColumnStats;
use crate::types::DataType::{Char, Date, Decimal, Int32, Int64, Varchar};

/// TPC-H scale factor (SF 1 ≈ 1 GB of raw data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFactor(pub f64);

impl ScaleFactor {
    /// The paper's 2.5 TB backend.
    #[must_use]
    pub fn paper() -> Self {
        ScaleFactor(2500.0)
    }

    fn rows(self, base: u64) -> u64 {
        (base as f64 * self.0).round() as u64
    }
}

/// Builds the 8-table TPC-H schema at the given scale factor.
///
/// # Panics
/// Panics if `sf` is not positive.
#[must_use]
pub fn tpch_schema(sf: ScaleFactor) -> Schema {
    assert!(sf.0 > 0.0, "scale factor must be positive");
    let mut b = Schema::builder();
    let u = ColumnStats::uniform;

    b.table(
        "region",
        5,
        &[
            ("r_regionkey", Int32, u(5)),
            ("r_name", Char(25), u(5)),
            ("r_comment", Varchar(100), u(5)),
        ],
    );
    b.table(
        "nation",
        25,
        &[
            ("n_nationkey", Int32, u(25)),
            ("n_name", Char(25), u(25)),
            ("n_regionkey", Int32, u(5)),
            ("n_comment", Varchar(100), u(25)),
        ],
    );
    let supplier_rows = sf.rows(10_000);
    b.table(
        "supplier",
        supplier_rows,
        &[
            ("s_suppkey", Int64, u(supplier_rows)),
            ("s_name", Char(25), u(supplier_rows)),
            ("s_address", Varchar(25), u(supplier_rows)),
            ("s_nationkey", Int32, u(25)),
            ("s_phone", Char(15), u(supplier_rows)),
            ("s_acctbal", Decimal, u(supplier_rows)),
            ("s_comment", Varchar(62), u(supplier_rows)),
        ],
    );
    let part_rows = sf.rows(200_000);
    b.table(
        "part",
        part_rows,
        &[
            ("p_partkey", Int64, u(part_rows)),
            ("p_name", Varchar(33), u(part_rows)),
            ("p_mfgr", Char(25), u(5)),
            ("p_brand", Char(10), u(25)),
            ("p_type", Varchar(21), u(150)),
            ("p_size", Int32, u(50)),
            ("p_container", Char(10), u(40)),
            ("p_retailprice", Decimal, u(part_rows / 10)),
            ("p_comment", Varchar(14), u(part_rows)),
        ],
    );
    let partsupp_rows = sf.rows(800_000);
    b.table(
        "partsupp",
        partsupp_rows,
        &[
            ("ps_partkey", Int64, u(part_rows)),
            ("ps_suppkey", Int64, u(supplier_rows)),
            ("ps_availqty", Int32, u(10_000)),
            ("ps_supplycost", Decimal, u(100_000)),
            ("ps_comment", Varchar(124), u(partsupp_rows)),
        ],
    );
    let customer_rows = sf.rows(150_000);
    b.table(
        "customer",
        customer_rows,
        &[
            ("c_custkey", Int64, u(customer_rows)),
            ("c_name", Varchar(18), u(customer_rows)),
            ("c_address", Varchar(25), u(customer_rows)),
            ("c_nationkey", Int32, u(25)),
            ("c_phone", Char(15), u(customer_rows)),
            ("c_acctbal", Decimal, u(customer_rows / 10)),
            ("c_mktsegment", Char(10), u(5)),
            ("c_comment", Varchar(73), u(customer_rows)),
        ],
    );
    let orders_rows = sf.rows(1_500_000);
    b.table(
        "orders",
        orders_rows,
        &[
            ("o_orderkey", Int64, u(orders_rows)),
            ("o_custkey", Int64, u(customer_rows)),
            ("o_orderstatus", Char(1), u(3)),
            ("o_totalprice", Decimal, u(orders_rows / 10)),
            // 7 years of order dates: 2406 distinct days (spec 4.2.3).
            ("o_orderdate", Date, u(2_406)),
            ("o_orderpriority", Char(15), u(5)),
            ("o_clerk", Char(15), u(sf.rows(1_000))),
            ("o_shippriority", Int32, u(1)),
            ("o_comment", Varchar(49), u(orders_rows)),
        ],
    );
    let lineitem_rows = sf.rows(6_000_000);
    b.table(
        "lineitem",
        lineitem_rows,
        &[
            ("l_orderkey", Int64, u(orders_rows)),
            ("l_partkey", Int64, u(part_rows)),
            ("l_suppkey", Int64, u(supplier_rows)),
            ("l_linenumber", Int32, u(7)),
            ("l_quantity", Decimal, u(50)),
            ("l_extendedprice", Decimal, u(1_000_000)),
            ("l_discount", Decimal, u(11)),
            ("l_tax", Decimal, u(9)),
            ("l_returnflag", Char(1), u(3)),
            ("l_linestatus", Char(1), u(2)),
            ("l_shipdate", Date, u(2_526)),
            ("l_commitdate", Date, u(2_466)),
            ("l_receiptdate", Date, u(2_554)),
            ("l_shipinstruct", Char(25), u(4)),
            ("l_shipmode", Char(10), u(7)),
            ("l_comment", Varchar(27), u(lineitem_rows / 2)),
        ],
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf1_is_about_a_gigabyte() {
        let s = tpch_schema(ScaleFactor(1.0));
        let gb = s.total_bytes() as f64 / 1e9;
        // Raw column bytes of SF1 land near 0.9–1.1 GB depending on how
        // varchar averages are counted; accept the standard ballpark.
        assert!((0.7..1.3).contains(&gb), "SF1 = {gb} GB");
    }

    #[test]
    fn paper_scale_is_about_2_5_tb() {
        let s = tpch_schema(ScaleFactor::paper());
        let tb = s.total_bytes() as f64 / 1e12;
        assert!((1.8..3.2).contains(&tb), "SF2500 = {tb} TB");
    }

    #[test]
    fn row_counts_follow_spec_ratios() {
        let s = tpch_schema(ScaleFactor(10.0));
        assert_eq!(s.table_by_name("lineitem").unwrap().row_count, 60_000_000);
        assert_eq!(s.table_by_name("orders").unwrap().row_count, 15_000_000);
        assert_eq!(s.table_by_name("partsupp").unwrap().row_count, 8_000_000);
        assert_eq!(s.table_by_name("part").unwrap().row_count, 2_000_000);
        assert_eq!(s.table_by_name("customer").unwrap().row_count, 1_500_000);
        assert_eq!(s.table_by_name("supplier").unwrap().row_count, 100_000);
        assert_eq!(s.table_by_name("nation").unwrap().row_count, 25);
        assert_eq!(s.table_by_name("region").unwrap().row_count, 5);
    }

    #[test]
    fn all_8_tables_and_61_columns_present() {
        let s = tpch_schema(ScaleFactor(1.0));
        assert_eq!(s.tables().len(), 8);
        assert_eq!(s.column_count(), 61);
        for t in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            assert!(s.table_by_name(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn lineitem_dominates_size() {
        let s = tpch_schema(ScaleFactor(1.0));
        let li = s.table_bytes(s.table_by_name("lineitem").unwrap().id);
        assert!(li * 2 > s.total_bytes(), "lineitem should be > half the DB");
    }

    #[test]
    fn key_columns_resolvable() {
        let s = tpch_schema(ScaleFactor(1.0));
        for q in [
            "lineitem.l_shipdate",
            "orders.o_orderdate",
            "customer.c_mktsegment",
        ] {
            assert!(s.column_by_name(q).is_some(), "missing {q}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sf_rejected() {
        let _ = tpch_schema(ScaleFactor(0.0));
    }
}
