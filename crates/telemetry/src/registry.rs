//! A unified, mergeable metrics registry.
//!
//! Named counters, [`Money`] gauges and log-histograms with one merge
//! contract, inherited from `CostBreakdown::merge`: every merge is exact
//! integer addition (`u64` counts, `i128` nano-dollars, `u64` histogram
//! buckets), so merging is associative and commutative and the result is
//! bit-identical however the executor's shards are aggregated.
//!
//! Entries are kept sorted by name, so serialization order — and
//! therefore the serialized snapshot in a `BENCH_*.json` record — is
//! deterministic too.

use metrics::LogHistogram;
use pricing::Money;
use serde::{Deserialize, Serialize};

/// One metric's value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotone event count.
    Counter {
        /// Number of events.
        value: u64,
    },
    /// Exact dollar amount (nano-dollar fixed point, so sums are
    /// merge-order invariant).
    Gauge {
        /// The amount.
        amount: Money,
    },
    /// Log-bucketed distribution (latency geometry: 1 ms .. 10⁵ s,
    /// 20 buckets per decade).
    Histogram {
        /// The histogram.
        hist: LogHistogram,
    },
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter { .. } => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// A named metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEntry {
    /// Dotted metric name (`fleet.queries`, `plan_cache.hits`, …).
    pub name: String,
    /// Current value.
    pub value: MetricValue,
}

/// A set of named metrics with bit-identical merge.
///
/// Kept sorted by name; lookups are binary searches and iteration order
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    entries: Vec<MetricEntry>,
}

impl MetricsRegistry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn slot(&mut self, name: &str, default: impl FnOnce() -> MetricValue) -> &mut MetricValue {
        match self.entries.binary_search_by(|e| e.name.as_str().cmp(name)) {
            Ok(i) => &mut self.entries[i].value,
            Err(i) => {
                self.entries.insert(
                    i,
                    MetricEntry {
                        name: name.to_string(),
                        value: default(),
                    },
                );
                &mut self.entries[i].value
            }
        }
    }

    /// Adds to a counter, creating it at zero first if needed.
    ///
    /// # Panics
    /// Panics if `name` exists with a non-counter kind.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let v = self.slot(name, || MetricValue::Counter { value: 0 });
        match v {
            MetricValue::Counter { value } => *value += n,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Adds to a [`Money`] gauge, creating it at zero first if needed.
    ///
    /// # Panics
    /// Panics if `name` exists with a non-gauge kind.
    pub fn gauge_add(&mut self, name: &str, amount: Money) {
        let v = self.slot(name, || MetricValue::Gauge {
            amount: Money::ZERO,
        });
        match v {
            MetricValue::Gauge { amount: a } => *a += amount,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records an observation into a latency-geometry histogram,
    /// creating it empty first if needed.
    ///
    /// # Panics
    /// Panics if `name` exists with a non-histogram kind, or on NaN /
    /// negative observations.
    pub fn observe(&mut self, name: &str, x: f64) {
        let v = self.slot(name, || MetricValue::Histogram {
            hist: LogHistogram::latency(),
        });
        match v {
            MetricValue::Histogram { hist } => hist.record(x),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Folds an existing histogram into the named entry (any geometry;
    /// later merges must match it).
    ///
    /// # Panics
    /// Panics if `name` exists with a non-histogram kind or a different
    /// geometry.
    pub fn merge_histogram(&mut self, name: &str, other: &LogHistogram) {
        match self.entries.binary_search_by(|e| e.name.as_str().cmp(name)) {
            Ok(i) => match &mut self.entries[i].value {
                MetricValue::Histogram { hist } => hist.merge(other),
                v => panic!("metric {name} is a {}, not a histogram", v.kind()),
            },
            Err(i) => self.entries.insert(
                i,
                MetricEntry {
                    name: name.to_string(),
                    value: MetricValue::Histogram {
                        hist: other.clone(),
                    },
                },
            ),
        }
    }

    /// The value of a metric, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// Counter value shorthand (0 when absent).
    ///
    /// # Panics
    /// Panics if `name` exists with a non-counter kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            None => 0,
            Some(MetricValue::Counter { value }) => *value,
            Some(other) => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Gauge value shorthand ([`Money::ZERO`] when absent).
    ///
    /// # Panics
    /// Panics if `name` exists with a non-gauge kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Money {
        match self.get(name) {
            None => Money::ZERO,
            Some(MetricValue::Gauge { amount }) => *amount,
            Some(other) => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// All entries, sorted by name.
    #[must_use]
    pub fn entries(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another registry into this one.
    ///
    /// Same-kind entries combine by exact addition (counters and
    /// histogram buckets in `u64`, gauges in nano-dollar `i128`), so the
    /// operation is associative and commutative: merging shard
    /// registries in any order or grouping yields bit-identical state —
    /// the `CostBreakdown::merge` contract, extended to named metrics.
    ///
    /// # Panics
    /// Panics if a name exists in both with different kinds or histogram
    /// geometries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for entry in &other.entries {
            match self
                .entries
                .binary_search_by(|e| e.name.as_str().cmp(&entry.name))
            {
                Err(i) => self.entries.insert(i, entry.clone()),
                Ok(i) => match (&mut self.entries[i].value, &entry.value) {
                    (MetricValue::Counter { value: a }, MetricValue::Counter { value: b }) => {
                        *a += b;
                    }
                    (MetricValue::Gauge { amount: a }, MetricValue::Gauge { amount: b }) => {
                        *a += *b;
                    }
                    (MetricValue::Histogram { hist: a }, MetricValue::Histogram { hist: b }) => {
                        a.merge(b);
                    }
                    (mine, theirs) => panic!(
                        "metric {} kind mismatch: {} vs {}",
                        entry.name,
                        mine.kind(),
                        theirs.kind()
                    ),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a.hits", 2);
        r.counter_add("a.hits", 3);
        r.gauge_add("b.paid", Money::from_dollars(1.5));
        r.gauge_add("b.paid", Money::from_dollars(0.5));
        assert_eq!(r.counter("a.hits"), 5);
        assert_eq!(r.gauge("b.paid"), Money::from_dollars(2.0));
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("absent"), Money::ZERO);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn entries_stay_sorted_by_name() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.counter_add("m", 1);
        let names: Vec<&str> = r.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn merge_is_exact_and_symmetric() {
        let mut a = MetricsRegistry::new();
        a.counter_add("hits", 7);
        a.gauge_add("paid", Money::from_nanos(123_456_789));
        a.observe("lat", 0.25);
        let mut b = MetricsRegistry::new();
        b.counter_add("hits", 5);
        b.counter_add("misses", 1);
        b.gauge_add("paid", Money::from_nanos(1));
        b.observe("lat", 2.5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("hits"), 12);
        assert_eq!(ab.gauge("paid"), Money::from_nanos(123_456_790));
        match ab.get("lat").unwrap() {
            MetricValue::Histogram { hist } => assert_eq!(hist.count(), 2),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        a.counter_add("hits", 3);
        a.observe("lat", 1.0);
        let before = a.clone();
        a.merge(&MetricsRegistry::new());
        assert_eq!(a, before);
        let mut empty = MetricsRegistry::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge_add("x", Money::from_dollars(1.0));
        r.counter_add("x", 1);
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn merge_kind_confusion_panics() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        let mut b = MetricsRegistry::new();
        b.gauge_add("x", Money::from_dollars(1.0));
        a.merge(&b);
    }
}
