//! The live fleet health plane: per-tenant SLO ledgers, cadenced vitals
//! frames, and e-process drift alarms.
//!
//! Three pieces, all pure observers of the simulation:
//!
//! * [`SloLedger`] — mergeable per-tenant service-level records: a
//!   response-time log-histogram (p50/p99 via
//!   [`metrics::LogHistogram::p99`]), exact [`Money`] spend against an
//!   optional [`TenantSloSpec`] spend cap, and admission / deadline-miss
//!   / timeout / retry / fault-delay counters. Every merge is exact
//!   integer addition, so rollups are associative and invariant under
//!   the executor's shard partition — the same contract as
//!   [`crate::registry::MetricsRegistry`].
//! * [`VitalsFrame`] / [`HealthSeries`] — a cadenced snapshot stream
//!   driven by **simulated** time: every `snapshot_interval_secs` of sim
//!   time each cell captures backlog, pressure EWMA, node cash,
//!   plan/victim-cache counters, fault write-offs and population counts.
//!   Frames at the same tick merge across cells in ascending cell
//!   order. Wall clock never enters, so snapshot-on runs stay
//!   bit-identical to snapshot-off runs.
//! * [`detect_alarms`] — an e-process (test-martingale) drift detector
//!   over the frame stream and the SLO ledger. Each signal accumulates
//!   an e-value (wealth) via Bernoulli likelihood ratios against a
//!   static baseline breach probability and raises a typed [`Alarm`]
//!   when wealth reaches `1/alpha` — a ready-made anytime-valid test
//!   for the ROADMAP's shadow→canary→enforce guardrails.
//!
//! [`render_openmetrics`] exports a registry snapshot plus the frame
//! stream as OpenMetrics-style text; JSON export is plain serde.
//!
//! Capital write-offs are node-level (a crash burns the node's invested
//! capital, which no single tenant owns), so they appear as a fleet
//! vital on [`VitalsFrame`]; the per-tenant ledger counts the tenant's
//! *experience* of faults instead (timeouts, retries, outage delays).

use metrics::LogHistogram;
use pricing::Money;
use serde::{Deserialize, Serialize};

use crate::registry::{MetricValue, MetricsRegistry};

/// Health-plane configuration: how often (in simulated seconds) each
/// cell snapshots a [`VitalsFrame`]. Attached to a fleet config as
/// `Option<HealthConfig>`; `None` keeps the scraper entirely off the
/// hot path (one branch per arrival).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Simulated seconds between vitals snapshots. Must be positive and
    /// finite; the cadence is sim-time, never wall clock, so snapshots
    /// cannot perturb determinism.
    pub snapshot_interval_secs: f64,
}

impl HealthConfig {
    /// Validates the cadence.
    ///
    /// # Errors
    /// Returns a human-readable message for an invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.snapshot_interval_secs.is_finite() || self.snapshot_interval_secs <= 0.0 {
            return Err("snapshot_interval_secs must be positive and finite".into());
        }
        Ok(())
    }
}

/// One tenant's service-level objective: a p99 response-time target and
/// an optional exact-[`Money`] spend cap. Lives on the fleet's
/// `TenantSpec` (absent for tenants without an SLO contract).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSloSpec {
    /// The p99 response-time target in seconds. Responses at or above
    /// this target count as deadline misses; the error budget for a p99
    /// target is a 1% miss rate.
    pub p99_target_secs: f64,
    /// Spend cap over the run; `None` means uncapped.
    pub spend_cap: Option<Money>,
}

impl TenantSloSpec {
    /// Validates the objective.
    ///
    /// # Errors
    /// Returns a human-readable message for an invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.p99_target_secs.is_finite() || self.p99_target_secs <= 0.0 {
            return Err("p99_target_secs must be positive and finite".into());
        }
        Ok(())
    }
}

/// The p99 error budget: a p99 target tolerates 1% of responses at or
/// over the target.
pub const P99_MISS_BUDGET: f64 = 0.01;

/// One tenant's mergeable SLO record. All counters are exact, the
/// histogram merge is exact integer addition, and `spend` is exact
/// fixed-point [`Money`], so merging partials from different cells (or
/// shards) in any grouping yields bit-identical rollups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSloRecord {
    /// Tenant identity (the fleet's `TenantId` payload).
    pub tenant: u32,
    /// The objective this tenant contracted, if any. Deadline misses
    /// are only counted when a spec is present.
    pub slo: Option<TenantSloSpec>,
    /// Queries admitted (served) for this tenant.
    pub admitted: u64,
    /// Of the admitted queries, how many ran in a cache.
    pub cache_hits: u64,
    /// Exact spend over the run, compared against `slo.spend_cap`.
    pub spend: Money,
    /// Response times observed (seconds), latency geometry.
    pub response: LogHistogram,
    /// Responses at or over the spec's p99 target (0 without a spec).
    pub deadline_misses: u64,
    /// Quote rounds this tenant lost to a node timeout.
    pub timeouts: u64,
    /// Re-quote attempts the retry policy spent on this tenant.
    pub retries: u64,
    /// Queries delayed by a total-outage or requeue wait.
    pub fault_delays: u64,
}

impl TenantSloRecord {
    /// An empty record for one tenant.
    #[must_use]
    pub fn new(tenant: u32, slo: Option<TenantSloSpec>) -> Self {
        TenantSloRecord {
            tenant,
            slo,
            admitted: 0,
            cache_hits: 0,
            spend: Money::ZERO,
            response: LogHistogram::latency(),
            deadline_misses: 0,
            timeouts: 0,
            retries: 0,
            fault_delays: 0,
        }
    }

    /// Records one served query: response time, what the tenant paid,
    /// and whether the answer came from a cache. Counts a deadline miss
    /// when a spec is present and the response reached its p99 target.
    pub fn record_served(&mut self, response_secs: f64, payment: Money, cache_hit: bool) {
        self.admitted += 1;
        self.cache_hits += u64::from(cache_hit);
        self.spend += payment;
        self.response.record(response_secs);
        if let Some(slo) = &self.slo {
            if response_secs >= slo.p99_target_secs {
                self.deadline_misses += 1;
            }
        }
    }

    /// Merges another cell's partial for the *same* tenant.
    ///
    /// # Panics
    /// Panics if the tenant identities or SLO specs differ — a spec is
    /// config, so partials of one run can never disagree on it.
    pub fn merge(&mut self, other: &TenantSloRecord) {
        assert_eq!(self.tenant, other.tenant, "cannot merge different tenants");
        assert_eq!(self.slo, other.slo, "SLO spec changed between partials");
        self.admitted += other.admitted;
        self.cache_hits += other.cache_hits;
        self.spend += other.spend;
        self.response.merge(&other.response);
        self.deadline_misses += other.deadline_misses;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.fault_delays += other.fault_delays;
    }

    /// Measured p99 response time (seconds); `None` before any query.
    #[must_use]
    pub fn p99_secs(&self) -> Option<f64> {
        self.response.p99()
    }

    /// Deadline misses as a fraction of admitted queries.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.admitted as f64
        }
    }

    /// How fast this tenant burns its p99 error budget: 1.0 means
    /// exactly on budget (1% of responses miss), above 1.0 the SLO is
    /// burning down.
    #[must_use]
    pub fn burn_rate(&self) -> f64 {
        self.miss_rate() / P99_MISS_BUDGET
    }

    /// Whether the measured miss rate exceeds the p99 error budget
    /// (requires a spec; granularity is exact — misses are counted at
    /// serve time, not reconstructed from histogram buckets).
    #[must_use]
    pub fn p99_breached(&self) -> bool {
        self.slo.is_some() && self.admitted > 0 && self.miss_rate() > P99_MISS_BUDGET
    }

    /// Whether spend exceeded the spec's cap (false without a cap).
    #[must_use]
    pub fn spend_cap_breached(&self) -> bool {
        matches!(&self.slo, Some(TenantSloSpec { spend_cap: Some(cap), .. }) if self.spend > *cap)
    }
}

/// The fleet's per-tenant SLO ledger: records sorted ascending by
/// tenant id. Merging ledgers merges same-tenant records and keeps the
/// sort, so folding cell partials in any grouping produces the same
/// ledger — the shard-invariance contract the proptests pin.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloLedger {
    /// Per-tenant records, ascending tenant id.
    pub tenants: Vec<TenantSloRecord>,
}

impl SloLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        SloLedger::default()
    }

    /// Builds a ledger from per-tenant records (any order).
    #[must_use]
    pub fn from_records(mut tenants: Vec<TenantSloRecord>) -> Self {
        tenants.sort_by_key(|r| r.tenant);
        SloLedger { tenants }
    }

    /// The record for one tenant, if present.
    #[must_use]
    pub fn get(&self, tenant: u32) -> Option<&TenantSloRecord> {
        self.tenants
            .binary_search_by_key(&tenant, |r| r.tenant)
            .ok()
            .map(|i| &self.tenants[i])
    }

    /// Merges another ledger: same-tenant records merge, new tenants
    /// are inserted in id order. Exact arithmetic throughout, so the
    /// operation is associative and commutative.
    ///
    /// # Panics
    /// Panics if a shared tenant's SLO specs differ.
    pub fn merge(&mut self, other: &SloLedger) {
        for record in &other.tenants {
            match self
                .tenants
                .binary_search_by_key(&record.tenant, |r| r.tenant)
            {
                Ok(i) => self.tenants[i].merge(record),
                Err(i) => self.tenants.insert(i, record.clone()),
            }
        }
    }

    /// Queries admitted across all tenants.
    #[must_use]
    pub fn total_admitted(&self) -> u64 {
        self.tenants.iter().map(|r| r.admitted).sum()
    }

    /// Tenants currently violating their p99 error budget or spend cap.
    #[must_use]
    pub fn breaches(&self) -> Vec<&TenantSloRecord> {
        self.tenants
            .iter()
            .filter(|r| r.p99_breached() || r.spend_cap_breached())
            .collect()
    }
}

/// One cadenced snapshot of fleet vitals at a simulated instant. All
/// fields are cumulative since the start of the run (not per-interval),
/// so frames merge across cells by plain addition and rates derive from
/// frame-to-frame deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VitalsFrame {
    /// The simulated instant this frame samples (a multiple of the
    /// configured cadence).
    pub at_secs: f64,
    /// Queries served so far.
    pub queries: u64,
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Deadline misses so far (tenants with SLO specs only).
    pub deadline_misses: u64,
    /// Outstanding backlog (seconds of queued work) over routable nodes.
    pub backlog_secs: f64,
    /// The elastic controller's backlog EWMA (its scaling pressure
    /// signal), summed across cells; 0 for static fleets.
    pub pressure_ewma: f64,
    /// Summed cash balance of live economic nodes.
    pub node_cash: Money,
    /// Live nodes (booting + serving + draining).
    pub live_nodes: u64,
    /// Nodes currently accepting routes.
    pub routable_nodes: u64,
    /// Nodes draining toward retirement.
    pub draining_nodes: u64,
    /// Plan-cache hits so far, summed over live nodes.
    pub plan_hits: u64,
    /// Plan-cache misses so far, summed over live nodes.
    pub plan_misses: u64,
    /// Plan-cache victim-cache hits so far, summed over live nodes.
    pub victim_hits: u64,
    /// Elastic spawns so far.
    pub spawns: u64,
    /// Elastic retirements so far.
    pub retires: u64,
    /// Capital written off to crashes so far.
    pub write_off: Money,
}

impl VitalsFrame {
    /// Merges the same instant's frame from another cell (plain sums —
    /// every field is a cumulative total).
    ///
    /// # Panics
    /// Panics if the instants differ bitwise — frames only align by
    /// cadence tick.
    pub fn merge(&mut self, other: &VitalsFrame) {
        assert_eq!(
            self.at_secs.to_bits(),
            other.at_secs.to_bits(),
            "cannot merge frames from different instants"
        );
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.deadline_misses += other.deadline_misses;
        self.backlog_secs += other.backlog_secs;
        self.pressure_ewma += other.pressure_ewma;
        self.node_cash += other.node_cash;
        self.live_nodes += other.live_nodes;
        self.routable_nodes += other.routable_nodes;
        self.draining_nodes += other.draining_nodes;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.victim_hits += other.victim_hits;
        self.spawns += other.spawns;
        self.retires += other.retires;
        self.write_off += other.write_off;
    }

    /// Cumulative cache hit rate at this instant.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }
}

/// The vitals time series of one run: frames at multiples of the
/// configured cadence, ascending. Cells producing fewer frames (shorter
/// horizons) simply contribute to fewer ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSeries {
    /// The cadence the frames were sampled at (simulated seconds).
    pub interval_secs: f64,
    /// Frames, ascending `at_secs`.
    pub frames: Vec<VitalsFrame>,
}

impl HealthSeries {
    /// An empty series at the given cadence.
    #[must_use]
    pub fn new(interval_secs: f64) -> Self {
        HealthSeries {
            interval_secs,
            frames: Vec::new(),
        }
    }

    /// Merges another cell's series tick-wise: frame `i` of both series
    /// samples the same instant `(i + 1) × interval`, so they merge
    /// index-aligned; a longer series keeps its tail. Callers fold in
    /// ascending cell order for bit-reproducible float sums.
    ///
    /// # Panics
    /// Panics if the cadences differ.
    pub fn merge(&mut self, other: &HealthSeries) {
        assert_eq!(
            self.interval_secs.to_bits(),
            other.interval_secs.to_bits(),
            "cannot merge series with different cadences"
        );
        for (i, frame) in other.frames.iter().enumerate() {
            if i < self.frames.len() {
                self.frames[i].merge(frame);
            } else {
                self.frames.push(frame.clone());
            }
        }
    }
}

/// Static baselines the drift detector tests the run against, plus the
/// e-process error budget `alpha` (alarm when an e-value reaches
/// `1/alpha`; anytime-valid at level `alpha` per signal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Baselines {
    /// Per-signal false-alarm budget; alarms fire at e-value
    /// `1/alpha`.
    pub alpha: f64,
    /// Null breach probability: how often a healthy run is allowed to
    /// breach a baseline per observation (per frame, or per query for
    /// the burn-rate signal).
    pub null_breach_prob: f64,
    /// Alternative breach probability the likelihood ratio bets on; the
    /// further above `null_breach_prob`, the faster sustained breaches
    /// alarm and the slower isolated breaches accumulate.
    pub alt_breach_prob: f64,
    /// Cumulative cache hit rate a healthy fleet stays above; a frame
    /// below this floor is a breach observation. 0 disables the signal.
    pub hit_rate_floor: f64,
    /// Insolvency lookahead: a frame whose cash slope, extrapolated,
    /// reaches zero within this many simulated seconds is a breach
    /// observation. 0 disables the signal.
    pub cash_lookahead_secs: f64,
}

impl Default for Baselines {
    /// Conservative defaults: 1-in-100 false-alarm budget per signal, a
    /// 5% null breach rate vs a 50% alternative, hit-rate and cash
    /// signals enabled with generous floors.
    fn default() -> Self {
        Baselines {
            alpha: 0.01,
            null_breach_prob: 0.05,
            alt_breach_prob: 0.5,
            hit_rate_floor: 0.02,
            cash_lookahead_secs: 120.0,
        }
    }
}

/// What drifted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlarmKind {
    /// A tenant is burning its p99 error budget faster than the null
    /// miss rate allows.
    SloBurnRate {
        /// The burning tenant.
        tenant: u32,
    },
    /// Node cash is on a trajectory to insolvency within the lookahead.
    CashTrajectory,
    /// The cumulative cache hit rate fell below the baseline floor.
    CacheHitCollapse,
}

/// A typed drift alarm: which signal fired, when (simulated seconds),
/// and the e-value evidence at the crossing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// The drifting signal.
    pub kind: AlarmKind,
    /// Simulated instant of the e-value crossing (the run horizon for
    /// ledger-level signals).
    pub at_secs: f64,
    /// Natural log of the e-value at the crossing (≥ `ln(1/alpha)`).
    pub log_e_value: f64,
    /// Human-readable narration of the breach.
    pub message: String,
}

/// A Bernoulli e-process: wealth multiplies by the likelihood ratio of
/// each breach observation under `alt` vs `null`, floored at 1 (the
/// e-detector restart rule, so long clean prefixes cannot mask a later
/// sustained drift). Crossing `1/alpha` is the alarm.
struct EProcess {
    log_wealth: f64,
    log_lr_breach: f64,
    log_lr_clean: f64,
    log_threshold: f64,
}

impl EProcess {
    fn new(b: &Baselines) -> Self {
        EProcess {
            log_wealth: 0.0,
            log_lr_breach: (b.alt_breach_prob / b.null_breach_prob).ln(),
            log_lr_clean: ((1.0 - b.alt_breach_prob) / (1.0 - b.null_breach_prob)).ln(),
            log_threshold: (1.0 / b.alpha).ln(),
        }
    }

    /// Feeds one observation; returns `true` at the first threshold
    /// crossing.
    fn observe(&mut self, breach: bool) -> bool {
        let before = self.log_wealth;
        self.log_wealth = (self.log_wealth
            + if breach {
                self.log_lr_breach
            } else {
                self.log_lr_clean
            })
        .max(0.0);
        before < self.log_threshold && self.log_wealth >= self.log_threshold
    }
}

/// Runs the drift detector: burn-rate e-values per SLO tenant from the
/// ledger, cash-trajectory and hit-rate-collapse e-processes over the
/// frame stream. Pure function of its inputs — replaying a recorded run
/// reproduces the same alarms.
#[must_use]
pub fn detect_alarms(
    series: Option<&HealthSeries>,
    slo: &SloLedger,
    horizon_secs: f64,
    baselines: &Baselines,
) -> Vec<Alarm> {
    let mut alarms = Vec::new();

    // SLO burn rate, per tenant with a spec: every latency attempt is a
    // Bernoulli trial (breach vs on-time) against the null miss rate —
    // deadline misses among the admitted responses, plus timed-out
    // attempts, which blew the target without ever producing a response
    // — so the e-value has the closed form lr_breach^breaches ×
    // lr_clean^clean.
    let e0 = EProcess::new(baselines);
    for record in slo.tenants.iter().filter(|r| r.slo.is_some()) {
        let breaches = record.deadline_misses + record.timeouts;
        let clean = record.admitted - record.deadline_misses;
        let log_e = (breaches as f64 * e0.log_lr_breach + clean as f64 * e0.log_lr_clean).max(0.0);
        if log_e >= e0.log_threshold {
            alarms.push(Alarm {
                kind: AlarmKind::SloBurnRate {
                    tenant: record.tenant,
                },
                at_secs: horizon_secs,
                log_e_value: log_e,
                message: format!(
                    "tenant {} burn rate {:.1}x: {} of {} responses at/over the {:.3}s p99 \
                     target, {} timed-out attempt(s)",
                    record.tenant,
                    record.burn_rate(),
                    record.deadline_misses,
                    record.admitted,
                    record.slo.as_ref().map_or(0.0, |s| s.p99_target_secs),
                    record.timeouts,
                ),
            });
        }
    }

    let Some(series) = series else {
        return alarms;
    };

    // Cache hit-rate collapse: cumulative hit rate under the floor.
    // The detector arms only once the rate has *attained* the floor — a
    // collapse requires something to collapse from. A cold cache that
    // never warmed is visible in the frames themselves; alarming on the
    // warmup transient would make every fresh fleet cry wolf.
    if baselines.hit_rate_floor > 0.0 {
        let mut e = EProcess::new(baselines);
        let mut armed = false;
        for frame in &series.frames {
            if !armed {
                armed = frame.queries > 0 && frame.hit_rate() >= baselines.hit_rate_floor;
                continue;
            }
            let breach = frame.queries > 0 && frame.hit_rate() < baselines.hit_rate_floor;
            if e.observe(breach) {
                alarms.push(Alarm {
                    kind: AlarmKind::CacheHitCollapse,
                    at_secs: frame.at_secs,
                    log_e_value: e.log_wealth,
                    message: format!(
                        "hit rate {:.1}% below the {:.1}% floor at t={:.0}s",
                        frame.hit_rate() * 100.0,
                        baselines.hit_rate_floor * 100.0,
                        frame.at_secs,
                    ),
                });
                break;
            }
        }
    }

    // Cash-to-insolvency trajectory: extrapolate the frame-to-frame
    // cash slope; reaching zero within the lookahead is a breach. Only
    // stable-population windows count: `node_cash` sums the *live*
    // nodes, so a spawn or retire steps the sum for reasons that have
    // nothing to do with burn rate — a drained idle node taking its
    // balance with it is the control plane working, not insolvency.
    if baselines.cash_lookahead_secs > 0.0 {
        let mut e = EProcess::new(baselines);
        for pair in series.frames.windows(2) {
            let (prev, cur) = (&pair[0], &pair[1]);
            let stable = cur.live_nodes == prev.live_nodes
                && cur.spawns == prev.spawns
                && cur.retires == prev.retires;
            if !stable {
                continue;
            }
            let dt = cur.at_secs - prev.at_secs;
            let slope = (cur.node_cash.as_dollars() - prev.node_cash.as_dollars()) / dt.max(1e-9);
            let breach =
                slope < 0.0 && cur.node_cash.as_dollars() / -slope <= baselines.cash_lookahead_secs;
            if e.observe(breach) {
                alarms.push(Alarm {
                    kind: AlarmKind::CashTrajectory,
                    at_secs: cur.at_secs,
                    log_e_value: e.log_wealth,
                    message: format!(
                        "node cash ${:.6} draining at ${:.8}/s reaches insolvency within {:.0}s (t={:.0}s)",
                        cur.node_cash.as_dollars(),
                        -slope,
                        baselines.cash_lookahead_secs,
                        cur.at_secs,
                    ),
                });
                break;
            }
        }
    }

    alarms
}

/// Sanitizes a metric name for OpenMetrics exposition (dots and other
/// punctuation become underscores).
fn openmetrics_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders a registry snapshot (plus, optionally, the vitals series'
/// final frame) as OpenMetrics-style text: counters as `*_total`,
/// [`Money`] gauges in dollars, histograms as summaries with
/// p50/p99/p99.9 quantile samples, terminated by `# EOF`.
#[must_use]
pub fn render_openmetrics(registry: &MetricsRegistry, series: Option<&HealthSeries>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for entry in registry.entries() {
        let name = openmetrics_name(&entry.name);
        match &entry.value {
            MetricValue::Counter { value } => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name}_total {value}");
            }
            MetricValue::Gauge { amount } => {
                let _ = writeln!(
                    out,
                    "# TYPE {name} gauge\n{name}_dollars {:.9}",
                    amount.as_dollars()
                );
            }
            MetricValue::Histogram { hist } => {
                let _ = writeln!(out, "# TYPE {name} summary\n{name}_count {}", hist.count());
                for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                    if let Some(v) = hist.quantile(q) {
                        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {v:.9}");
                    }
                }
            }
        }
    }
    if let Some(series) = series {
        let _ = writeln!(
            out,
            "# TYPE fleet_vitals_frames counter\nfleet_vitals_frames_total {}",
            series.frames.len()
        );
        if let Some(last) = series.frames.last() {
            let gauges: [(&str, f64); 7] = [
                ("fleet_vitals_backlog_secs", last.backlog_secs),
                ("fleet_vitals_pressure_ewma", last.pressure_ewma),
                (
                    "fleet_vitals_node_cash_dollars",
                    last.node_cash.as_dollars(),
                ),
                ("fleet_vitals_live_nodes", last.live_nodes as f64),
                ("fleet_vitals_routable_nodes", last.routable_nodes as f64),
                ("fleet_vitals_hit_rate", last.hit_rate()),
                (
                    "fleet_vitals_write_off_dollars",
                    last.write_off.as_dollars(),
                ),
            ];
            for (name, value) in gauges {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value:.9}");
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tenant: u32, responses: &[f64], target: f64) -> TenantSloRecord {
        let mut r = TenantSloRecord::new(
            tenant,
            Some(TenantSloSpec {
                p99_target_secs: target,
                spend_cap: Some(Money::from_dollars(1.0)),
            }),
        );
        for &s in responses {
            r.record_served(s, Money::from_dollars(0.001), s < 0.5);
        }
        r
    }

    #[test]
    fn record_counts_misses_and_spend_exactly() {
        let r = record(7, &[0.1, 0.2, 3.0, 5.0], 2.0);
        assert_eq!(r.admitted, 4);
        assert_eq!(r.deadline_misses, 2);
        assert_eq!(r.cache_hits, 2);
        assert_eq!(r.spend, Money::from_dollars(0.004));
        assert!(r.p99_breached(), "50% miss rate >> 1% budget");
        assert!(!r.spend_cap_breached());
        assert!((r.burn_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn tenants_without_specs_never_miss_deadlines() {
        let mut r = TenantSloRecord::new(3, None);
        r.record_served(1e4, Money::ZERO, false);
        assert_eq!(r.deadline_misses, 0);
        assert!(!r.p99_breached() && !r.spend_cap_breached());
    }

    #[test]
    fn ledger_merge_is_associative_and_order_invariant() {
        let a = SloLedger::from_records(vec![record(1, &[0.1], 2.0), record(2, &[0.2], 2.0)]);
        let b = SloLedger::from_records(vec![record(2, &[3.0], 2.0)]);
        let c = SloLedger::from_records(vec![record(3, &[0.4, 0.5], 2.0)]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associative");

        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(ab_c, cba, "commutative");
        let ids: Vec<u32> = ab_c.tenants.iter().map(|r| r.tenant).collect();
        assert_eq!(ids, vec![1, 2, 3], "sorted after merge");
        assert_eq!(ab_c.get(2).unwrap().admitted, 2);
    }

    #[test]
    #[should_panic(expected = "SLO spec changed")]
    fn record_merge_rejects_spec_drift() {
        let mut a = record(1, &[], 2.0);
        a.merge(&record(1, &[], 3.0));
    }

    #[test]
    fn frames_merge_tick_aligned_with_tails() {
        let frame = |at: f64, queries: u64| VitalsFrame {
            at_secs: at,
            queries,
            cache_hits: queries / 2,
            deadline_misses: 0,
            backlog_secs: 1.5,
            pressure_ewma: 0.25,
            node_cash: Money::from_dollars(0.01),
            live_nodes: 4,
            routable_nodes: 4,
            draining_nodes: 0,
            plan_hits: 10,
            plan_misses: 5,
            victim_hits: 1,
            spawns: 0,
            retires: 0,
            write_off: Money::ZERO,
        };
        let mut a = HealthSeries::new(5.0);
        a.frames = vec![frame(5.0, 10)];
        let mut b = HealthSeries::new(5.0);
        b.frames = vec![frame(5.0, 6), frame(10.0, 12)];
        a.merge(&b);
        assert_eq!(a.frames.len(), 2, "longer series keeps its tail");
        assert_eq!(a.frames[0].queries, 16);
        assert_eq!(a.frames[0].node_cash, Money::from_dollars(0.02));
        assert_eq!(a.frames[1].queries, 12);
    }

    #[test]
    #[should_panic(expected = "different instants")]
    fn frame_merge_rejects_misaligned_ticks() {
        let mut series = HealthSeries::new(5.0);
        series.frames = vec![VitalsFrame {
            at_secs: 5.0,
            queries: 0,
            cache_hits: 0,
            deadline_misses: 0,
            backlog_secs: 0.0,
            pressure_ewma: 0.0,
            node_cash: Money::ZERO,
            live_nodes: 0,
            routable_nodes: 0,
            draining_nodes: 0,
            plan_hits: 0,
            plan_misses: 0,
            victim_hits: 0,
            spawns: 0,
            retires: 0,
            write_off: Money::ZERO,
        }];
        let mut other = series.clone();
        other.frames[0].at_secs = 10.0;
        series.merge(&other);
    }

    #[test]
    fn burn_rate_alarm_fires_on_sustained_misses_only() {
        let burning = SloLedger::from_records(vec![record(
            5,
            &[3.0, 3.0, 3.0, 3.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1],
            2.0,
        )]);
        let alarms = detect_alarms(None, &burning, 100.0, &Baselines::default());
        assert_eq!(alarms.len(), 1);
        assert!(matches!(
            alarms[0].kind,
            AlarmKind::SloBurnRate { tenant: 5 }
        ));
        assert!(alarms[0].message.contains("tenant 5"));

        // One miss in many on-time responses: no alarm — the clean
        // observations keep the wealth floored.
        let healthy = SloLedger::from_records(vec![record(
            5,
            &[3.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1],
            2.0,
        )]);
        assert!(detect_alarms(None, &healthy, 100.0, &Baselines::default()).is_empty());
    }

    #[test]
    fn burn_rate_counts_timed_out_attempts_as_breach_evidence() {
        // Every response lands on time, but the retry plane burned
        // through timeouts getting there: each timed-out attempt blew
        // the latency target without producing a response, so the
        // e-process must treat it as breach evidence.
        let mut r = record(7, &[0.1; 10], 2.0);
        assert!(
            detect_alarms(
                None,
                &SloLedger::from_records(vec![r.clone()]),
                100.0,
                &Baselines::default()
            )
            .is_empty(),
            "on-time responses alone must stay silent"
        );
        r.timeouts = 6;
        let alarms = detect_alarms(
            None,
            &SloLedger::from_records(vec![r]),
            100.0,
            &Baselines::default(),
        );
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert!(matches!(
            alarms[0].kind,
            AlarmKind::SloBurnRate { tenant: 7 }
        ));
        assert!(
            alarms[0].message.contains("6 timed-out attempt(s)"),
            "{}",
            alarms[0].message
        );
    }

    #[test]
    fn hit_collapse_and_cash_trajectory_alarm_over_frames() {
        let frame = |at: f64, queries: u64, hits: u64, cash: f64| VitalsFrame {
            at_secs: at,
            queries,
            cache_hits: hits,
            deadline_misses: 0,
            backlog_secs: 0.0,
            pressure_ewma: 0.0,
            node_cash: Money::from_dollars(cash),
            live_nodes: 1,
            routable_nodes: 1,
            draining_nodes: 0,
            plan_hits: 0,
            plan_misses: 0,
            victim_hits: 0,
            spawns: 0,
            retires: 0,
            write_off: Money::ZERO,
        };
        let mut series = HealthSeries::new(10.0);
        // The collapse detector arms once the rate first attains the
        // floor, so frame 1 starts warm (3 hits in 100 ≥ the 2% floor);
        // hits then freeze while traffic grows — a genuine collapse —
        // and cash drains toward zero: both frame signals must alarm
        // once each.
        for k in 1..=10 {
            let at = 10.0 * k as f64;
            series
                .frames
                .push(frame(at, 100 * k, 3, 0.01 - 0.0009 * k as f64));
        }
        let slo = SloLedger::new();
        let alarms = detect_alarms(Some(&series), &slo, 100.0, &Baselines::default());
        assert_eq!(alarms.len(), 2, "alarms: {alarms:?}");
        assert!(alarms.iter().any(|a| a.kind == AlarmKind::CacheHitCollapse));
        assert!(alarms.iter().any(|a| a.kind == AlarmKind::CashTrajectory));

        // Healthy frames: good hit rate, cash rising — silence.
        let mut healthy = HealthSeries::new(10.0);
        for k in 1..=10 {
            let at = 10.0 * k as f64;
            healthy
                .frames
                .push(frame(at, 100 * k, 50 * k, 0.01 + 0.001 * k as f64));
        }
        assert!(detect_alarms(Some(&healthy), &slo, 100.0, &Baselines::default()).is_empty());

        // A cache that never warmed past the floor is a cold start, not
        // a collapse — the unarmed detector must stay silent however
        // long the sub-floor stretch runs.
        let mut cold = HealthSeries::new(10.0);
        for k in 1..=20 {
            let at = 10.0 * k as f64;
            cold.frames.push(frame(at, 100 * k, 0, 1.0));
        }
        assert!(detect_alarms(Some(&cold), &slo, 200.0, &Baselines::default()).is_empty());
    }

    #[test]
    fn detector_is_a_pure_function_of_its_inputs() {
        let ledger = SloLedger::from_records(vec![record(1, &[3.0, 3.0, 3.0], 2.0)]);
        let a = detect_alarms(None, &ledger, 50.0, &Baselines::default());
        let b = detect_alarms(None, &ledger, 50.0, &Baselines::default());
        assert_eq!(a, b);
    }

    #[test]
    fn openmetrics_renders_all_three_kinds_and_terminates() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("fleet.queries", 42);
        reg.gauge_add("fleet.payments", Money::from_dollars(1.25));
        reg.observe("fleet.response_secs", 0.5);
        let text = render_openmetrics(&reg, None);
        assert!(text.contains("# TYPE fleet_queries counter"));
        assert!(text.contains("fleet_queries_total 42"));
        assert!(text.contains("fleet_payments_dollars 1.250000000"));
        assert!(text.contains("# TYPE fleet_response_secs summary"));
        assert!(text.contains("fleet_response_secs_count 1"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn openmetrics_appends_final_frame_vitals() {
        let mut series = HealthSeries::new(5.0);
        series.frames.push(VitalsFrame {
            at_secs: 5.0,
            queries: 10,
            cache_hits: 5,
            deadline_misses: 0,
            backlog_secs: 2.0,
            pressure_ewma: 0.5,
            node_cash: Money::from_dollars(0.03),
            live_nodes: 3,
            routable_nodes: 3,
            draining_nodes: 0,
            plan_hits: 0,
            plan_misses: 0,
            victim_hits: 0,
            spawns: 1,
            retires: 0,
            write_off: Money::ZERO,
        });
        let text = render_openmetrics(&MetricsRegistry::new(), Some(&series));
        assert!(text.contains("fleet_vitals_frames_total 1"));
        assert!(text.contains("fleet_vitals_node_cash_dollars 0.030000000"));
        assert!(text.contains("fleet_vitals_hit_rate 0.500000000"));
    }

    #[test]
    fn configs_validate() {
        assert!(HealthConfig {
            snapshot_interval_secs: 5.0
        }
        .validate()
        .is_ok());
        assert!(HealthConfig {
            snapshot_interval_secs: 0.0
        }
        .validate()
        .is_err());
        assert!(TenantSloSpec {
            p99_target_secs: 2.0,
            spend_cap: None
        }
        .validate()
        .is_ok());
        assert!(TenantSloSpec {
            p99_target_secs: f64::NAN,
            spend_cap: None
        }
        .validate()
        .is_err());
    }

    #[test]
    fn health_types_roundtrip_serde() {
        let ledger = SloLedger::from_records(vec![record(9, &[0.1, 4.0], 2.0)]);
        let json = serde_json::to_string(&ledger).unwrap();
        let back: SloLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(ledger, back);

        let mut series = HealthSeries::new(5.0);
        series.frames.push(VitalsFrame {
            at_secs: 5.0,
            queries: 1,
            cache_hits: 0,
            deadline_misses: 0,
            backlog_secs: 0.0,
            pressure_ewma: 0.0,
            node_cash: Money::ZERO,
            live_nodes: 1,
            routable_nodes: 1,
            draining_nodes: 0,
            plan_hits: 0,
            plan_misses: 0,
            victim_hits: 0,
            spawns: 0,
            retires: 0,
            write_off: Money::ZERO,
        });
        let json = serde_json::to_string(&series).unwrap();
        let back: HealthSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(series, back);

        let alarm = Alarm {
            kind: AlarmKind::SloBurnRate { tenant: 4 },
            at_secs: 10.0,
            log_e_value: 5.0,
            message: "m".into(),
        };
        let json = serde_json::to_string(&alarm).unwrap();
        let back: Alarm = serde_json::from_str(&json).unwrap();
        assert_eq!(alarm, back);
    }
}
