//! # telemetry — the fleet flight recorder
//!
//! The paper's whole argument is economic *attribution*: every cent of
//! operating cost and every second of response time traces back to a
//! priced decision — a quote (eq. 3), a settlement (eq. 11/13), an
//! investment, or a node lifecycle action (footnote 3's "rent one more
//! node" reasoning). This crate is the unified recorder for those
//! decisions:
//!
//! * [`event::TraceEvent`] — a typed event stream: quote-round outcomes,
//!   query settlements with per-resource cost deltas, and node lifecycle
//!   transitions (folding the elastic controller's `LedgerEntry` into the
//!   same stream).
//! * [`sink::TraceSink`] — where events go. The default [`sink::NoopSink`]
//!   reports itself disabled so instrumented code skips event assembly
//!   entirely; [`sink::RingSink`] keeps the last *N* events;
//!   [`sink::Recorder`] keeps everything for replay.
//! * [`registry::MetricsRegistry`] — named counters, exact [`pricing::Money`]
//!   gauges and log-histograms that merge across executor shards
//!   bit-identically (the same associativity contract as
//!   `CostBreakdown::merge`: every merge operation is exact integer
//!   addition, so aggregation order cannot change the result).
//! * [`explain`] — replay rollups over a recorded trace: why a node
//!   retired, which tenants/templates paid for a structure, and where
//!   the dollars went per tenant/template/structure/node/resource.
//!
//! The headline invariant: a run with tracing enabled is bit-identical to
//! one with the no-op sink. Instrumentation only *observes* — it never
//! feeds back into routing, quoting or settlement.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod explain;
pub mod health;
pub mod registry;
pub mod sink;

pub use event::{
    LifecyclePhase, NodeCrashEvent, NodeEvacuateEvent, NodeLifecycleEvent, NodeRecoverEvent,
    PlanCacheDelta, QueryRetryEvent, QuoteRoundEvent, SettlementEvent, TraceEvent,
};
pub use explain::{
    blame, explain_crash, explain_retirement, node_timeline, structure_payers, BlameKey, BlameRow,
};
pub use health::{
    detect_alarms, render_openmetrics, Alarm, AlarmKind, Baselines, HealthConfig, HealthSeries,
    SloLedger, TenantSloRecord, TenantSloSpec, VitalsFrame, P99_MISS_BUDGET,
};
pub use registry::{MetricValue, MetricsRegistry};
pub use sink::{NoopSink, Recorder, RingSink, TraceSink};

use serde::{Deserialize, Serialize};

/// A recorded run: the full event stream plus the merged registry
/// snapshot, as serialized by `bench --bin explain record` and replayed
/// by its query subcommands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Free-form label describing the run (scenario, scale, seed).
    pub label: String,
    /// Every event, in deterministic order (ascending cell, then
    /// per-cell arrival order).
    pub events: Vec<TraceEvent>,
    /// Registry snapshot merged across shards in ascending cell order.
    pub registry: MetricsRegistry,
    /// Per-tenant SLO ledger of the recorded run; `None` in traces
    /// recorded before the health plane existed (serde default).
    #[serde(default)]
    pub slo: Option<SloLedger>,
    /// Cadenced vitals frames of the recorded run; `None` when the run
    /// had no health config or the trace predates the health plane.
    #[serde(default)]
    pub health: Option<HealthSeries>,
}
