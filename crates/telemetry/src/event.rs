//! Typed trace events.
//!
//! Each event is a flat, owned record — no references into simulator
//! state — so a recorded stream serializes losslessly and replays
//! without the simulator. Events carry cell and arrival-time keys; the
//! executor emits them in deterministic order (ascending cell, then
//! per-cell arrival order), so two runs of the same config produce
//! byte-identical streams.

use metrics::CostBreakdown;
use pricing::Money;
use serde::{Deserialize, Serialize};

/// Plan-cache activity observed across one instrumented step, as a delta
/// of the per-node `PlanCacheStats` totals (hits/misses/refreshes/
/// completions only ever grow within a query step, so deltas are exact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheDelta {
    /// Memoized skeletons reused as-is.
    pub hits: u64,
    /// Plans built from scratch.
    pub misses: u64,
    /// Stale entries re-planned after a cache-content change.
    pub refreshes: u64,
    /// Shared skeletons completed against per-node cache state.
    pub completions: u64,
    /// Set-miss lookups rescued by the memo's victim cache. Defaults to
    /// zero so traces recorded before the victim cache existed still
    /// replay.
    #[serde(default)]
    pub victim_hits: u64,
}

impl PlanCacheDelta {
    /// True when the step touched the plan cache at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.hits + self.misses + self.refreshes + self.completions + self.victim_hits > 0
    }
}

/// One quote round: the fleet router asked every routable node to price a
/// query (the paper's eq. 3 bid) and picked a winner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuoteRoundEvent {
    /// Fleet cell the round ran in.
    pub cell: usize,
    /// Simulated arrival time, seconds.
    pub at_secs: f64,
    /// Tenant issuing the query.
    pub tenant: u32,
    /// Workload template that produced the query.
    pub template: usize,
    /// Workload-wide query sequence number.
    pub query: u64,
    /// Node id of the winning bidder.
    pub winner: usize,
    /// The winning bid, when the routing strategy quotes (strategies
    /// like round-robin route without pricing).
    pub winning_quote: Option<Money>,
    /// How many nodes were routable (quoted) this round.
    pub routable: usize,
    /// Plan-cache activity during the round (skeleton reuse across the
    /// fan-out shows up as completions).
    pub plan_cache: PlanCacheDelta,
}

/// One query settlement: the winning node executed the query and the
/// books were balanced — the tenant's payment (eq. 11 pricing), the
/// node's profit, and the cloud's per-resource execution spend (eq. 9/13
/// cost deltas).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettlementEvent {
    /// Fleet cell the query ran in.
    pub cell: usize,
    /// Simulated arrival time, seconds.
    pub at_secs: f64,
    /// Paying tenant.
    pub tenant: u32,
    /// Workload template that produced the query.
    pub template: usize,
    /// Workload-wide query sequence number.
    pub query: u64,
    /// Node that served the query.
    pub node: usize,
    /// Wall-clock response time, seconds.
    pub response_secs: f64,
    /// True when served from cached structures rather than the backend.
    pub ran_in_cache: bool,
    /// What the tenant paid (eq. 11).
    pub payment: Money,
    /// Node profit after costs (payment minus exec + amortization).
    pub profit: Money,
    /// Per-resource execution cost booked this step (eq. 9 backend or
    /// cache I/O; CPU uptime and disk rent accrue separately).
    pub exec: CostBreakdown,
    /// Structure-build spending triggered by this query's revenue.
    pub build_spend: Money,
    /// Cached structures the winning plan actually used (display form of
    /// `cache::StructureKey`); empty for backend runs.
    pub used_structures: Vec<String>,
    /// Structures built on the back of this query.
    pub investments: u32,
    /// Structures evicted to make room.
    pub evictions: u32,
    /// Plan-cache activity while serving (the winner replans against its
    /// own cache content before executing).
    pub plan_cache: PlanCacheDelta,
}

/// Node lifecycle transition kinds, mirroring the elastic controller's
/// `ElasticAction` (plus `Hold` for explainable no-ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecyclePhase {
    /// A new node was spawned (begins booting).
    Spawn,
    /// A node stopped accepting queries and began draining.
    DrainBegin,
    /// A drained node was removed and its books settled.
    Retire,
    /// A review ran and decided to do nothing.
    Hold,
}

impl LifecyclePhase {
    /// Stable lower-case label (used in explain output).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            LifecyclePhase::Spawn => "spawn",
            LifecyclePhase::DrainBegin => "drain-begin",
            LifecyclePhase::Retire => "retire",
            LifecyclePhase::Hold => "hold",
        }
    }
}

/// One node lifecycle transition, folding the elastic controller's
/// `LedgerEntry` (rule + population counts + pressure signals) into the
/// unified event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLifecycleEvent {
    /// Fleet cell the review ran in.
    pub cell: usize,
    /// Simulated review time, seconds.
    pub at_secs: f64,
    /// Transition kind.
    pub phase: LifecyclePhase,
    /// The node acted on (`None` for holds).
    pub node: Option<usize>,
    /// The controller rule that fired (e.g. `backlog-pressure`,
    /// `drain-insolvent`, `cooldown`).
    pub rule: String,
    /// Caching scheme a spawned node runs (empty otherwise).
    pub scheme: String,
    /// Live nodes at review time.
    pub live: usize,
    /// Routable (booted, non-draining) nodes at review time.
    pub routable: usize,
    /// Nodes still booting.
    pub booting: usize,
    /// Nodes draining toward retirement.
    pub draining: usize,
    /// Instantaneous backlog (queries queued across live nodes).
    pub backlog: f64,
    /// Smoothed backlog pressure (EWMA).
    pub backlog_ewma: f64,
    /// Mean response time over the review window, seconds.
    pub window_response_secs: f64,
    /// Fleet profit rate over the window, dollars/second.
    pub profit_rate: f64,
    /// Fleet regret rate over the window, dollars/second.
    pub regret_rate: f64,
}

/// One injected node crash, settled: the fault plane removed the node at
/// a configured instant, charged its eq. 11 uptime and eq. 13 disk-rent
/// integrals up to that instant, and wrote its invested build capital
/// off as a ledgered loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeCrashEvent {
    /// Fleet cell the crash fired in.
    pub cell: usize,
    /// Simulated crash instant, seconds.
    pub at_secs: f64,
    /// The crashed node's id.
    pub node: usize,
    /// Lifecycle phase at the instant (`active`, `mid-boot`, `mid-drain`).
    pub phase: String,
    /// Queries the node had served.
    pub queries: u64,
    /// Payments it had collected.
    pub payments: Money,
    /// Profit it had accumulated.
    pub profit: Money,
    /// Operating cost settled at the crash instant (eq. 11 + eq. 13).
    pub operating: Money,
    /// Invested build capital written off (structures + boot), net of
    /// any capital evacuation moved to survivors first.
    pub write_off: Money,
    /// Capital evacuation preserved before this crash (moved invested
    /// capital minus transfer spend). Defaults to zero so traces recorded
    /// before evacuation existed still replay.
    #[serde(default)]
    pub salvaged: Money,
    /// Eq. 12 wire cost receivers paid for the evacuated structures.
    #[serde(default)]
    pub transfer_spend: Money,
    /// Cascade generation (0 for planned crashes).
    #[serde(default)]
    pub cascade_depth: u32,
    /// Cache disk occupied when the node died (bytes).
    pub disk_bytes: u64,
    /// In-flight backlog re-queued onto a survivor, seconds
    /// (post-penalty).
    pub requeued_secs: f64,
    /// The survivor that absorbed the backlog, if any was routable.
    pub requeued_to: Option<usize>,
    /// True when a replay-recovery is scheduled for this crash.
    pub recover_planned: bool,
}

/// One completed crash-recovery: a replacement node was reconstructed by
/// replaying the crashed node's settlement journal into a fresh economy,
/// cross-footed exactly against the pre-crash books.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecoverEvent {
    /// Fleet cell the recovery fired in.
    pub cell: usize,
    /// Simulated recovery instant, seconds.
    pub at_secs: f64,
    /// The node whose ledger was replayed.
    pub crashed: usize,
    /// The replacement node's fresh id.
    pub replacement: usize,
    /// Eq. 10 boot capital charged to the replacement.
    pub boot_cost: Money,
    /// When the replacement becomes routable, seconds.
    pub ready_at_secs: f64,
    /// Journal length replayed.
    pub replayed_queries: u64,
    /// True when the replayed balances reconciled with zero drift.
    pub reconciled: bool,
}

/// One capital-preserving evacuation: a dying node's profitable
/// structures migrated to survivors at eq. 12's column-move price,
/// settled through the economy (the receivers invested the transfer
/// cost; the victim's eventual write-off shrinks by the moved capital).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeEvacuateEvent {
    /// Fleet cell the evacuation fired in.
    pub cell: usize,
    /// Simulated evacuation instant, seconds.
    pub at_secs: f64,
    /// The evacuated node's id.
    pub node: usize,
    /// Why it fired: `warning` (planned-crash window) or `drain`.
    pub reason: String,
    /// Structures migrated to survivors.
    pub structures_moved: u64,
    /// Capital preserved (moved invested capital minus transfer spend).
    pub salvaged: Money,
    /// Total eq. 12 wire cost the receivers paid.
    pub transfer_spend: Money,
    /// Receiving node ids, ascending, deduplicated.
    pub receivers: Vec<usize>,
}

/// One deadline-budgeted retry: a query routed at a degraded winner
/// backed off deterministically, burned part of its budget headroom, and
/// re-routed to the next-best node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRetryEvent {
    /// Fleet cell the retry fired in.
    pub cell: usize,
    /// Simulated arrival time of the query, seconds.
    pub at_secs: f64,
    /// Tenant issuing the query.
    pub tenant: u32,
    /// Workload template that produced the query.
    pub template: usize,
    /// Workload-wide query sequence number.
    pub query: u64,
    /// The degraded node the retry abandoned.
    pub from_node: usize,
    /// The node the retry re-routed to.
    pub to_node: usize,
    /// Retry number (1-based).
    pub attempt: u32,
    /// Backoff charged before this retry, seconds.
    pub backoff_secs: f64,
    /// The query's budget scale after this retry's decay (1.0 means the
    /// headroom is gone and the plan has downgraded to backend pricing).
    pub budget_scale: f64,
}

/// A single flight-recorder event.
///
/// Externally tagged on serialization (`{"QuoteRound": {...}}`), so a
/// trace file is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A routing quote round concluded.
    QuoteRound(QuoteRoundEvent),
    /// A query settled.
    Settlement(SettlementEvent),
    /// A node changed lifecycle state.
    NodeLifecycle(NodeLifecycleEvent),
    /// An injected crash settled a node's books.
    NodeCrash(NodeCrashEvent),
    /// A crashed node was reconstructed by ledger replay.
    NodeRecover(NodeRecoverEvent),
    /// A dying node's structures migrated to survivors.
    NodeEvacuate(NodeEvacuateEvent),
    /// A query retried away from a degraded winner.
    QueryRetry(QueryRetryEvent),
}

impl TraceEvent {
    /// Fleet cell the event belongs to.
    #[must_use]
    pub fn cell(&self) -> usize {
        match self {
            TraceEvent::QuoteRound(e) => e.cell,
            TraceEvent::Settlement(e) => e.cell,
            TraceEvent::NodeLifecycle(e) => e.cell,
            TraceEvent::NodeCrash(e) => e.cell,
            TraceEvent::NodeRecover(e) => e.cell,
            TraceEvent::NodeEvacuate(e) => e.cell,
            TraceEvent::QueryRetry(e) => e.cell,
        }
    }

    /// Simulated time of the event, seconds.
    #[must_use]
    pub fn at_secs(&self) -> f64 {
        match self {
            TraceEvent::QuoteRound(e) => e.at_secs,
            TraceEvent::Settlement(e) => e.at_secs,
            TraceEvent::NodeLifecycle(e) => e.at_secs,
            TraceEvent::NodeCrash(e) => e.at_secs,
            TraceEvent::NodeRecover(e) => e.at_secs,
            TraceEvent::NodeEvacuate(e) => e.at_secs,
            TraceEvent::QueryRetry(e) => e.at_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cache_delta_any() {
        assert!(!PlanCacheDelta::default().any());
        let d = PlanCacheDelta {
            completions: 1,
            ..PlanCacheDelta::default()
        };
        assert!(d.any());
    }

    #[test]
    fn accessors_cover_all_variants() {
        let q = TraceEvent::QuoteRound(QuoteRoundEvent {
            cell: 3,
            at_secs: 1.5,
            tenant: 7,
            template: 2,
            query: 11,
            winner: 0,
            winning_quote: Some(Money::from_dollars(0.25)),
            routable: 4,
            plan_cache: PlanCacheDelta::default(),
        });
        assert_eq!(q.cell(), 3);
        assert!((q.at_secs() - 1.5).abs() < 1e-12);
        let l = TraceEvent::NodeLifecycle(NodeLifecycleEvent {
            cell: 1,
            at_secs: 9.0,
            phase: LifecyclePhase::Retire,
            node: Some(5),
            rule: "drain-grace".into(),
            scheme: String::new(),
            live: 2,
            routable: 2,
            booting: 0,
            draining: 0,
            backlog: 0.0,
            backlog_ewma: 0.0,
            window_response_secs: 0.0,
            profit_rate: 0.0,
            regret_rate: 0.0,
        });
        assert_eq!(l.cell(), 1);
        assert_eq!(LifecyclePhase::Retire.label(), "retire");
        let e = TraceEvent::NodeEvacuate(NodeEvacuateEvent {
            cell: 2,
            at_secs: 4.5,
            node: 1,
            reason: "warning".into(),
            structures_moved: 2,
            salvaged: Money::from_dollars(0.04),
            transfer_spend: Money::from_dollars(0.002),
            receivers: vec![0, 3],
        });
        assert_eq!(e.cell(), 2);
        assert!((e.at_secs() - 4.5).abs() < 1e-12);
        let r = TraceEvent::QueryRetry(QueryRetryEvent {
            cell: 0,
            at_secs: 7.0,
            tenant: 1,
            template: 4,
            query: 99,
            from_node: 2,
            to_node: 0,
            attempt: 1,
            backoff_secs: 2.0,
            budget_scale: 1.25,
        });
        assert_eq!(r.cell(), 0);
        assert!((r.at_secs() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn crash_events_without_salvage_fields_still_deserialize() {
        let json = r#"{"cell":0,"at_secs":10.0,"node":1,"phase":"active",
            "queries":5,"payments":100,"profit":10,"operating":50,
            "write_off":25,"disk_bytes":1024,"requeued_secs":0.5,
            "requeued_to":2,"recover_planned":false}"#;
        let back: NodeCrashEvent = serde_json::from_str(json).unwrap();
        assert_eq!(back.salvaged, Money::ZERO);
        assert_eq!(back.cascade_depth, 0);
    }
}
