//! Trace sinks: where events go.
//!
//! Instrumented code gates event *assembly* on [`TraceSink::enabled`], so
//! the default [`NoopSink`] costs one predictable branch per step — no
//! allocation, no formatting, nothing to keep the hot path honest. The
//! determinism contract does the rest: sinks only observe, so a run with
//! any sink is bit-identical to a run with the no-op sink.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Consumes trace events.
pub trait TraceSink {
    /// Whether this sink wants events at all. Callers must skip event
    /// assembly when this is `false`; the provided default is `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Only called when [`TraceSink::enabled`] holds.
    fn emit(&mut self, event: TraceEvent);
}

/// The do-nothing default sink: reports itself disabled, so instrumented
/// code never assembles an event — tracing "compiles to nothing" but a
/// branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn emit(&mut self, _event: TraceEvent) {}
}

/// Unbounded recorder: keeps every event for replay (the `explain` tool's
/// record mode).
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// New empty recorder.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Events recorded so far, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the event stream.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for Recorder {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Ring-buffered sink: keeps only the last `capacity` events, for
/// flight-recorder use on long runs where the full stream would not fit.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// New ring with room for `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring sink needs capacity > 0");
        RingSink {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The retained tail of the stream, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// How many events were evicted to keep the ring bounded.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning the retained tail oldest-first.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_iter().collect()
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LifecyclePhase, NodeLifecycleEvent};

    fn ev(cell: usize) -> TraceEvent {
        TraceEvent::NodeLifecycle(NodeLifecycleEvent {
            cell,
            at_secs: cell as f64,
            phase: LifecyclePhase::Hold,
            node: None,
            rule: "within-band".into(),
            scheme: String::new(),
            live: 1,
            routable: 1,
            booting: 0,
            draining: 0,
            backlog: 0.0,
            backlog_ewma: 0.0,
            window_response_secs: 0.0,
            profit_rate: 0.0,
            regret_rate: 0.0,
        })
    }

    #[test]
    fn noop_is_disabled() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.emit(ev(0));
    }

    #[test]
    fn recorder_keeps_everything_in_order() {
        let mut r = Recorder::new();
        assert!(r.enabled());
        for c in 0..5 {
            r.emit(ev(c));
        }
        let cells: Vec<usize> = r.events().iter().map(TraceEvent::cell).collect();
        assert_eq!(cells, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.into_events().len(), 5);
    }

    #[test]
    fn ring_keeps_the_tail() {
        let mut r = RingSink::new(3);
        for c in 0..7 {
            r.emit(ev(c));
        }
        assert_eq!(r.dropped(), 4);
        let cells: Vec<usize> = r.events().map(TraceEvent::cell).collect();
        assert_eq!(cells, vec![4, 5, 6]);
        assert_eq!(r.into_events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_ring_panics() {
        let _ = RingSink::new(0);
    }
}
