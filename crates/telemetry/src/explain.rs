//! Replay rollups: blame-style cost attribution over a recorded trace.
//!
//! The paper's model makes every dollar attributable — tenants pay
//! settlements (eq. 11), settlements decompose into per-resource costs
//! (eq. 9/13), revenue funds structure builds, and node lifecycle
//! decisions are rule-tagged. These functions replay a recorded
//! [`TraceEvent`] stream and answer the attribution questions directly:
//! why a node retired, which tenants/templates paid for a structure, and
//! where the dollars went.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use metrics::CostBreakdown;
use pricing::Money;
use serde::{Deserialize, Serialize};

use crate::event::{
    LifecyclePhase, NodeCrashEvent, NodeLifecycleEvent, NodeRecoverEvent, TraceEvent,
};

/// Grouping key for a blame rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlameKey {
    /// Group settlements by paying tenant.
    Tenant,
    /// Group settlements by workload template.
    Template,
    /// Group settlements by the cached structures their plans used.
    Structure,
    /// Group settlements by serving node.
    Node,
    /// Decompose execution spend by priced resource.
    Resource,
}

impl BlameKey {
    /// Parses the `explain blame` CLI argument.
    #[must_use]
    pub fn parse(s: &str) -> Option<BlameKey> {
        match s {
            "tenant" => Some(BlameKey::Tenant),
            "template" => Some(BlameKey::Template),
            "structure" => Some(BlameKey::Structure),
            "node" => Some(BlameKey::Node),
            "resource" => Some(BlameKey::Resource),
            _ => None,
        }
    }
}

/// One row of a blame rollup: the money that flowed through a group.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlameRow {
    /// Settlements attributed to the group.
    pub queries: u64,
    /// Tenant payments received (eq. 11).
    pub payments: Money,
    /// Node profit after costs.
    pub profit: Money,
    /// Per-resource execution spend (eq. 9 backend / cache I/O).
    pub exec: CostBreakdown,
    /// Structure-build spending funded by the group's revenue.
    pub build_spend: Money,
    /// Invested capital written off by injected crashes (the fault
    /// plane's ledgered loss; zero in fault-free traces).
    pub write_off: Money,
    /// Invested capital rescued by evacuation ahead of the crash —
    /// structures migrated to survivors instead of being abandoned
    /// (zero in traces without evacuation).
    #[serde(default)]
    pub salvaged: Money,
}

impl BlameRow {
    /// Total cloud-side spend attributed to the group.
    ///
    /// Salvaged capital is *not* a cost — it is invested capital that
    /// kept working on a survivor — so it does not join the sum; it is
    /// reported alongside the write-off it offsets.
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.exec.total() + self.build_spend + self.write_off
    }

    fn absorb(&mut self, e: &crate::event::SettlementEvent) {
        self.queries += 1;
        self.payments += e.payment;
        self.profit += e.profit;
        self.exec.merge(&e.exec);
        self.build_spend += e.build_spend;
    }
}

fn sorted_rows(map: BTreeMap<String, BlameRow>) -> Vec<(String, BlameRow)> {
    let mut rows: Vec<(String, BlameRow)> = map.into_iter().collect();
    // Biggest money first; name breaks ties so the order is total.
    rows.sort_by(|(an, ar), (bn, br)| {
        (br.payments + br.total_cost())
            .cmp(&(ar.payments + ar.total_cost()))
            .then_with(|| an.cmp(bn))
    });
    rows
}

/// Rolls settlements up by the given key — "where did the $ go".
///
/// For [`BlameKey::Resource`] the rows are the four priced resources
/// plus a `build` row; payments and profit stay on the per-resource rows
/// at zero because eq. 11 prices whole queries, not resources. Crash
/// write-offs join the rollup where they are attributable: on the
/// crashed node's row under [`BlameKey::Node`], and on a dedicated
/// `write-off` row under [`BlameKey::Resource`].
#[must_use]
pub fn blame(events: &[TraceEvent], key: BlameKey) -> Vec<(String, BlameRow)> {
    let mut map: BTreeMap<String, BlameRow> = BTreeMap::new();
    for event in events {
        if let TraceEvent::NodeCrash(c) = event {
            match key {
                BlameKey::Node => {
                    let row = map.entry(format!("node#{}", c.node)).or_default();
                    row.write_off += c.write_off;
                    row.salvaged += c.salvaged;
                }
                BlameKey::Resource => {
                    map.entry("write-off".to_string()).or_default().write_off += c.write_off;
                    if !c.salvaged.is_zero() {
                        map.entry("salvaged".to_string()).or_default().salvaged += c.salvaged;
                    }
                }
                _ => {}
            }
            continue;
        }
        if let TraceEvent::NodeEvacuate(ev) = event {
            // Drain-time evacuations never reach a crash event; fold
            // their salvage here so the rollup covers both paths.
            if ev.reason != "warning" {
                match key {
                    BlameKey::Node => {
                        map.entry(format!("node#{}", ev.node)).or_default().salvaged += ev.salvaged;
                    }
                    BlameKey::Resource if !ev.salvaged.is_zero() => {
                        map.entry("salvaged".to_string()).or_default().salvaged += ev.salvaged;
                    }
                    _ => {}
                }
            }
            continue;
        }
        let TraceEvent::Settlement(s) = event else {
            continue;
        };
        match key {
            BlameKey::Tenant => map.entry(format!("tenant#{}", s.tenant)).or_default(),
            BlameKey::Template => map.entry(format!("template#{}", s.template)).or_default(),
            BlameKey::Node => map.entry(format!("node#{}", s.node)).or_default(),
            BlameKey::Structure => {
                let key = if s.used_structures.is_empty() {
                    "(backend)".to_string()
                } else {
                    // A plan may use several structures; attribute the
                    // whole settlement to each (overlap is intentional —
                    // "who paid for S" is a per-structure question).
                    for st in &s.used_structures {
                        map.entry(st.clone()).or_default().absorb(s);
                    }
                    continue;
                };
                map.entry(key).or_default()
            }
            BlameKey::Resource => {
                for (name, cost) in [
                    ("cpu", s.exec.cpu),
                    ("disk", s.exec.disk),
                    ("network", s.exec.network),
                    ("io", s.exec.io),
                ] {
                    let row = map.entry(name.to_string()).or_default();
                    if !cost.is_zero() {
                        row.queries += 1;
                    }
                    row.exec.add_to(
                        match name {
                            "cpu" => metrics::Resource::Cpu,
                            "disk" => metrics::Resource::Disk,
                            "network" => metrics::Resource::Network,
                            _ => metrics::Resource::Io,
                        },
                        cost,
                    );
                }
                let b = map.entry("build".to_string()).or_default();
                if !s.build_spend.is_zero() {
                    b.queries += 1;
                }
                b.build_spend += s.build_spend;
                continue;
            }
        }
        .absorb(s);
    }
    sorted_rows(map)
}

/// Which tenants and templates paid for structure `s` — the settlements
/// whose winning plans used it, grouped both ways (`tenant#…` and
/// `template#…` rows).
#[must_use]
pub fn structure_payers(events: &[TraceEvent], s: &str) -> Vec<(String, BlameRow)> {
    let mut map: BTreeMap<String, BlameRow> = BTreeMap::new();
    for event in events {
        let TraceEvent::Settlement(st) = event else {
            continue;
        };
        if st.used_structures.iter().any(|u| u == s) {
            map.entry(format!("tenant#{}", st.tenant))
                .or_default()
                .absorb(st);
            map.entry(format!("template#{}", st.template))
                .or_default()
                .absorb(st);
        }
    }
    sorted_rows(map)
}

/// Every lifecycle transition recorded for node `node`, in stream order.
#[must_use]
pub fn node_timeline(events: &[TraceEvent], node: usize) -> Vec<&NodeLifecycleEvent> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::NodeLifecycle(l) if l.node == Some(node) => Some(l),
            _ => None,
        })
        .collect()
}

/// Why did node `node` retire? `None` when the trace records no
/// retirement for it (the `explain` tool treats that as an unanswerable
/// query and exits non-zero).
///
/// The answer narrates the node's lifecycle — spawn, drain decision
/// (rule + the pressure signals that fired it), retirement — plus the
/// queries it served and the profit it booked while alive.
#[must_use]
pub fn explain_retirement(events: &[TraceEvent], node: usize) -> Option<String> {
    let timeline = node_timeline(events, node);
    let retire = timeline
        .iter()
        .find(|l| l.phase == LifecyclePhase::Retire)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "node {node} retired at t={:.1}s (cell {}, rule `{}`)",
        retire.at_secs, retire.cell, retire.rule
    );
    if let Some(spawn) = timeline.iter().find(|l| l.phase == LifecyclePhase::Spawn) {
        let _ = writeln!(
            out,
            "  spawned at t={:.1}s by rule `{}` (scheme {})",
            spawn.at_secs, spawn.rule, spawn.scheme
        );
    }
    if let Some(drain) = timeline
        .iter()
        .find(|l| l.phase == LifecyclePhase::DrainBegin)
    {
        let _ = writeln!(
            out,
            "  drain began at t={:.1}s by rule `{}`: backlog_ewma={:.3}, \
             window_response={:.3}s, profit_rate={:+.6}$/s, regret_rate={:.6}$/s",
            drain.at_secs,
            drain.rule,
            drain.backlog_ewma,
            drain.window_response_secs,
            drain.profit_rate,
            drain.regret_rate
        );
    }
    let mut served = 0u64;
    let mut payments = Money::ZERO;
    let mut profit = Money::ZERO;
    for e in events {
        if let TraceEvent::Settlement(s) = e {
            if s.node == node {
                served += 1;
                payments += s.payment;
                profit += s.profit;
            }
        }
    }
    let _ = writeln!(
        out,
        "  while alive: served {served} queries, collected {payments}, booked {profit} profit"
    );
    let _ = writeln!(
        out,
        "  population at retirement: live={}, routable={}, booting={}, draining={}",
        retire.live, retire.routable, retire.booting, retire.draining
    );
    Some(out)
}

/// Why did node `node` crash, and what did the crash cost? `None` when
/// the trace records no crash for it (the `explain` tool treats that as
/// an unanswerable query and exits non-zero).
///
/// The answer narrates the fault plane's settlement at the crash
/// instant: the eq. 11 uptime and eq. 13 disk-rent charges already
/// folded into the node's books, the capital invested in structures and
/// boot versus the payments recovered from tenants before the crash, the
/// invested balance written off as a ledgered loss, the re-queued
/// backlog, and — when a recovery replayed the ledger — whether the
/// replayed balances cross-footed exactly.
#[must_use]
pub fn explain_crash(events: &[TraceEvent], node: usize) -> Option<String> {
    let crash: &NodeCrashEvent = events.iter().find_map(|e| match e {
        TraceEvent::NodeCrash(c) if c.node == node => Some(c),
        _ => None,
    })?;
    let recover: Option<&NodeRecoverEvent> = events.iter().find_map(|e| match e {
        TraceEvent::NodeRecover(r) if r.crashed == node => Some(r),
        _ => None,
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "node {node} crashed at t={:.1}s (cell {}, phase `{}`)",
        crash.at_secs, crash.cell, crash.phase
    );
    let _ = writeln!(
        out,
        "  books settled at the crash instant: {} operating charged \
         (eq. 11 uptime + eq. 13 disk rent, integrated to t={:.1}s)",
        crash.operating, crash.at_secs
    );
    let invested = crash.write_off + crash.salvaged + crash.transfer_spend;
    let _ = writeln!(
        out,
        "  capital: {invested} invested (boot + structure builds) vs {} recovered \
         in payments over {} queries ({} profit)",
        crash.payments, crash.queries, crash.profit
    );
    if crash.cascade_depth > 0 {
        let _ = writeln!(
            out,
            "  cascade follow-on crash at depth {}",
            crash.cascade_depth
        );
    }
    if !crash.salvaged.is_zero() || !crash.transfer_spend.is_zero() {
        let _ = writeln!(
            out,
            "  salvaged by evacuation: {} migrated to survivors \
             ({} spent on eq. 12 transfers)",
            crash.salvaged, crash.transfer_spend
        );
    }
    let _ = writeln!(
        out,
        "  written off as ledgered loss: {} ({} bytes of cached structures abandoned)",
        crash.write_off, crash.disk_bytes
    );
    match crash.requeued_to {
        Some(to) => {
            let _ = writeln!(
                out,
                "  in-flight backlog re-queued: {:.3}s (post-penalty) onto node {to}",
                crash.requeued_secs
            );
        }
        None => {
            let _ = writeln!(out, "  no in-flight backlog re-queued");
        }
    }
    match recover {
        Some(r) => {
            let _ = writeln!(
                out,
                "  recovered at t={:.1}s as node {}: replayed {} journal entries \
                 into a fresh economy ({} boot capital, routable at t={:.1}s) — \
                 reconciliation {}",
                r.at_secs,
                r.replacement,
                r.replayed_queries,
                r.boot_cost,
                r.ready_at_secs,
                if r.reconciled {
                    "exact (zero drift)"
                } else {
                    "DRIFTED"
                }
            );
        }
        None if crash.recover_planned => {
            let _ = writeln!(out, "  recovery planned but not reached within the horizon");
        }
        None => {
            let _ = writeln!(out, "  no recovery planned (capital permanently lost)");
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PlanCacheDelta, SettlementEvent};

    fn settlement(tenant: u32, template: usize, node: usize, structures: &[&str]) -> TraceEvent {
        let mut exec = CostBreakdown::ZERO;
        exec.add_to(metrics::Resource::Io, Money::from_dollars(0.01));
        exec.add_to(metrics::Resource::Network, Money::from_dollars(0.02));
        TraceEvent::Settlement(SettlementEvent {
            cell: 0,
            at_secs: 1.0,
            tenant,
            template,
            query: 1,
            node,
            response_secs: 0.5,
            ran_in_cache: !structures.is_empty(),
            payment: Money::from_dollars(0.10),
            profit: Money::from_dollars(0.03),
            exec,
            build_spend: Money::from_dollars(0.005),
            used_structures: structures.iter().map(|s| (*s).to_string()).collect(),
            investments: 0,
            evictions: 0,
            plan_cache: PlanCacheDelta::default(),
        })
    }

    fn lifecycle(node: usize, phase: LifecyclePhase, at: f64, rule: &str) -> TraceEvent {
        TraceEvent::NodeLifecycle(NodeLifecycleEvent {
            cell: 0,
            at_secs: at,
            phase,
            node: Some(node),
            rule: rule.into(),
            scheme: "econ-cheap".into(),
            live: 2,
            routable: 2,
            booting: 0,
            draining: 1,
            backlog: 1.0,
            backlog_ewma: 0.5,
            window_response_secs: 0.2,
            profit_rate: -0.001,
            regret_rate: 0.0,
        })
    }

    #[test]
    fn blame_by_tenant_groups_and_sorts() {
        let events = vec![
            settlement(1, 0, 0, &[]),
            settlement(2, 0, 0, &[]),
            settlement(2, 1, 1, &["idx(a)"]),
        ];
        let rows = blame(&events, BlameKey::Tenant);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "tenant#2");
        assert_eq!(rows[0].1.queries, 2);
        assert_eq!(rows[0].1.payments, Money::from_dollars(0.20));
        assert_eq!(rows[1].0, "tenant#1");
    }

    #[test]
    fn blame_by_structure_attributes_each_used_structure() {
        let events = vec![
            settlement(1, 0, 0, &["idx(a)", "col(b)"]),
            settlement(1, 0, 0, &[]),
        ];
        let rows = blame(&events, BlameKey::Structure);
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"idx(a)"));
        assert!(names.contains(&"col(b)"));
        assert!(names.contains(&"(backend)"));
    }

    #[test]
    fn blame_by_resource_decomposes_exec_spend() {
        let events = vec![settlement(1, 0, 0, &[])];
        let rows = blame(&events, BlameKey::Resource);
        let get = |n: &str| {
            rows.iter()
                .find(|(name, _)| name == n)
                .map(|(_, r)| r.clone())
                .unwrap()
        };
        assert_eq!(get("io").exec.io, Money::from_dollars(0.01));
        assert_eq!(get("network").exec.network, Money::from_dollars(0.02));
        assert_eq!(get("build").build_spend, Money::from_dollars(0.005));
        assert_eq!(get("cpu").queries, 0);
    }

    #[test]
    fn structure_payers_groups_both_ways() {
        let events = vec![
            settlement(1, 4, 0, &["idx(a)"]),
            settlement(2, 4, 0, &["idx(a)"]),
            settlement(3, 5, 0, &["col(z)"]),
        ];
        let rows = structure_payers(&events, "idx(a)");
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"tenant#1"));
        assert!(names.contains(&"tenant#2"));
        assert!(names.contains(&"template#4"));
        assert!(!names.contains(&"tenant#3"));
        let t4 = rows.iter().find(|(n, _)| n == "template#4").unwrap();
        assert_eq!(t4.1.queries, 2);
    }

    #[test]
    fn retirement_narrative_includes_rule_and_signals() {
        let events = vec![
            lifecycle(3, LifecyclePhase::Spawn, 10.0, "backlog-pressure"),
            settlement(1, 0, 3, &[]),
            lifecycle(3, LifecyclePhase::DrainBegin, 50.0, "drain-insolvent"),
            lifecycle(3, LifecyclePhase::Retire, 110.0, "drain-grace"),
        ];
        let text = explain_retirement(&events, 3).unwrap();
        assert!(text.contains("retired at t=110.0s"));
        assert!(text.contains("drain-insolvent"));
        assert!(text.contains("spawned at t=10.0s"));
        assert!(text.contains("served 1 queries"));
        assert!(explain_retirement(&events, 4).is_none());
        assert_eq!(node_timeline(&events, 3).len(), 3);
    }

    fn crash(node: usize, write_off: f64, requeued_to: Option<usize>) -> TraceEvent {
        TraceEvent::NodeCrash(NodeCrashEvent {
            cell: 0,
            at_secs: 40.0,
            node,
            phase: "active".into(),
            queries: 12,
            payments: Money::from_dollars(0.9),
            profit: Money::from_dollars(0.1),
            operating: Money::from_dollars(0.4),
            write_off: Money::from_dollars(write_off),
            disk_bytes: 4096,
            requeued_secs: 1.25,
            requeued_to,
            recover_planned: true,
            salvaged: Money::ZERO,
            transfer_spend: Money::ZERO,
            cascade_depth: 0,
        })
    }

    #[test]
    fn crash_narrative_covers_write_off_and_recovery() {
        let events = vec![
            settlement(1, 0, 2, &[]),
            crash(2, 0.75, Some(0)),
            TraceEvent::NodeRecover(NodeRecoverEvent {
                cell: 0,
                at_secs: 55.0,
                crashed: 2,
                replacement: 7,
                boot_cost: Money::from_dollars(0.2),
                ready_at_secs: 75.0,
                replayed_queries: 12,
                reconciled: true,
            }),
        ];
        let text = explain_crash(&events, 2).unwrap();
        assert!(text.contains("crashed at t=40.0s"));
        assert!(text.contains("phase `active`"));
        assert!(text.contains("written off as ledgered loss"));
        assert!(text.contains("re-queued: 1.250s"));
        assert!(text.contains("recovered at t=55.0s as node 7"));
        assert!(text.contains("exact (zero drift)"));
        assert!(explain_crash(&events, 5).is_none());
    }

    #[test]
    fn crash_narrative_without_recovery_says_so() {
        let mut c = crash(4, 0.5, None);
        if let TraceEvent::NodeCrash(ev) = &mut c {
            ev.recover_planned = false;
        }
        let text = explain_crash(&[c], 4).unwrap();
        assert!(text.contains("no in-flight backlog re-queued"));
        assert!(text.contains("no recovery planned"));
    }

    #[test]
    fn blame_folds_crash_write_offs_into_node_and_resource_rollups() {
        let events = vec![settlement(1, 0, 2, &[]), crash(2, 0.75, None)];
        let node_rows = blame(&events, BlameKey::Node);
        let n2 = node_rows.iter().find(|(n, _)| n == "node#2").unwrap();
        assert_eq!(n2.1.write_off, Money::from_dollars(0.75));
        assert_eq!(n2.1.queries, 1, "settlements still counted");
        let res_rows = blame(&events, BlameKey::Resource);
        let wo = res_rows.iter().find(|(n, _)| n == "write-off").unwrap();
        assert_eq!(wo.1.write_off, Money::from_dollars(0.75));
        assert!(wo.1.total_cost() >= Money::from_dollars(0.75));
        // Tenant rollups are unaffected: crashes are not attributable to
        // a paying tenant.
        let tenant_rows = blame(&events, BlameKey::Tenant);
        assert!(tenant_rows.iter().all(|(_, r)| r.write_off.is_zero()));
    }

    #[test]
    fn blame_reports_salvage_next_to_write_off() {
        let mut c = crash(2, 0.30, None);
        if let TraceEvent::NodeCrash(ev) = &mut c {
            ev.salvaged = Money::from_dollars(0.45);
            ev.transfer_spend = Money::from_dollars(0.05);
        }
        // A drain-time evacuation on another node, never crashed.
        let drain = TraceEvent::NodeEvacuate(crate::event::NodeEvacuateEvent {
            cell: 0,
            at_secs: 35.0,
            node: 4,
            reason: "drain".into(),
            structures_moved: 2,
            salvaged: Money::from_dollars(0.20),
            transfer_spend: Money::from_dollars(0.02),
            receivers: vec![0],
        });
        // A warning-time evacuation: its salvage is already folded into
        // node 2's crash event, so the rollup must not double-count it.
        let warning = TraceEvent::NodeEvacuate(crate::event::NodeEvacuateEvent {
            cell: 0,
            at_secs: 38.0,
            node: 2,
            reason: "warning".into(),
            structures_moved: 3,
            salvaged: Money::from_dollars(0.45),
            transfer_spend: Money::from_dollars(0.05),
            receivers: vec![0],
        });
        let events = vec![warning, c, drain];
        let node_rows = blame(&events, BlameKey::Node);
        let n2 = node_rows.iter().find(|(n, _)| n == "node#2").unwrap();
        assert_eq!(n2.1.salvaged, Money::from_dollars(0.45));
        assert_eq!(n2.1.write_off, Money::from_dollars(0.30));
        let n4 = node_rows.iter().find(|(n, _)| n == "node#4").unwrap();
        assert_eq!(n4.1.salvaged, Money::from_dollars(0.20));
        let res_rows = blame(&events, BlameKey::Resource);
        let sv = res_rows.iter().find(|(n, _)| n == "salvaged").unwrap();
        assert_eq!(sv.1.salvaged, Money::from_dollars(0.65));
        // Salvage never inflates cost: it offsets write-off, it is not
        // itself a spend.
        assert!(sv.1.total_cost().is_zero());
    }

    #[test]
    fn crash_narrative_reports_salvage_and_cascade_depth() {
        let mut c = crash(2, 0.30, None);
        if let TraceEvent::NodeCrash(ev) = &mut c {
            ev.salvaged = Money::from_dollars(0.45);
            ev.transfer_spend = Money::from_dollars(0.05);
            ev.cascade_depth = 2;
        }
        let text = explain_crash(&[c], 2).unwrap();
        assert!(text.contains("salvaged by evacuation"));
        assert!(text.contains("cascade follow-on crash at depth 2"));
        // Invested = write_off + salvaged + transfer_spend = $0.80.
        assert!(text.contains("$0.8000 invested"), "{text}");
    }
}
