//! # bench — the experiment harness
//!
//! One binary per figure of the paper (see DESIGN.md's experiment index):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig4_operating_cost` | Fig. 4 — operating cost vs inter-arrival interval |
//! | `fig5_response_time`  | Fig. 5 — mean response time vs inter-arrival interval |
//! | `fig6_ablation_regret` | eq. 3 threshold fraction `a` sweep |
//! | `fig7_ablation_amortization` | eq. 7 horizon `n` sweep (fixed vs adaptive) |
//! | `fig8_ablation_cachesize` | bypass cache-cap sweep (the paper's "ideal 30 %") |
//! | `fig9_ablation_budget` | budget-shape sweep (Fig. 1 shapes) |
//! | `fig10_ablation_attribution` | regret attribution: uniform share vs full value |
//! | `pilot`, `probe_paper` | calibration tools (not shipped figures) |
//!
//! Every binary accepts `[scale_factor] [num_queries]` positional
//! arguments (defaults: SF 2500 — the paper's 2.5 TB — and a query count
//! sized so the run finishes in about a minute), prints the paper-style
//! table, and drops a CSV under `results/`.
//!
//! Criterion micro-benches live in `benches/`.

use simulator::{run_simulation, RunResult, Scheme, SimConfig};
use std::io::Write;
use std::path::Path;

/// The paper's inter-arrival grid (seconds), Figures 4 and 5.
pub const PAPER_INTERVALS: [f64; 4] = [1.0, 10.0, 30.0, 60.0];

/// Default scale factor for shipped figures: the paper's 2.5 TB backend.
pub const DEFAULT_SF: f64 = 2500.0;

/// Default query count for shipped figures. The paper simulates 10⁶
/// queries; 5 × 10⁵ reproduces the same post-warm-up regime in about a
/// minute of harness time.
pub const DEFAULT_QUERIES: u64 = 500_000;

/// Prints `error: <message>` plus a usage block (with the invoked binary
/// substituted for `{bin}`) and exits with status 2.
pub fn cli_usage_error(message: &str, usage: &str) -> ! {
    let bin = std::env::args()
        .next()
        .unwrap_or_else(|| "<bin>".to_string());
    eprintln!("error: {message}");
    eprintln!("usage: {}", usage.replace("{bin}", &bin));
    std::process::exit(2);
}

/// Parses one positional argument, or exits with a usage error.
///
/// Defaulting silently on a typo (`fig4 2500x`) used to run the wrong
/// experiment for a minute and label it with the default scale — so an
/// argument that is present but unparseable is fatal instead.
pub fn cli_arg<T: std::str::FromStr>(position: usize, what: &str, default: T, usage: &str) -> T {
    match std::env::args().nth(position) {
        None => default,
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| cli_usage_error(&format!("cannot parse {what} `{raw}`"), usage)),
    }
}

/// Usage block for the common figure-harness CLI.
const SCALE_USAGE: &str =
    "{bin} [scale_factor] [num_queries]\n       defaults: scale_factor 2500, num_queries 500000";

/// Parses the common `[sf] [num_queries]` CLI arguments.
///
/// Missing arguments fall back to the paper-scale defaults; present but
/// unparseable or out-of-domain arguments print a usage error and exit
/// non-zero (rather than panicking a worker thread later in config
/// validation).
#[must_use]
pub fn cli_scale() -> (f64, u64) {
    let sf: f64 = cli_arg(1, "scale factor", DEFAULT_SF, SCALE_USAGE);
    let n: u64 = cli_arg(2, "query count", DEFAULT_QUERIES, SCALE_USAGE);
    if !sf.is_finite() || sf <= 0.0 {
        cli_usage_error(
            &format!("scale factor must be positive, got {sf}"),
            SCALE_USAGE,
        );
    }
    if n == 0 {
        cli_usage_error("query count must be positive", SCALE_USAGE);
    }
    (sf, n)
}

/// Runs a set of independent cells in parallel, capped at the machine's
/// available parallelism (an unbounded thread-per-cell spawn used to
/// oversubscribe small runners on large grids).
///
/// Results are returned in input order.
///
/// # Panics
/// Panics if any cell's config is invalid.
#[must_use]
pub fn run_cells(cells: Vec<SimConfig>) -> Vec<RunResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = parallelism.min(cells.len()).max(1);

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = cells.get(i) else { break };
                let result = run_simulation(cfg.clone());
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell simulated")
        })
        .collect()
}

/// Runs the full paper grid: every scheme × every interval.
#[must_use]
pub fn run_paper_grid(sf: f64, n: u64) -> Vec<(f64, Vec<RunResult>)> {
    PAPER_INTERVALS
        .iter()
        .map(|&interval| {
            let cells: Vec<SimConfig> = Scheme::paper_schemes()
                .into_iter()
                .map(|scheme| SimConfig::paper_cell(scheme, interval, sf, n))
                .collect();
            (interval, run_cells(cells))
        })
        .collect()
}

/// Prints a figure header.
pub fn print_header(figure: &str, caption: &str, sf: f64, n: u64) {
    println!("================================================================");
    println!("{figure}: {caption}");
    println!(
        "(TPC-H SF {sf} ≈ {:.1} TB backend, {n} queries, 25 Mbps, EC2-2009 prices)",
        sf / 1000.0
    );
    println!("================================================================");
}

/// Writes rows as CSV under `results/<name>.csv`; ignores I/O errors after
/// warning (figures must still print when the directory is read-only).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for row in rows {
                let _ = writeln!(f, "{row}");
            }
            println!("(wrote {})", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Formats one grid for CSV: `interval,scheme,value`.
#[must_use]
pub fn grid_csv_rows<F: Fn(&RunResult) -> String>(
    grid: &[(f64, Vec<RunResult>)],
    value: F,
) -> Vec<String> {
    let mut rows = Vec::new();
    for (interval, results) in grid {
        for r in results {
            rows.push(format!("{interval},{},{}", r.scheme, value(r)));
        }
    }
    rows
}
