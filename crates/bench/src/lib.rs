//! # bench — the experiment harness
//!
//! One binary per figure of the paper (see DESIGN.md's experiment index):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig4_operating_cost` | Fig. 4 — operating cost vs inter-arrival interval |
//! | `fig5_response_time`  | Fig. 5 — mean response time vs inter-arrival interval |
//! | `fig6_ablation_regret` | eq. 3 threshold fraction `a` sweep |
//! | `fig7_ablation_amortization` | eq. 7 horizon `n` sweep (fixed vs adaptive) |
//! | `fig8_ablation_cachesize` | bypass cache-cap sweep (the paper's "ideal 30 %") |
//! | `fig9_ablation_budget` | budget-shape sweep (Fig. 1 shapes) |
//! | `fig10_ablation_attribution` | regret attribution: uniform share vs full value |
//! | `pilot`, `probe_paper` | calibration tools (not shipped figures) |
//!
//! Every binary accepts `[scale_factor] [num_queries]` positional
//! arguments (defaults: SF 2500 — the paper's 2.5 TB — and a query count
//! sized so the run finishes in about a minute), prints the paper-style
//! table, and drops a CSV under `results/`.
//!
//! Criterion micro-benches live in `benches/`.

use simulator::{run_simulation, RunResult, Scheme, SimConfig};
use std::io::Write;
use std::path::Path;

pub mod cli;
pub mod row;
pub mod trend;

pub use cli::{cli_arg, cli_scale, cli_usage_error, scale_args};
pub use row::{Row, RowSet};

/// Best / min / median of one cell's per-rep throughput measurements.
/// Grid benches record all three (`qps` / `qps_min` / `qps_median`) so
/// `trend` can hold regressions to the record's own measured noise band
/// instead of a blanket tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepSpread {
    /// Best (highest) rep — the headline `qps`.
    pub best: f64,
    /// Worst rep.
    pub min: f64,
    /// Median rep (mean of the middle two for even counts).
    pub median: f64,
}

/// Summarizes a cell's rep measurements.
///
/// # Panics
/// Panics if `reps` is empty.
#[must_use]
pub fn rep_spread(reps: &[f64]) -> RepSpread {
    assert!(!reps.is_empty(), "rep_spread needs at least one rep");
    let mut sorted = reps.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    RepSpread {
        best: sorted[n - 1],
        min: sorted[0],
        median: if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        },
    }
}

/// The paper's inter-arrival grid (seconds), Figures 4 and 5.
pub const PAPER_INTERVALS: [f64; 4] = [1.0, 10.0, 30.0, 60.0];

/// Default scale factor for shipped figures: the paper's 2.5 TB backend.
pub const DEFAULT_SF: f64 = 2500.0;

/// Default query count for shipped figures. The paper simulates 10⁶
/// queries; 5 × 10⁵ reproduces the same post-warm-up regime in about a
/// minute of harness time.
pub const DEFAULT_QUERIES: u64 = 500_000;

/// Runs a set of independent cells in parallel, capped at the machine's
/// available parallelism (an unbounded thread-per-cell spawn used to
/// oversubscribe small runners on large grids).
///
/// Results are returned in input order.
///
/// # Panics
/// Panics if any cell's config is invalid.
#[must_use]
pub fn run_cells(cells: Vec<SimConfig>) -> Vec<RunResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = parallelism.min(cells.len()).max(1);

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = cells.get(i) else { break };
                let result = run_simulation(cfg.clone());
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell simulated")
        })
        .collect()
}

/// Runs the full paper grid: every scheme × every interval.
#[must_use]
pub fn run_paper_grid(sf: f64, n: u64) -> Vec<(f64, Vec<RunResult>)> {
    PAPER_INTERVALS
        .iter()
        .map(|&interval| {
            let cells: Vec<SimConfig> = Scheme::paper_schemes()
                .into_iter()
                .map(|scheme| SimConfig::paper_cell(scheme, interval, sf, n))
                .collect();
            (interval, run_cells(cells))
        })
        .collect()
}

/// Prints a figure header.
pub fn print_header(figure: &str, caption: &str, sf: f64, n: u64) {
    println!("================================================================");
    println!("{figure}: {caption}");
    println!(
        "(TPC-H SF {sf} ≈ {:.1} TB backend, {n} queries, 25 Mbps, EC2-2009 prices)",
        sf / 1000.0
    );
    println!("================================================================");
}

/// Writes rows as CSV under `results/<name>.csv`; ignores I/O errors after
/// warning (figures must still print when the directory is read-only).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for row in rows {
                let _ = writeln!(f, "{row}");
            }
            println!("(wrote {})", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Formats one grid for CSV: `interval,scheme,value`.
#[must_use]
pub fn grid_csv_rows<F: Fn(&RunResult) -> String>(
    grid: &[(f64, Vec<RunResult>)],
    value: F,
) -> Vec<String> {
    let mut rows = Vec::new();
    for (interval, results) in grid {
        for r in results {
            rows.push(format!("{interval},{},{}", r.scheme, value(r)));
        }
    }
    rows
}

/// True if `(sf, n)` is the paper-scale default cell — the only cell
/// whose run may refresh a committed `BENCH_*.json` record.
#[must_use]
pub fn is_paper_cell(sf: f64, n: u64) -> bool {
    (sf - DEFAULT_SF).abs() < f64::EPSILON && n == DEFAULT_QUERIES
}

/// [`write_bench_json`] guarded by the figure harness's default-cell
/// rule: reduced-scale runs (CI, smoke tests) must not clobber the
/// committed paper-scale record.
pub fn write_figure_bench_json(name: &str, sf: f64, n: u64, config: &str, cells: &[String]) {
    if is_paper_cell(sf, n) {
        write_bench_json(name, config, cells);
    } else {
        println!("(non-default cell: BENCH_{name}.json left untouched)");
    }
}

/// Writes `BENCH_<name>.json` in the working directory (the repo root
/// when run via `cargo run`), the machine-readable perf record each PR's
/// trajectory is tracked through. `config` is a JSON object string
/// (including the measured wall-clock, so a record is never mistaken for
/// one at a different scale); `cells` are JSON object strings.
pub fn write_bench_json(name: &str, config: &str, cells: &[String]) {
    let json = format!(
        "{{\n\"bench\": \"{name}\",\n\"config\": {config},\n\"cells\": [\n{}\n]\n}}\n",
        cells.join(",\n")
    );
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

/// The standard figure-bench JSON config object: grid scale plus the
/// measured wall-clock and simulated-queries-per-second throughput of
/// the whole run.
#[must_use]
pub fn bench_config_json(sf: f64, n: u64, total_queries: u64, wall_secs: f64) -> String {
    format!(
        "{{\"scale_factor\": {sf}, \"queries_per_cell\": {n}, \"total_queries\": {total_queries}, \
         \"wall_secs\": {wall_secs:.3}, \"queries_per_sec\": {:.0}}}",
        total_queries as f64 / wall_secs.max(1e-9)
    )
}

/// The aggregate fingerprint the fleet invariance checks compare
/// bit-for-bit: every economic aggregate plus the serialized elastic
/// decision ledger (empty for fixed-population fleets) and the
/// serialized fault record stream (empty for fault-free fleets).
/// Shared by `fleet_elastic`'s shard/pool replay check, its
/// traced-vs-noop bit-identity check, `fleet_faults`' fault-replay
/// check and `explain selfcheck` — one definition, so the gates cannot
/// quietly diverge on what "identical" means.
///
/// # Panics
/// Panics if the elastic ledger or fault summary fails to serialize
/// (they always serialize — the types derive `Serialize`
/// unconditionally).
#[must_use]
pub fn fleet_fingerprint(r: &fleet::FleetResult) -> String {
    let ledger = r
        .elastic
        .as_ref()
        .map(|e| serde_json::to_string(&e.ledger).expect("ledger serializes"))
        .unwrap_or_default();
    let faults = r
        .faults
        .as_ref()
        .map(|f| serde_json::to_string(f).expect("fault summary serializes"))
        .unwrap_or_default();
    format!(
        "queries={} cost={:?} payments={:?} profit={:?} mean_bits={:016x} hits={} builds={} \
         evictions={} spawns={} retires={} node_seconds_bits={:016x} ledger={ledger} \
         faults={faults}",
        r.queries,
        r.total_operating_cost(),
        r.payments,
        r.profit,
        r.mean_response_secs().to_bits(),
        r.cache_hits,
        r.investments,
        r.evictions,
        r.elastic.as_ref().map_or(0, |e| e.spawns),
        r.elastic.as_ref().map_or(0, |e| e.retires),
        r.elastic.as_ref().map_or(0.0, |e| e.node_seconds).to_bits(),
    )
}

/// Formats one scheme×interval grid as JSON cell objects; `fields` maps a
/// run to `"key": value` pairs appended after the interval and scheme.
#[must_use]
pub fn grid_json_rows<F: Fn(&RunResult) -> String>(
    grid: &[(f64, Vec<RunResult>)],
    fields: F,
) -> Vec<String> {
    let mut rows = Vec::new();
    for (interval, results) in grid {
        for r in results {
            rows.push(format!(
                "  {{\"interval_s\": {interval}, \"scheme\": \"{}\", {}}}",
                r.scheme,
                fields(r)
            ));
        }
    }
    rows
}
