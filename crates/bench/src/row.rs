//! One key-value row, three renderings.
//!
//! Every ablation bin prints each result cell three ways: a println
//! table row, a CSV row and a `BENCH_*.json` cell object. Keeping three
//! hand-written format strings aligned per bin proved fragile — a column
//! added to one output could silently miss the others. A [`Row`] is the
//! fix: each value is pushed **once** and rendered into all three
//! outputs by the same call, so the outputs cannot desynchronize; a
//! [`RowSet`] collects the rows of one grid and derives the CSV header
//! from the same keys.
//!
//! Table cells are padded per call (width + alignment), matching the
//! bins' existing column layouts; CSV and JSON render the *data* form of
//! the value, which may deliberately differ from the human table form
//! (percentages as raw fractions, gigabyte columns as raw bytes — see
//! [`Row::pct_cell`] and [`Row::custom_cell`]).

use std::fmt::Display;
use std::fmt::Write as _;

/// One result row being assembled; push cells in column order, then
/// [`RowSet::push`] it.
#[derive(Debug, Default)]
pub struct Row {
    keys: Vec<String>,
    table: String,
    csv: String,
    json: String,
}

/// The data-side rendering of a cell.
enum Data {
    /// Quoted in JSON, raw in CSV.
    Str(String),
    /// Emitted verbatim in both JSON and CSV (numbers, booleans).
    Raw(String),
}

impl Row {
    /// An empty row.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(mut self, key: &str, table: &str, width: usize, left: bool, data: Data) -> Self {
        if !self.keys.is_empty() {
            self.table.push(' ');
            self.csv.push(',');
            self.json.push_str(", ");
        }
        if left {
            let _ = write!(self.table, "{table:<width$}");
        } else {
            let _ = write!(self.table, "{table:>width$}");
        }
        let _ = write!(self.json, "\"{key}\": ");
        match data {
            Data::Str(s) => {
                self.csv.push_str(&s);
                let _ = write!(self.json, "\"{s}\"");
            }
            Data::Raw(s) => {
                self.csv.push_str(&s);
                self.json.push_str(&s);
            }
        }
        self.keys.push(key.to_string());
        self
    }

    /// A string cell (quoted in JSON), left- or right-aligned in the
    /// table.
    #[must_use]
    pub fn str_cell(self, key: &str, value: &str, width: usize, left: bool) -> Self {
        self.cell(key, value, width, left, Data::Str(value.to_string()))
    }

    /// A numeric cell rendered with `Display` in all three outputs
    /// (unquoted in JSON) — integers, or floats whose shortest form is
    /// the canonical one (grid knobs like `0.05`).
    #[must_use]
    pub fn num_cell<T: Display>(self, key: &str, value: T, width: usize, left: bool) -> Self {
        let s = value.to_string();
        self.cell(key, &s.clone(), width, left, Data::Raw(s))
    }

    /// A float cell: fixed `table_prec` decimals in the table,
    /// `data_prec` decimals in CSV/JSON.
    #[must_use]
    pub fn f64_cell(
        self,
        key: &str,
        value: f64,
        width: usize,
        table_prec: usize,
        data_prec: usize,
    ) -> Self {
        let table = format!("{value:.table_prec$}");
        let data = format!("{value:.data_prec$}");
        self.cell(key, &table, width, false, Data::Raw(data))
    }

    /// A rate cell: the table shows `xx.x%` (of `width` digits plus the
    /// sign), CSV/JSON carry the raw fraction at `data_prec` decimals.
    #[must_use]
    pub fn pct_cell(self, key: &str, fraction: f64, width: usize, data_prec: usize) -> Self {
        let table = format!("{:>width$.1}%", fraction * 100.0);
        let data = format!("{fraction:.data_prec$}");
        self.cell(key, &table, width + 1, false, Data::Raw(data))
    }

    /// A cell whose table rendering deliberately differs from its data
    /// value (e.g. gigabytes in the table, raw bytes in CSV/JSON). The
    /// single call still ties both to one key.
    #[must_use]
    pub fn custom_cell(
        self,
        key: &str,
        table: &str,
        data: impl Display,
        width: usize,
        left: bool,
    ) -> Self {
        self.cell(key, table, width, left, Data::Raw(data.to_string()))
    }
}

/// The rows of one result grid: collects [`Row`]s, enforces a consistent
/// key set, and exposes the three renderings plus the derived CSV
/// header.
#[derive(Debug, Default)]
pub struct RowSet {
    keys: Vec<String>,
    table_rows: Vec<String>,
    csv_rows: Vec<String>,
    json_rows: Vec<String>,
}

impl RowSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finished row, returning its table rendering for immediate
    /// printing.
    ///
    /// # Panics
    /// Panics if the row's keys differ from the first row's — the exact
    /// desynchronization this type exists to prevent.
    pub fn push(&mut self, row: Row) -> &str {
        if self.keys.is_empty() {
            self.keys = row.keys;
        } else {
            assert_eq!(self.keys, row.keys, "rows of one grid must share keys");
        }
        self.table_rows.push(row.table);
        self.csv_rows.push(row.csv);
        self.json_rows.push(format!("  {{{}}}", row.json));
        self.table_rows.last().expect("just pushed")
    }

    /// The CSV header derived from the rows' keys.
    #[must_use]
    pub fn csv_header(&self) -> String {
        self.keys.join(",")
    }

    /// CSV rows, one per pushed row.
    #[must_use]
    pub fn csv_rows(&self) -> &[String] {
        &self.csv_rows
    }

    /// JSON cell objects, one per pushed row (pre-indented for
    /// [`crate::write_bench_json`]).
    #[must_use]
    pub fn json_rows(&self) -> &[String] {
        &self.json_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_push_feeds_all_three_outputs() {
        let row = Row::new()
            .str_cell("scheme", "econ-cheap", 12, true)
            .f64_cell("total_cost_usd", 13.46397, 12, 2, 6)
            .pct_cell("hit_rate", 0.1234, 7, 4)
            .num_cell("builds", 283u64, 8, false);
        let mut set = RowSet::new();
        let table = set.push(row).to_string();
        assert_eq!(table, "econ-cheap          13.46    12.3%      283");
        assert_eq!(set.csv_header(), "scheme,total_cost_usd,hit_rate,builds");
        assert_eq!(set.csv_rows(), ["econ-cheap,13.463970,0.1234,283"]);
        assert_eq!(
            set.json_rows(),
            ["  {\"scheme\": \"econ-cheap\", \"total_cost_usd\": 13.463970, \"hit_rate\": 0.1234, \"builds\": 283}"]
        );
    }

    #[test]
    fn custom_cells_tie_divergent_renderings_to_one_key() {
        let row = Row::new().custom_cell(
            "final_disk_bytes",
            &format!("{:.0}", 2.5e9 / 1e9),
            2_500_000_000u64,
            10,
            false,
        );
        let mut set = RowSet::new();
        set.push(row);
        assert_eq!(set.csv_rows(), ["2500000000"]);
        assert!(set.json_rows()[0].contains("\"final_disk_bytes\": 2500000000"));
    }

    #[test]
    #[should_panic(expected = "share keys")]
    fn mismatched_keys_are_rejected() {
        let mut set = RowSet::new();
        set.push(Row::new().num_cell("a", 1, 4, false));
        set.push(Row::new().num_cell("b", 2, 4, false));
    }
}
