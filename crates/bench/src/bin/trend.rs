//! **Perf trend** — diffs the committed `BENCH_*.json` records across
//! PRs so the repo's throughput trajectory is reviewable at a glance.
//!
//! For every `BENCH_*.json` in the working directory the tool walks the
//! record's git history, extracts the headline queries/second at each
//! commit, and prints one line per bench: the q/s trajectory (oldest →
//! newest, the working tree appended when dirty), the last step's
//! delta, and regression flags. `fleet_scale` records additionally get
//! their quote-thread sweep checked against the record's own 1-thread
//! baseline — the threaded-quote regression staying fixed — plus the
//! completion-path gate (the recorded batched default must be the
//! fastest sweep row), the pinning-invariance gate (pinned and
//! unpinned rows must agree on every economic aggregate), and the
//! health-plane gate (the vitals-snapshots-on row must agree bitwise
//! with the snapshots-off baseline and keep its throughput — the
//! health plane is a pure observer off the hot path); `fleet_faults`
//! records get their fault-plane claims re-checked (every ledger replay
//! reconciled, elastic-with-respawn still cheaper than
//! static-with-crash, drift alarms silent on fault-free cells and
//! firing on the degraded one). The `pool.pinned_workers` /
//! `plan_cache.victim_hits` registry counters are surfaced per record
//! when present — historical records without them are simply silent.
//!
//! `--check` (CI mode) exits non-zero when any record is unreadable,
//! the last step regresses beyond the tolerance, or sweep/fault-plane
//! regression rows are committed.
//!
//! Usage: `cargo run --release -p bench --bin trend [-- --check]`

use bench::trend::{bench_trend, record_files, registry_counter, REGRESSION_TOLERANCE};

/// New-in-PR-8 registry counters worth surfacing per record. Reads the
/// working-tree record directly; keys absent from historical records
/// simply print nothing.
fn registry_notes(file: &str) -> Option<String> {
    let doc: serde::Value = serde_json::from_str(&std::fs::read_to_string(file).ok()?).ok()?;
    let notes: Vec<String> = ["pool.pinned_workers", "plan_cache.victim_hits"]
        .iter()
        .filter_map(|key| Some(format!("{key}={:.0}", registry_counter(&doc, key)?)))
        .collect();
    (!notes.is_empty()).then(|| notes.join(", "))
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let files = record_files();
    if files.is_empty() {
        println!("no BENCH_*.json records in the working directory");
        return;
    }

    println!("================================================================");
    println!(
        "bench trend: {} committed records (regression tolerance {:.0}%, widened to a record's own rep spread)",
        files.len(),
        REGRESSION_TOLERANCE * 100.0
    );
    println!("================================================================");
    println!(
        "{:<36} {:>28} {:>8}  flags",
        "record", "headline q/s trajectory", "last"
    );

    let mut failures = 0u32;
    for file in &files {
        let trend = bench_trend(file);
        let trajectory = if trend.points.is_empty() {
            "-".to_string()
        } else {
            trend
                .points
                .iter()
                .map(|qps| format!("{qps:.0}"))
                .collect::<Vec<_>>()
                .join(" → ")
        };
        let delta = if trend.points.len() >= 2 {
            format!("{:+.1}%", trend.last_delta * 100.0)
        } else {
            "-".to_string()
        };
        let mut flags = Vec::new();
        if let Some(e) = &trend.error {
            flags.push(format!("ERROR: {e}"));
        }
        if let Some(message) = trend.regression_message() {
            flags.push(format!("REGRESSED: {message}"));
        }
        if !trend.sweep_regressions.is_empty() {
            flags.push(format!(
                "QUOTE-SWEEP: {}",
                trend.sweep_regressions.join("; ")
            ));
        }
        if !trend.completion_regressions.is_empty() {
            flags.push(format!(
                "COMPLETION-PATH: {}",
                trend.completion_regressions.join("; ")
            ));
        }
        if !trend.pinning_regressions.is_empty() {
            flags.push(format!("PINNING: {}", trend.pinning_regressions.join("; ")));
        }
        if !trend.health_regressions.is_empty() {
            flags.push(format!(
                "HEALTH-PLANE: {}",
                trend.health_regressions.join("; ")
            ));
        }
        if !trend.fault_regressions.is_empty() {
            flags.push(format!(
                "FAULT-PLANE: {}",
                trend.fault_regressions.join("; ")
            ));
        }
        if !flags.is_empty() {
            failures += 1;
        }
        println!(
            "{:<36} {:>28} {:>8}  {}",
            trend.file,
            trajectory,
            delta,
            if flags.is_empty() {
                "ok".to_string()
            } else {
                flags.join(" | ")
            }
        );
        if let Some(notes) = registry_notes(file) {
            println!("{:<36} {:>28}", "", format!("({notes})"));
        }
    }

    if failures > 0 {
        eprintln!("{failures} record(s) flagged");
        if check {
            std::process::exit(1);
        }
    } else {
        println!("all records healthy");
    }
}
