//! Quick pilot of the Fig. 4/5 grid for calibration (not a shipped figure).

use simulator::{run_simulation, Scheme, SimConfig};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500.0);
    let n: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    for interval in [1.0, 10.0, 30.0, 60.0] {
        println!("== inter-arrival {interval}s  (SF {sf}, {n} queries) ==");
        for scheme in Scheme::paper_schemes() {
            let cfg = SimConfig::paper_cell(scheme, interval, sf, n);
            let r = run_simulation(cfg);
            println!("  {}", r.table_row());
        }
    }
}
