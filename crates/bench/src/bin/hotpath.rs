//! **Hot-path throughput** — queries/second of the per-query control loop.
//!
//! Measures planning + economy throughput for
//! `{econ-cheap, econ-fast, bypass} × {cold, warm-template}` cells at a
//! fixed 1 s inter-arrival interval, verifies that memoized planning is
//! **bit-identical** to fresh planning (every economic aggregate equal;
//! the run exits non-zero on any drift), and writes `BENCH_hotpath.json`.
//!
//! * **cold** — the standard drifting workload from an empty cache (every
//!   query is a fresh template instance, so the plan cache never gets an
//!   exact repeat and the measured gain comes from the structural
//!   optimisations: candidate index, single-pass skyline, buffer reuse,
//!   gated failure scans);
//! * **warm-template** — one concrete instance per template, replayed
//!   round-robin (the prepared-statement regime where the plan cache
//!   serves repeat hits between cache-state changes).
//!
//! The committed `BENCH_hotpath.json` records the pre-optimisation
//! baseline queries/sec (seed planner, measured with this same harness
//! and cell configuration) next to the current numbers.
//!
//! Usage: `{bin} [scale_factor] [num_queries]` (defaults 100, 50000 — the
//! acceptance cell; CI runs a reduced `10 2000` grid).

use bench::{cli_arg, cli_usage_error};
use catalog::tpch::{tpch_schema, ScaleFactor};
use econ::{EconConfig, PlanCacheStats};
use planner::{generate_candidates, CandidateIndex, CostParams, Estimator, PlannerContext};
use policies::{BypassYieldPolicy, CachePolicy, EconPolicy};
use pricing::{Money, PriceCatalog};
use simcore::{NetworkModel, SimTime};
use simulator::{RunAccumulator, RunResult};
use std::io::Write;
use std::sync::Arc;
use workload::{paper_templates, Query, WorkloadConfig, WorkloadGenerator};

const USAGE: &str =
    "{bin} [scale_factor] [num_queries]\n       defaults: scale_factor 100, num_queries 50000";

/// Pre-optimisation queries/sec per (scheme, workload) cell: the seed
/// planner (commit c9554c6) measured with this harness at the default
/// SF 100 / 50 000-query cell, median of three runs on the reference
/// machine. Only meaningful for the default cell size.
const BASELINE_QPS: [(&str, &str, f64); 6] = [
    ("econ-cheap", "cold", 102_197.0),
    ("econ-cheap", "warm-template", 94_527.0),
    ("econ-fast", "cold", 106_849.0),
    ("econ-fast", "warm-template", 101_932.0),
    ("bypass", "cold", 1_605_933.0),
    ("bypass", "warm-template", 2_123_311.0),
];

/// Economy tuned so investments and settlements happen within the run
/// (the paper-scale defaults need ~10^6 queries to bite).
fn econ_config(plan_cache: bool) -> EconConfig {
    EconConfig {
        initial_credit: Money::from_dollars(0.02),
        investment: econ::InvestmentRule {
            min_regret: Money::from_dollars(1e-5),
            ..econ::InvestmentRule::default()
        },
        plan_cache,
        ..EconConfig::default()
    }
}

struct Cell {
    scheme: &'static str,
    workload: &'static str,
    queries: u64,
    wall_secs: f64,
    qps: f64,
    fresh_wall_secs: Option<f64>,
    cache_stats: Option<PlanCacheStats>,
    result: RunResult,
}

/// One concrete instance per template, replayed round-robin.
fn template_instances(schema: &Arc<catalog::Schema>) -> Vec<Query> {
    let mut gen = WorkloadGenerator::new(Arc::clone(schema), WorkloadConfig::default(), 1234);
    let templates = gen.templates().len();
    let mut picked: Vec<Option<Query>> = vec![None; templates];
    while picked.iter().any(Option::is_none) {
        let q = gen.next_query();
        let slot = q.template.0;
        picked[slot].get_or_insert(q);
    }
    picked.into_iter().map(Option::unwrap).collect()
}

/// Drives one policy over the cell's workload, returning the run result
/// and wall-clock seconds.
fn drive(
    policy: &mut dyn CachePolicy,
    ctx: &PlannerContext<'_>,
    schema: &Arc<catalog::Schema>,
    workload: &str,
    n: u64,
) -> (RunResult, f64) {
    let mut acc = RunAccumulator::new();
    let replay = (workload == "warm-template").then(|| template_instances(schema));
    let mut gen = WorkloadGenerator::new(Arc::clone(schema), WorkloadConfig::default(), 99);
    let started = std::time::Instant::now();
    for i in 0..n {
        let now = SimTime::from_secs((i + 1) as f64);
        let query = match &replay {
            Some(instances) => instances[(i as usize) % instances.len()].clone(),
            None => gen.next_query(),
        };
        let _ = acc.step(policy, ctx, &query, now);
    }
    let wall = started.elapsed().as_secs_f64();
    let result = acc.finish(
        policy,
        &PriceCatalog::ec2_2009().rates,
        SimTime::from_secs(n as f64),
    );
    (result, wall)
}

/// Every deterministic aggregate that must be identical between memoized
/// and fresh runs.
fn aggregate_fingerprint(r: &RunResult) -> Vec<(&'static str, String)> {
    vec![
        ("queries", r.queries.to_string()),
        ("payments", r.payments.as_nanos().to_string()),
        ("profit", r.profit.as_nanos().to_string()),
        ("build_spend", r.build_spend.as_nanos().to_string()),
        ("operating", r.operating.total().as_nanos().to_string()),
        ("cache_hits", r.cache_hits.to_string()),
        ("investments", r.investments.to_string()),
        ("evictions", r.evictions.to_string()),
        ("mean_response", r.response.mean().to_bits().to_string()),
        ("final_disk", r.final_disk_bytes.to_string()),
    ]
}

fn run_cell(
    scheme: &'static str,
    workload: &'static str,
    ctx: &PlannerContext<'_>,
    schema: &Arc<catalog::Schema>,
    n: u64,
    drift: &mut bool,
) -> Cell {
    if scheme == "bypass" {
        let mut policy = BypassYieldPolicy::paper(schema);
        let (result, wall) = drive(&mut policy, ctx, schema, workload, n);
        return Cell {
            scheme,
            workload,
            queries: n,
            wall_secs: wall,
            qps: n as f64 / wall.max(1e-9),
            fresh_wall_secs: None,
            cache_stats: None,
            result,
        };
    }

    let make = |plan_cache: bool| -> EconPolicy {
        match scheme {
            "econ-cheap" => EconPolicy::econ_cheap(econ_config(plan_cache)),
            "econ-fast" => EconPolicy::econ_fast(econ_config(plan_cache)),
            other => panic!("unknown scheme {other}"),
        }
    };

    let mut memo = make(true);
    let (result, wall) = drive(&mut memo, ctx, schema, workload, n);
    let cache_stats = memo.manager().plan_cache_stats();

    let mut fresh = make(false);
    let (fresh_result, fresh_wall) = drive(&mut fresh, ctx, schema, workload, n);

    let memo_fp = aggregate_fingerprint(&result);
    let fresh_fp = aggregate_fingerprint(&fresh_result);
    if memo_fp != fresh_fp {
        *drift = true;
        eprintln!("error: {scheme}/{workload}: memoized aggregates drifted from fresh planning");
        for ((k, m), (_, f)) in memo_fp.iter().zip(&fresh_fp) {
            if m != f {
                eprintln!("  {k}: memoized {m} != fresh {f}");
            }
        }
    }

    Cell {
        scheme,
        workload,
        queries: n,
        wall_secs: wall,
        qps: n as f64 / wall.max(1e-9),
        fresh_wall_secs: Some(fresh_wall),
        cache_stats: Some(cache_stats),
        result,
    }
}

fn baseline_qps(scheme: &str, workload: &str) -> Option<f64> {
    BASELINE_QPS
        .iter()
        .find(|(s, w, _)| *s == scheme && *w == workload)
        .map(|&(_, _, q)| q)
}

fn write_json(cells: &[Cell], sf: f64, n: u64, default_cell: bool) {
    let mut rows = Vec::new();
    for c in cells {
        let baseline = if default_cell {
            baseline_qps(c.scheme, c.workload)
        } else {
            None
        };
        let stats = c.cache_stats.unwrap_or_default();
        rows.push(format!(
            "  {{\"scheme\": \"{}\", \"workload\": \"{}\", \"queries\": {}, \"wall_secs\": {:.4}, \
             \"qps\": {:.0}, \"fresh_wall_secs\": {}, \"cache_epoch_hits\": {}, \
             \"cache_epoch_misses\": {}, \"cache_refreshes\": {}, \"cache_completions\": {}, \
             \"baseline_qps\": {}, \
             \"speedup_vs_baseline\": {}, \"bit_identical_to_fresh\": {}, \
             \"payments_nanos\": {}, \"cache_hits\": {}, \"investments\": {}}}",
            c.scheme,
            c.workload,
            c.queries,
            c.wall_secs,
            c.qps,
            c.fresh_wall_secs
                .map_or("null".to_string(), |w| format!("{w:.4}")),
            stats.hits,
            stats.misses,
            stats.refreshes,
            stats.completions,
            baseline.map_or("null".to_string(), |b| format!("{b:.0}")),
            baseline.map_or("null".to_string(), |b| format!("{:.2}", c.qps / b)),
            c.fresh_wall_secs.is_some(),
            c.result.payments.as_nanos(),
            c.result.cache_hits,
            c.result.investments,
        ));
    }
    let json = format!(
        "{{\n\"bench\": \"hotpath\",\n\"config\": {{\"scale_factor\": {sf}, \"queries\": {n}, \
         \"interval_secs\": 1.0}},\n\"baseline_note\": \"baseline_qps: seed planner (commit \
         c9554c6) measured with this harness, median of 3 runs, default SF 100 / 50k cell\",\n\
         \"cells\": [\n{}\n]\n}}\n",
        rows.join(",\n")
    );
    match std::fs::File::create("BENCH_hotpath.json") {
        Ok(mut f) => {
            let _ = f.write_all(json.as_bytes());
            println!("(wrote BENCH_hotpath.json)");
        }
        Err(e) => eprintln!("warning: cannot write BENCH_hotpath.json: {e}"),
    }
}

fn main() {
    let sf: f64 = cli_arg(1, "scale factor", 100.0, USAGE);
    let n: u64 = cli_arg(2, "query count", 50_000, USAGE);
    if !sf.is_finite() || sf <= 0.0 || n == 0 {
        cli_usage_error("scale factor and query count must be positive", USAGE);
    }
    let default_cell = (sf - 100.0).abs() < f64::EPSILON && n == 50_000;

    let schema = Arc::new(tpch_schema(ScaleFactor(sf)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let cand_index = CandidateIndex::build(&schema, &candidates);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };

    println!("hotpath: SF {sf}, {n} queries, 1 s fixed interval");
    println!(
        "{:>10} {:>14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "scheme",
        "workload",
        "wall (s)",
        "qps",
        "fresh(s)",
        "memo hit",
        "miss",
        "recompl",
        "vs base"
    );

    let mut drift = false;
    let mut cells = Vec::new();
    for scheme in ["econ-cheap", "econ-fast", "bypass"] {
        for workload in ["cold", "warm-template"] {
            let cell = run_cell(scheme, workload, &ctx, &schema, n, &mut drift);
            let stats = cell.cache_stats.unwrap_or_default();
            let base = if default_cell {
                baseline_qps(scheme, workload)
            } else {
                None
            };
            println!(
                "{:>10} {:>14} {:>9.2} {:>9.0} {:>9} {:>9} {:>9} {:>9} {:>9}",
                cell.scheme,
                cell.workload,
                cell.wall_secs,
                cell.qps,
                cell.fresh_wall_secs
                    .map_or("-".to_string(), |w| format!("{w:.2}")),
                stats.hits,
                stats.misses,
                stats.completions,
                base.map_or("-".to_string(), |b| format!("{:.2}x", cell.qps / b)),
            );
            cells.push(cell);
        }
    }

    // Only the default acceptance cell refreshes the committed record;
    // reduced-scale runs (CI) must not clobber it with null baselines.
    if default_cell {
        write_json(&cells, sf, n, default_cell);
    } else {
        println!("(non-default cell: BENCH_hotpath.json left untouched)");
    }

    if drift {
        eprintln!("error: memoized planning diverged from fresh planning");
        std::process::exit(1);
    }
    println!("memoized aggregates identical to fresh planning: OK");
}
