//! **Ablation 5** — regret attribution (the DESIGN.md deviation).
//!
//! The paper's "distributed uniformly to every physical structure" admits
//! two readings: an equal *split* of the plan's regret, or *full* credit
//! to each structure (each was individually necessary — Definition 2).
//! This sweep shows why the reproduction defaults to full credit: under
//! the split reading the per-structure signal races the `a · CR`
//! threshold of eq. 3 and investment can freeze at 2.5 TB scale.
//!
//! Usage: `cargo run --release -p bench --bin fig10_ablation_attribution [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, print_header, run_cells, write_csv, write_figure_bench_json, Row,
    RowSet,
};
use econ::RegretAttribution;
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 5 (regret attribution)",
        "econ-cheap at 1 s and 10 s inter-arrival",
        sf,
        n,
    );
    let variants = [
        ("share-1s", RegretAttribution::UniformShare, 1.0),
        ("full-1s", RegretAttribution::FullValue, 1.0),
        ("share-10s", RegretAttribution::UniformShare, 10.0),
        ("full-10s", RegretAttribution::FullValue, 10.0),
    ];
    let cells: Vec<SimConfig> = variants
        .iter()
        .map(|&(_, attribution, interval)| {
            let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, interval, sf, n);
            cfg.econ.regret_attribution = attribution;
            cfg
        })
        .collect();
    let started = std::time::Instant::now();
    let results = run_cells(cells);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<12} {:>12} {:>12} {:>8} {:>8}",
        "variant", "cost ($)", "resp (s)", "hits %", "builds"
    );
    let mut set = RowSet::new();
    for ((name, _, _), r) in variants.iter().zip(&results) {
        let row = Row::new()
            .str_cell("variant", name, 12, true)
            .f64_cell(
                "total_cost_usd",
                r.total_operating_cost().as_dollars(),
                12,
                2,
                4,
            )
            .f64_cell("mean_response_s", r.mean_response_secs(), 12, 3, 4)
            .pct_cell("hit_rate", r.hit_rate(), 7, 4)
            .num_cell("builds", r.investments, 8, false);
        println!("{}", set.push(row));
    }
    write_csv(
        "fig10_ablation_attribution",
        &set.csv_header(),
        set.csv_rows(),
    );
    write_figure_bench_json(
        "fig10_ablation_attribution",
        sf,
        n,
        &bench_config_json(sf, n, n * variants.len() as u64, wall),
        set.json_rows(),
    );
}
