//! **Figure 4** — "Comparison of operating costs for caching schemes".
//!
//! Regenerates the paper's cost bars: total operating cost of the caching
//! infrastructure (execution resources + disk rent + node uptime +
//! structure builds) for each scheme at inter-arrival intervals of
//! 1 / 10 / 30 / 60 seconds.
//!
//! Usage: `cargo run --release -p bench --bin fig4_operating_cost [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, grid_csv_rows, grid_json_rows, print_header, run_paper_grid,
    write_csv, write_figure_bench_json,
};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Figure 4",
        "operating cost ($) per caching scheme vs query inter-arrival time",
        sf,
        n,
    );
    let started = std::time::Instant::now();
    let grid = run_paper_grid(sf, n);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "interval", "bypass", "econ-col", "econ-cheap", "econ-fast"
    );
    for (interval, results) in &grid {
        print!("{:<14}", format!("{interval}s"));
        for r in results {
            print!(" {:>12.2}", r.total_operating_cost().as_dollars());
        }
        println!();
    }
    println!();
    println!("cost decomposition (cpu/disk/network/io/builds), per cell:");
    for (interval, results) in &grid {
        for r in results {
            println!(
                "  {interval:>4}s {:<11} cpu ${:>8.2}  disk ${:>8.2}  net ${:>8.2}  io ${:>8.2}  builds ${:>7.2}",
                r.scheme,
                r.operating.cpu.as_dollars(),
                r.operating.disk.as_dollars(),
                r.operating.network.as_dollars(),
                r.operating.io.as_dollars(),
                r.build_spend.as_dollars(),
            );
        }
    }
    let rows = grid_csv_rows(&grid, |r| {
        format!(
            "{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.total_operating_cost().as_dollars(),
            r.operating.cpu.as_dollars(),
            r.operating.disk.as_dollars(),
            r.operating.network.as_dollars(),
            r.operating.io.as_dollars(),
            r.build_spend.as_dollars()
        )
    });
    write_csv(
        "fig4_operating_cost",
        "interval_s,scheme,total_cost_usd,cpu_usd,disk_usd,network_usd,io_usd,builds_usd",
        &rows,
    );
    let cells = grid_json_rows(&grid, |r| {
        format!(
            "\"total_cost_usd\": {:.4}, \"cpu_usd\": {:.4}, \"disk_usd\": {:.4}, \"network_usd\": {:.4}, \"io_usd\": {:.4}, \"builds_usd\": {:.4}",
            r.total_operating_cost().as_dollars(),
            r.operating.cpu.as_dollars(),
            r.operating.disk.as_dollars(),
            r.operating.network.as_dollars(),
            r.operating.io.as_dollars(),
            r.build_spend.as_dollars()
        )
    });
    let total = grid.iter().map(|(_, rs)| rs.len() as u64 * n).sum::<u64>();
    write_figure_bench_json(
        "fig4_operating_cost",
        sf,
        n,
        &bench_config_json(sf, n, total, wall),
        &cells,
    );
}
