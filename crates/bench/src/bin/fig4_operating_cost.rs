//! **Figure 4** — "Comparison of operating costs for caching schemes".
//!
//! Regenerates the paper's cost bars: total operating cost of the caching
//! infrastructure (execution resources + disk rent + node uptime +
//! structure builds) for each scheme at inter-arrival intervals of
//! 1 / 10 / 30 / 60 seconds.
//!
//! Usage: `cargo run --release -p bench --bin fig4_operating_cost [sf] [queries]`

use bench::{cli_scale, grid_csv_rows, print_header, run_paper_grid, write_csv};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Figure 4",
        "operating cost ($) per caching scheme vs query inter-arrival time",
        sf,
        n,
    );
    let grid = run_paper_grid(sf, n);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "interval", "bypass", "econ-col", "econ-cheap", "econ-fast"
    );
    for (interval, results) in &grid {
        print!("{:<14}", format!("{interval}s"));
        for r in results {
            print!(" {:>12.2}", r.total_operating_cost().as_dollars());
        }
        println!();
    }
    println!();
    println!("cost decomposition (cpu/disk/network/io/builds), per cell:");
    for (interval, results) in &grid {
        for r in results {
            println!(
                "  {interval:>4}s {:<11} cpu ${:>8.2}  disk ${:>8.2}  net ${:>8.2}  io ${:>8.2}  builds ${:>7.2}",
                r.scheme,
                r.operating.cpu.as_dollars(),
                r.operating.disk.as_dollars(),
                r.operating.network.as_dollars(),
                r.operating.io.as_dollars(),
                r.build_spend.as_dollars(),
            );
        }
    }
    let rows = grid_csv_rows(&grid, |r| {
        format!(
            "{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.total_operating_cost().as_dollars(),
            r.operating.cpu.as_dollars(),
            r.operating.disk.as_dollars(),
            r.operating.network.as_dollars(),
            r.operating.io.as_dollars(),
            r.build_spend.as_dollars()
        )
    });
    write_csv(
        "fig4_operating_cost",
        "interval_s,scheme,total_cost_usd,cpu_usd,disk_usd,network_usd,io_usd,builds_usd",
        &rows,
    );
}
