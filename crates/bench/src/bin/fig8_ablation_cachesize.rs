//! **Ablation 3** — the bypass cache-size cap.
//!
//! The paper adopts 30 % of the database as "the ideal cache size for
//! net-only" from Malik et al. This sweep verifies the claim under our
//! workload: below the knee the cap forces evictions; above it extra
//! capacity buys nothing (the working set fits).
//!
//! Usage: `cargo run --release -p bench --bin fig8_ablation_cachesize [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, print_header, run_cells, write_csv, write_figure_bench_json, Row,
    RowSet,
};
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 3 (bypass cache cap)",
        "bypass at 10 s inter-arrival, cap as fraction of the database",
        sf,
        n,
    );
    let fractions = [0.0002, 0.001, 0.05, 0.30, 0.60, 1.0];
    let cells: Vec<SimConfig> = fractions
        .iter()
        .map(|&f| SimConfig::paper_cell(Scheme::Bypass { cache_fraction: f }, 10.0, sf, n))
        .collect();
    let started = std::time::Instant::now();
    let results = run_cells(cells);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "cap", "cost ($)", "resp (s)", "hits %", "evicts", "disk (GB)"
    );
    let mut set = RowSet::new();
    for (f, r) in fractions.iter().zip(&results) {
        let row = Row::new()
            .custom_cell("cache_fraction", &format!("{:.2}%", f * 100.0), f, 10, true)
            .f64_cell(
                "total_cost_usd",
                r.total_operating_cost().as_dollars(),
                12,
                2,
                4,
            )
            .f64_cell("mean_response_s", r.mean_response_secs(), 12, 3, 4)
            .pct_cell("hit_rate", r.hit_rate(), 7, 4)
            .num_cell("evicts", r.evictions, 8, false)
            .custom_cell(
                "final_disk_bytes",
                &format!("{:.0}", r.final_disk_bytes as f64 / 1e9),
                r.final_disk_bytes,
                10,
                false,
            );
        println!("{}", set.push(row));
    }
    write_csv("fig8_ablation_cachesize", &set.csv_header(), set.csv_rows());
    write_figure_bench_json(
        "fig8_ablation_cachesize",
        sf,
        n,
        &bench_config_json(sf, n, n * fractions.len() as u64, wall),
        set.json_rows(),
    );
}
