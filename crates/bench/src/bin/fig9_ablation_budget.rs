//! **Ablation 4** — budget-function shape (Fig. 1 of the paper).
//!
//! The experiments use step budgets ("the user defines a step preference
//! function"). This sweep swaps in the convex and concave shapes of
//! Fig. 1: decaying budgets shrink the affordable plan set (more Case C),
//! which throttles both profit and investment.
//!
//! Usage: `cargo run --release -p bench --bin fig9_ablation_budget [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, print_header, run_cells, write_csv, write_figure_bench_json,
};
use econ::BudgetShape;
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 4 (budget shape, Fig. 1)",
        "econ-cheap at 10 s inter-arrival",
        sf,
        n,
    );
    let shapes = [
        ("step", BudgetShape::Step),
        ("convex", BudgetShape::Convex),
        ("concave", BudgetShape::Concave),
    ];
    let cells: Vec<SimConfig> = shapes
        .iter()
        .map(|&(_, shape)| {
            let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, sf, n);
            cfg.econ.budget_shape = shape;
            cfg
        })
        .collect();
    let started = std::time::Instant::now();
    let results = run_cells(cells);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "shape", "cost ($)", "resp (s)", "hits %", "payments ($)", "profit ($)"
    );
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for ((name, _), r) in shapes.iter().zip(&results) {
        println!(
            "{:<10} {:>12.2} {:>12.3} {:>7.1}% {:>12.2} {:>12.2}",
            name,
            r.total_operating_cost().as_dollars(),
            r.mean_response_secs(),
            r.hit_rate() * 100.0,
            r.payments.as_dollars(),
            r.profit.as_dollars()
        );
        rows.push(format!(
            "{name},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.total_operating_cost().as_dollars(),
            r.mean_response_secs(),
            r.hit_rate(),
            r.payments.as_dollars(),
            r.profit.as_dollars()
        ));
        json_rows.push(format!(
            "  {{\"shape\": \"{name}\", \"total_cost_usd\": {:.4}, \"mean_response_s\": {:.4}, \"hit_rate\": {:.4}, \"payments_usd\": {:.4}, \"profit_usd\": {:.4}}}",
            r.total_operating_cost().as_dollars(),
            r.mean_response_secs(),
            r.hit_rate(),
            r.payments.as_dollars(),
            r.profit.as_dollars()
        ));
    }
    write_csv(
        "fig9_ablation_budget",
        "shape,total_cost_usd,mean_response_s,hit_rate,payments_usd,profit_usd",
        &rows,
    );
    write_figure_bench_json(
        "fig9_ablation_budget",
        sf,
        n,
        &bench_config_json(sf, n, n * shapes.len() as u64, wall),
        &json_rows,
    );
}
