//! **Ablation 4** — budget-function shape (Fig. 1 of the paper).
//!
//! The experiments use step budgets ("the user defines a step preference
//! function"). This sweep swaps in the convex and concave shapes of
//! Fig. 1: decaying budgets shrink the affordable plan set (more Case C),
//! which throttles both profit and investment.
//!
//! Usage: `cargo run --release -p bench --bin fig9_ablation_budget [sf] [queries]`

use bench::{cli_scale, print_header, run_cells, write_csv};
use econ::BudgetShape;
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 4 (budget shape, Fig. 1)",
        "econ-cheap at 10 s inter-arrival",
        sf,
        n,
    );
    let shapes = [
        ("step", BudgetShape::Step),
        ("convex", BudgetShape::Convex),
        ("concave", BudgetShape::Concave),
    ];
    let cells: Vec<SimConfig> = shapes
        .iter()
        .map(|&(_, shape)| {
            let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, sf, n);
            cfg.econ.budget_shape = shape;
            cfg
        })
        .collect();
    let results = run_cells(cells);
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "shape", "cost ($)", "resp (s)", "hits %", "payments ($)", "profit ($)"
    );
    let mut rows = Vec::new();
    for ((name, _), r) in shapes.iter().zip(&results) {
        println!(
            "{:<10} {:>12.2} {:>12.3} {:>7.1}% {:>12.2} {:>12.2}",
            name,
            r.total_operating_cost().as_dollars(),
            r.mean_response_secs(),
            r.hit_rate() * 100.0,
            r.payments.as_dollars(),
            r.profit.as_dollars()
        );
        rows.push(format!(
            "{name},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.total_operating_cost().as_dollars(),
            r.mean_response_secs(),
            r.hit_rate(),
            r.payments.as_dollars(),
            r.profit.as_dollars()
        ));
    }
    write_csv(
        "fig9_ablation_budget",
        "shape,total_cost_usd,mean_response_s,hit_rate,payments_usd,profit_usd",
        &rows,
    );
}
