//! **Ablation 4** — budget-function shape (Fig. 1 of the paper).
//!
//! The experiments use step budgets ("the user defines a step preference
//! function"). This sweep swaps in the convex and concave shapes of
//! Fig. 1: decaying budgets shrink the affordable plan set (more Case C),
//! which throttles both profit and investment.
//!
//! Usage: `cargo run --release -p bench --bin fig9_ablation_budget [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, print_header, run_cells, write_csv, write_figure_bench_json, Row,
    RowSet,
};
use econ::BudgetShape;
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 4 (budget shape, Fig. 1)",
        "econ-cheap at 10 s inter-arrival",
        sf,
        n,
    );
    let shapes = [
        ("step", BudgetShape::Step),
        ("convex", BudgetShape::Convex),
        ("concave", BudgetShape::Concave),
    ];
    let cells: Vec<SimConfig> = shapes
        .iter()
        .map(|&(_, shape)| {
            let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, sf, n);
            cfg.econ.budget_shape = shape;
            cfg
        })
        .collect();
    let started = std::time::Instant::now();
    let results = run_cells(cells);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "shape", "cost ($)", "resp (s)", "hits %", "payments ($)", "profit ($)"
    );
    let mut set = RowSet::new();
    for ((name, _), r) in shapes.iter().zip(&results) {
        let row = Row::new()
            .str_cell("shape", name, 10, true)
            .f64_cell(
                "total_cost_usd",
                r.total_operating_cost().as_dollars(),
                12,
                2,
                4,
            )
            .f64_cell("mean_response_s", r.mean_response_secs(), 12, 3, 4)
            .pct_cell("hit_rate", r.hit_rate(), 7, 4)
            .f64_cell("payments_usd", r.payments.as_dollars(), 12, 2, 4)
            .f64_cell("profit_usd", r.profit.as_dollars(), 12, 2, 4);
        println!("{}", set.push(row));
    }
    write_csv("fig9_ablation_budget", &set.csv_header(), set.csv_rows());
    write_figure_bench_json(
        "fig9_ablation_budget",
        sf,
        n,
        &bench_config_json(sf, n, n * shapes.len() as u64, wall),
        set.json_rows(),
    );
}
