//! **Fault-injection grid** — the deterministic fault plane
//! (`fleet::faults`) against the fault-free baseline, across crash,
//! recovery, degradation, flash-crowd, cascade and evacuation
//! scenarios.
//!
//! Sweeps {static, elastic} × {none, crash, crash-recover, degraded,
//! flash-crowd, cascade, cascade-evacuate, storm-crash, diurnal-crash}
//! over an underloaded steady fleet (60 s arrivals, so the elastic
//! control plane has idle capacity to drain and the fault plane has
//! survivors to re-route onto):
//!
//! * **none** — the fault-free reference;
//! * **crash** — node 0 (the node the drain order keeps alive longest)
//!   crashes mid-run with no recovery: its books settle at the crash
//!   instant (eq. 11 uptime + eq. 13 disk rent charged), the invested
//!   build capital is written off, and the in-flight backlog re-queues
//!   onto a survivor;
//! * **crash-recover** — the same crash, then a replacement node is
//!   rebuilt by replaying the crashed node's settlement journal into a
//!   fresh economy; the replay must reconcile **exactly** (zero drift
//!   on every ledger component) and the replacement pays eq. 10's boot
//!   cost again;
//! * **degraded** — node 0 limps at 6× service time for the middle of
//!   the run; queries whose winner is degraded with a backlog past the
//!   timeout re-route to the next-best quote;
//! * **flash-crowd** — every tenant's arrivals compress 6× over a surge
//!   window; the fleet must absorb the spike without losing a query;
//! * **cascade** — a rack-style fault group fells nodes {0, 3} at once,
//!   each crash raises a deterministic follow-on crash probability on
//!   the survivors (depth-capped, decaying), a mid-run degradation
//!   trips the deadline-budgeted retry policy, and the lost capital is
//!   written off in full;
//! * **cascade-evacuate** — the identical cascade, but a warning window
//!   precedes every planned crash: the doomed nodes' regret- and
//!   payment-ranked structures migrate to survivors at eq. 12's
//!   column-move price, so salvage replaces part of the write-off;
//! * **storm-crash** / **diurnal-crash** — the crash plan layered on
//!   MMPP storm/calm arrivals and the diurnal sinusoid: the bench row
//!   that pins fault × stochastic-arrival shard bit-identity.
//!
//! The claims the committed record pins: in the **crash** scenario the
//! elastic fleet — which drains idle capacity *and* respawns toward the
//! population floor at the review after the crash — beats the static
//! fleet (running its full surviving population) on total operating
//! cost; and in the **cascade** pair, evacuation strictly shrinks the
//! elastic fleet's ledgered loss (`write_off + transfer_spend` under
//! evacuation stays below the pure write-off) and its loss-adjusted
//! total cost. Resilience and economy come from the same control loop.
//!
//! **Determinism self-check** (always on, any scale): each faulted
//! scenario's elastic run is replayed at more executor shards, larger
//! quote pools, the per-node completion path and with the flight
//! recorder attached; every aggregate **and the fault record stream**
//! must be bit-identical. Every recovery in the grid must reconcile
//! exactly, and the elastic crash cell must contain a
//! `population-floor` respawn in its decision ledger. Non-zero exit on
//! any violation.
//!
//! At the default cell the run writes `BENCH_fleet_faults.json`
//! (best-of-reps q/s plus min/median spreads per cell, fault-plane
//! counters per cell, the serialized fault plans and the merged
//! traced-replay registry).
//!
//! Usage: `cargo run --release -p bench --bin fleet_faults \
//!         [scale_factor] [queries_per_tenant] [tenants] [nodes]`

use bench::{
    cli_arg, cli_usage_error, fleet_fingerprint, scale_args, write_bench_json, write_csv, Row,
    RowSet,
};
use fleet::{
    spend_cap_breaches, worst_p99, ElasticAction, ElasticConfig, FaultOutcome, FaultPlan,
    FleetConfig, FleetResult, FleetSim, TenantSloSpec,
};
use pricing::Money;
use simulator::ArrivalKind;
use telemetry::{detect_alarms, Baselines, MetricsRegistry};

const USAGE: &str = "{bin} [scale_factor] [queries_per_tenant] [tenants] [nodes]\n       \
                     defaults: scale_factor 50, queries_per_tenant 100, tenants 64, nodes 8";

/// Fixed inter-arrival gap (seconds). Underloaded on purpose — at the
/// default cell (SF 50, ~1.8 s mean service, 8 tenants per cell) the
/// utilization is ~0.24, so the elastic fleet drains to its floor, the
/// crash genuinely drops a cell below it, and the fault plane always
/// has a survivor to re-route onto.
const INTERVAL_SECS: f64 = 60.0;

/// The uniform observational SLO contract: every tenant targets this
/// p99. Sized between the fault-free grid's tail (which must hold its
/// 1% error budget) and the degraded node's 6x-slowed responses (which
/// must burn it hard enough for the e-process drift detector to fire —
/// the alarm fixture the committed record pins).
const SLO_P99_TARGET_SECS: f64 = 6.0;

/// Measurement repetitions per cell at the record-writing default cell.
/// Five interleaved reps: the best-of-reps headline recovers the
/// runner's fast moments and the min-of-reps records its noise floor,
/// so the trend check's spread-widened tolerance reflects the machine
/// the record was actually measured on.
const MEASURE_REPS: usize = 5;

/// The faulted scenarios (everything but `none`), with fault instants
/// proportional to the run horizon so the same grid exercises every
/// fault at any `queries_per_tenant` scale. The crash victim is node 0:
/// the elastic drain order retires highest ids first, so node 0 is
/// alive under *both* modes when the crash fires — the two cells suffer
/// the identical fault.
fn scenario_plan(name: &str, horizon: f64) -> Option<FaultPlan> {
    let plan = FaultPlan::new(horizon);
    // Crashes land just *after* an arrival batch (the fixed streams all
    // tick on multiples of the interval), so the victim dies with work
    // in flight and the backlog re-queue path shows in the record.
    let crash_at = 0.4 * horizon + 0.05;
    // The correlated-failure plan: a rack-style group fells {0, 3}
    // together (node 3 is already drained under the elastic mode, so
    // both modes lose node 0's capital to the same instant), each crash
    // rolls a decaying follow-on probability over the survivors, a
    // mid-run degradation trips the deadline-budgeted retry policy.
    let cascade = |p: FaultPlan| {
        p.with_group(vec![0, 3], crash_at)
            .with_cascade(0.35, 0.5, 0.005 * horizon, 2)
            .with_degrade(1, 0.2 * horizon, 0.6 * horizon, 6.0)
            .with_timeout(2.0)
            .with_retry(3, 0.5, 2.0, 0.5)
    };
    match name {
        "none" => None,
        "crash" | "storm-crash" | "diurnal-crash" => Some(plan.with_crash(0, crash_at)),
        "crash-recover" => Some(plan.with_crash_recover(0, crash_at, 0.08 * horizon)),
        "degraded" => Some(
            plan.with_degrade(0, 0.2 * horizon, 0.6 * horizon, 6.0)
                .with_timeout(2.0),
        ),
        "flash-crowd" => Some(plan.with_surge(0.3 * horizon, 0.1 * horizon, 6.0)),
        "cascade" => Some(cascade(plan)),
        // Warning-only evacuation, short window: long enough to ship
        // the ranked structures, short enough that the victim cannot
        // rebuild what it just shipped before the crash lands. Drain
        // evacuation (`on_drain`) stays off here — a node the control
        // plane retires voluntarily writes nothing off, so moving its
        // structures spends wire money without shrinking the loss this
        // scenario measures.
        "cascade-evacuate" => Some(cascade(plan).with_evacuation(0.01 * horizon, false)),
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Arrival process per scenario: the storm/diurnal rows layer the crash
/// plan on stochastic arrivals; everything else runs the fixed grid.
fn scenario_arrivals(name: &str) -> Option<ArrivalKind> {
    match name {
        "storm-crash" => Some(ArrivalKind::Mmpp {
            calm_gap_secs: INTERVAL_SECS,
            storm_gap_secs: INTERVAL_SECS / 5.0,
            calm_sojourn_secs: 600.0,
            storm_sojourn_secs: 300.0,
        }),
        "diurnal-crash" => Some(ArrivalKind::Diurnal {
            mean_gap_secs: INTERVAL_SECS,
            amplitude: 0.8,
            period_secs: 1_500.0,
            phase: -std::f64::consts::FRAC_PI_2,
        }),
        _ => None,
    }
}

/// The control plane under test: drains idle capacity down to a floor
/// of 2 nodes and — the fault-plane contract — respawns toward that
/// floor at the first review after a crash drops the cell below it.
fn elastic_config(seed_nodes: usize) -> ElasticConfig {
    ElasticConfig {
        review_interval_secs: 5.0,
        ewma_alpha: 0.3,
        scale_up_backlog: 4.0,
        scale_down_backlog: 0.25,
        max_response_secs: 0.0,
        min_nodes: 2,
        max_nodes: seed_nodes,
        cooldown_reviews: 4,
        drain_grace_secs: 60.0,
    }
}

struct Cell {
    scenario: &'static str,
    mode: &'static str,
    sim: FleetSim,
    rep_qps: Vec<f64>,
    result: Option<FleetResult>,
}

impl Cell {
    fn spread(&self) -> bench::RepSpread {
        bench::rep_spread(&self.rep_qps)
    }

    fn result(&self) -> &FleetResult {
        self.result.as_ref().expect("cell ran")
    }
}

fn main() {
    let (sf, queries_per_tenant) = scale_args(50.0, 100, USAGE);
    let tenants: u32 = cli_arg(3, "tenant count", 64, USAGE);
    let nodes: usize = cli_arg(4, "node count", 8, USAGE);
    if tenants == 0 || nodes < 2 {
        cli_usage_error("tenants must be positive and nodes at least 2", USAGE);
    }
    let default_cell = (sf - 50.0).abs() < f64::EPSILON
        && queries_per_tenant == 100
        && tenants == 64
        && nodes == 8;
    // Last scheduled arrival of the fixed-interval stream; fault
    // instants are fractions of this, so they always land in-horizon.
    let horizon = queries_per_tenant as f64 * INTERVAL_SECS;

    let base = |scenario: &str, elastic: bool| -> FleetConfig {
        let mut config = FleetConfig::uniform(tenants, nodes, queries_per_tenant, INTERVAL_SECS);
        config.scale_factor = sf;
        config.cells = 8;
        // The health plane rides every cell: the SLO target is set so
        // the fault-free grid holds its p99 error budget while the
        // degradation scenarios genuinely burn it — the drift-alarm
        // fixture the committed record pins.
        config = config.with_health(INTERVAL_SECS).with_slo(TenantSloSpec {
            p99_target_secs: SLO_P99_TARGET_SECS,
            spend_cap: Some(Money::from_dollars(1.0)),
        });
        if let Some(arrival) = scenario_arrivals(scenario) {
            config = config.with_arrivals(arrival);
        }
        if elastic {
            config = config.with_elastic(elastic_config(nodes));
        }
        if let Some(plan) = scenario_plan(scenario, horizon) {
            config = config.with_faults(plan);
        }
        config
    };

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("================================================================");
    println!(
        "fleet_faults: {tenants} tenants x {nodes} seed nodes, {{static, elastic}} x {{none, crash, crash-recover, degraded, flash-crowd, cascade, cascade-evacuate, storm-crash, diurnal-crash}}"
    );
    println!(
        "(TPC-H SF {sf}, {queries_per_tenant} queries/tenant = {} total, horizon {horizon:.0}s, {parallelism} core(s) available)",
        u64::from(tenants) * queries_per_tenant
    );
    println!("================================================================");

    let scenarios: [&'static str; 9] = [
        "none",
        "crash",
        "crash-recover",
        "degraded",
        "flash-crowd",
        "cascade",
        "cascade-evacuate",
        "storm-crash",
        "diurnal-crash",
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for scenario in scenarios {
        for (mode, elastic) in [("static", false), ("elastic", true)] {
            cells.push(Cell {
                scenario,
                mode,
                sim: FleetSim::new(base(scenario, elastic)),
                rep_qps: Vec::new(),
                result: None,
            });
        }
    }
    let reps = if default_cell { MEASURE_REPS } else { 1 };
    for _rep in 0..reps {
        for cell in &mut cells {
            let started = std::time::Instant::now();
            let run = cell.sim.run();
            let wall = started.elapsed().as_secs_f64();
            cell.rep_qps.push(run.queries as f64 / wall.max(1e-9));
            cell.result = Some(run);
        }
    }

    println!(
        "{:>16} {:>8} {:>10} {:>10} {:>14} {:>12} {:>8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>8} {:>12} {:>7} {:>7} {:>12} {:>10} {:>7} {:>7} {:>7}",
        "scenario",
        "mode",
        "queries/s",
        "q/s min",
        "cost ($)",
        "mean resp",
        "crashes",
        "recov",
        "reconc",
        "timeouts",
        "writeoff",
        "salvaged",
        "transfer",
        "retries",
        "cascades",
        "requeued(s)",
        "spawns",
        "retires",
        "node-secs",
        "worst p99",
        "miss%",
        "capbrk",
        "alarms"
    );
    let mut set = RowSet::new();
    for cell in &cells {
        let r = cell.result();
        let e = r.elastic.as_ref();
        let f = r.faults.as_ref();
        let row = Row::new()
            .str_cell("scenario", cell.scenario, 16, false)
            .str_cell("mode", cell.mode, 8, false)
            .f64_cell("qps", cell.spread().best, 10, 0, 0)
            .f64_cell("qps_min", cell.spread().min, 10, 0, 0)
            .f64_cell(
                "total_cost_usd",
                r.total_operating_cost().as_dollars(),
                14,
                4,
                6,
            )
            .f64_cell("mean_response_s", r.mean_response_secs(), 12, 3, 6)
            .num_cell("crashes", f.map_or(0, |f| f.crashes), 8, false)
            .num_cell("recoveries", f.map_or(0, |f| f.recoveries), 7, false)
            .num_cell("reconciled", f.map_or(0, |f| f.reconciled), 8, false)
            .num_cell("timeouts", f.map_or(0, |f| f.timeouts), 8, false)
            .f64_cell(
                "write_off_usd",
                f.map_or(0.0, |f| f.write_off.as_dollars()),
                8,
                4,
                6,
            )
            .f64_cell(
                "salvaged_usd",
                f.map_or(0.0, |f| f.salvaged.as_dollars()),
                8,
                4,
                6,
            )
            .f64_cell(
                "transfer_usd",
                f.map_or(0.0, |f| f.transfer_spend.as_dollars()),
                8,
                4,
                6,
            )
            .num_cell("retries", f.map_or(0, |f| f.retries), 7, false)
            .num_cell(
                "cascade_crashes",
                f.map_or(0, |f| f.cascade_crashes),
                8,
                false,
            )
            .f64_cell(
                "requeued_secs",
                f.map_or(0.0, |f| f.requeued_secs),
                12,
                3,
                6,
            )
            .num_cell("spawns", e.map_or(0, |e| e.spawns), 7, false)
            .num_cell("retires", e.map_or(0, |e| e.retires), 7, false)
            // Eq. 11's node-seconds for BOTH modes: the crash scenarios
            // shrink the static fleet's uptime too (a dead node stops
            // billing), so the elastic win is measured against the
            // static fleet's own post-crash bill.
            .f64_cell("node_seconds", r.node_seconds, 12, 0, 1)
            // The per-tenant SLO rollup plus the e-process drift-alarm
            // count over the cell's own vitals and ledger.
            .f64_cell(
                "slo_worst_p99_s",
                worst_p99(&r.slo).map_or(0.0, |(_, p99)| p99),
                10,
                3,
                6,
            )
            .pct_cell(
                "slo_miss_rate",
                {
                    let admitted = r.slo.total_admitted();
                    let misses: u64 = r.slo.tenants.iter().map(|t| t.deadline_misses).sum();
                    if admitted == 0 {
                        0.0
                    } else {
                        misses as f64 / admitted as f64
                    }
                },
                6,
                4,
            )
            .num_cell("slo_cap_breaches", spend_cap_breaches(&r.slo), 7, false)
            .num_cell(
                "drift_alarms",
                detect_alarms(
                    r.health.as_ref(),
                    &r.slo,
                    r.horizon_secs,
                    &Baselines::default(),
                )
                .len(),
                7,
                false,
            );
        println!("{}", set.push(row));
    }

    let find = |scenario: &str, mode: &str| -> &Cell {
        cells
            .iter()
            .find(|c| c.scenario == scenario && c.mode == mode)
            .expect("grid cell exists")
    };

    // ── Determinism self-check ──────────────────────────────────────
    // Faults are config: every faulted aggregate — the fault record
    // stream included, via the shared fingerprint — must be a pure
    // function of the config, never of shards, quote-pool size,
    // completion path or the attached flight recorder.
    let mut failed = false;
    let mut traced_registry = MetricsRegistry::new();
    for scenario in &scenarios[1..] {
        let reference = fleet_fingerprint(find(scenario, "elastic").result());
        for (label, shards, quote_threads, batching) in [
            ("shards=4", 4usize, 1usize, true),
            ("pool=4", 1, 4, true),
            ("shards=2,pool=2,per-node", 2, 2, false),
        ] {
            let mut config = base(scenario, true);
            config.shards = shards;
            config.quote_threads = quote_threads;
            config.quote_batching = batching;
            let replay = fleet_fingerprint(&FleetSim::new(config).run());
            if replay != reference {
                failed = true;
                eprintln!("error: {scenario} elastic run drifted under {label}");
            }
        }
        let (traced, trace) = FleetSim::new(base(scenario, true)).run_traced();
        if fleet_fingerprint(&traced) != reference {
            failed = true;
            eprintln!("error: {scenario} elastic run drifted under tracing");
        }
        traced_registry.merge(&trace.registry);
        println!("{scenario}: aggregates + fault records bit-identical across shards/pools/completion/tracing: OK");
    }

    // ── Ledger-replay reconciliation ────────────────────────────────
    // Every recovery anywhere in the grid must rebuild the crashed
    // node's books exactly; the crash-recover cells must actually
    // recover every crash they planned.
    for cell in &cells {
        let Some(f) = cell.result().faults.as_ref() else {
            continue;
        };
        for record in &f.records {
            if let FaultOutcome::Recover(rec) = &record.event {
                if !rec.drift.is_zero() {
                    failed = true;
                    eprintln!(
                        "error: {}/{} cell {}: replay of node {} drifted: {:?}",
                        cell.scenario, cell.mode, record.cell, rec.crashed, rec.drift
                    );
                }
            }
        }
        if cell.scenario == "crash-recover"
            && (f.recoveries != f.crashes || f.reconciled != f.recoveries || f.recoveries == 0)
        {
            failed = true;
            eprintln!(
                "error: {}/{}: {} crashes, {} recoveries, {} reconciled — every crash must recover and reconcile",
                cell.scenario, cell.mode, f.crashes, f.recoveries, f.reconciled
            );
        }
    }
    if !failed {
        println!("ledger-replay reconciliation exact (zero drift) on every recovery: OK");
    }

    // ── The respawn contract ────────────────────────────────────────
    // The crash drops each elastic cell below its population floor; the
    // decision ledger must show the floor rule firing — resilience via
    // the ordinary review loop, not a special path.
    for scenario in ["crash", "crash-recover"] {
        let r = find(scenario, "elastic").result();
        let ledger = r.elastic.as_ref().map(|e| &e.ledger[..]).unwrap_or(&[]);
        let floor_spawns = ledger
            .iter()
            .filter(|l| matches!(l.action, ElasticAction::ScaleUp { .. }))
            .filter(|l| l.rule == "population-floor")
            .count();
        if floor_spawns == 0 {
            failed = true;
            eprintln!("error: {scenario}/elastic ledger records no population-floor respawn");
        } else {
            println!(
                "{scenario}: elastic ledger records {floor_spawns} population-floor respawn(s): OK"
            );
        }
    }

    // ── The economic claim ──────────────────────────────────────────
    // Surviving the crash must not cost extra: the elastic fleet drains
    // idle capacity and *still* respawns after the crash, yet ends up
    // cheaper than the static fleet running its surviving population.
    let st = find("crash", "static").result();
    let el = find("crash", "elastic").result();
    let cheaper = el.total_operating_cost() < st.total_operating_cost();
    println!(
        "crash: elastic-with-respawn cost ${:.4} vs static-with-crash ${:.4} ({})",
        el.total_operating_cost().as_dollars(),
        st.total_operating_cost().as_dollars(),
        if cheaper { "cheaper" } else { "NOT cheaper" },
    );
    if !cheaper {
        failed = true;
        eprintln!("error: elastic-with-respawn must beat static-with-crash on total cost");
    }

    // ── The evacuation claim ────────────────────────────────────────
    // Capital preservation must pay for itself: against the identical
    // cascade, the warning-window evacuation salvages real capital,
    // shrinks the ledgered loss even after charging the full eq. 12
    // wire bill against it, and wins on loss-adjusted total cost
    // (operating + builds + capital destroyed).
    let loss_adjusted = |r: &FleetResult| {
        r.total_operating_cost()
            + r.faults
                .as_ref()
                .map_or(pricing::Money::ZERO, |f| f.write_off)
    };
    let casc = find("cascade", "elastic").result();
    let evac = find("cascade-evacuate", "elastic").result();
    let cf = casc.faults.as_ref().expect("cascade fault summary");
    let ef = evac
        .faults
        .as_ref()
        .expect("cascade-evacuate fault summary");
    if !ef.salvaged.is_positive() || ef.evacuations == 0 {
        failed = true;
        eprintln!(
            "error: cascade-evacuate/elastic salvaged nothing (salvaged={}, evacuations={})",
            ef.salvaged, ef.evacuations
        );
    }
    let salvage_wins = ef.write_off + ef.transfer_spend < cf.write_off;
    println!(
        "cascade: evacuation loss ${:.4} (write-off) + ${:.4} (transfers) vs pure write-off ${:.4} ({})",
        ef.write_off.as_dollars(),
        ef.transfer_spend.as_dollars(),
        cf.write_off.as_dollars(),
        if salvage_wins {
            "salvage beats write-off"
        } else {
            "salvage LOSES to write-off"
        },
    );
    if !salvage_wins {
        failed = true;
        eprintln!("error: evacuation must shrink the ledgered loss net of transfer spend");
    }
    let evac_cheaper = loss_adjusted(evac) < loss_adjusted(casc);
    println!(
        "cascade: elastic-with-evacuation loss-adjusted cost ${:.4} vs elastic-with-write-off ${:.4} ({}; raw ${:.4} vs ${:.4})",
        loss_adjusted(evac).as_dollars(),
        loss_adjusted(casc).as_dollars(),
        if evac_cheaper { "cheaper" } else { "NOT cheaper" },
        evac.total_operating_cost().as_dollars(),
        casc.total_operating_cost().as_dollars(),
    );
    if !evac_cheaper {
        failed = true;
        eprintln!(
            "error: elastic-with-evacuation must beat elastic-with-write-off on loss-adjusted cost"
        );
    }
    // The cascade pair must exercise both new mechanisms somewhere in
    // the grid: the static fleet has survivors for the follow-on roll
    // to infect (the elastic floor of 2 leaves it no fodder — that *is*
    // the resilience story), while the lean elastic fleet's degraded
    // node carries enough backlog to trip the deadline-budgeted retry.
    for scenario in ["cascade", "cascade-evacuate"] {
        let fs = find(scenario, "static")
            .result()
            .faults
            .as_ref()
            .expect("fault summary");
        if fs.cascade_crashes == 0 {
            failed = true;
            eprintln!("error: {scenario}/static recorded no cascade follow-on crashes");
        }
        let fe = find(scenario, "elastic")
            .result()
            .faults
            .as_ref()
            .expect("fault summary");
        if fe.retries == 0 {
            failed = true;
            eprintln!("error: {scenario}/elastic recorded no deadline-budgeted retries");
        }
    }

    // Every scenario serves the full query budget — faults delay and
    // re-route work, they never lose it.
    let budget = u64::from(tenants) * queries_per_tenant;
    for cell in &cells {
        if cell.result().queries != budget {
            failed = true;
            eprintln!(
                "error: {}/{} served {} of {budget} queries",
                cell.scenario,
                cell.mode,
                cell.result().queries
            );
        }
    }

    // ── The drift-alarm fixture ─────────────────────────────────────
    // The e-process detector must discriminate: the fault-free grid
    // stays silent, the 6x degradation burns enough p99 budget to cross
    // the e-value threshold. Gated at the default cell only — reduced
    // scales reshape the response distribution under the fixed target.
    let alarm_count = |scenario: &str, mode: &str| {
        let r = find(scenario, mode).result();
        detect_alarms(
            r.health.as_ref(),
            &r.slo,
            r.horizon_secs,
            &Baselines::default(),
        )
        .len()
    };
    if default_cell {
        for mode in ["static", "elastic"] {
            let spurious = alarm_count("none", mode);
            if spurious != 0 {
                failed = true;
                eprintln!("error: none/{mode} raised {spurious} drift alarm(s) on a healthy run");
            }
        }
        let fired = alarm_count("degraded", "elastic");
        if fired == 0 {
            failed = true;
            eprintln!(
                "error: degraded/elastic raised no drift alarm — the 6x degradation must burn \
                 the p99 budget past the e-value threshold"
            );
        } else {
            println!(
                "drift-alarm fixture: none silent, degraded/elastic raised {fired} alarm(s): OK"
            );
        }
    }

    write_csv("fleet_faults", &set.csv_header(), set.csv_rows());
    if default_cell {
        // Serialize the plans and controller config the run *actually
        // used* so the committed record can never drift from the code.
        let plan_json = |name: &str| {
            serde_json::to_string(&scenario_plan(name, horizon).expect("faulted scenario"))
                .expect("fault plan serializes")
        };
        let elastic_json =
            serde_json::to_string(&elastic_config(nodes)).expect("elastic config serializes");
        let registry_json = serde_json::to_string(&traced_registry).expect("registry serializes");
        let config = format!(
            "{{\"scale_factor\": {sf}, \"queries_per_tenant\": {queries_per_tenant}, \
             \"tenants\": {tenants}, \"nodes\": {nodes}, \"interval_secs\": {INTERVAL_SECS}, \
             \"horizon_secs\": {horizon}, \"router\": \"cheapest-quote\", \
             \"parallelism\": {parallelism}, \
             \"qps_note\": \"best of {reps} interleaved runs per cell; qps_min records the rep spread\", \
             \"registry_note\": \"merged traced-replay registry (8 faulted elastic scenarios)\", \
             \"registry\": {registry_json}, \
             \"elastic\": {elastic_json}, \
             \"arrivals\": {{\"storm-crash\": {}, \"diurnal-crash\": {}}}, \
             \"fault_plans\": {{\"crash\": {}, \"crash-recover\": {}, \"degraded\": {}, \
             \"flash-crowd\": {}, \"cascade\": {}, \"cascade-evacuate\": {}}}}}",
            serde_json::to_string(&scenario_arrivals("storm-crash").expect("mmpp arrivals"))
                .expect("arrival kind serializes"),
            serde_json::to_string(&scenario_arrivals("diurnal-crash").expect("diurnal arrivals"))
                .expect("arrival kind serializes"),
            plan_json("crash"),
            plan_json("crash-recover"),
            plan_json("degraded"),
            plan_json("flash-crowd"),
            plan_json("cascade"),
            plan_json("cascade-evacuate"),
        );
        write_bench_json("fleet_faults", &config, set.json_rows());
    } else {
        println!("(non-default cell: BENCH_fleet_faults.json left untouched)");
    }

    if failed {
        eprintln!("error: fault-plane self-check failed");
        std::process::exit(1);
    }
    println!("fault-plane determinism + recovery contract holds: OK");
}
