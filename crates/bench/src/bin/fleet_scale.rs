//! **Fleet scaling grid** — throughput of the sharded fleet executor.
//!
//! Runs a 100-tenant × 4-node fleet at shard counts {1, 2, 4, 8} and
//! prints simulated queries per wall-clock second for each grid cell,
//! plus the fleet aggregates. Because the executor's merge is
//! shard-count invariant, the cost/response columns must be *identical*
//! down the table — only the throughput column may change. The run exits
//! non-zero if any aggregate deviates.
//!
//! Usage: `cargo run --release -p bench --bin fleet_scale \
//!         [scale_factor] [queries_per_tenant] [tenants] [nodes]`

use bench::{cli_arg, cli_usage_error, write_csv};
use fleet::{FleetConfig, FleetSim};

const SHARD_GRID: [usize; 4] = [1, 2, 4, 8];

const USAGE: &str = "{bin} [scale_factor] [queries_per_tenant] [tenants] [nodes]\n       \
                     defaults: scale_factor 50, queries_per_tenant 100, tenants 100, nodes 4";

fn main() {
    let sf: f64 = cli_arg(1, "scale factor", 50.0, USAGE);
    let queries_per_tenant: u64 = cli_arg(2, "queries per tenant", 100, USAGE);
    let tenants: u32 = cli_arg(3, "tenant count", 100, USAGE);
    let nodes: usize = cli_arg(4, "node count", 4, USAGE);
    if !sf.is_finite() || sf <= 0.0 {
        cli_usage_error(&format!("scale factor must be positive, got {sf}"), USAGE);
    }
    if queries_per_tenant == 0 || tenants == 0 || nodes == 0 {
        cli_usage_error(
            "queries per tenant, tenants and nodes must all be positive",
            USAGE,
        );
    }

    let machine_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("================================================================");
    println!("fleet_scale: {tenants} tenants x {nodes} nodes, shard sweep {SHARD_GRID:?}");
    println!(
        "(TPC-H SF {sf}, {queries_per_tenant} queries/tenant = {} total, cheapest-quote routing, {machine_cores} core(s) available)",
        u64::from(tenants) * queries_per_tenant
    );
    println!("================================================================");
    println!(
        "{:>7} {:>12} {:>14} {:>12} {:>10} {:>8}",
        "shards", "queries/s", "cost ($)", "mean resp", "hit rate", "builds"
    );

    let mut rows = Vec::new();
    let mut reference: Option<(pricing::Money, u64)> = None;
    let mut mean_reference: Option<f64> = None;
    let mut invariant = true;

    for shards in SHARD_GRID {
        let mut config = FleetConfig::uniform(tenants, nodes, queries_per_tenant, 1.0);
        config.scale_factor = sf;
        config.cells = 16;
        config.shards = shards;

        // Time only the executor, not the shared schema/candidate prep.
        let sim = FleetSim::new(config);
        let started = std::time::Instant::now();
        let result = sim.run();
        let wall = started.elapsed().as_secs_f64();
        let throughput = result.queries as f64 / wall.max(1e-9);

        println!(
            "{shards:>7} {throughput:>12.0} {:>14.4} {:>11.3}s {:>9.1}% {:>8}",
            result.total_operating_cost().as_dollars(),
            result.mean_response_secs(),
            result.hit_rate() * 100.0,
            result.investments,
        );
        rows.push(format!(
            "{shards},{throughput:.0},{:.6},{:.6},{:.4},{}",
            result.total_operating_cost().as_dollars(),
            result.mean_response_secs(),
            result.hit_rate(),
            result.investments
        ));

        let cost = result.total_operating_cost();
        let mean = result.mean_response_secs();
        match (&reference, &mean_reference) {
            (None, _) => {
                reference = Some((cost, result.queries));
                mean_reference = Some(mean);
            }
            (Some((ref_cost, ref_queries)), Some(ref_mean)) => {
                if cost != *ref_cost
                    || result.queries != *ref_queries
                    || mean.to_bits() != ref_mean.to_bits()
                {
                    invariant = false;
                }
            }
            _ => unreachable!(),
        }
    }

    write_csv(
        "fleet_scale",
        "shards,queries_per_sec,total_cost_usd,mean_response_s,hit_rate,builds",
        &rows,
    );

    if invariant {
        println!("aggregates identical across shard counts: OK");
    } else {
        eprintln!("error: fleet aggregates varied with shard count");
        std::process::exit(1);
    }
}
