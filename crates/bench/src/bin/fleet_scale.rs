//! **Fleet scaling grid** — throughput of the sharded fleet executor and
//! the batched, pooled cheapest-quote fan-out.
//!
//! Three sweeps over a 100-tenant fleet with cheapest-quote routing:
//!
//! * **shards** {1, 2, 4, 8} at one quote thread — cells execute on
//!   worker threads (the PR 1 lever);
//! * **quote threads** {1, 2, 4, 8} at one shard — each quote round
//!   resolves the query's plan skeleton through the fleet-wide cache and
//!   fans batched per-chunk completions out over a **persistent** worker
//!   pool (this PR's lever; the executor clamps the pool to the
//!   machine's spare parallelism, so the `pool` column records what
//!   actually ran);
//! * **completion cross-check** — the per-node completion reference path
//!   (`quote_batching = false`) at 1 and 8 quote threads;
//! * **pinning cross-check** — 8 quote threads with core pinning forced
//!   on and forced off, regardless of the base setting, so every run
//!   gates on affinity being a pure placement hint and the committed
//!   record shows the pinning win (or documents its absence on hosts
//!   where the executor clamps the pool to one thread);
//! * **health cross-check** — the reference settings with the vitals
//!   scraper (30 s cadence) and per-tenant SLO ledger attached: the
//!   same bitwise gate becomes the snapshot-on/off identity contract,
//!   and the row's q/s against the baseline bounds snapshot overhead.
//!
//! `FLEET_SCALE_PIN=off` (or `on`) overrides the default-on
//! `pin_quote_workers` for every *other* cell — CI runs the grid both
//! ways and diffs nothing, because the in-run invariance check already
//! compares every aggregate bitwise.
//!
//! Every lever is wall-clock-only by construction: every economic
//! aggregate must be *identical* down the whole table, and the run exits
//! non-zero if any cell deviates — the fleet determinism contract across
//! {sequential, pooled} × {batched, per-node} quoting. A traced replay
//! of the reference cell (telemetry flight recorder attached) must
//! match bit-for-bit too: observability is a pure observer.
//!
//! At the default cell the run writes `BENCH_fleet_scale.json`,
//! recording measured queries/second (best of several interleaved runs
//! per cell) next to the committed PR 2 baseline; `bench --bin trend
//! --check` then holds the committed quote-thread sweep to its own
//! 1-thread baseline.
//!
//! Usage: `cargo run --release -p bench --bin fleet_scale \
//!         [scale_factor] [queries_per_tenant] [tenants] [nodes]`

use bench::{
    cli_arg, cli_usage_error, fleet_fingerprint, scale_args, write_bench_json, write_csv, Row,
    RowSet,
};
use fleet::{FleetConfig, FleetResult, FleetSim, TenantSloSpec};
use pricing::Money;

const SHARD_GRID: [usize; 4] = [1, 2, 4, 8];
const QUOTE_THREAD_GRID: [usize; 4] = [1, 2, 4, 8];

/// Queries/second of the default cell (SF 50, 100 tenants × 100 queries,
/// 8 nodes, cheapest-quote, shards = 1) measured at commit 925d16f
/// (PR 2: memoized planning, still one full enumeration per bidding
/// node) with this harness on the reference machine. Only meaningful for
/// the default cell.
const PR2_BASELINE_QPS: f64 = 23_002.0;

const USAGE: &str = "{bin} [scale_factor] [queries_per_tenant] [tenants] [nodes]\n       \
                     defaults: scale_factor 50, queries_per_tenant 100, tenants 100, nodes 8";

/// Measurement repetitions per cell at the record-writing default cell.
/// Reps are interleaved round-robin across the grid (rep 1 of every
/// cell, then rep 2 of every cell, …) so slow machine drift cannot bias
/// one sweep against another, and each cell keeps its best rep. Later
/// reps also re-run against the sim's warmed fleet-wide skeleton cache
/// (the cache admits on the second sighting of a fingerprint), so the
/// kept number reflects steady-state throughput. Reduced-scale runs
/// (CI) only need the bit-identity check, which one rep establishes.
const MEASURE_REPS: usize = 12;

struct Cell {
    sweep: &'static str,
    shards: usize,
    quote_threads: usize,
    pool_threads: usize,
    batching: bool,
    pinning: bool,
    sim: FleetSim,
    /// Measured queries/second of every rep, in run order. The committed
    /// record keeps the best *and* the min/median spread
    /// ([`bench::rep_spread`]), so `trend` can tell machine noise from
    /// real regressions.
    rep_qps: Vec<f64>,
    result: Option<FleetResult>,
}

impl Cell {
    fn spread(&self) -> bench::RepSpread {
        bench::rep_spread(&self.rep_qps)
    }
}

/// Prepares one grid cell (schema/candidate prep excluded from timing).
fn prepare_cell(
    base: &FleetConfig,
    sweep: &'static str,
    shards: usize,
    quote_threads: usize,
    batching: bool,
    pinning: bool,
) -> Cell {
    let mut config = base.clone();
    config.shards = shards;
    config.quote_threads = quote_threads;
    config.quote_batching = batching;
    config.pin_quote_workers = pinning;
    let sim = FleetSim::new(config);
    Cell {
        sweep,
        shards,
        quote_threads,
        // The executor's own clamp, so the reported column cannot drift
        // from what actually runs.
        pool_threads: sim.quote_pool_threads(),
        batching,
        pinning,
        sim,
        rep_qps: Vec::new(),
        result: None,
    }
}

/// Base `pin_quote_workers` for every cell outside the pinning-sweep:
/// `FLEET_SCALE_PIN=off|0` forces it off, `on|1` (and unset) on. CI runs
/// the grid under both so the invariance gate exercises affinity both
/// ways end to end.
fn base_pinning() -> bool {
    match std::env::var("FLEET_SCALE_PIN") {
        Ok(v) if v.eq_ignore_ascii_case("off") || v == "0" => false,
        Ok(v) if v.eq_ignore_ascii_case("on") || v == "1" || v.is_empty() => true,
        Ok(v) => cli_usage_error(
            &format!("FLEET_SCALE_PIN must be on or off, got {v:?}"),
            USAGE,
        ),
        Err(_) => true,
    }
}

fn main() {
    let (sf, queries_per_tenant) = scale_args(50.0, 100, USAGE);
    let tenants: u32 = cli_arg(3, "tenant count", 100, USAGE);
    let nodes: usize = cli_arg(4, "node count", 8, USAGE);
    if tenants == 0 || nodes == 0 {
        cli_usage_error("tenants and nodes must both be positive", USAGE);
    }
    let default_cell = (sf - 50.0).abs() < f64::EPSILON
        && queries_per_tenant == 100
        && tenants == 100
        && nodes == 8;

    let pinning = base_pinning();
    let mut base = FleetConfig::uniform(tenants, nodes, queries_per_tenant, 1.0);
    base.scale_factor = sf;
    base.cells = 16;
    base.pin_quote_workers = pinning;

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("================================================================");
    println!(
        "fleet_scale: {tenants} tenants x {nodes} nodes, shard sweep {SHARD_GRID:?} + quote-thread sweep {QUOTE_THREAD_GRID:?} + completion cross-check"
    );
    println!(
        "(TPC-H SF {sf}, {queries_per_tenant} queries/tenant = {} total, cheapest-quote routing, {parallelism} core(s) available)",
        u64::from(tenants) * queries_per_tenant
    );
    println!("================================================================");
    println!(
        "{:>20} {:>7} {:>9} {:>5} {:>9} {:>8} {:>12} {:>12} {:>12} {:>14} {:>12} {:>8} {:>8}",
        "sweep",
        "shards",
        "qthreads",
        "pool",
        "batching",
        "pinning",
        "queries/s",
        "q/s min",
        "q/s median",
        "cost ($)",
        "mean resp",
        "hit rate",
        "builds"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for shards in SHARD_GRID {
        cells.push(prepare_cell(&base, "shard-sweep", shards, 1, true, pinning));
    }
    // Thread 1 of the quote sweep is the (shards 1, threads 1) cell above.
    for threads in &QUOTE_THREAD_GRID[1..] {
        cells.push(prepare_cell(
            &base,
            "quote-thread-sweep",
            1,
            *threads,
            true,
            pinning,
        ));
    }
    // The per-node completion reference path, sequential and pooled.
    for threads in [1, 8] {
        cells.push(prepare_cell(
            &base,
            "per-node-completion",
            1,
            threads,
            false,
            pinning,
        ));
    }
    // Affinity both ways at the widest pool, whatever the base setting:
    // these two rows put pinning itself under the bitwise invariance
    // gate and record its throughput effect side by side.
    for pin in [true, false] {
        cells.push(prepare_cell(&base, "pinning-sweep", 1, 8, true, pin));
    }
    // Health-sweep: the vitals scraper and SLO ledger attached at the
    // reference settings. The row flows through the same bitwise
    // invariance gate as everything else — which *is* the
    // snapshot-on/off bit-identity contract (`fleet_fingerprint`
    // excludes the health series; the economics may not move) — and its
    // q/s next to the baseline row bounds the snapshot overhead.
    {
        let health_base = base.clone().with_health(30.0).with_slo(TenantSloSpec {
            p99_target_secs: 10.0,
            spend_cap: Some(Money::from_dollars(1.0)),
        });
        cells.push(prepare_cell(
            &health_base,
            "health-sweep",
            1,
            1,
            true,
            pinning,
        ));
    }
    // `FLEET_SCALE_REPS` forces the rep count at any cell — local A/B
    // profiling needs best-of-N at reduced cells too. The record still
    // only refreshes at the default cell.
    let reps = std::env::var("FLEET_SCALE_REPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&r| r > 0)
        .unwrap_or(if default_cell { MEASURE_REPS } else { 1 });
    for _rep in 0..reps {
        for cell in &mut cells {
            let started = std::time::Instant::now();
            let run = cell.sim.run();
            let wall = started.elapsed().as_secs_f64();
            cell.rep_qps.push(run.queries as f64 / wall.max(1e-9));
            cell.result = Some(run);
        }
    }

    let mut set = RowSet::new();
    let mut invariant = true;
    let reference = cells[0].result.clone().expect("reference cell ran");
    let ref_cost = reference.total_operating_cost();
    let ref_mean = reference.mean_response_secs();
    for cell in &cells {
        let r = cell.result.as_ref().expect("cell ran");
        let cost = r.total_operating_cost();
        let mean = r.mean_response_secs();
        let row = Row::new()
            .str_cell("sweep", cell.sweep, 20, false)
            .num_cell("shards", cell.shards, 7, false)
            .num_cell("quote_threads", cell.quote_threads, 9, false)
            .num_cell("pool_threads", cell.pool_threads, 5, false)
            .num_cell("batching", cell.batching, 9, false)
            .num_cell("pinning", cell.pinning, 8, false)
            .f64_cell("qps", cell.spread().best, 12, 0, 0)
            .f64_cell("qps_min", cell.spread().min, 12, 0, 0)
            .f64_cell("qps_median", cell.spread().median, 12, 0, 0)
            .f64_cell("total_cost_usd", cost.as_dollars(), 14, 4, 6)
            .f64_cell("mean_response_s", mean, 12, 3, 6)
            .pct_cell("hit_rate", r.hit_rate(), 7, 4)
            .num_cell("builds", r.investments, 8, false);
        println!("{}", set.push(row));
        if cost != ref_cost
            || r.queries != reference.queries
            || mean.to_bits() != ref_mean.to_bits()
        {
            invariant = false;
            eprintln!(
                "error: aggregates drifted at sweep={} shards={} quote_threads={} batching={} pinning={}",
                cell.sweep, cell.shards, cell.quote_threads, cell.batching, cell.pinning
            );
        }
    }

    // The flight recorder must be a pure observer: a traced replay of
    // the reference cell (every quote round and settlement recorded into
    // a `Recorder` sink plus a metrics registry) must reproduce the
    // no-op-sink aggregates bit-for-bit.
    let traced_registry = {
        let mut config = base.clone();
        config.shards = 1;
        config.quote_threads = 1;
        config.quote_batching = true;
        let (traced, trace) = FleetSim::new(config).run_traced();
        if fleet_fingerprint(&traced) != fleet_fingerprint(&reference) {
            invariant = false;
            eprintln!("error: reference run drifted under tracing");
        } else {
            println!("traced replay bit-identical to the no-op-sink reference: OK");
        }
        trace.registry
    };

    // The regression this PR fixes must stay fixed: pooled q/s at 2+
    // threads may not fall below the 1-thread baseline. Reported here
    // (reduced-scale CI runs are too noisy to gate on), enforced on the
    // committed record by `trend --check`.
    let baseline_qps = cells[0].spread().best;
    for cell in cells.iter().filter(|c| c.sweep == "quote-thread-sweep") {
        let qps = cell.spread().best;
        if qps < baseline_qps {
            println!(
                "note: quote_threads={} measured {qps:.0} q/s below the 1-thread baseline {baseline_qps:.0} ({:+.1}%)",
                cell.quote_threads,
                (qps - baseline_qps) / baseline_qps * 100.0
            );
        }
    }

    // Snapshot overhead: the health-sweep row against the identical
    // baseline cell. Reported at every scale; the committed record is
    // what `trend --check` holds to the tolerance.
    if let Some(health_cell) = cells.iter().find(|c| c.sweep == "health-sweep") {
        let qps = health_cell.spread().best;
        println!(
            "health-sweep: {qps:.0} q/s with 30s vitals cadence vs {baseline_qps:.0} baseline ({:+.1}%)",
            (qps - baseline_qps) / baseline_qps * 100.0
        );
    }

    write_csv("fleet_scale", &set.csv_header(), set.csv_rows());
    // Only the default acceptance cell refreshes the committed record;
    // reduced-scale runs (CI) must not clobber it.
    if default_cell {
        // The traced replay's metrics-registry snapshot plus the
        // fleet-wide skeleton cache's counters (summed over the baseline
        // cell's reps) — committed so admission-filter tuning has
        // recorded hit/admission rates to work from. The skeleton
        // counters live *outside* the shard-invariance contract:
        // concurrent cells race probes against the shared cache, so the
        // hit/miss split is wall-clock-dependent even though every
        // economic aggregate is not.
        let mut snapshot = traced_registry;
        let skel = cells[0].sim.skeleton_cache_counters();
        snapshot.counter_add("skeleton_cache.hits", skel.hits);
        snapshot.counter_add("skeleton_cache.misses", skel.misses);
        snapshot.counter_add("skeleton_cache.admissions", skel.admissions);
        let registry_json = serde_json::to_string(&snapshot).expect("registry serializes");
        let config = format!(
            "{{\"scale_factor\": {sf}, \"queries_per_tenant\": {queries_per_tenant}, \
             \"tenants\": {tenants}, \"nodes\": {nodes}, \"router\": \"cheapest-quote\", \
             \"parallelism\": {parallelism}, \
             \"qps_note\": \"best of {reps} interleaved runs per cell; qps_min/qps_median record the rep spread\", \
             \"registry_note\": \"traced-replay registry of the reference cell + fleet-global skeleton_cache.* counters (wall-clock-dependent, excluded from the invariance contract)\", \
             \"pinning_note\": \"pinning-sweep rows measure affinity on vs off at 8 quote threads; pool.pinned_workers in the registry records how many pins actually took — 0 on hosts where the executor clamps the pool to one thread (no spare parallelism), in which case the rows document the absence of a pinning effect rather than a win\", \
             \"health_note\": \"the health-sweep row runs the reference settings with a 30s vitals cadence and per-tenant SLO ledger attached; its cost/queries/mean must be bit-identical to the baseline row (the snapshot-on/off identity gate) and its q/s bounds the snapshot overhead\", \
             \"registry\": {registry_json}, \
             \"pr2_baseline_qps\": {PR2_BASELINE_QPS:.0}, \"speedup_vs_pr2\": {:.2}, \
             \"baseline_note\": \"pr2_baseline_qps: commit 925d16f (one full enumeration per \
             bidding node) at this cell, shards 1, quote_threads 1\"}}",
            baseline_qps / PR2_BASELINE_QPS
        );
        write_bench_json("fleet_scale", &config, set.json_rows());
    } else {
        println!("(non-default cell: BENCH_fleet_scale.json left untouched)");
    }

    if invariant {
        println!(
            "aggregates identical across shard counts, quote-thread counts, completion paths and pinning: OK"
        );
    } else {
        eprintln!("error: fleet aggregates varied with a wall-clock-only knob");
        std::process::exit(1);
    }
}
