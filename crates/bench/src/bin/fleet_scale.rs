//! **Fleet scaling grid** — throughput of the sharded fleet executor and
//! the parallel cheapest-quote fan-out.
//!
//! Two sweeps over a 100-tenant fleet with cheapest-quote routing:
//!
//! * **shards** {1, 2, 4, 8} at one quote thread — cells execute on
//!   worker threads (the PR 1 lever);
//! * **quote threads** {1, 2, 4, 8} at one shard — each quote round
//!   builds the query's plan skeleton once and fans the per-node
//!   completions out over a scoped worker pool (this PR's lever).
//!
//! Both levers are wall-clock-only by construction: every economic
//! aggregate must be *identical* down the whole table, and the run exits
//! non-zero if any cell deviates — the fleet determinism contract.
//!
//! At the default cell the run writes `BENCH_fleet_scale.json`, recording
//! the measured queries/second next to the committed PR 2 baseline (the
//! same cell before plan-skeleton sharing), so each PR's quote-round
//! throughput trajectory is tracked.
//!
//! Usage: `cargo run --release -p bench --bin fleet_scale \
//!         [scale_factor] [queries_per_tenant] [tenants] [nodes]`

use bench::{cli_arg, cli_usage_error, scale_args, write_bench_json, write_csv};
use fleet::{FleetConfig, FleetResult, FleetSim};

const SHARD_GRID: [usize; 4] = [1, 2, 4, 8];
const QUOTE_THREAD_GRID: [usize; 4] = [1, 2, 4, 8];

/// Queries/second of the default cell (SF 50, 100 tenants × 100 queries,
/// 8 nodes, cheapest-quote, shards = 1) measured at commit 925d16f
/// (PR 2: memoized planning, still one full enumeration per bidding
/// node) with this harness on the reference machine. Only meaningful for
/// the default cell.
const PR2_BASELINE_QPS: f64 = 23_002.0;

const USAGE: &str = "{bin} [scale_factor] [queries_per_tenant] [tenants] [nodes]\n       \
                     defaults: scale_factor 50, queries_per_tenant 100, tenants 100, nodes 8";

struct Cell {
    label: &'static str,
    shards: usize,
    quote_threads: usize,
    qps: f64,
    result: FleetResult,
}

fn run_cell(base: &FleetConfig, label: &'static str, shards: usize, quote_threads: usize) -> Cell {
    let mut config = base.clone();
    config.shards = shards;
    config.quote_threads = quote_threads;
    // Time only the executor, not the shared schema/candidate prep.
    let sim = FleetSim::new(config);
    let started = std::time::Instant::now();
    let result = sim.run();
    let wall = started.elapsed().as_secs_f64();
    Cell {
        label,
        shards,
        quote_threads,
        qps: result.queries as f64 / wall.max(1e-9),
        result,
    }
}

fn main() {
    let (sf, queries_per_tenant) = scale_args(50.0, 100, USAGE);
    let tenants: u32 = cli_arg(3, "tenant count", 100, USAGE);
    let nodes: usize = cli_arg(4, "node count", 8, USAGE);
    if tenants == 0 || nodes == 0 {
        cli_usage_error("tenants and nodes must both be positive", USAGE);
    }
    let default_cell = (sf - 50.0).abs() < f64::EPSILON
        && queries_per_tenant == 100
        && tenants == 100
        && nodes == 8;

    let mut base = FleetConfig::uniform(tenants, nodes, queries_per_tenant, 1.0);
    base.scale_factor = sf;
    base.cells = 16;

    let machine_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("================================================================");
    println!(
        "fleet_scale: {tenants} tenants x {nodes} nodes, shard sweep {SHARD_GRID:?} + quote-thread sweep {QUOTE_THREAD_GRID:?}"
    );
    println!(
        "(TPC-H SF {sf}, {queries_per_tenant} queries/tenant = {} total, cheapest-quote routing, {machine_cores} core(s) available)",
        u64::from(tenants) * queries_per_tenant
    );
    println!("================================================================");
    println!(
        "{:>7} {:>9} {:>12} {:>14} {:>12} {:>10} {:>8}",
        "shards", "qthreads", "queries/s", "cost ($)", "mean resp", "hit rate", "builds"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for shards in SHARD_GRID {
        cells.push(run_cell(&base, "shard-sweep", shards, 1));
    }
    // Thread 1 of the quote sweep is the (shards 1, threads 1) cell above.
    for threads in &QUOTE_THREAD_GRID[1..] {
        cells.push(run_cell(&base, "quote-thread-sweep", 1, *threads));
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut invariant = true;
    let reference = &cells[0].result;
    let ref_cost = reference.total_operating_cost();
    let ref_mean = reference.mean_response_secs();
    for cell in &cells {
        let r = &cell.result;
        let cost = r.total_operating_cost();
        let mean = r.mean_response_secs();
        println!(
            "{:>7} {:>9} {:>12.0} {:>14.4} {:>11.3}s {:>9.1}% {:>8}",
            cell.shards,
            cell.quote_threads,
            cell.qps,
            cost.as_dollars(),
            mean,
            r.hit_rate() * 100.0,
            r.investments,
        );
        rows.push(format!(
            "{},{},{:.0},{:.6},{:.6},{:.4},{}",
            cell.shards,
            cell.quote_threads,
            cell.qps,
            cost.as_dollars(),
            mean,
            r.hit_rate(),
            r.investments
        ));
        let baseline = if default_cell && cell.shards == 1 && cell.quote_threads == 1 {
            format!(
                ", \"pr2_baseline_qps\": {PR2_BASELINE_QPS:.0}, \"speedup_vs_pr2\": {:.2}",
                cell.qps / PR2_BASELINE_QPS
            )
        } else {
            String::new()
        };
        json_rows.push(format!(
            "  {{\"sweep\": \"{}\", \"shards\": {}, \"quote_threads\": {}, \"qps\": {:.0}, \
             \"total_cost_usd\": {:.6}, \"mean_response_s\": {:.6}, \"hit_rate\": {:.4}, \
             \"builds\": {}{baseline}}}",
            cell.label,
            cell.shards,
            cell.quote_threads,
            cell.qps,
            cost.as_dollars(),
            mean,
            r.hit_rate(),
            r.investments,
        ));
        if cost != ref_cost
            || r.queries != reference.queries
            || mean.to_bits() != ref_mean.to_bits()
        {
            invariant = false;
            eprintln!(
                "error: aggregates drifted at shards={} quote_threads={}",
                cell.shards, cell.quote_threads
            );
        }
    }

    write_csv(
        "fleet_scale",
        "shards,quote_threads,queries_per_sec,total_cost_usd,mean_response_s,hit_rate,builds",
        &rows,
    );
    // Only the default acceptance cell refreshes the committed record;
    // reduced-scale runs (CI) must not clobber it.
    if default_cell {
        let config = format!(
            "{{\"scale_factor\": {sf}, \"queries_per_tenant\": {queries_per_tenant}, \
             \"tenants\": {tenants}, \"nodes\": {nodes}, \"router\": \"cheapest-quote\", \
             \"baseline_note\": \"pr2_baseline_qps: commit 925d16f (one full enumeration per \
             bidding node) at this cell, shards 1, quote_threads 1\"}}"
        );
        write_bench_json("fleet_scale", &config, &json_rows);
    } else {
        println!("(non-default cell: BENCH_fleet_scale.json left untouched)");
    }

    if invariant {
        println!("aggregates identical across shard counts and quote-thread counts: OK");
    } else {
        eprintln!("error: fleet aggregates varied with a wall-clock-only knob");
        std::process::exit(1);
    }
}
