//! Calibration probe at paper scale (not a shipped figure).

use econ::{EconConfig, EconomyManager};
use planner::{generate_candidates, CostParams, Estimator, PlannerContext};
use pricing::PriceCatalog;
use simcore::{NetworkModel, SimTime};
use std::sync::Arc;
use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500.0);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let gap: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let variant = std::env::args().nth(4).unwrap_or_else(|| "col".into());

    let schema = Arc::new(catalog::tpch::tpch_schema(catalog::tpch::ScaleFactor(sf)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let cand_index = planner::CandidateIndex::build(&schema, &candidates);
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };
    let mut gen = WorkloadGenerator::new(
        Arc::clone(&schema),
        WorkloadConfig::default(),
        0x57A7_1571C5 ^ 0xC10D_CA5E,
    );

    let base = EconConfig::default();
    let cfg = match variant.as_str() {
        "cheap" => EconConfig {
            allow_indexes: true,
            allow_extra_nodes: true,
            ..base
        },
        "fast" => EconConfig {
            objective: econ::SelectionObjective::Fastest,
            allow_indexes: true,
            allow_extra_nodes: true,
            ..base
        },
        _ => EconConfig {
            allow_indexes: false,
            allow_extra_nodes: false,
            ..base
        },
    };
    let mut m = EconomyManager::new(cfg);
    let mut hits = 0u64;
    let mut builds = 0u64;
    for i in 0..n {
        let q = gen.next_query();
        let o = m.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64 * gap));
        if o.ran_in_cache {
            hits += 1;
        }
        builds += o.investments.len() as u64;
        if i % (n / 10).max(1) == 0 {
            let bal = m.account().balance();
            let thr = m.config().investment.threshold(bal);
            let top = m.regret().over_threshold(pricing::Money::from_nanos(1));
            let top3: Vec<String> = top
                .iter()
                .take(3)
                .map(|(k, r)| format!("{k}=${:.3}", r.as_dollars()))
                .collect();
            println!("q{i}: bal ${:.2} thr ${:.3} pool {} builds {builds} hits {hits} cached {} disk {:.0}GB top {:?}",
                bal.as_dollars(), thr.as_dollars(), m.regret().len(), m.cache().len(),
                m.cache().disk_used() as f64 / 1e9, top3);
        }
    }
    println!(
        "final: builds {builds} hits {hits} ({:.1}%)",
        hits as f64 / n as f64 * 100.0
    );
}
