//! **Figure 5** — "Comparison of average response time for caching schemes".
//!
//! Regenerates the paper's response-time bars: mean query response time
//! (seconds) for each scheme at inter-arrival intervals of 1 / 10 / 30 /
//! 60 seconds, plus median/p99 context the paper aggregates away.
//!
//! Usage: `cargo run --release -p bench --bin fig5_response_time [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, grid_csv_rows, grid_json_rows, print_header, run_paper_grid,
    write_csv, write_figure_bench_json,
};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Figure 5",
        "mean response time (s) per caching scheme vs query inter-arrival time",
        sf,
        n,
    );
    let started = std::time::Instant::now();
    let grid = run_paper_grid(sf, n);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "interval", "bypass", "econ-col", "econ-cheap", "econ-fast"
    );
    for (interval, results) in &grid {
        print!("{:<14}", format!("{interval}s"));
        for r in results {
            print!(" {:>12.3}", r.mean_response_secs());
        }
        println!();
    }
    println!();
    println!("detail (median / p99 / cache-hit rate):");
    for (interval, results) in &grid {
        for r in results {
            println!(
                "  {interval:>4}s {:<11} mean {:>7.3}s  p50 {:>7.3}s  p99 {:>8.3}s  hits {:>5.1}%",
                r.scheme,
                r.mean_response_secs(),
                r.response_hist.quantile(0.5).unwrap_or(0.0),
                r.response_hist.quantile(0.99).unwrap_or(0.0),
                r.hit_rate() * 100.0
            );
        }
    }
    let rows = grid_csv_rows(&grid, |r| {
        format!(
            "{:.4},{:.4},{:.4},{:.4}",
            r.mean_response_secs(),
            r.response_hist.quantile(0.5).unwrap_or(0.0),
            r.response_hist.quantile(0.99).unwrap_or(0.0),
            r.hit_rate()
        )
    });
    write_csv(
        "fig5_response_time",
        "interval_s,scheme,mean_response_s,p50_s,p99_s,hit_rate",
        &rows,
    );
    let cells = grid_json_rows(&grid, |r| {
        format!(
            "\"mean_response_s\": {:.4}, \"p50_s\": {:.4}, \"p99_s\": {:.4}, \"hit_rate\": {:.4}",
            r.mean_response_secs(),
            r.response_hist.quantile(0.5).unwrap_or(0.0),
            r.response_hist.quantile(0.99).unwrap_or(0.0),
            r.hit_rate()
        )
    });
    let total = grid.iter().map(|(_, rs)| rs.len() as u64 * n).sum::<u64>();
    write_figure_bench_json(
        "fig5_response_time",
        sf,
        n,
        &bench_config_json(sf, n, total, wall),
        &cells,
    );
}
