//! **Elastic fleet grid** — the economy-driven control plane
//! (`fleet::elastic`) against the fixed-population baseline, across
//! arrival scenarios with something to react to.
//!
//! Sweeps {static, elastic} × {steady, bursty, diurnal}:
//!
//! * **steady** — the paper's fixed-interval arrivals; elasticity should
//!   shed the idle replicas cheapest-quote routing never warms and hold;
//! * **bursty** — per-tenant 2-state MMPP storms
//!   ([`workload::MarkovModulated`]); the controller rides the backlog
//!   EWMA up through storms and drains idle nodes through calms;
//! * **diurnal** — sinusoidally modulated arrivals
//!   ([`workload::DiurnalSinusoid`]), phase-aligned across tenants: the
//!   fleet breathes with the day/night cycle.
//!
//! The claim the committed record pins: on the bursty and diurnal
//! workloads the elastic fleet **beats the static fleet on total
//! operating cost at equal-or-better mean response time** — eq. 11's
//! node-seconds are the cost lever, and the simulated response times
//! cannot be bought back by idle capacity.
//!
//! **Determinism self-check** (always on, any scale): each scenario's
//! elastic run is replayed at more executor shards, larger quote pools,
//! the per-node completion path **and with the telemetry flight
//! recorder attached** ([`FleetSim::run_traced`]); the decision ledger
//! and every economic aggregate must be **bit-identical** to the
//! reference run, and the process exits non-zero on any drift —
//! neither elasticity nor observability may cost the fleet its
//! invariance contract.
//!
//! Every cell runs with the health plane attached — a uniform
//! observational SLO contract (10 s p99 target, $1 spend cap) and a 60 s
//! vitals cadence — and the committed rows carry the per-tenant SLO
//! rollup: worst-tenant p99, fleet deadline-miss rate, and spend-cap
//! breach count.
//!
//! At the default cell the run writes `BENCH_fleet_elastic.json`
//! (best-of-reps q/s plus min/median spreads per cell, the merged
//! traced-replay metrics registry and the fleet-wide skeleton-cache
//! counters).
//!
//! Usage: `cargo run --release -p bench --bin fleet_elastic \
//!         [scale_factor] [queries_per_tenant] [tenants] [nodes]`

use bench::{
    cli_arg, cli_usage_error, fleet_fingerprint, scale_args, write_bench_json, write_csv, Row,
    RowSet,
};
use fleet::{
    spend_cap_breaches, worst_p99, ElasticConfig, FleetConfig, FleetResult, FleetSim, TenantSloSpec,
};
use pricing::Money;
use simulator::ArrivalKind;
use telemetry::MetricsRegistry;

const USAGE: &str = "{bin} [scale_factor] [queries_per_tenant] [tenants] [nodes]\n       \
                     defaults: scale_factor 50, queries_per_tenant 100, tenants 100, nodes 8";

/// Measurement repetitions per cell at the record-writing default cell
/// (interleaved round-robin; each cell keeps best + min/median spread).
const MEASURE_REPS: usize = 5;

/// The three arrival scenarios. Gaps are sized so the seed fleet is
/// genuinely *underloaded* in calm phases (drainable idle capacity —
/// at SF 50 a query's mean response is ~1.8 s, so a cell stays stable
/// on one node below ~0.5 q/s) and pressed during storms/peaks
/// (diverging backlog for the controller to react to). Storm/peak
/// phases outlast eq. 10's 60 s node boot so a scale-up can still pay.
fn scenario_arrival(name: &str) -> ArrivalKind {
    match name {
        "steady" => ArrivalKind::Fixed {
            interval_secs: 15.0,
        },
        "bursty" => ArrivalKind::Mmpp {
            calm_gap_secs: 25.0,
            storm_gap_secs: 1.0,
            calm_sojourn_secs: 400.0,
            storm_sojourn_secs: 60.0,
        },
        "diurnal" => ArrivalKind::Diurnal {
            mean_gap_secs: 20.0,
            amplitude: 0.9,
            period_secs: 400.0,
            phase: -std::f64::consts::FRAC_PI_2,
        },
        other => unreachable!("unknown scenario {other}"),
    }
}

/// The control plane the grid runs: reviews every 5 simulated seconds,
/// smoothed over ~3 reviews, scales up under a mean backlog above 4 s
/// per routable node and drains below 0.5 s. Growth is capped at the
/// seed population, so the elastic fleet's instantaneous burn rate
/// never exceeds the static baseline it is compared against — the win
/// must come from draining idle capacity, not from refusing to grow.
fn elastic_config(seed_nodes: usize) -> ElasticConfig {
    ElasticConfig {
        review_interval_secs: 5.0,
        ewma_alpha: 0.3,
        scale_up_backlog: 4.0,
        scale_down_backlog: 0.25,
        max_response_secs: 0.0,
        min_nodes: 1,
        max_nodes: seed_nodes,
        cooldown_reviews: 4,
        drain_grace_secs: 60.0,
    }
}

struct Cell {
    scenario: &'static str,
    mode: &'static str,
    sim: FleetSim,
    rep_qps: Vec<f64>,
    result: Option<FleetResult>,
}

impl Cell {
    fn spread(&self) -> bench::RepSpread {
        bench::rep_spread(&self.rep_qps)
    }
}

fn main() {
    let (sf, queries_per_tenant) = scale_args(50.0, 100, USAGE);
    let tenants: u32 = cli_arg(3, "tenant count", 100, USAGE);
    let nodes: usize = cli_arg(4, "node count", 8, USAGE);
    if tenants == 0 || nodes == 0 {
        cli_usage_error("tenants and nodes must both be positive", USAGE);
    }
    let default_cell = (sf - 50.0).abs() < f64::EPSILON
        && queries_per_tenant == 100
        && tenants == 100
        && nodes == 8;

    let base = |scenario: &str, elastic: bool| -> FleetConfig {
        let mut config = FleetConfig::uniform(tenants, nodes, queries_per_tenant, 1.0)
            .with_arrivals(scenario_arrival(scenario));
        config.scale_factor = sf;
        config.cells = 16;
        // The health plane rides every cell: a uniform observational SLO
        // contract (the ledger is always on; the spec only marks the
        // targets) and a 60 s vitals cadence. The invariance replays
        // below therefore double as the snapshot-on determinism gate.
        config = config.with_health(60.0).with_slo(TenantSloSpec {
            p99_target_secs: 10.0,
            spend_cap: Some(Money::from_dollars(1.0)),
        });
        if elastic {
            config = config.with_elastic(elastic_config(nodes));
        }
        config
    };

    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("================================================================");
    println!(
        "fleet_elastic: {tenants} tenants x {nodes} seed nodes, {{static, elastic}} x {{steady, bursty, diurnal}}"
    );
    println!(
        "(TPC-H SF {sf}, {queries_per_tenant} queries/tenant = {} total, cheapest-quote routing, {parallelism} core(s) available)",
        u64::from(tenants) * queries_per_tenant
    );
    println!("================================================================");

    let scenarios: [&'static str; 3] = ["steady", "bursty", "diurnal"];
    let mut cells: Vec<Cell> = Vec::new();
    for scenario in scenarios {
        for (mode, elastic) in [("static", false), ("elastic", true)] {
            cells.push(Cell {
                scenario,
                mode,
                sim: FleetSim::new(base(scenario, elastic)),
                rep_qps: Vec::new(),
                result: None,
            });
        }
    }
    let reps = if default_cell { MEASURE_REPS } else { 1 };
    for _rep in 0..reps {
        for cell in &mut cells {
            let started = std::time::Instant::now();
            let run = cell.sim.run();
            let wall = started.elapsed().as_secs_f64();
            cell.rep_qps.push(run.queries as f64 / wall.max(1e-9));
            cell.result = Some(run);
        }
    }

    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>14} {:>12} {:>12} {:>8} {:>8} {:>7} {:>7} {:>6} {:>12} {:>7} {:>10} {:>7} {:>7}",
        "scenario",
        "mode",
        "queries/s",
        "q/s min",
        "q/s med",
        "cost ($)",
        "mean resp",
        "p99 resp",
        "hit rate",
        "builds",
        "spawns",
        "retires",
        "peak",
        "node-secs",
        "ledger",
        "worst p99",
        "miss%",
        "capbrk"
    );
    let mut set = RowSet::new();
    for cell in &cells {
        let r = cell.result.as_ref().expect("cell ran");
        let e = r.elastic.as_ref();
        let row = Row::new()
            .str_cell("scenario", cell.scenario, 8, false)
            .str_cell("mode", cell.mode, 8, false)
            .f64_cell("qps", cell.spread().best, 10, 0, 0)
            .f64_cell("qps_min", cell.spread().min, 10, 0, 0)
            .f64_cell("qps_median", cell.spread().median, 10, 0, 0)
            .f64_cell(
                "total_cost_usd",
                r.total_operating_cost().as_dollars(),
                14,
                4,
                6,
            )
            .f64_cell("mean_response_s", r.mean_response_secs(), 12, 3, 6)
            .f64_cell(
                "p99_response_s",
                r.response_hist.p99().unwrap_or(0.0),
                12,
                3,
                6,
            )
            .pct_cell("hit_rate", r.hit_rate(), 7, 4)
            .num_cell("builds", r.investments, 8, false)
            .num_cell("spawns", e.map_or(0, |e| e.spawns), 7, false)
            .num_cell("retires", e.map_or(0, |e| e.retires), 7, false)
            .num_cell("peak_nodes", e.map_or(nodes, |e| e.peak_nodes), 6, false)
            // The eq. 11 quantity, recorded for BOTH modes — the static
            // fleet's full-population uptime is exactly what elasticity
            // is measured against.
            .f64_cell("node_seconds", r.node_seconds, 12, 0, 1)
            .num_cell("ledger_entries", e.map_or(0, |e| e.ledger.len()), 7, false)
            // The per-tenant SLO rollup: the worst tenant's measured
            // p99, the fleet-wide deadline-miss rate against the 10 s
            // target, and how many tenants blew their spend cap.
            .f64_cell(
                "slo_worst_p99_s",
                worst_p99(&r.slo).map_or(0.0, |(_, p99)| p99),
                10,
                3,
                6,
            )
            .pct_cell(
                "slo_miss_rate",
                {
                    let admitted = r.slo.total_admitted();
                    let misses: u64 = r.slo.tenants.iter().map(|t| t.deadline_misses).sum();
                    if admitted == 0 {
                        0.0
                    } else {
                        misses as f64 / admitted as f64
                    }
                },
                6,
                4,
            )
            .num_cell("slo_cap_breaches", spend_cap_breaches(&r.slo), 7, false);
        println!("{}", set.push(row));
    }

    // ── Determinism self-check ──────────────────────────────────────
    // Elasticity must preserve the fleet's invariance contract: the
    // decision ledger and every aggregate are a pure function of the
    // config, not of shards, quote-pool size or completion path.
    let mut invariant = true;
    let mut traced_registry = MetricsRegistry::new();
    for scenario in scenarios {
        let reference = fleet_fingerprint(
            cells
                .iter()
                .find(|c| c.scenario == scenario && c.mode == "elastic")
                .and_then(|c| c.result.as_ref())
                .expect("elastic cell ran"),
        );
        for (label, shards, quote_threads, batching) in [
            ("shards=4", 4usize, 1usize, true),
            ("pool=4", 1, 4, true),
            ("pool=8,per-node", 1, 8, false),
        ] {
            let mut config = base(scenario, true);
            config.shards = shards;
            config.quote_threads = quote_threads;
            config.quote_batching = batching;
            let replay = fleet_fingerprint(&FleetSim::new(config).run());
            if replay != reference {
                invariant = false;
                eprintln!("error: {scenario} elastic run drifted under {label}");
            }
        }
        // The flight recorder must be a pure observer: a traced replay
        // (every quote round, settlement and lifecycle decision
        // recorded) produces the same fingerprint as the no-op-sink run.
        let (traced, trace) = FleetSim::new(base(scenario, true)).run_traced();
        if fleet_fingerprint(&traced) != reference {
            invariant = false;
            eprintln!("error: {scenario} elastic run drifted under tracing");
        }
        traced_registry.merge(&trace.registry);
        println!(
            "{scenario}: ledger + aggregates bit-identical across shards/pools/completion/tracing: OK"
        );
    }

    // ── The economic claim ──────────────────────────────────────────
    let pair = |scenario: &str| {
        let get = |mode: &str| {
            cells
                .iter()
                .find(|c| c.scenario == scenario && c.mode == mode)
                .and_then(|c| c.result.as_ref())
                .expect("cell ran")
        };
        (get("static"), get("elastic"))
    };
    let mut claim_holds = true;
    for scenario in ["bursty", "diurnal"] {
        let (st, el) = pair(scenario);
        let cheaper = el.total_operating_cost() < st.total_operating_cost();
        let responsive = el.mean_response_secs() <= st.mean_response_secs() * (1.0 + 1e-9);
        println!(
            "{scenario}: elastic cost ${:.4} vs static ${:.4} ({}), mean resp {:.3}s vs {:.3}s ({})",
            el.total_operating_cost().as_dollars(),
            st.total_operating_cost().as_dollars(),
            if cheaper { "cheaper" } else { "NOT cheaper" },
            el.mean_response_secs(),
            st.mean_response_secs(),
            if responsive { "equal-or-better" } else { "WORSE" },
        );
        claim_holds &= cheaper && responsive;
    }

    write_csv("fleet_elastic", &set.csv_header(), set.csv_rows());
    if default_cell {
        // Serialize the controller config the run *actually used* so the
        // committed record can never drift from the code.
        let ec = elastic_config(nodes);
        let elastic_json = serde_json::to_string(&ec).expect("elastic config serializes");
        // The merged metrics-registry snapshot of the three traced
        // elastic replays, plus the fleet-wide skeleton cache's counters
        // (parity with fleet_scale). The skeleton counters are summed
        // over every cell's sim and live *outside* the shard-invariance
        // contract: concurrent cells race probes against the shared
        // cache, so hit/miss splits depend on timing even though every
        // economic aggregate does not.
        let mut snapshot = traced_registry.clone();
        for cell in &cells {
            let skel = cell.sim.skeleton_cache_counters();
            snapshot.counter_add("skeleton_cache.hits", skel.hits);
            snapshot.counter_add("skeleton_cache.misses", skel.misses);
            snapshot.counter_add("skeleton_cache.admissions", skel.admissions);
        }
        let registry_json = serde_json::to_string(&snapshot).expect("registry serializes");
        let config = format!(
            "{{\"scale_factor\": {sf}, \"queries_per_tenant\": {queries_per_tenant}, \
             \"tenants\": {tenants}, \"nodes\": {nodes}, \"router\": \"cheapest-quote\", \
             \"parallelism\": {parallelism}, \
             \"qps_note\": \"best of {reps} interleaved runs per cell; qps_min/qps_median record the rep spread\", \
             \"registry_note\": \"merged traced-replay registry (3 elastic scenarios) + fleet-global skeleton_cache.* counters (wall-clock-dependent, excluded from the invariance contract)\", \
             \"registry\": {registry_json}, \
             \"elastic\": {elastic_json}}}"
        );
        write_bench_json("fleet_elastic", &config, set.json_rows());
        if !claim_holds {
            eprintln!("error: elastic must beat static on cost at equal-or-better response (bursty + diurnal)");
            std::process::exit(1);
        }
    } else {
        println!("(non-default cell: BENCH_fleet_elastic.json left untouched)");
        if !claim_holds {
            println!("note: economic claim not gated at reduced scale");
        }
    }

    if invariant {
        println!("elastic determinism contract holds: OK");
    } else {
        eprintln!("error: elastic ledger/aggregates varied with a wall-clock-only knob");
        std::process::exit(1);
    }
}
