//! **Ablation 2** — the amortisation horizon `n` of eq. 7.
//!
//! The paper defers "selecting n" to future work. This sweep compares
//! fixed horizons against the adaptive policy (n = expected queries in a
//! 30-day window) at the moderate 10 s point. Small fixed `n` makes the
//! `Build/n` installments swamp per-query prices and freezes investment —
//! the failure mode that motivated the adaptive default.
//!
//! Usage: `cargo run --release -p bench --bin fig7_ablation_amortization [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, print_header, run_cells, write_csv, write_figure_bench_json, Row,
    RowSet,
};
use econ::AmortizationPolicy;
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 2 (amortisation horizon n, eq. 7)",
        "econ-cheap at 10 s inter-arrival",
        sf,
        n,
    );
    let policies: Vec<(&str, AmortizationPolicy)> = vec![
        ("fixed-1k", AmortizationPolicy::Fixed(1_000)),
        ("fixed-10k", AmortizationPolicy::Fixed(10_000)),
        ("fixed-100k", AmortizationPolicy::Fixed(100_000)),
        (
            "adaptive-30d",
            AmortizationPolicy::Adaptive {
                window_secs: 30.0 * 86_400.0,
                min_n: 1_000,
                max_n: 500_000,
            },
        ),
    ];
    let cells: Vec<SimConfig> = policies
        .iter()
        .map(|(_, p)| {
            let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, sf, n);
            cfg.econ.amortization = *p;
            cfg
        })
        .collect();
    let started = std::time::Instant::now();
    let results = run_cells(cells);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>8}",
        "policy", "cost ($)", "resp (s)", "hits %", "builds"
    );
    let mut set = RowSet::new();
    for ((name, _), r) in policies.iter().zip(&results) {
        let row = Row::new()
            .str_cell("policy", name, 14, true)
            .f64_cell(
                "total_cost_usd",
                r.total_operating_cost().as_dollars(),
                12,
                2,
                4,
            )
            .f64_cell("mean_response_s", r.mean_response_secs(), 12, 3, 4)
            .pct_cell("hit_rate", r.hit_rate(), 7, 4)
            .num_cell("builds", r.investments, 8, false);
        println!("{}", set.push(row));
    }
    write_csv(
        "fig7_ablation_amortization",
        &set.csv_header(),
        set.csv_rows(),
    );
    write_figure_bench_json(
        "fig7_ablation_amortization",
        sf,
        n,
        &bench_config_json(sf, n, n * policies.len() as u64, wall),
        set.json_rows(),
    );
}
