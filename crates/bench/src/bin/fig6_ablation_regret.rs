//! **Ablation 1** — the investment threshold fraction `a` of eq. 3.
//!
//! The paper fixes `0 < a < 1` without choosing a value. This sweep shows
//! the trade-off at the moderate 10 s inter-arrival point: small `a`
//! invests eagerly (fast warm-up, more wasted builds under drift), large
//! `a` invests late (cheap but slow).
//!
//! Usage: `cargo run --release -p bench --bin fig6_ablation_regret [sf] [queries]`

use bench::{cli_scale, print_header, run_cells, write_csv};
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 1 (regret threshold a, eq. 3)",
        "econ-cheap at 10 s inter-arrival",
        sf,
        n,
    );
    let fractions = [0.02, 0.05, 0.1, 0.2, 0.4];
    let cells: Vec<SimConfig> = fractions
        .iter()
        .map(|&a| {
            let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, sf, n);
            cfg.econ.investment.regret_fraction = a;
            cfg
        })
        .collect();
    let results = run_cells(cells);
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "a", "cost ($)", "resp (s)", "hits %", "builds", "evicts"
    );
    let mut rows = Vec::new();
    for (a, r) in fractions.iter().zip(&results) {
        println!(
            "{:<8} {:>12.2} {:>12.3} {:>7.1}% {:>8} {:>8}",
            a,
            r.total_operating_cost().as_dollars(),
            r.mean_response_secs(),
            r.hit_rate() * 100.0,
            r.investments,
            r.evictions
        );
        rows.push(format!(
            "{a},{:.4},{:.4},{:.4},{},{}",
            r.total_operating_cost().as_dollars(),
            r.mean_response_secs(),
            r.hit_rate(),
            r.investments,
            r.evictions
        ));
    }
    write_csv(
        "fig6_ablation_regret",
        "a,total_cost_usd,mean_response_s,hit_rate,builds,evicts",
        &rows,
    );
}
