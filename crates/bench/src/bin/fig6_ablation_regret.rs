//! **Ablation 1** — the investment threshold fraction `a` of eq. 3.
//!
//! The paper fixes `0 < a < 1` without choosing a value. This sweep shows
//! the trade-off at the moderate 10 s inter-arrival point: small `a`
//! invests eagerly (fast warm-up, more wasted builds under drift), large
//! `a` invests late (cheap but slow).
//!
//! Usage: `cargo run --release -p bench --bin fig6_ablation_regret [sf] [queries]`

use bench::{
    bench_config_json, cli_scale, print_header, run_cells, write_csv, write_figure_bench_json, Row,
    RowSet,
};
use simulator::{Scheme, SimConfig};

fn main() {
    let (sf, n) = cli_scale();
    print_header(
        "Ablation 1 (regret threshold a, eq. 3)",
        "econ-cheap at 10 s inter-arrival",
        sf,
        n,
    );
    let fractions = [0.02, 0.05, 0.1, 0.2, 0.4];
    let cells: Vec<SimConfig> = fractions
        .iter()
        .map(|&a| {
            let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, sf, n);
            cfg.econ.investment.regret_fraction = a;
            cfg
        })
        .collect();
    let started = std::time::Instant::now();
    let results = run_cells(cells);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "a", "cost ($)", "resp (s)", "hits %", "builds", "evicts"
    );
    let mut set = RowSet::new();
    for (a, r) in fractions.iter().zip(&results) {
        let row = Row::new()
            .num_cell("a", a, 8, true)
            .f64_cell(
                "total_cost_usd",
                r.total_operating_cost().as_dollars(),
                12,
                2,
                4,
            )
            .f64_cell("mean_response_s", r.mean_response_secs(), 12, 3, 4)
            .pct_cell("hit_rate", r.hit_rate(), 7, 4)
            .num_cell("builds", r.investments, 8, false)
            .num_cell("evicts", r.evictions, 8, false);
        println!("{}", set.push(row));
    }
    write_csv("fig6_ablation_regret", &set.csv_header(), set.csv_rows());
    write_figure_bench_json(
        "fig6_ablation_regret",
        sf,
        n,
        &bench_config_json(sf, n, n * fractions.len() as u64, wall),
        set.json_rows(),
    );
}
