//! **`explain`** — replay a recorded fleet trace and attribute the money.
//!
//! The flight recorder ([`telemetry`]) turns a fleet run into a typed
//! event stream; this tool answers the attribution questions the paper's
//! economy makes answerable:
//!
//! * `record [path]` — run the reference bursty elastic fleet (with a
//!   mid-run crash-and-recover fault injected, so crash questions are
//!   answerable) with the recorder attached and write the
//!   [`telemetry::Trace`] (events + registry snapshot) as JSON, default
//!   `results/fleet_trace.json`;
//! * `retire <node> [path]` — why did node *N* retire: the rule that
//!   fired, the pressure signals at the drain decision, and what the
//!   node earned while alive (exits non-zero when the trace records no
//!   retirement for that node — an unanswerable query is an error);
//! * `crash <node> [path]` — what node *N*'s crash cost: the books
//!   settled at the crash instant, the capital written off, the
//!   re-queued backlog, and whether the ledger replay reconciled;
//! * `blame <tenant|template|structure|node|resource> [path]` — "where
//!   did the $ go": payments, profit, per-resource execution spend and
//!   build spend rolled up by the chosen key;
//! * `structure <S> [path]` — which tenants and templates paid for
//!   structure *S* (settlements whose winning plans used it);
//! * `timeline <node> [path]` — every lifecycle transition recorded for
//!   node *N*;
//! * `selfcheck` — the CI gate: runs the recording config twice (no-op
//!   sink vs recorder), demands bit-identical aggregates, then answers a
//!   retirement query and cross-foots the blame rollups against the
//!   run's own economic aggregates. Non-zero exit on any mismatch or
//!   unanswerable query.
//!
//! Usage: `cargo run --release -p bench --bin explain -- <subcommand> …`

use bench::fleet_fingerprint;
use fleet::{ElasticConfig, FaultPlan, FleetConfig, FleetSim};
use pricing::Money;
use simulator::ArrivalKind;
use telemetry::{
    blame, explain_crash, explain_retirement, node_timeline, BlameKey, BlameRow, LifecyclePhase,
    Trace, TraceEvent,
};

const USAGE: &str = "usage: explain <subcommand>\n\
       record    [path]                                      record a traced reference run\n\
       retire    <node> [path]                               why did node N retire\n\
       crash     <node> [path]                               what did node N's crash cost\n\
       blame     <tenant|template|structure|node|resource> [path]\n\
       structure <name> [path]                               who paid for structure <name>\n\
       timeline  <node> [path]                               lifecycle transitions of node N\n\
       selfcheck                                             traced-vs-noop bit-identity + smoke queries\n\
       (default trace path: results/fleet_trace.json)";

const DEFAULT_TRACE: &str = "results/fleet_trace.json";

/// The recording config: the `fleet_elastic` bursty MMPP scenario,
/// re-proportioned so every question the tool answers has material in
/// the trace. Few cells and many queries per tenant let nodes actually
/// warm (≈19 % cache-hit rate, so settlements carry `used_structures`
/// for the structure/blame queries), while the elastic controller still
/// drains and retires idle capacity through the calms (so `retire` has
/// something to explain). A crash-and-recover fault on node 3 rides
/// along so crash questions are answerable from the same trace: the
/// node dies at t=30 s — early enough to still be alive in every cell —
/// and a replacement replays its journal 60 s later. Runs in well under
/// a second — cheap enough for the CI selfcheck.
fn recording_config() -> FleetConfig {
    let mut config = FleetConfig::uniform(16, 4, 500, 1.0).with_arrivals(ArrivalKind::Mmpp {
        calm_gap_secs: 25.0,
        storm_gap_secs: 1.0,
        calm_sojourn_secs: 400.0,
        storm_sojourn_secs: 60.0,
    });
    config.scale_factor = 50.0;
    config.cells = 2;
    let config = config.with_faults(FaultPlan::new(20_000.0).with_crash_recover(3, 30.0, 60.0));
    config.with_elastic(ElasticConfig {
        review_interval_secs: 5.0,
        ewma_alpha: 0.3,
        scale_up_backlog: 4.0,
        scale_down_backlog: 0.25,
        max_response_secs: 0.0,
        min_nodes: 1,
        max_nodes: 4,
        cooldown_reviews: 4,
        drain_grace_secs: 60.0,
    })
}

fn usage_exit() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load_trace(path: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read trace {path}: {e}");
        eprintln!("(run `explain record` first)");
        std::process::exit(1);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse trace {path}: {e}");
        std::process::exit(1);
    })
}

fn record(path: &str) {
    let (result, trace) = FleetSim::new(recording_config()).run_traced();
    let trace = Trace {
        label: "bursty elastic reference (SF 50, 16 tenants x 500 queries, 4 seed nodes, \
                node 3 crash-and-recover at t=30s)"
            .to_string(),
        events: trace.events,
        registry: trace.registry,
    };
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let json = serde_json::to_string(&trace).expect("trace serializes");
    match std::fs::write(path, json) {
        Ok(()) => println!(
            "(wrote {path}: {} events, {} registry entries, {} queries settled)",
            trace.events.len(),
            trace.registry.len(),
            result.queries
        ),
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn print_rows(rows: &[(String, BlameRow)]) {
    println!(
        "{:>16} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "group", "queries", "payments($)", "profit($)", "exec($)", "build($)", "writeoff($)"
    );
    for (name, row) in rows {
        println!(
            "{name:>16} {:>9} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            row.queries,
            row.payments.as_dollars(),
            row.profit.as_dollars(),
            row.exec.total().as_dollars(),
            row.build_spend.as_dollars(),
            row.write_off.as_dollars()
        );
    }
}

fn crash(node: usize, trace: &Trace) {
    match explain_crash(&trace.events, node) {
        Some(text) => print!("{text}"),
        None => {
            eprintln!("error: trace records no crash for node {node}");
            let crashed: Vec<usize> = trace
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::NodeCrash(c) => Some(c.node),
                    _ => None,
                })
                .collect();
            eprintln!("(crashed nodes in this trace: {crashed:?})");
            std::process::exit(1);
        }
    }
}

fn retire(node: usize, trace: &Trace) {
    match explain_retirement(&trace.events, node) {
        Some(text) => print!("{text}"),
        None => {
            eprintln!("error: trace records no retirement for node {node}");
            let retired: Vec<usize> = trace
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::NodeLifecycle(l) if l.phase == LifecyclePhase::Retire => l.node,
                    _ => None,
                })
                .collect();
            eprintln!("(retired nodes in this trace: {retired:?})");
            std::process::exit(1);
        }
    }
}

fn selfcheck() {
    // 1. Bit-identity: the recorder must be a pure observer.
    let noop = FleetSim::new(recording_config()).run();
    let (traced, trace) = FleetSim::new(recording_config()).run_traced();
    if fleet_fingerprint(&noop) != fleet_fingerprint(&traced) {
        eprintln!("error: traced run is not bit-identical to the no-op-sink run");
        eprintln!("  noop:   {}", fleet_fingerprint(&noop));
        eprintln!("  traced: {}", fleet_fingerprint(&traced));
        std::process::exit(1);
    }
    println!("traced run bit-identical to no-op-sink run: OK");

    // 2. The registry must agree with the result's own aggregates.
    let reg = &trace.registry;
    if reg.counter("fleet.queries") != traced.queries
        || reg.gauge("fleet.payments") != traced.payments
        || reg.gauge("fleet.profit") != traced.profit
        || reg.counter("fleet.cache_hits") != traced.cache_hits
    {
        eprintln!("error: registry snapshot disagrees with FleetResult aggregates");
        std::process::exit(1);
    }
    println!("registry snapshot cross-foots with FleetResult aggregates: OK");

    // 3. A retirement question must be answerable: the recording config
    //    is sized so the controller retires at least one node.
    let retired = trace.events.iter().find_map(|e| match e {
        TraceEvent::NodeLifecycle(l) if l.phase == LifecyclePhase::Retire => l.node,
        _ => None,
    });
    let Some(node) = retired else {
        eprintln!("error: recording config produced no retirement to explain");
        std::process::exit(1);
    };
    let Some(answer) = explain_retirement(&trace.events, node) else {
        eprintln!("error: explain_retirement cannot answer for retired node {node}");
        std::process::exit(1);
    };
    println!("retirement query answerable (node {node}):");
    print!("{answer}");

    // 4. Blame rollups must cross-foot: every tenant's payments sum back
    //    to the run's total payments (no dollar lost or double-counted),
    //    and the per-resource decomposition sums to the exec spend.
    let by_tenant = blame(&trace.events, BlameKey::Tenant);
    let tenant_payments: Money = by_tenant.iter().map(|(_, r)| r.payments).sum();
    if tenant_payments != traced.payments {
        eprintln!(
            "error: per-tenant blame sums to {tenant_payments}, run collected {}",
            traced.payments
        );
        std::process::exit(1);
    }
    let by_node = blame(&trace.events, BlameKey::Node);
    let node_queries: u64 = by_node.iter().map(|(_, r)| r.queries).sum();
    if node_queries != traced.queries {
        eprintln!(
            "error: per-node blame covers {node_queries} settlements, run settled {}",
            traced.queries
        );
        std::process::exit(1);
    }
    let by_resource = blame(&trace.events, BlameKey::Resource);
    let exec_total: Money = by_resource.iter().map(|(_, r)| r.exec.total()).sum();
    if exec_total
        != reg.gauge("fleet.exec.cpu")
            + reg.gauge("fleet.exec.disk")
            + reg.gauge("fleet.exec.network")
            + reg.gauge("fleet.exec.io")
    {
        eprintln!("error: per-resource blame disagrees with the registry's exec gauges");
        std::process::exit(1);
    }
    println!(
        "blame rollups cross-foot: {} tenants / {} nodes / {} resource rows cover {} settlements and {} payments: OK",
        by_tenant.len(),
        by_node.len(),
        by_resource.len(),
        traced.queries,
        traced.payments
    );

    // 5. Structure attribution must be answerable: the recording config
    //    is warm enough that some winning plans ran on cached
    //    structures, and "who paid for S" must find their settlements.
    let Some(structure) = trace.events.iter().find_map(|e| match e {
        TraceEvent::Settlement(s) => s.used_structures.first().cloned(),
        _ => None,
    }) else {
        eprintln!("error: recording config produced no cache-run settlement to attribute");
        std::process::exit(1);
    };
    let payers = telemetry::structure_payers(&trace.events, &structure);
    if payers.is_empty() {
        eprintln!("error: structure `{structure}` was used but has no payers");
        std::process::exit(1);
    }
    println!(
        "structure attribution answerable: `{structure}` paid for by {} tenant/template groups: OK",
        payers.len()
    );

    // 6. Crash questions must be answerable: the recording config
    //    injects a crash-and-recover, so the trace carries a NodeCrash
    //    event and `explain crash` must narrate it — write-off, re-queue
    //    and reconciliation included.
    let Some(crashed) = trace.events.iter().find_map(|e| match e {
        TraceEvent::NodeCrash(c) => Some(c.node),
        _ => None,
    }) else {
        eprintln!("error: recording config produced no crash to explain");
        std::process::exit(1);
    };
    let Some(answer) = explain_crash(&trace.events, crashed) else {
        eprintln!("error: explain_crash cannot answer for crashed node {crashed}");
        std::process::exit(1);
    };
    println!("crash query answerable (node {crashed}):");
    print!("{answer}");

    // 7. Written-off capital must cross-foot: the per-node blame
    //    rollups' write-off column sums to the registry's fault gauge —
    //    no lost dollar between the fault plane and the attribution.
    let node_write_off: Money = by_node.iter().map(|(_, r)| r.write_off).sum();
    if node_write_off != reg.gauge("fault.write_off") {
        eprintln!(
            "error: per-node blame writes off {node_write_off}, registry gauges {}",
            reg.gauge("fault.write_off")
        );
        std::process::exit(1);
    }
    let faults = traced.faults.as_ref().expect("faulted recording config");
    if faults.reconciled != faults.recoveries {
        eprintln!(
            "error: {} of {} recoveries reconciled in the recording run",
            faults.reconciled, faults.recoveries
        );
        std::process::exit(1);
    }
    println!(
        "crash write-offs cross-foot ({node_write_off} over {} crash(es)) and {} recover(ies) reconciled exactly: OK",
        faults.crashes, faults.recoveries
    );
    println!("explain selfcheck: OK");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else {
        usage_exit();
    };
    match sub.as_str() {
        "record" => {
            let path = args.get(1).map_or(DEFAULT_TRACE, String::as_str);
            record(path);
        }
        "retire" | "crash" | "timeline" => {
            let Some(node) = args.get(1).and_then(|s| s.parse::<usize>().ok()) else {
                usage_exit();
            };
            let path = args.get(2).map_or(DEFAULT_TRACE, String::as_str);
            let trace = load_trace(path);
            if sub == "retire" {
                retire(node, &trace);
            } else if sub == "crash" {
                crash(node, &trace);
            } else {
                let timeline = node_timeline(&trace.events, node);
                if timeline.is_empty() {
                    eprintln!("error: trace records no lifecycle transitions for node {node}");
                    std::process::exit(1);
                }
                for l in timeline {
                    println!(
                        "t={:>8.1}s cell {} {:<12} rule `{}` live={} routable={} booting={} draining={} backlog_ewma={:.3}",
                        l.at_secs,
                        l.cell,
                        l.phase.label(),
                        l.rule,
                        l.live,
                        l.routable,
                        l.booting,
                        l.draining,
                        l.backlog_ewma
                    );
                }
            }
        }
        "blame" => {
            let Some(key) = args.get(1).and_then(|s| BlameKey::parse(s)) else {
                usage_exit();
            };
            let path = args.get(2).map_or(DEFAULT_TRACE, String::as_str);
            let trace = load_trace(path);
            let rows = blame(&trace.events, key);
            if rows.is_empty() {
                eprintln!("error: trace contains no settlements to blame");
                std::process::exit(1);
            }
            print_rows(&rows);
        }
        "structure" => {
            let Some(name) = args.get(1) else {
                usage_exit();
            };
            let path = args.get(2).map_or(DEFAULT_TRACE, String::as_str);
            let trace = load_trace(path);
            let rows = telemetry::structure_payers(&trace.events, name);
            if rows.is_empty() {
                eprintln!("error: no settlement in the trace used structure `{name}`");
                let mut known: Vec<String> = trace
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        TraceEvent::Settlement(s) => Some(s.used_structures.clone()),
                        _ => None,
                    })
                    .flatten()
                    .collect();
                known.sort();
                known.dedup();
                eprintln!("(structures used in this trace: {known:?})");
                std::process::exit(1);
            }
            print_rows(&rows);
        }
        "selfcheck" => selfcheck(),
        _ => usage_exit(),
    }
}
