//! **`explain`** — replay a recorded fleet trace and attribute the money.
//!
//! The flight recorder ([`telemetry`]) turns a fleet run into a typed
//! event stream; this tool answers the attribution questions the paper's
//! economy makes answerable:
//!
//! * `record [path]` — run the reference bursty elastic fleet (with a
//!   mid-run crash-and-recover fault injected, so crash questions are
//!   answerable) with the recorder attached and write the
//!   [`telemetry::Trace`] (events + registry snapshot) as JSON, default
//!   `results/fleet_trace.json`;
//! * `retire <node> [path]` — why did node *N* retire: the rule that
//!   fired, the pressure signals at the drain decision, and what the
//!   node earned while alive (exits non-zero when the trace records no
//!   retirement for that node — an unanswerable query is an error);
//! * `crash <node> [path]` — what node *N*'s crash cost: the books
//!   settled at the crash instant, the capital written off, the
//!   re-queued backlog, and whether the ledger replay reconciled;
//! * `blame <tenant|template|structure|node|resource> [path]` — "where
//!   did the $ go": payments, profit, per-resource execution spend and
//!   build spend rolled up by the chosen key;
//! * `structure <S> [path]` — which tenants and templates paid for
//!   structure *S* (settlements whose winning plans used it);
//! * `timeline <node> [path]` — every lifecycle transition recorded for
//!   node *N*;
//! * `slo [path]` — the per-tenant SLO ledger: p50/p99 against targets,
//!   error-budget burn, exact spend against caps, breach narration, and
//!   any drift alarms the e-process detector raises over the trace;
//! * `top [path]` — the cadenced vitals frames as a time series (backlog,
//!   pressure, node cash, hit rates, population counts, write-offs);
//! * `metrics [path]` — the registry plus vitals rendered as
//!   OpenMetrics-style text;
//! * `selfcheck` — the CI gate: runs the recording config twice (no-op
//!   sink vs recorder), demands bit-identical aggregates, then answers a
//!   retirement query and cross-foots the blame rollups against the
//!   run's own economic aggregates. Non-zero exit on any mismatch or
//!   unanswerable query.
//! * `health` — the health-plane CI gate: snapshot-on and snapshot-off
//!   runs must be bit-identical, the SLO ledger must cross-foot with the
//!   run's own aggregates, the vitals cadence must land on the grid, and
//!   the OpenMetrics render must be well-formed.
//!
//! Usage: `cargo run --release -p bench --bin explain -- <subcommand> …`
//!
//! Unknown subcommands, malformed arguments and trailing arguments all
//! exit 2 with the usage text — a misremembered query must fail loudly,
//! not silently answer something else.

use bench::fleet_fingerprint;
use fleet::{narrate_breaches, ElasticConfig, FaultPlan, FleetConfig, FleetSim, TenantSloSpec};
use pricing::Money;
use simulator::ArrivalKind;
use telemetry::{
    blame, detect_alarms, explain_crash, explain_retirement, node_timeline, render_openmetrics,
    Baselines, BlameKey, BlameRow, LifecyclePhase, Trace, TraceEvent,
};

const USAGE: &str = "usage: explain <subcommand>\n\
       record    [path]                                      record a traced reference run\n\
       retire    <node> [path]                               why did node N retire\n\
       crash     <node> [path]                               what did node N's crash cost\n\
       blame     <tenant|template|structure|node|resource> [path]\n\
       structure <name> [path]                               who paid for structure <name>\n\
       timeline  <node> [path]                               lifecycle transitions of node N\n\
       slo       [path]                                      per-tenant SLO ledger + drift alarms\n\
       top       [path]                                      cadenced vitals frames over time\n\
       metrics   [path]                                      OpenMetrics-style text export\n\
       selfcheck                                             traced-vs-noop bit-identity + smoke queries\n\
       health                                                snapshot-on/off bit-identity + SLO cross-foot\n\
       (default trace path: results/fleet_trace.json)";

const DEFAULT_TRACE: &str = "results/fleet_trace.json";

/// The recording config: the `fleet_elastic` bursty MMPP scenario,
/// re-proportioned so every question the tool answers has material in
/// the trace. Few cells and many queries per tenant let nodes actually
/// warm (≈19 % cache-hit rate, so settlements carry `used_structures`
/// for the structure/blame queries), while the elastic controller still
/// drains and retires idle capacity through the calms (so `retire` has
/// something to explain). A crash-and-recover fault on node 3 rides
/// along so crash questions are answerable from the same trace: the
/// node dies at t=30 s — early enough to still be alive in every cell —
/// and a replacement replays its journal 60 s later. Runs in well under
/// a second — cheap enough for the CI selfcheck.
fn recording_config() -> FleetConfig {
    let mut config = FleetConfig::uniform(16, 4, 500, 1.0).with_arrivals(ArrivalKind::Mmpp {
        calm_gap_secs: 25.0,
        storm_gap_secs: 1.0,
        calm_sojourn_secs: 400.0,
        storm_sojourn_secs: 60.0,
    });
    config.scale_factor = 50.0;
    config.cells = 2;
    let config = config.with_faults(FaultPlan::new(20_000.0).with_crash_recover(3, 30.0, 60.0));
    config
        .with_elastic(ElasticConfig {
            review_interval_secs: 5.0,
            ewma_alpha: 0.3,
            scale_up_backlog: 4.0,
            scale_down_backlog: 0.25,
            max_response_secs: 0.0,
            min_nodes: 1,
            max_nodes: 4,
            cooldown_reviews: 4,
            drain_grace_secs: 60.0,
        })
        // The health plane rides along: a 60 s vitals cadence (the run
        // spans hours of simulated time) and a uniform SLO contract
        // tight enough that the storm phases burn real error budget —
        // so `explain slo` always has breaches and burn to narrate.
        .with_health(60.0)
        .with_slo(TenantSloSpec {
            p99_target_secs: 5.0,
            spend_cap: Some(Money::from_dollars(0.4)),
        })
}

fn usage_exit() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load_trace(path: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read trace {path}: {e}");
        eprintln!("(run `explain record` first)");
        std::process::exit(1);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse trace {path}: {e}");
        std::process::exit(1);
    })
}

fn record(path: &str) {
    let (result, trace) = FleetSim::new(recording_config()).run_traced();
    let trace = Trace {
        label: "bursty elastic reference (SF 50, 16 tenants x 500 queries, 4 seed nodes, \
                node 3 crash-and-recover at t=30s)"
            .to_string(),
        events: trace.events,
        registry: trace.registry,
        slo: Some(result.slo.clone()),
        health: result.health.clone(),
    };
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    let json = serde_json::to_string(&trace).expect("trace serializes");
    match std::fs::write(path, json) {
        Ok(()) => println!(
            "(wrote {path}: {} events, {} registry entries, {} queries settled)",
            trace.events.len(),
            trace.registry.len(),
            result.queries
        ),
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn print_rows(rows: &[(String, BlameRow)]) {
    println!(
        "{:>16} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "group", "queries", "payments($)", "profit($)", "exec($)", "build($)", "writeoff($)"
    );
    for (name, row) in rows {
        println!(
            "{name:>16} {:>9} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            row.queries,
            row.payments.as_dollars(),
            row.profit.as_dollars(),
            row.exec.total().as_dollars(),
            row.build_spend.as_dollars(),
            row.write_off.as_dollars()
        );
    }
}

fn crash(node: usize, trace: &Trace) {
    match explain_crash(&trace.events, node) {
        Some(text) => print!("{text}"),
        None => {
            eprintln!("error: trace records no crash for node {node}");
            let crashed: Vec<usize> = trace
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::NodeCrash(c) => Some(c.node),
                    _ => None,
                })
                .collect();
            eprintln!("(crashed nodes in this trace: {crashed:?})");
            std::process::exit(1);
        }
    }
}

fn retire(node: usize, trace: &Trace) {
    match explain_retirement(&trace.events, node) {
        Some(text) => print!("{text}"),
        None => {
            eprintln!("error: trace records no retirement for node {node}");
            let retired: Vec<usize> = trace
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::NodeLifecycle(l) if l.phase == LifecyclePhase::Retire => l.node,
                    _ => None,
                })
                .collect();
            eprintln!("(retired nodes in this trace: {retired:?})");
            std::process::exit(1);
        }
    }
}

/// The last simulated instant the trace knows about: the later of the
/// final settlement and the final vitals frame.
fn trace_horizon(trace: &Trace) -> f64 {
    let settled = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Settlement(s) => Some(s.at_secs),
            _ => None,
        })
        .fold(0.0_f64, f64::max);
    let framed = trace
        .health
        .as_ref()
        .and_then(|h| h.frames.last())
        .map_or(0.0, |f| f.at_secs);
    settled.max(framed)
}

fn slo_report(trace: &Trace) {
    let Some(ledger) = &trace.slo else {
        eprintln!("error: trace carries no SLO ledger (re-record with `explain record`)");
        std::process::exit(1);
    };
    println!(
        "{:>7} {:>8} {:>6} {:>9} {:>9} {:>9} {:>7} {:>7} {:>11} {:>9} {:>6}",
        "tenant",
        "queries",
        "hit%",
        "p50(s)",
        "p99(s)",
        "target",
        "misses",
        "burn",
        "spend($)",
        "cap($)",
        "flags"
    );
    for r in &ledger.tenants {
        let hit_pct = if r.admitted == 0 {
            0.0
        } else {
            100.0 * r.cache_hits as f64 / r.admitted as f64
        };
        let target = r
            .slo
            .map_or("-".to_string(), |s| format!("{:.3}", s.p99_target_secs));
        let cap = r
            .slo
            .and_then(|s| s.spend_cap)
            .map_or("-".to_string(), |c| format!("{:.4}", c.as_dollars()));
        let burn = if r.slo.is_some() {
            format!("{:.2}", r.burn_rate())
        } else {
            "-".to_string()
        };
        let mut flags = String::new();
        if r.p99_breached() {
            flags.push('P');
        }
        if r.spend_cap_breached() {
            flags.push('$');
        }
        println!(
            "{:>7} {:>8} {:>6.1} {:>9.4} {:>9.4} {:>9} {:>7} {:>7} {:>11.6} {:>9} {:>6}",
            r.tenant,
            r.admitted,
            hit_pct,
            r.response.p50().unwrap_or(0.0),
            r.response.p99().unwrap_or(0.0),
            target,
            r.deadline_misses,
            burn,
            r.spend.as_dollars(),
            cap,
            flags
        );
    }
    println!(
        "({} queries admitted, {} tenants breaching; flags: P = p99 error budget, $ = spend cap)",
        ledger.total_admitted(),
        ledger.breaches().len()
    );
    for line in narrate_breaches(ledger) {
        println!("  {line}");
    }
    let alarms = detect_alarms(
        trace.health.as_ref(),
        ledger,
        trace_horizon(trace),
        &Baselines::default(),
    );
    if alarms.is_empty() {
        println!("drift alarms: none");
    } else {
        println!("drift alarms ({}):", alarms.len());
        for a in &alarms {
            println!(
                "  t={:>8.1}s log(e)={:.2} {}",
                a.at_secs, a.log_e_value, a.message
            );
        }
    }
}

fn top_report(trace: &Trace) {
    let Some(series) = &trace.health else {
        eprintln!(
            "error: trace carries no vitals frames (record with a health-enabled config \
             via `explain record`)"
        );
        std::process::exit(1);
    };
    println!(
        "{:>9} {:>8} {:>6} {:>10} {:>9} {:>11} {:>5} {:>5} {:>5} {:>8} {:>7} {:>7} {:>11}",
        "t(s)",
        "queries",
        "hit%",
        "backlog(s)",
        "pressure",
        "cash($)",
        "live",
        "rout",
        "drain",
        "plan-hit%",
        "spawns",
        "retires",
        "writeoff($)"
    );
    for f in &series.frames {
        let plan_total = f.plan_hits + f.plan_misses;
        let plan_pct = if plan_total == 0 {
            0.0
        } else {
            100.0 * f.plan_hits as f64 / plan_total as f64
        };
        println!(
            "{:>9.1} {:>8} {:>6.1} {:>10.3} {:>9.3} {:>11.4} {:>5} {:>5} {:>5} {:>8.1} {:>7} {:>7} {:>11.6}",
            f.at_secs,
            f.queries,
            100.0 * f.hit_rate(),
            f.backlog_secs,
            f.pressure_ewma,
            f.node_cash.as_dollars(),
            f.live_nodes,
            f.routable_nodes,
            f.draining_nodes,
            plan_pct,
            f.spawns,
            f.retires,
            f.write_off.as_dollars()
        );
    }
    println!(
        "({} frames at {:.1}s cadence)",
        series.frames.len(),
        series.interval_secs
    );
}

fn metrics_report(trace: &Trace) {
    print!(
        "{}",
        render_openmetrics(&trace.registry, trace.health.as_ref())
    );
}

/// The health-plane CI gate (the `trend --check` prerequisite): the
/// vitals scraper and SLO ledger must never perturb the simulation.
fn health_check() {
    // 1. Snapshot-on vs snapshot-off bit-identity: the fingerprint
    //    excludes the health series itself, so any difference means the
    //    scraper leaked into the simulation.
    let on = FleetSim::new(recording_config()).run();
    let mut off_config = recording_config();
    off_config.health = None;
    for tenant in &mut off_config.tenants {
        tenant.slo = None;
    }
    let off = FleetSim::new(off_config).run();
    if fleet_fingerprint(&on) != fleet_fingerprint(&off) {
        eprintln!("error: snapshot-on run is not bit-identical to snapshot-off run");
        eprintln!("  on:  {}", fleet_fingerprint(&on));
        eprintln!("  off: {}", fleet_fingerprint(&off));
        std::process::exit(1);
    }
    println!("snapshot-on run bit-identical to snapshot-off run: OK");

    // 2. The SLO ledger must cross-foot with the run's own aggregates —
    //    same queries, same cache hits, same dollars, tenant by tenant.
    if on.slo.total_admitted() != on.queries {
        eprintln!(
            "error: SLO ledger admits {} queries, run served {}",
            on.slo.total_admitted(),
            on.queries
        );
        std::process::exit(1);
    }
    let ledger_spend: Money = on.slo.tenants.iter().map(|r| r.spend).sum();
    if ledger_spend != on.payments {
        eprintln!(
            "error: SLO ledger spend {ledger_spend} disagrees with run payments {}",
            on.payments
        );
        std::process::exit(1);
    }
    let ledger_hits: u64 = on.slo.tenants.iter().map(|r| r.cache_hits).sum();
    if ledger_hits != on.cache_hits {
        eprintln!(
            "error: SLO ledger counts {ledger_hits} cache hits, run counted {}",
            on.cache_hits
        );
        std::process::exit(1);
    }
    for (stats, record) in on.tenants.iter().zip(&on.slo.tenants) {
        if stats.tenant.0 != record.tenant
            || stats.queries != record.admitted
            || stats.payments != record.spend
            || stats.cache_hits != record.cache_hits
        {
            eprintln!(
                "error: tenant {} SLO record disagrees with TenantStats",
                record.tenant
            );
            std::process::exit(1);
        }
    }
    println!(
        "SLO ledger cross-foots with FleetResult ({} queries, {} over {} tenants): OK",
        on.queries,
        on.payments,
        on.slo.tenants.len()
    );

    // 3. Vitals frames must exist and land exactly on the cadence grid.
    let series = on.health.as_ref().unwrap_or_else(|| {
        eprintln!("error: health-enabled run produced no vitals series");
        std::process::exit(1);
    });
    if series.frames.is_empty() {
        eprintln!("error: vitals series is empty");
        std::process::exit(1);
    }
    for (i, frame) in series.frames.iter().enumerate() {
        #[allow(clippy::cast_precision_loss)]
        let expected = (i + 1) as f64 * series.interval_secs;
        if frame.at_secs.to_bits() != expected.to_bits() {
            eprintln!(
                "error: frame {i} sampled at {}s, expected the {expected}s grid instant",
                frame.at_secs
            );
            std::process::exit(1);
        }
    }
    let last = series.frames.last().expect("non-empty");
    if last.queries > on.queries {
        eprintln!("error: cumulative frame counters ran past the run total");
        std::process::exit(1);
    }
    println!(
        "vitals cadence on-grid ({} frames every {:.0}s, last at t={:.0}s): OK",
        series.frames.len(),
        series.interval_secs,
        last.at_secs
    );

    // 4. The OpenMetrics render must be well-formed enough to scrape:
    //    non-empty, EOF-terminated, and carrying the vitals gauges.
    let (_, fleet_trace) = FleetSim::new(recording_config()).run_traced();
    let text = render_openmetrics(&fleet_trace.registry, on.health.as_ref());
    if !text.ends_with("# EOF\n") || !text.contains("fleet_vitals_frames_total") {
        eprintln!("error: OpenMetrics render is malformed");
        std::process::exit(1);
    }
    println!(
        "OpenMetrics render well-formed ({} lines): OK",
        text.lines().count()
    );

    // 5. The drift detector must run clean over the reference trace —
    //    the e-process is for real drift, not for the healthy baseline.
    let alarms = detect_alarms(
        on.health.as_ref(),
        &on.slo,
        on.horizon_secs,
        &Baselines::default(),
    );
    println!(
        "drift detector over reference run: {} alarm(s)",
        alarms.len()
    );
    println!("explain health: OK");
}

fn selfcheck() {
    // 1. Bit-identity: the recorder must be a pure observer.
    let noop = FleetSim::new(recording_config()).run();
    let (traced, trace) = FleetSim::new(recording_config()).run_traced();
    if fleet_fingerprint(&noop) != fleet_fingerprint(&traced) {
        eprintln!("error: traced run is not bit-identical to the no-op-sink run");
        eprintln!("  noop:   {}", fleet_fingerprint(&noop));
        eprintln!("  traced: {}", fleet_fingerprint(&traced));
        std::process::exit(1);
    }
    println!("traced run bit-identical to no-op-sink run: OK");

    // 2. The registry must agree with the result's own aggregates.
    let reg = &trace.registry;
    if reg.counter("fleet.queries") != traced.queries
        || reg.gauge("fleet.payments") != traced.payments
        || reg.gauge("fleet.profit") != traced.profit
        || reg.counter("fleet.cache_hits") != traced.cache_hits
    {
        eprintln!("error: registry snapshot disagrees with FleetResult aggregates");
        std::process::exit(1);
    }
    println!("registry snapshot cross-foots with FleetResult aggregates: OK");

    // 3. A retirement question must be answerable: the recording config
    //    is sized so the controller retires at least one node.
    let retired = trace.events.iter().find_map(|e| match e {
        TraceEvent::NodeLifecycle(l) if l.phase == LifecyclePhase::Retire => l.node,
        _ => None,
    });
    let Some(node) = retired else {
        eprintln!("error: recording config produced no retirement to explain");
        std::process::exit(1);
    };
    let Some(answer) = explain_retirement(&trace.events, node) else {
        eprintln!("error: explain_retirement cannot answer for retired node {node}");
        std::process::exit(1);
    };
    println!("retirement query answerable (node {node}):");
    print!("{answer}");

    // 4. Blame rollups must cross-foot: every tenant's payments sum back
    //    to the run's total payments (no dollar lost or double-counted),
    //    and the per-resource decomposition sums to the exec spend.
    let by_tenant = blame(&trace.events, BlameKey::Tenant);
    let tenant_payments: Money = by_tenant.iter().map(|(_, r)| r.payments).sum();
    if tenant_payments != traced.payments {
        eprintln!(
            "error: per-tenant blame sums to {tenant_payments}, run collected {}",
            traced.payments
        );
        std::process::exit(1);
    }
    let by_node = blame(&trace.events, BlameKey::Node);
    let node_queries: u64 = by_node.iter().map(|(_, r)| r.queries).sum();
    if node_queries != traced.queries {
        eprintln!(
            "error: per-node blame covers {node_queries} settlements, run settled {}",
            traced.queries
        );
        std::process::exit(1);
    }
    let by_resource = blame(&trace.events, BlameKey::Resource);
    let exec_total: Money = by_resource.iter().map(|(_, r)| r.exec.total()).sum();
    if exec_total
        != reg.gauge("fleet.exec.cpu")
            + reg.gauge("fleet.exec.disk")
            + reg.gauge("fleet.exec.network")
            + reg.gauge("fleet.exec.io")
    {
        eprintln!("error: per-resource blame disagrees with the registry's exec gauges");
        std::process::exit(1);
    }
    println!(
        "blame rollups cross-foot: {} tenants / {} nodes / {} resource rows cover {} settlements and {} payments: OK",
        by_tenant.len(),
        by_node.len(),
        by_resource.len(),
        traced.queries,
        traced.payments
    );

    // 5. Structure attribution must be answerable: the recording config
    //    is warm enough that some winning plans ran on cached
    //    structures, and "who paid for S" must find their settlements.
    let Some(structure) = trace.events.iter().find_map(|e| match e {
        TraceEvent::Settlement(s) => s.used_structures.first().cloned(),
        _ => None,
    }) else {
        eprintln!("error: recording config produced no cache-run settlement to attribute");
        std::process::exit(1);
    };
    let payers = telemetry::structure_payers(&trace.events, &structure);
    if payers.is_empty() {
        eprintln!("error: structure `{structure}` was used but has no payers");
        std::process::exit(1);
    }
    println!(
        "structure attribution answerable: `{structure}` paid for by {} tenant/template groups: OK",
        payers.len()
    );

    // 6. Crash questions must be answerable: the recording config
    //    injects a crash-and-recover, so the trace carries a NodeCrash
    //    event and `explain crash` must narrate it — write-off, re-queue
    //    and reconciliation included.
    let Some(crashed) = trace.events.iter().find_map(|e| match e {
        TraceEvent::NodeCrash(c) => Some(c.node),
        _ => None,
    }) else {
        eprintln!("error: recording config produced no crash to explain");
        std::process::exit(1);
    };
    let Some(answer) = explain_crash(&trace.events, crashed) else {
        eprintln!("error: explain_crash cannot answer for crashed node {crashed}");
        std::process::exit(1);
    };
    println!("crash query answerable (node {crashed}):");
    print!("{answer}");

    // 7. Written-off capital must cross-foot: the per-node blame
    //    rollups' write-off column sums to the registry's fault gauge —
    //    no lost dollar between the fault plane and the attribution.
    let node_write_off: Money = by_node.iter().map(|(_, r)| r.write_off).sum();
    if node_write_off != reg.gauge("fault.write_off") {
        eprintln!(
            "error: per-node blame writes off {node_write_off}, registry gauges {}",
            reg.gauge("fault.write_off")
        );
        std::process::exit(1);
    }
    let faults = traced.faults.as_ref().expect("faulted recording config");
    if faults.reconciled != faults.recoveries {
        eprintln!(
            "error: {} of {} recoveries reconciled in the recording run",
            faults.reconciled, faults.recoveries
        );
        std::process::exit(1);
    }
    println!(
        "crash write-offs cross-foot ({node_write_off} over {} crash(es)) and {} recover(ies) reconciled exactly: OK",
        faults.crashes, faults.recoveries
    );
    println!("explain selfcheck: OK");
}

/// Rejects trailing arguments a subcommand does not take: a mistyped
/// query must die with usage, not silently ignore the extra operand.
fn require_max_args(args: &[String], max: usize) {
    if args.len() > max {
        eprintln!("error: unexpected argument `{}`", args[max]);
        usage_exit();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else {
        usage_exit();
    };
    match sub.as_str() {
        "record" => {
            require_max_args(&args, 2);
            let path = args.get(1).map_or(DEFAULT_TRACE, String::as_str);
            record(path);
        }
        "retire" | "crash" | "timeline" => {
            require_max_args(&args, 3);
            let Some(node) = args.get(1).and_then(|s| s.parse::<usize>().ok()) else {
                usage_exit();
            };
            let path = args.get(2).map_or(DEFAULT_TRACE, String::as_str);
            let trace = load_trace(path);
            if sub == "retire" {
                retire(node, &trace);
            } else if sub == "crash" {
                crash(node, &trace);
            } else {
                let timeline = node_timeline(&trace.events, node);
                if timeline.is_empty() {
                    eprintln!("error: trace records no lifecycle transitions for node {node}");
                    std::process::exit(1);
                }
                for l in timeline {
                    println!(
                        "t={:>8.1}s cell {} {:<12} rule `{}` live={} routable={} booting={} draining={} backlog_ewma={:.3}",
                        l.at_secs,
                        l.cell,
                        l.phase.label(),
                        l.rule,
                        l.live,
                        l.routable,
                        l.booting,
                        l.draining,
                        l.backlog_ewma
                    );
                }
            }
        }
        "blame" => {
            require_max_args(&args, 3);
            let Some(key) = args.get(1).and_then(|s| BlameKey::parse(s)) else {
                usage_exit();
            };
            let path = args.get(2).map_or(DEFAULT_TRACE, String::as_str);
            let trace = load_trace(path);
            let rows = blame(&trace.events, key);
            if rows.is_empty() {
                eprintln!("error: trace contains no settlements to blame");
                std::process::exit(1);
            }
            print_rows(&rows);
        }
        "structure" => {
            require_max_args(&args, 3);
            let Some(name) = args.get(1) else {
                usage_exit();
            };
            let path = args.get(2).map_or(DEFAULT_TRACE, String::as_str);
            let trace = load_trace(path);
            let rows = telemetry::structure_payers(&trace.events, name);
            if rows.is_empty() {
                eprintln!("error: no settlement in the trace used structure `{name}`");
                let mut known: Vec<String> = trace
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        TraceEvent::Settlement(s) => Some(s.used_structures.clone()),
                        _ => None,
                    })
                    .flatten()
                    .collect();
                known.sort();
                known.dedup();
                eprintln!("(structures used in this trace: {known:?})");
                std::process::exit(1);
            }
            print_rows(&rows);
        }
        "slo" | "top" | "metrics" => {
            require_max_args(&args, 2);
            let path = args.get(1).map_or(DEFAULT_TRACE, String::as_str);
            let trace = load_trace(path);
            if sub == "slo" {
                slo_report(&trace);
            } else if sub == "top" {
                top_report(&trace);
            } else {
                metrics_report(&trace);
            }
        }
        "selfcheck" => {
            require_max_args(&args, 1);
            selfcheck();
        }
        "health" => {
            require_max_args(&args, 1);
            health_check();
        }
        _ => usage_exit(),
    }
}
