//! Shared bench-binary CLI handling.
//!
//! Every bench binary takes positional `[scale_factor] [num_queries]`
//! arguments (some with extra trailing positions), validates the same
//! domains, and fails the same way on typos: an argument that is present
//! but unparseable is fatal, because defaulting silently on a typo
//! (`fig4 2500x`) used to run the wrong experiment for a minute and
//! label it with the default scale. This module is that boilerplate,
//! extracted once.

/// Prints `error: <message>` plus a usage block (with the invoked binary
/// substituted for `{bin}`) and exits with status 2.
pub fn cli_usage_error(message: &str, usage: &str) -> ! {
    let bin = std::env::args()
        .next()
        .unwrap_or_else(|| "<bin>".to_string());
    eprintln!("error: {message}");
    eprintln!("usage: {}", usage.replace("{bin}", &bin));
    std::process::exit(2);
}

/// Parses one positional argument, or exits with a usage error.
pub fn cli_arg<T: std::str::FromStr>(position: usize, what: &str, default: T, usage: &str) -> T {
    match std::env::args().nth(position) {
        None => default,
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| cli_usage_error(&format!("cannot parse {what} `{raw}`"), usage)),
    }
}

/// Parses the common `[scale_factor] [num_queries]` prefix with
/// bin-specific defaults, enforcing the shared domain rules (finite
/// positive scale, non-zero query count).
#[must_use]
pub fn scale_args(default_sf: f64, default_n: u64, usage: &str) -> (f64, u64) {
    let sf: f64 = cli_arg(1, "scale factor", default_sf, usage);
    let n: u64 = cli_arg(2, "query count", default_n, usage);
    if !sf.is_finite() || sf <= 0.0 {
        cli_usage_error(&format!("scale factor must be positive, got {sf}"), usage);
    }
    if n == 0 {
        cli_usage_error("query count must be positive", usage);
    }
    (sf, n)
}

/// Usage block for the common figure-harness CLI.
const SCALE_USAGE: &str =
    "{bin} [scale_factor] [num_queries]\n       defaults: scale_factor 2500, num_queries 500000";

/// Parses the figure harness's `[sf] [num_queries]` CLI arguments with
/// the paper-scale defaults.
///
/// Missing arguments fall back to the paper-scale defaults; present but
/// unparseable or out-of-domain arguments print a usage error and exit
/// non-zero (rather than panicking a worker thread later in config
/// validation).
#[must_use]
pub fn cli_scale() -> (f64, u64) {
    scale_args(crate::DEFAULT_SF, crate::DEFAULT_QUERIES, SCALE_USAGE)
}
