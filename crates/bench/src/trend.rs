//! Perf-trend tooling over the committed `BENCH_*.json` records.
//!
//! Every bench writes a machine-readable `BENCH_<name>.json` at the
//! paper-scale default cell, and those records are committed — one per
//! PR that re-measured. This module turns that history into a review
//! artifact: for each record it extracts a **headline throughput**
//! (queries/second), walks the record's git history for the trajectory,
//! and flags regressions. The `trend` binary prints one line per bench;
//! `trend --check` (CI) exits non-zero when the working-tree record
//! regresses against the last committed one, when the committed
//! `fleet_scale` quote-thread sweep contains rows below its own
//! sequential baseline, when its health-sweep row shows the vitals
//! snapshots perturbing the run (aggregates drifting bitwise from the
//! snapshots-off baseline, or throughput leaking), or when a committed
//! `fleet_faults` record violates its fault-plane claims (a ledger
//! replay that no longer reconciles, an elastic fleet that no longer
//! beats the static one on cost through a crash, or a drift-alarm
//! fixture that cries wolf on fault-free cells or goes blind on the
//! degraded one).

use serde::Value;

/// Relative throughput drop treated as a regression (5 %): small enough
/// to catch real slides, large enough to ignore run-to-run noise in the
/// committed records.
pub const REGRESSION_TOLERANCE: f64 = 0.05;

/// The headline queries/second of one parsed `BENCH_*.json` document:
/// the whole-run `config.queries_per_sec` when the bench records one
/// (the figure harness), otherwise the first cell's `qps` (grid benches
/// like `fleet_scale` and `hotpath`, whose first cell is the
/// single-threaded baseline).
#[must_use]
pub fn headline_qps(doc: &Value) -> Option<f64> {
    if let Some(qps) = doc.get("config").and_then(|c| c.get("queries_per_sec")) {
        return qps.as_f64();
    }
    doc.get("cells")?
        .as_seq()?
        .iter()
        .find_map(|cell| cell.get("qps").and_then(Value::as_f64))
}

/// Relative rep spread of one record cell — `(best − min) / best` from
/// its `qps` / `qps_min` keys; `None` when the cell carries no spread
/// (or a zero best). The single definition both the headline check and
/// the quote-sweep check measure noise with.
#[must_use]
pub fn cell_spread(cell: &Value) -> Option<f64> {
    let best = cell.get("qps")?.as_f64()?;
    let min = cell.get("qps_min")?.as_f64()?;
    (best > 0.0).then(|| ((best - min) / best).max(0.0))
}

/// Relative rep spread of the headline cell — [`cell_spread`] of the
/// first cell carrying one. Grid benches record each cell's best *and*
/// min/median over interleaved reps precisely so this check can tell
/// run-to-run machine noise from a real slide: a step down that stays
/// inside the record's own measured spread is noise, not a regression.
/// `None` for records without per-cell spreads (the figure harness'
/// whole-run headline).
#[must_use]
pub fn headline_spread(doc: &Value) -> Option<f64> {
    doc.get("cells")?.as_seq()?.iter().find_map(cell_spread)
}

/// Quote-thread-sweep regression rows of a `fleet_scale` record: every
/// `quote-thread-sweep` cell whose q/s falls below the record's own
/// sequential baseline (the `shards 1, quote_threads 1` cell) by more
/// than the noise band — [`REGRESSION_TOLERANCE`] widened to the rep
/// spread of both cells when the record carries `qps_min`. Dips inside
/// the band are measurement noise between cells running identical code
/// (on a saturated single-core runner the spread routinely exceeds the
/// blanket 5 %), while the regression this check exists for was an 87 %
/// collapse. Returns one human-readable description per offending row;
/// empty for records of other benches.
#[must_use]
pub fn quote_sweep_regressions(doc: &Value) -> Vec<String> {
    let Some(cells) = doc.get("cells").and_then(Value::as_seq) else {
        return Vec::new();
    };
    let rel_spread = |cell: &Value| -> f64 { cell_spread(cell).unwrap_or(0.0) };
    let baseline = cells.iter().find_map(|cell| {
        let shards = cell.get("shards")?.as_f64()?;
        let threads = cell.get("quote_threads")?.as_f64()?;
        if shards == 1.0 && threads == 1.0 {
            Some((cell.get("qps")?.as_f64()?, rel_spread(cell)))
        } else {
            None
        }
    });
    let Some((baseline, baseline_spread)) = baseline else {
        return Vec::new();
    };
    cells
        .iter()
        .filter(|cell| cell.get("sweep").and_then(Value::as_str) == Some("quote-thread-sweep"))
        .filter_map(|cell| {
            let threads = cell.get("quote_threads")?.as_f64()?;
            let qps = cell.get("qps")?.as_f64()?;
            let tolerance = REGRESSION_TOLERANCE
                .max(baseline_spread)
                .max(rel_spread(cell));
            (qps < baseline * (1.0 - tolerance)).then(|| {
                format!(
                    "quote_threads={threads:.0} at {qps:.0} q/s falls below the \
                     1-thread baseline ({baseline:.0} q/s) beyond the {:.1}% noise band",
                    tolerance * 100.0
                )
            })
        })
        .collect()
}

/// Completion-path regression of a `fleet_scale` record: the recorded
/// default completion path (batched, `batching: true`) must also be the
/// fastest one. Any `batching: false` reference row beating the *best*
/// batched row beyond the spread-widened noise band means the default
/// ships the slower path — exactly the inversion the committed PR 7
/// record carried (per-node 51.2k q/s over batched 50.4k). Records
/// without a `batching` column (other benches) produce no flags.
#[must_use]
pub fn completion_path_regressions(doc: &Value) -> Vec<String> {
    let Some(cells) = doc.get("cells").and_then(Value::as_seq) else {
        return Vec::new();
    };
    let rel_spread = |cell: &Value| -> f64 { cell_spread(cell).unwrap_or(0.0) };
    let batched: Vec<&Value> = cells
        .iter()
        .filter(|c| c.get("batching").and_then(Value::as_bool) == Some(true))
        .collect();
    let Some((best_batched, batched_spread)) = batched
        .iter()
        .filter_map(|c| Some((c.get("qps")?.as_f64()?, rel_spread(c))))
        .max_by(|a, b| a.0.total_cmp(&b.0))
    else {
        return Vec::new();
    };
    cells
        .iter()
        .filter(|c| c.get("batching").and_then(Value::as_bool) == Some(false))
        .filter_map(|cell| {
            let qps = cell.get("qps")?.as_f64()?;
            let threads = cell.get("quote_threads")?.as_f64()?;
            let tolerance = REGRESSION_TOLERANCE
                .max(batched_spread)
                .max(rel_spread(cell));
            (qps > best_batched * (1.0 + tolerance)).then(|| {
                format!(
                    "per-node completion at quote_threads={threads:.0} measures {qps:.0} q/s, \
                     beating the best batched row ({best_batched:.0} q/s) beyond the {:.1}% \
                     noise band — the recorded default is not the fastest path",
                    tolerance * 100.0
                )
            })
        })
        .collect()
}

/// Pinning-invariance regression of a `fleet_scale` record: core
/// affinity is a placement hint, so a record carrying a `pinning` column
/// must show bit-identical economic aggregates (`total_cost_usd`,
/// `mean_response_s`, `builds`) between its pinned and unpinned rows.
/// The live run gates this bitwise before writing; this check keeps the
/// *committed* record honest between re-measurements. Historical records
/// without the column (pre-pinning) produce no flags.
#[must_use]
pub fn pinning_invariance_regressions(doc: &Value) -> Vec<String> {
    let Some(cells) = doc.get("cells").and_then(Value::as_seq) else {
        return Vec::new();
    };
    let row = |pin: bool| -> Option<&Value> {
        cells
            .iter()
            .find(|c| c.get("pinning").and_then(Value::as_bool) == Some(pin))
    };
    let (Some(on), Some(off)) = (row(true), row(false)) else {
        return Vec::new();
    };
    ["total_cost_usd", "mean_response_s", "builds"]
        .iter()
        .filter_map(|key| {
            let a = on.get(key)?.as_f64()?;
            let b = off.get(key)?.as_f64()?;
            (a.to_bits() != b.to_bits()).then(|| {
                format!("{key} differs between pinned ({a}) and unpinned ({b}) rows — affinity must not affect results")
            })
        })
        .collect()
}

/// Health-plane regression rows of a `fleet_scale` record: the vitals
/// scraper and SLO ledger are pure observers, so a record carrying a
/// `health-sweep` row must show bit-identical economic aggregates
/// between that row (snapshots on) and the sequential baseline
/// (snapshots off), and the row's throughput must stay inside the
/// noise band of the baseline — the snapshot path stays off the hot
/// path or it is a regression. The live run gates the bit-identity
/// before writing; this check keeps the *committed* record honest
/// between re-measurements. Historical records without the row
/// (pre-health-plane) produce no flags.
#[must_use]
pub fn health_sweep_regressions(doc: &Value) -> Vec<String> {
    let Some(cells) = doc.get("cells").and_then(Value::as_seq) else {
        return Vec::new();
    };
    let Some(health) = cells
        .iter()
        .find(|c| c.get("sweep").and_then(Value::as_str) == Some("health-sweep"))
    else {
        return Vec::new();
    };
    let baseline = cells.iter().find(|cell| {
        let shards = cell.get("shards").and_then(Value::as_f64);
        let threads = cell.get("quote_threads").and_then(Value::as_f64);
        let sweep = cell.get("sweep").and_then(Value::as_str);
        shards == Some(1.0) && threads == Some(1.0) && sweep != Some("health-sweep")
    });
    let Some(baseline) = baseline else {
        return Vec::new();
    };
    let mut flags: Vec<String> = ["total_cost_usd", "mean_response_s", "builds"]
        .iter()
        .filter_map(|key| {
            let on = health.get(key)?.as_f64()?;
            let off = baseline.get(key)?.as_f64()?;
            (on.to_bits() != off.to_bits()).then(|| {
                format!(
                    "{key} differs between snapshots-on ({on}) and snapshots-off ({off}) rows — \
                     the health plane must be a pure observer"
                )
            })
        })
        .collect();
    if let (Some(on_qps), Some(off_qps)) = (
        health.get("qps").and_then(Value::as_f64),
        baseline.get("qps").and_then(Value::as_f64),
    ) {
        let tolerance = REGRESSION_TOLERANCE
            .max(cell_spread(health).unwrap_or(0.0))
            .max(cell_spread(baseline).unwrap_or(0.0));
        if on_qps < off_qps * (1.0 - tolerance) {
            flags.push(format!(
                "health-sweep at {on_qps:.0} q/s falls below the snapshots-off baseline \
                 ({off_qps:.0} q/s) beyond the {:.1}% noise band — snapshots leaked onto \
                 the hot path",
                tolerance * 100.0
            ));
        }
    }
    flags
}

/// A named counter from the record's committed registry snapshot
/// (`config.registry.entries[]`), e.g. `pool.pinned_workers` or
/// `plan_cache.victim_hits`. `None` when the record predates the key —
/// absence is fine, historical records are not re-measured.
#[must_use]
pub fn registry_counter(doc: &Value, name: &str) -> Option<f64> {
    doc.get("config")?
        .get("registry")?
        .get("entries")?
        .as_seq()?
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some(name))?
        .get("value")?
        .get("Counter")?
        .get("value")?
        .as_f64()
}

/// Fault-plane regression rows of a `fleet_faults` record: the claims
/// the committed record pins, re-checked from the record itself so they
/// cannot silently rot between re-measurements. (1) Every recovery in
/// every cell reconciled exactly — `reconciled` equals `recoveries` —
/// because a drifting ledger replay is a correctness bug, not noise.
/// (2) In the crash scenario the elastic fleet beats the static fleet
/// on total operating cost: surviving the crash via the population
/// floor must not cost extra. (3) In the cascade pair, capital-
/// preserving evacuation salvages real capital and its ledgered loss —
/// write-off *plus* the full eq. 12 transfer bill — stays below the
/// pure write-off of the identical cascade (salvage-beats-write-off
/// ordering). (4) The evacuating elastic fleet also wins on loss-
/// adjusted total cost (operating + builds + capital destroyed).
/// Records that predate the cascade rows produce no cascade flags.
/// Returns one human-readable description per violated claim; empty
/// for records of other benches.
#[must_use]
pub fn fault_plane_regressions(doc: &Value) -> Vec<String> {
    if doc.get("bench").and_then(Value::as_str) != Some("fleet_faults") {
        return Vec::new();
    }
    let Some(cells) = doc.get("cells").and_then(Value::as_seq) else {
        return Vec::new();
    };
    let mut flags = Vec::new();
    for cell in cells {
        let (Some(recoveries), Some(reconciled)) = (
            cell.get("recoveries").and_then(Value::as_f64),
            cell.get("reconciled").and_then(Value::as_f64),
        ) else {
            continue;
        };
        if reconciled < recoveries {
            let scenario = cell.get("scenario").and_then(Value::as_str).unwrap_or("?");
            let mode = cell.get("mode").and_then(Value::as_str).unwrap_or("?");
            flags.push(format!(
                "{scenario}/{mode}: only {reconciled:.0} of {recoveries:.0} ledger replays reconciled"
            ));
        }
    }
    let cell_value = |scenario: &str, mode: &str, key: &str| {
        cells.iter().find_map(|cell| {
            if cell.get("scenario").and_then(Value::as_str) == Some(scenario)
                && cell.get("mode").and_then(Value::as_str) == Some(mode)
            {
                cell.get(key).and_then(Value::as_f64)
            } else {
                None
            }
        })
    };
    if let (Some(st), Some(el)) = (
        cell_value("crash", "static", "total_cost_usd"),
        cell_value("crash", "elastic", "total_cost_usd"),
    ) {
        if el >= st {
            flags.push(format!(
                "crash scenario: elastic-with-respawn at ${el:.4} no longer beats \
                 static-with-crash (${st:.4})"
            ));
        }
    }
    // The evacuation claims, gated only when the record carries the
    // cascade pair (historical records predate it).
    let evac = |key: &str| cell_value("cascade-evacuate", "elastic", key);
    let casc = |key: &str| cell_value("cascade", "elastic", key);
    if let (Some(ewo), Some(sal), Some(tr), Some(cwo)) = (
        evac("write_off_usd"),
        evac("salvaged_usd"),
        evac("transfer_usd"),
        casc("write_off_usd"),
    ) {
        if sal <= 0.0 {
            flags.push(format!(
                "cascade-evacuate/elastic: evacuation salvaged nothing (${sal:.4})"
            ));
        }
        if ewo + tr >= cwo {
            flags.push(format!(
                "cascade scenario: evacuation loss ${ewo:.4} + ${tr:.4} transfers no longer \
                 beats the pure write-off (${cwo:.4})"
            ));
        }
        if let (Some(ecost), Some(ccost), Some(cwo2)) = (
            evac("total_cost_usd"),
            casc("total_cost_usd"),
            casc("write_off_usd"),
        ) {
            if ecost + ewo >= ccost + cwo2 {
                flags.push(format!(
                    "cascade scenario: elastic-with-evacuation loss-adjusted cost \
                     ${:.4} no longer beats elastic-with-write-off (${:.4})",
                    ecost + ewo,
                    ccost + cwo2
                ));
            }
        }
    }
    // The drift-alarm fixture, gated only when the record carries the
    // `drift_alarms` column (historical records predate the health
    // plane): fault-free cells must stay alarm-silent — a detector that
    // cries wolf on a healthy fleet is useless — and the 6x degraded
    // elastic cell must burn the p99 budget past the e-value threshold.
    let alarm = |scenario: &str, mode: &str| cell_value(scenario, mode, "drift_alarms");
    if let (Some(none_static), Some(none_elastic), Some(degraded_elastic)) = (
        alarm("none", "static"),
        alarm("none", "elastic"),
        alarm("degraded", "elastic"),
    ) {
        if none_static > 0.0 || none_elastic > 0.0 {
            flags.push(format!(
                "none scenario: fault-free run raised {:.0} drift alarm(s) — the detector \
                 cries wolf",
                none_static.max(none_elastic)
            ));
        }
        if degraded_elastic < 1.0 {
            flags.push(
                "degraded/elastic: 6x degradation raised no drift alarm — the detector is blind"
                    .to_string(),
            );
        }
    }
    flags
}

/// Runs `git` with `args` in the current directory, returning stdout on
/// success.
#[must_use]
pub fn git(args: &[&str]) -> Option<String> {
    let out = std::process::Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout).ok()
}

/// The abbreviated hashes of every commit that touched `path`, oldest
/// first; empty when git (or any history) is unavailable.
#[must_use]
pub fn record_history(path: &str) -> Vec<String> {
    git(&["log", "--format=%h", "--reverse", "--", path])
        .map(|out| out.lines().map(str::to_string).collect())
        .unwrap_or_default()
}

/// The record's content as committed at `rev`.
#[must_use]
pub fn record_at(rev: &str, path: &str) -> Option<String> {
    git(&["show", &format!("{rev}:{path}")])
}

/// One bench's assembled trend line.
#[derive(Debug)]
pub struct BenchTrend {
    /// Record file name (`BENCH_<name>.json`).
    pub file: String,
    /// Headline q/s at each commit touching the record, oldest first,
    /// with the working-tree value appended when it differs from the
    /// last committed content.
    pub points: Vec<f64>,
    /// Relative change of the last step (`points[n-1]` vs
    /// `points[n-2]`); 0 for single-point histories.
    pub last_delta: f64,
    /// The tolerance the last step was held to:
    /// [`REGRESSION_TOLERANCE`] widened to the larger of the two
    /// endpoints' recorded rep spreads ([`headline_spread`]) — a noisy
    /// runner's spread is visible in its committed record, and a drop
    /// within that spread is noise by the record's own measurement.
    pub tolerance: f64,
    /// True when the last step regresses beyond [`Self::tolerance`].
    pub regressed: bool,
    /// Offending `fleet_scale` quote-sweep rows in the newest content
    /// (empty for other benches and healthy records).
    pub sweep_regressions: Vec<String>,
    /// `fleet_scale` rows showing the recorded default completion path
    /// is not the fastest one (empty for other benches and healthy
    /// records).
    pub completion_regressions: Vec<String>,
    /// `fleet_scale` pinned-vs-unpinned rows whose economic aggregates
    /// differ — affinity leaked into results (empty for records without
    /// a `pinning` column and for healthy records).
    pub pinning_regressions: Vec<String>,
    /// `fleet_scale` health-sweep violations — the snapshots-on row
    /// disagreeing with the snapshots-off baseline on economic
    /// aggregates, or its throughput falling out of the noise band
    /// (empty for records without the row and for healthy records).
    pub health_regressions: Vec<String>,
    /// Violated `fleet_faults` fault-plane claims in the newest content
    /// — unreconciled ledger replays or a crash scenario where the
    /// elastic fleet no longer beats the static one on cost (empty for
    /// other benches and healthy records).
    pub fault_regressions: Vec<String>,
    /// Parse failure, if the newest content was unreadable.
    pub error: Option<String>,
}

impl BenchTrend {
    /// The failure description for a regressed headline, naming the
    /// metric, its newest value, the baseline it is held to, the
    /// relative drop and the tolerance it exceeded — a `--check` failure
    /// must say exactly what slid and by how much, not just that
    /// *something* did. `None` while the last step is within tolerance.
    #[must_use]
    pub fn regression_message(&self) -> Option<String> {
        if !self.regressed || self.points.len() < 2 {
            return None;
        }
        let current = self.points[self.points.len() - 1];
        let baseline = self.points[self.points.len() - 2];
        Some(format!(
            "headline q/s regressed: {current:.0} q/s vs committed baseline {baseline:.0} q/s \
             ({:+.1}%), exceeding the {:.1}% tolerance",
            self.last_delta * 100.0,
            self.tolerance * 100.0
        ))
    }
}

/// Judges the last step of a headline trend, returning the tolerance it
/// was held to and whether it counts as a regression.
///
/// Either endpoint's own measured noise can explain a step down, so the
/// tolerance is [`REGRESSION_TOLERANCE`] widened to the larger of the
/// two endpoints' recorded rep spreads. A step beyond even that is
/// still forgiven when the new best lands inside the previous record's
/// own delivery envelope: the committed record's worst rep
/// (`prev * (1 - spread_prev)`) is throughput the runner demonstrably
/// produced while measuring that very record, so a new best above that
/// floor (less the blanket tolerance) is cross-session runner drift,
/// not a code regression. A genuine collapse clears both bars.
fn headline_step(prev: f64, cur: f64, spread_prev: f64, spread_cur: f64) -> (f64, bool) {
    let tolerance = REGRESSION_TOLERANCE.max(spread_prev).max(spread_cur);
    let delta = if prev > 0.0 { (cur - prev) / prev } else { 0.0 };
    let prev_floor = prev * (1.0 - spread_prev) * (1.0 - REGRESSION_TOLERANCE);
    (tolerance, delta < -tolerance && cur < prev_floor)
}

/// Assembles the trend of one record file from its git history plus the
/// working-tree content.
#[must_use]
pub fn bench_trend(file: &str) -> BenchTrend {
    let mut points = Vec::new();
    // Per-point rep spreads, parallel to `points` (0 when unrecorded).
    let mut spreads = Vec::new();
    let mut last_committed_content: Option<String> = None;
    for rev in record_history(file) {
        if let Some(content) = record_at(&rev, file) {
            if let Ok(doc) = serde_json::from_str::<Value>(&content) {
                if let Some(qps) = headline_qps(&doc) {
                    points.push(qps);
                    spreads.push(headline_spread(&doc).unwrap_or(0.0));
                }
            }
            last_committed_content = Some(content);
        }
    }

    let working = std::fs::read_to_string(file);
    let mut error = None;
    let mut sweep_regressions = Vec::new();
    let mut completion_regressions = Vec::new();
    let mut pinning_regressions = Vec::new();
    let mut health_regressions = Vec::new();
    let mut fault_regressions = Vec::new();
    match &working {
        Ok(content) => match serde_json::from_str::<Value>(content) {
            Ok(doc) => {
                sweep_regressions = quote_sweep_regressions(&doc);
                completion_regressions = completion_path_regressions(&doc);
                pinning_regressions = pinning_invariance_regressions(&doc);
                health_regressions = health_sweep_regressions(&doc);
                fault_regressions = fault_plane_regressions(&doc);
                match headline_qps(&doc) {
                    Some(qps) => {
                        // Count the working tree as a point only when it
                        // differs from the last committed content, so a
                        // clean checkout's trend is purely historical.
                        if last_committed_content.as_deref() != Some(content.as_str()) {
                            points.push(qps);
                            spreads.push(headline_spread(&doc).unwrap_or(0.0));
                        }
                    }
                    None => error = Some("no headline q/s in record".to_string()),
                }
            }
            Err(e) => error = Some(format!("unparseable: {e}")),
        },
        Err(e) => error = Some(format!("unreadable: {e}")),
    }

    let last_delta = if points.len() >= 2 {
        let prev = points[points.len() - 2];
        if prev > 0.0 {
            (points[points.len() - 1] - prev) / prev
        } else {
            0.0
        }
    } else {
        0.0
    };
    let (tolerance, regressed) = if points.len() >= 2 {
        headline_step(
            points[points.len() - 2],
            points[points.len() - 1],
            spreads[spreads.len() - 2],
            spreads[spreads.len() - 1],
        )
    } else {
        (REGRESSION_TOLERANCE, false)
    };
    BenchTrend {
        file: file.to_string(),
        regressed,
        points,
        last_delta,
        tolerance,
        sweep_regressions,
        completion_regressions,
        pinning_regressions,
        health_regressions,
        fault_regressions,
        error,
    }
}

/// The committed `BENCH_*.json` record files in the working directory,
/// sorted by name.
#[must_use]
pub fn record_files() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .map(|dir| {
            dir.filter_map(Result::ok)
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Value {
        serde_json::from_str(json).expect("test json")
    }

    #[test]
    fn headline_prefers_config_throughput() {
        let doc = parse(
            r#"{"bench": "fig6", "config": {"queries_per_sec": 41000},
                "cells": [{"qps": 9}]}"#,
        );
        assert_eq!(headline_qps(&doc), Some(41000.0));
    }

    #[test]
    fn headline_falls_back_to_first_cell_qps() {
        let doc = parse(
            r#"{"bench": "fleet_scale", "config": {"nodes": 8},
                "cells": [{"shards": 1, "qps": 45557}, {"shards": 2, "qps": 44000}]}"#,
        );
        assert_eq!(headline_qps(&doc), Some(45557.0));
    }

    #[test]
    fn quote_sweep_regressions_flag_rows_below_baseline() {
        let doc = parse(
            r#"{"cells": [
                {"sweep": "shard-sweep", "shards": 1, "quote_threads": 1, "qps": 45557},
                {"sweep": "quote-thread-sweep", "shards": 1, "quote_threads": 2, "qps": 46000},
                {"sweep": "quote-thread-sweep", "shards": 1, "quote_threads": 8, "qps": 5908}
            ]}"#,
        );
        let flags = quote_sweep_regressions(&doc);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].contains("quote_threads=8"));
    }

    #[test]
    fn non_fleet_records_have_no_sweep_regressions() {
        let doc = parse(r#"{"cells": [{"a": 0.1, "total_cost_usd": 3.2}]}"#);
        assert!(quote_sweep_regressions(&doc).is_empty());
        assert!(completion_path_regressions(&doc).is_empty());
        assert!(pinning_invariance_regressions(&doc).is_empty());
        assert!(health_sweep_regressions(&doc).is_empty());
    }

    #[test]
    fn completion_path_flags_per_node_beating_the_batched_default() {
        // The PR 7 inversion: per-node 51,585 over best batched 50,414 is
        // inside the rows' own rep spread, so it is noise, not a flag …
        let committed = parse(
            r#"{"cells": [
                {"sweep": "shard-sweep", "shards": 1, "quote_threads": 1, "batching": true,
                 "qps": 50414, "qps_min": 40472},
                {"sweep": "per-node-completion", "shards": 1, "quote_threads": 8,
                 "batching": false, "qps": 51585, "qps_min": 43077}
            ]}"#,
        );
        assert!(completion_path_regressions(&committed).is_empty());
        // … but a per-node row clearing the band means the recorded
        // default ships the slower path.
        let inverted = parse(
            r#"{"cells": [
                {"sweep": "shard-sweep", "shards": 1, "quote_threads": 1, "batching": true,
                 "qps": 50000, "qps_min": 49000},
                {"sweep": "per-node-completion", "shards": 1, "quote_threads": 1,
                 "batching": false, "qps": 60000, "qps_min": 59000}
            ]}"#,
        );
        let flags = completion_path_regressions(&inverted);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].contains("not the fastest path"), "{flags:?}");
    }

    #[test]
    fn pinning_rows_must_agree_on_every_economic_aggregate() {
        let healthy = parse(
            r#"{"cells": [
                {"sweep": "pinning-sweep", "pinning": true, "qps": 52000,
                 "total_cost_usd": 1.2345, "mean_response_s": 0.017, "builds": 283},
                {"sweep": "pinning-sweep", "pinning": false, "qps": 50000,
                 "total_cost_usd": 1.2345, "mean_response_s": 0.017, "builds": 283}
            ]}"#,
        );
        assert!(pinning_invariance_regressions(&healthy).is_empty());
        let leaky = parse(
            r#"{"cells": [
                {"pinning": true, "total_cost_usd": 1.2345, "mean_response_s": 0.017, "builds": 283},
                {"pinning": false, "total_cost_usd": 1.2399, "mean_response_s": 0.017, "builds": 284}
            ]}"#,
        );
        let flags = pinning_invariance_regressions(&leaky);
        assert_eq!(flags.len(), 2, "{flags:?}");
        assert!(flags[0].contains("total_cost_usd"), "{flags:?}");
        assert!(flags[1].contains("builds"), "{flags:?}");
    }

    #[test]
    fn health_sweep_rows_must_match_the_baseline_bitwise() {
        let healthy = parse(
            r#"{"cells": [
                {"sweep": "shard-sweep", "shards": 1, "quote_threads": 1, "qps": 50000,
                 "total_cost_usd": 1.2345, "mean_response_s": 0.017, "builds": 283},
                {"sweep": "health-sweep", "shards": 1, "quote_threads": 1, "qps": 49000,
                 "total_cost_usd": 1.2345, "mean_response_s": 0.017, "builds": 283}
            ]}"#,
        );
        assert!(health_sweep_regressions(&healthy).is_empty());
        // Aggregates drifting or throughput collapsing on the
        // snapshots-on row both flag.
        let leaky = parse(
            r#"{"cells": [
                {"sweep": "shard-sweep", "shards": 1, "quote_threads": 1, "qps": 50000,
                 "total_cost_usd": 1.2345, "mean_response_s": 0.017, "builds": 283},
                {"sweep": "health-sweep", "shards": 1, "quote_threads": 1, "qps": 30000,
                 "total_cost_usd": 1.2399, "mean_response_s": 0.017, "builds": 283}
            ]}"#,
        );
        let flags = health_sweep_regressions(&leaky);
        assert_eq!(flags.len(), 2, "{flags:?}");
        assert!(flags[0].contains("total_cost_usd"), "{flags:?}");
        assert!(flags[1].contains("hot path"), "{flags:?}");
        // Records from before the health plane carry no row and are
        // never held to the claim.
        let legacy = parse(
            r#"{"cells": [{"sweep": "shard-sweep", "shards": 1, "quote_threads": 1,
                 "qps": 50000, "total_cost_usd": 1.2345}]}"#,
        );
        assert!(health_sweep_regressions(&legacy).is_empty());
    }

    #[test]
    fn fault_plane_checks_the_drift_alarm_fixture() {
        // A wolf-crying detector (alarms on `none`) and a blind one (no
        // alarm on degraded) both flag; a healthy fixture passes.
        let broken = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "none", "mode": "static", "drift_alarms": 2},
                {"scenario": "none", "mode": "elastic", "drift_alarms": 0},
                {"scenario": "degraded", "mode": "elastic", "drift_alarms": 0}
            ]}"#,
        );
        let flags = fault_plane_regressions(&broken);
        assert_eq!(flags.len(), 2, "{flags:?}");
        assert!(flags[0].contains("cries wolf"), "{flags:?}");
        assert!(flags[1].contains("blind"), "{flags:?}");
        let healthy = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "none", "mode": "static", "drift_alarms": 0},
                {"scenario": "none", "mode": "elastic", "drift_alarms": 0},
                {"scenario": "degraded", "mode": "elastic", "drift_alarms": 56}
            ]}"#,
        );
        assert!(fault_plane_regressions(&healthy).is_empty());
        // Records predating the column are never held to the claim.
        let legacy = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "none", "mode": "static", "total_cost_usd": 18.0}
            ]}"#,
        );
        assert!(fault_plane_regressions(&legacy).is_empty());
    }

    #[test]
    fn registry_counters_tolerate_historical_absence() {
        let doc = parse(
            r#"{"config": {"registry": {"entries": [
                {"name": "pool.pinned_workers", "value": {"Counter": {"value": 7}}},
                {"name": "fleet.payments", "value": {"Gauge": {"amount": 12}}}
            ]}}}"#,
        );
        assert_eq!(registry_counter(&doc, "pool.pinned_workers"), Some(7.0));
        // Absent key, non-counter kind, and pre-registry records all read
        // as None rather than flagging.
        assert_eq!(registry_counter(&doc, "plan_cache.victim_hits"), None);
        assert_eq!(registry_counter(&doc, "fleet.payments"), None);
        assert_eq!(registry_counter(&parse(r#"{"cells": []}"#), "x"), None);
    }

    #[test]
    fn fault_plane_flags_unreconciled_replays() {
        let doc = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "crash-recover", "mode": "static", "recoveries": 8, "reconciled": 8},
                {"scenario": "crash-recover", "mode": "elastic", "recoveries": 8, "reconciled": 5}
            ]}"#,
        );
        let flags = fault_plane_regressions(&doc);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].contains("crash-recover/elastic"), "{flags:?}");
        assert!(flags[0].contains("5 of 8"), "{flags:?}");
    }

    #[test]
    fn fault_plane_flags_cost_claim_inversion() {
        let doc = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "crash", "mode": "static", "total_cost_usd": 10.0},
                {"scenario": "crash", "mode": "elastic", "total_cost_usd": 12.5}
            ]}"#,
        );
        let flags = fault_plane_regressions(&doc);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].contains("no longer beats"), "{flags:?}");
    }

    #[test]
    fn fault_plane_flags_salvage_ordering_inversion() {
        // Evacuation that salvages nothing AND whose loss line exceeds
        // the pure write-off trips both cascade gates.
        let doc = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "cascade", "mode": "elastic", "total_cost_usd": 10.0,
                 "write_off_usd": 0.20},
                {"scenario": "cascade-evacuate", "mode": "elastic", "total_cost_usd": 10.1,
                 "write_off_usd": 0.18, "salvaged_usd": 0.0, "transfer_usd": 0.05}
            ]}"#,
        );
        let flags = fault_plane_regressions(&doc);
        assert_eq!(flags.len(), 3, "{flags:?}");
        assert!(flags[0].contains("salvaged nothing"), "{flags:?}");
        assert!(
            flags[1].contains("no longer beats the pure write-off"),
            "{flags:?}"
        );
        assert!(flags[2].contains("loss-adjusted cost"), "{flags:?}");
    }

    #[test]
    fn fault_plane_accepts_healthy_cascade_pair_and_legacy_records() {
        let healthy = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "cascade", "mode": "elastic", "total_cost_usd": 10.0,
                 "write_off_usd": 0.20},
                {"scenario": "cascade-evacuate", "mode": "elastic", "total_cost_usd": 10.01,
                 "write_off_usd": 0.03, "salvaged_usd": 0.02, "transfer_usd": 0.15}
            ]}"#,
        );
        assert!(fault_plane_regressions(&healthy).is_empty());
        // A record from before the cascade rows existed is never held to
        // the evacuation claims.
        let legacy = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "crash", "mode": "static", "total_cost_usd": 18.0},
                {"scenario": "crash", "mode": "elastic", "total_cost_usd": 11.8}
            ]}"#,
        );
        assert!(fault_plane_regressions(&legacy).is_empty());
    }

    #[test]
    fn healthy_fault_records_and_other_benches_pass() {
        let healthy = parse(
            r#"{"bench": "fleet_faults", "cells": [
                {"scenario": "crash", "mode": "static", "total_cost_usd": 18.0,
                 "recoveries": 0, "reconciled": 0},
                {"scenario": "crash", "mode": "elastic", "total_cost_usd": 11.8,
                 "recoveries": 0, "reconciled": 0},
                {"scenario": "crash-recover", "mode": "elastic", "recoveries": 8, "reconciled": 8}
            ]}"#,
        );
        assert!(fault_plane_regressions(&healthy).is_empty());
        // A different bench whose cells happen to carry similar keys is
        // never held to the fault-plane claims.
        let other = parse(
            r#"{"bench": "fleet_elastic", "cells": [
                {"scenario": "crash", "mode": "elastic", "total_cost_usd": 99.0}
            ]}"#,
        );
        assert!(fault_plane_regressions(&other).is_empty());
    }

    #[test]
    fn headline_spread_reads_the_first_cell_with_min_and_best() {
        let doc = parse(
            r#"{"cells": [
                {"shards": 1, "qps": 50000, "qps_min": 45000, "qps_median": 48000},
                {"shards": 2, "qps": 52000, "qps_min": 1000}
            ]}"#,
        );
        let spread = headline_spread(&doc).expect("spread recorded");
        assert!((spread - 0.1).abs() < 1e-12, "spread {spread}");
    }

    #[test]
    fn regression_message_names_metric_value_baseline_and_tolerance() {
        let trend = BenchTrend {
            file: "BENCH_hotpath.json".to_string(),
            points: vec![50000.0, 40000.0],
            last_delta: -0.2,
            tolerance: 0.05,
            regressed: true,
            sweep_regressions: Vec::new(),
            completion_regressions: Vec::new(),
            pinning_regressions: Vec::new(),
            health_regressions: Vec::new(),
            fault_regressions: Vec::new(),
            error: None,
        };
        let message = trend.regression_message().expect("regressed");
        assert!(message.contains("headline q/s"), "{message}");
        assert!(message.contains("40000 q/s"), "{message}");
        assert!(message.contains("baseline 50000 q/s"), "{message}");
        assert!(message.contains("-20.0%"), "{message}");
        assert!(message.contains("5.0% tolerance"), "{message}");

        let healthy = BenchTrend {
            regressed: false,
            ..trend
        };
        assert_eq!(healthy.regression_message(), None);
    }

    #[test]
    fn headline_step_forgives_drops_inside_the_previous_envelope() {
        // Previous record: best 50000 with a 10% rep spread, so its own
        // worst rep was 45000. A new best of 43000 is a -14% step —
        // beyond the 10% tolerance — but above the envelope floor
        // (45000 * 0.95 = 42750), so it reads as runner drift.
        let (tolerance, regressed) = headline_step(50000.0, 43000.0, 0.10, 0.08);
        assert!((tolerance - 0.10).abs() < 1e-12, "tolerance {tolerance}");
        assert!(!regressed, "drop inside the previous envelope flagged");

        // Below the floor, the same spread no longer excuses the step.
        let (_, regressed) = headline_step(50000.0, 42000.0, 0.10, 0.08);
        assert!(regressed, "drop beyond the previous envelope forgiven");
    }

    #[test]
    fn headline_step_without_spreads_reduces_to_the_blanket_tolerance() {
        let (tolerance, regressed) = headline_step(50000.0, 47600.0, 0.0, 0.0);
        assert!((tolerance - REGRESSION_TOLERANCE).abs() < 1e-12);
        assert!(!regressed, "-4.8% flagged under a 5% tolerance");
        let (_, regressed) = headline_step(50000.0, 47000.0, 0.0, 0.0);
        assert!(regressed, "-6.0% with no recorded spread forgiven");
    }

    #[test]
    fn headline_spread_is_none_without_rep_records() {
        let doc = parse(r#"{"config": {"queries_per_sec": 41000}, "cells": [{"qps": 9}]}"#);
        assert_eq!(headline_spread(&doc), None);
        let doc = parse(r#"{"cells": [{"qps": 0, "qps_min": 0}]}"#);
        assert_eq!(headline_spread(&doc), None, "zero best is unusable");
    }
}
