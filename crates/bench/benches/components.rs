//! Criterion micro-benches for the hot components of the simulator:
//! budget evaluation, skyline filtering, regret bookkeeping, money
//! arithmetic, the LRU set and workload generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cache::{LruSet, StructureKey};
use catalog::tpch::{tpch_schema, ScaleFactor};
use catalog::ColumnId;
use econ::budget::{BudgetFunction, BudgetShape};
use econ::regret::{RegretAttribution, RegretLedger};
use metrics::CostBreakdown;
use planner::plan::{PlanShape, QueryPlan};
use planner::skyline_filter;
use pricing::Money;
use simcore::sample::Zipf;
use simcore::{SimDuration, SimRng};
use std::sync::Arc;
use workload::{WorkloadConfig, WorkloadGenerator};

fn synthetic_plans(n: usize) -> Vec<QueryPlan> {
    (0..n)
        .map(|i| {
            let t = 1.0 + (i as f64 * 7.3) % 13.0;
            let p = 0.001 + ((i as f64 * 3.1) % 11.0) / 1000.0;
            QueryPlan {
                shape: PlanShape::Backend,
                exec_time: SimDuration::from_secs(t),
                exec_cost: Money::from_dollars(p),
                exec_breakdown: CostBreakdown::ZERO,
                uses: vec![],
                missing: vec![],
                build_cost: Money::ZERO,
                build_time: SimDuration::ZERO,
                amortized_cost: Money::ZERO,
                maintenance_cost: Money::ZERO,
                price: Money::from_dollars(p),
            }
        })
        .collect()
}

fn bench_budget(c: &mut Criterion) {
    let budget = BudgetFunction::of_shape(
        BudgetShape::Concave,
        Money::from_dollars(10.0),
        SimDuration::from_secs(20.0),
    );
    c.bench_function("budget_eval_concave", |b| {
        b.iter(|| budget.value_at(black_box(SimDuration::from_secs(7.5))))
    });
}

fn bench_skyline(c: &mut Criterion) {
    let plans = synthetic_plans(64);
    c.bench_function("skyline_filter_64_plans", |b| {
        b.iter(|| skyline_filter(black_box(plans.clone())))
    });
}

fn bench_regret(c: &mut Criterion) {
    let uses: Vec<StructureKey> = (0..12).map(|i| StructureKey::Column(ColumnId(i))).collect();
    c.bench_function("regret_distribute_12_structures", |b| {
        let mut ledger = RegretLedger::new(512);
        b.iter(|| {
            ledger.distribute(
                black_box(&uses),
                Money::from_dollars(0.01),
                RegretAttribution::FullValue,
            )
        })
    });
}

fn bench_money(c: &mut Criterion) {
    c.bench_function("money_sum_1000", |b| {
        let amounts: Vec<Money> = (0..1000).map(|i| Money::from_nanos(i * 37)).collect();
        b.iter(|| amounts.iter().copied().sum::<Money>())
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_touch_at_capacity_256", |b| {
        let mut lru = LruSet::new(256);
        for i in 0..256u32 {
            lru.touch(i);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            lru.touch(black_box(i % 400))
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(10_000, 1.1);
    let mut rng = SimRng::new(42);
    c.bench_function("zipf_sample_10k_ranks", |b| {
        b.iter(|| zipf.sample(&mut rng))
    });
}

fn bench_workload(c: &mut Criterion) {
    let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
    c.bench_function("workload_next_query", |b| {
        let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 7);
        b.iter(|| black_box(gen.next_query()))
    });
}

criterion_group!(
    benches,
    bench_budget,
    bench_skyline,
    bench_regret,
    bench_money,
    bench_lru,
    bench_zipf,
    bench_workload
);
criterion_main!(benches);
