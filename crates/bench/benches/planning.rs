//! Criterion benches for the planner: full plan enumeration against cold
//! and warm caches at the paper's 2.5 TB scale, and a single economy step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cache::{CacheState, StructureKey};
use catalog::tpch::{tpch_schema, ScaleFactor};
use econ::{EconConfig, EconomyManager};
use planner::enumerate::EnumerationOptions;
use planner::{enumerate_plans, generate_candidates, CostParams, Estimator, PlannerContext};
use pricing::{Money, PriceCatalog};
use simcore::{NetworkModel, SimDuration, SimTime};
use std::sync::Arc;
use workload::{paper_templates, Query, WorkloadConfig, WorkloadGenerator};

struct Fx {
    schema: Arc<catalog::Schema>,
    candidates: Vec<cache::IndexDef>,
    cand_index: planner::CandidateIndex,
    estimator: Estimator,
    queries: Vec<Query>,
}

impl Fx {
    fn new() -> Self {
        let schema = Arc::new(tpch_schema(ScaleFactor(2500.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        let queries: Vec<Query> =
            WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 11)
                .take(256)
                .collect();
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        Fx {
            schema,
            candidates,
            cand_index,
            estimator,
            queries,
        }
    }

    fn ctx(&self) -> PlannerContext<'_> {
        PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        }
    }

    fn warm_cache(&self) -> CacheState {
        let mut cache = CacheState::new();
        for q in &self.queries {
            for c in q.all_columns() {
                let key = StructureKey::Column(c);
                if !cache.contains(key) {
                    cache.install(
                        key,
                        self.schema.column_bytes(c),
                        SimTime::ZERO,
                        SimDuration::ZERO,
                        Money::from_dollars(1.0),
                        10_000,
                    );
                }
            }
        }
        cache
    }
}

fn bench_enumeration(c: &mut Criterion) {
    let fx = Fx::new();
    let ctx = fx.ctx();
    let cold = CacheState::new();
    let warm = fx.warm_cache();
    let now = SimTime::from_secs(100.0);
    let opts = EnumerationOptions::default();

    let mut i = 0;
    c.bench_function("enumerate_plans_cold_cache_sf2500", |b| {
        b.iter(|| {
            i = (i + 1) % fx.queries.len();
            black_box(enumerate_plans(&ctx, &fx.queries[i], &cold, now, opts))
        })
    });
    let mut j = 0;
    c.bench_function("enumerate_plans_warm_cache_sf2500", |b| {
        b.iter(|| {
            j = (j + 1) % fx.queries.len();
            black_box(enumerate_plans(&ctx, &fx.queries[j], &warm, now, opts))
        })
    });
}

fn bench_economy_step(c: &mut Criterion) {
    let fx = Fx::new();
    let ctx = fx.ctx();
    c.bench_function("economy_process_query_sf2500", |b| {
        let mut manager = EconomyManager::new(EconConfig::default());
        let mut gen = WorkloadGenerator::new(Arc::clone(&fx.schema), WorkloadConfig::default(), 23);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            let q = gen.next_query();
            black_box(manager.process_query(&ctx, &q, SimTime::from_secs(t)))
        })
    });
}

criterion_group!(benches, bench_enumeration, bench_economy_step);
criterion_main!(benches);
