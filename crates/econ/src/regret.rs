//! The regret ledger — the paper's `regretS` array.
//!
//! Definition 2: *"The regret for a structure S that is possible new
//! inventory of the cloud represents the accumulated value of the missed
//! chances to provide better quality query services in terms of either
//! performance or cost."*
//!
//! Section IV-C: *"Once the regret of a plan is computed, it is
//! distributed uniformly to every physical structure used by the plan"*,
//! and Section IV-B: the pool of tracked structures is *"garbage collected
//! using LRU policy"*.

use cache::{LruSet, StructureKey};
use pricing::Money;
use serde::{Deserialize, Serialize};

/// How a rejected plan's regret is attributed to its structures.
///
/// The paper's wording — "distributed uniformly to every physical
/// structure used by the plan" — reads as an equal *split*; but
/// Definition 2 ("the accumulated value of the missed chances") supports
/// crediting each absent structure with the *full* missed value, since
/// every one of them was individually necessary for the plan. The split
/// reading divides the signal by the plan width and, combined with the
/// `a · CR` threshold of eq. 3, can freeze investment entirely at the
/// paper's 2.5 TB scale; [`RegretAttribution::FullValue`] is therefore the
/// default, and the ablation harness measures both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegretAttribution {
    /// Equal split: each structure receives `regret / |uses|`.
    UniformShare,
    /// Full credit: each structure receives the entire regret.
    FullValue,
}

/// Accumulated regret per candidate structure, LRU-bounded.
#[derive(Debug, Clone)]
pub struct RegretLedger {
    regrets: std::collections::HashMap<StructureKey, Money>,
    lru: LruSet<StructureKey>,
}

impl RegretLedger {
    /// Creates a ledger tracking at most `pool_capacity` structures.
    ///
    /// # Panics
    /// Panics if `pool_capacity == 0`.
    #[must_use]
    pub fn new(pool_capacity: usize) -> Self {
        RegretLedger {
            regrets: std::collections::HashMap::with_capacity(pool_capacity),
            lru: LruSet::new(pool_capacity),
        }
    }

    /// Distributes a rejected plan's regret over the structures it uses,
    /// per the chosen attribution.
    ///
    /// Touches the structures in the LRU pool; if the pool overflows, the
    /// least-recently-relevant structure is forgotten along with its
    /// accumulated regret (the paper's GC).
    pub fn distribute(
        &mut self,
        uses: &[StructureKey],
        regret: Money,
        attribution: RegretAttribution,
    ) {
        if uses.is_empty() || !regret.is_positive() {
            return;
        }
        let share = match attribution {
            RegretAttribution::UniformShare => regret.amortize_over(uses.len() as u64),
            RegretAttribution::FullValue => regret,
        };
        for &key in uses {
            *self.regrets.entry(key).or_insert(Money::ZERO) += share;
            if let Some(evicted) = self.lru.touch(key) {
                self.regrets.remove(&evicted);
            }
        }
    }

    /// Current regret for a structure (zero if untracked).
    #[must_use]
    pub fn regret_of(&self, key: StructureKey) -> Money {
        self.regrets.get(&key).copied().unwrap_or(Money::ZERO)
    }

    /// Structures whose regret is at least `threshold`, highest first.
    #[must_use]
    pub fn over_threshold(&self, threshold: Money) -> Vec<(StructureKey, Money)> {
        let mut hits: Vec<(StructureKey, Money)> = self
            .regrets
            .iter()
            .filter(|&(_, &r)| r >= threshold && r.is_positive())
            .map(|(&k, &r)| (k, r))
            .collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits
    }

    /// Clears a structure's regret (after investing in it).
    pub fn reset(&mut self, key: StructureKey) {
        self.regrets.remove(&key);
        self.lru.remove(&key);
    }

    /// Number of structures tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regrets.len()
    }

    /// True if nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regrets.is_empty()
    }

    /// Total regret across the pool (diagnostic).
    #[must_use]
    pub fn total(&self) -> Money {
        self.regrets.values().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::ColumnId;

    fn col(i: u32) -> StructureKey {
        StructureKey::Column(ColumnId(i))
    }

    fn m(x: f64) -> Money {
        Money::from_dollars(x)
    }

    #[test]
    fn distributes_uniformly() {
        let mut r = RegretLedger::new(16);
        r.distribute(
            &[col(1), col(2), col(3)],
            m(9.0),
            RegretAttribution::UniformShare,
        );
        assert_eq!(r.regret_of(col(1)), m(3.0));
        assert_eq!(r.regret_of(col(2)), m(3.0));
        assert_eq!(r.regret_of(col(3)), m(3.0));
        assert_eq!(r.total(), m(9.0));
    }

    #[test]
    fn accumulates_across_plans() {
        let mut r = RegretLedger::new(16);
        r.distribute(&[col(1), col(2)], m(4.0), RegretAttribution::UniformShare);
        r.distribute(&[col(1)], m(1.0), RegretAttribution::UniformShare);
        assert_eq!(r.regret_of(col(1)), m(3.0));
        assert_eq!(r.regret_of(col(2)), m(2.0));
    }

    #[test]
    fn zero_and_negative_regret_ignored() {
        let mut r = RegretLedger::new(16);
        r.distribute(&[col(1)], Money::ZERO, RegretAttribution::UniformShare);
        r.distribute(&[col(1)], m(-5.0), RegretAttribution::UniformShare);
        assert!(r.is_empty());
    }

    #[test]
    fn threshold_query_sorted_descending() {
        let mut r = RegretLedger::new(16);
        r.distribute(&[col(1)], m(5.0), RegretAttribution::UniformShare);
        r.distribute(&[col(2)], m(10.0), RegretAttribution::UniformShare);
        r.distribute(&[col(3)], m(1.0), RegretAttribution::UniformShare);
        let hits = r.over_threshold(m(5.0));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], (col(2), m(10.0)));
        assert_eq!(hits[1], (col(1), m(5.0)));
    }

    #[test]
    fn reset_clears_after_investment() {
        let mut r = RegretLedger::new(16);
        r.distribute(&[col(1)], m(5.0), RegretAttribution::UniformShare);
        r.reset(col(1));
        assert_eq!(r.regret_of(col(1)), Money::ZERO);
        assert!(r.is_empty());
    }

    #[test]
    fn lru_gc_forgets_cold_structures() {
        let mut r = RegretLedger::new(2);
        r.distribute(&[col(1)], m(1.0), RegretAttribution::UniformShare);
        r.distribute(&[col(2)], m(1.0), RegretAttribution::UniformShare);
        r.distribute(&[col(3)], m(1.0), RegretAttribution::UniformShare); // evicts col(1)
        assert_eq!(r.regret_of(col(1)), Money::ZERO, "GC dropped it");
        assert_eq!(r.len(), 2);
        assert!(r.regret_of(col(3)).is_positive());
    }

    #[test]
    fn full_value_credits_everyone_entirely() {
        let mut r = RegretLedger::new(16);
        r.distribute(&[col(1), col(2)], m(3.0), RegretAttribution::FullValue);
        assert_eq!(r.regret_of(col(1)), m(3.0));
        assert_eq!(r.regret_of(col(2)), m(3.0));
    }

    #[test]
    fn empty_uses_is_a_noop() {
        let mut r = RegretLedger::new(4);
        r.distribute(&[], m(100.0), RegretAttribution::FullValue);
        assert!(r.is_empty());
    }

    #[test]
    fn remainder_lost_to_rounding_is_bounded() {
        let mut r = RegretLedger::new(16);
        // 10 nano-dollars over 3 structures: 3 each, 1 nano lost.
        r.distribute(
            &[col(1), col(2), col(3)],
            Money::from_nanos(10),
            RegretAttribution::UniformShare,
        );
        assert_eq!(r.total(), Money::from_nanos(9));
    }
}
