//! Plan selection — the case analysis of Section IV-C (Fig. 2).
//!
//! Given the skyline plan set `P_Q` and the user budget `B_Q`:
//!
//! * **Case A** — `B_Q(t) < B_PQ(t)` everywhere: no plan is affordable.
//!   The user is presented with the existing plans and picks one (we model
//!   the paper's criterion — "minimization of user charge" — by picking
//!   the cheapest existing plan); she pays its *price*. Regret (eq. 1) for
//!   each possible plan cheaper than the chosen one.
//! * **Case B** — the budget covers every plan: pick the existing plan
//!   minimising cloud profit `B_Q(t) − B_PQ(t)`; the user pays `B_Q(t)`
//!   and the profit is credited. Regret (eq. 2) for each possible plan
//!   more expensive than the chosen one.
//! * **Case C** — mixed: Case B restricted to the affordable subset `P_QS`.
//!
//! The three *policies* of Section VII-A reuse this machinery with a
//! different tie-break objective among affordable existing plans:
//! econ-cheap picks the cheapest, econ-fast the fastest, and the
//! altruistic default minimises profit.

use planner::{PlanHot, QueryPlan};
use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::budget::BudgetFunction;
use crate::outcome::SelectionCase;

/// How to choose among affordable existing plans (cases B/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionObjective {
    /// The altruistic default of Section IV-C: minimise
    /// `B_Q(t) − B_PQ(t)` (take as little profit as possible).
    MinProfit,
    /// econ-cheap: "the plan with the least cost is chosen".
    Cheapest,
    /// econ-fast: "selects the query plan with the fastest response time".
    Fastest,
}

/// Result of the case analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Which case applied.
    pub case: SelectionCase,
    /// Index (into the input slice) of the plan to execute.
    pub selected: usize,
    /// What the user pays: the plan price in Case A, `B_Q(t)` in B/C.
    pub payment: Money,
    /// `payment − price` (zero in Case A).
    pub profit: Money,
    /// Regret per *possible* plan: `(plan index, regret)` (eqs. 1–2).
    pub regrets: Vec<(usize, Money)>,
}

/// The (time, price, existing) rows the case analysis actually reads —
/// positions `0..len` address `rows[i]`-th entries of the SoA view, so
/// the selection scans touch three dense slices and nothing else.
#[derive(Clone, Copy)]
struct HotRows<'a> {
    hot: &'a PlanHot,
    rows: &'a [usize],
}

impl HotRows<'_> {
    fn len(&self) -> usize {
        self.rows.len()
    }
    fn time(&self, i: usize) -> SimDuration {
        self.hot.time[self.rows[i]]
    }
    fn price(&self, i: usize) -> Money {
        self.hot.price[self.rows[i]]
    }
    fn existing(&self, i: usize) -> bool {
        self.hot.existing[self.rows[i]]
    }
}

/// Runs the case analysis over the skyline `plans`.
///
/// `plans` must be the skyline set (existing and possible mixed); at least
/// one existing plan must be present (the backend plan guarantees this).
/// Generic over plan storage so callers can pass `&[&QueryPlan]` built
/// from skyline indices without cloning the plans. Hot paths skip the
/// projection this wrapper performs and call [`select_plan_hot`] on the
/// SoA view they already hold.
///
/// # Panics
/// Panics if no existing plan is present.
#[must_use]
pub fn select_plan<P: std::borrow::Borrow<QueryPlan>>(
    plans: &[P],
    budget: &BudgetFunction,
    objective: SelectionObjective,
) -> Selection {
    let mut hot = PlanHot::new();
    for p in plans {
        let p = p.borrow();
        hot.time.push(p.exec_time);
        hot.price.push(p.price);
        hot.existing.push(p.is_existing());
    }
    let rows: Vec<usize> = (0..plans.len()).collect();
    select_plan_hot(&hot, &rows, budget, objective)
}

/// The case analysis over a struct-of-arrays plan view: `rows[i]` indexes
/// into `hot` (typically the skyline indices from
/// [`planner::skyline_partition_hot`]), and the returned
/// [`Selection::selected`] / regret indices address positions of `rows`.
/// Bit-identical decisions to [`select_plan`] over the equivalent plans.
///
/// # Panics
/// Panics if no existing plan is present among the rows.
#[must_use]
pub fn select_plan_hot(
    hot: &PlanHot,
    rows: &[usize],
    budget: &BudgetFunction,
    objective: SelectionObjective,
) -> Selection {
    let v = HotRows { hot, rows };
    let (case, selected, payment, profit) = decide(v, budget, objective);
    let regrets = match case {
        SelectionCase::A => regrets_case_a(v, selected),
        SelectionCase::B | SelectionCase::C => regrets_case_bc(v, budget, selected),
    };
    Selection {
        case,
        selected,
        payment,
        profit,
        regrets,
    }
}

/// The decision half of [`select_plan_hot`]: same case analysis, same
/// selected plan, same payment — but no regret list is materialised.
/// Quote rounds only need the bid (`payment`), so the fleet's hot path
/// calls this and skips the per-plan regret allocation entirely; the
/// serving call still runs the full selection.
#[must_use]
pub fn select_payment_hot(
    hot: &PlanHot,
    rows: &[usize],
    budget: &BudgetFunction,
    objective: SelectionObjective,
) -> Money {
    let v = HotRows { hot, rows };
    decide(v, budget, objective).2
}

/// The case analysis proper: which case applies, which plan is selected,
/// what the user pays and what the cloud profits. Shared verbatim by the
/// full selection and the payment-only quote path so the two can never
/// diverge.
///
/// # Panics
/// Panics if no existing plan is present among the rows.
fn decide(
    v: HotRows<'_>,
    budget: &BudgetFunction,
    objective: SelectionObjective,
) -> (SelectionCase, usize, Money, Money) {
    assert!(
        (0..v.len()).any(|i| v.existing(i)),
        "P_exist must not be empty (the backend plan always exists)"
    );

    let affordable = |i: usize| budget.affords(v.time(i), v.price(i));
    let n_affordable = (0..v.len()).filter(|&i| affordable(i)).count();

    if n_affordable == 0 {
        return decide_case_a(v);
    }
    let case = if n_affordable == v.len() {
        SelectionCase::B
    } else {
        SelectionCase::C
    };

    let candidates = (0..v.len()).filter(|&i| v.existing(i) && affordable(i));
    // If every affordable plan is possible-only (needs builds), the query
    // still has to run now: fall back to Case A semantics on P_exist.
    let Some(selected) =
        (match objective {
            SelectionObjective::MinProfit => candidates.min_by(|&a, &b| {
                let pa = budget.value_at(v.time(a)) - v.price(a);
                let pb = budget.value_at(v.time(b)) - v.price(b);
                pa.cmp(&pb).then(v.time(a).cmp(&v.time(b)))
            }),
            SelectionObjective::Cheapest => candidates
                .min_by(|&a, &b| v.price(a).cmp(&v.price(b)).then(v.time(a).cmp(&v.time(b)))),
            SelectionObjective::Fastest => candidates
                .min_by(|&a, &b| v.time(a).cmp(&v.time(b)).then(v.price(a).cmp(&v.price(b)))),
        })
    else {
        return decide_case_a(v);
    };

    let chosen_price = v.price(selected);
    let payment = budget.value_at(v.time(selected));
    let profit = payment - chosen_price;
    debug_assert!(!profit.is_negative(), "affordable ⇒ non-negative profit");
    (case, selected, payment, profit)
}

/// Case A decision: nothing affordable — the user picks (and pays the
/// price of) the cheapest existing plan.
fn decide_case_a(v: HotRows<'_>) -> (SelectionCase, usize, Money, Money) {
    let selected = (0..v.len())
        .filter(|&i| v.existing(i))
        .min_by(|&a, &b| v.price(a).cmp(&v.price(b)).then(v.time(a).cmp(&v.time(b))))
        .expect("checked: P_exist non-empty");
    (SelectionCase::A, selected, v.price(selected), Money::ZERO)
}

/// Case A regret: eq. 1 for possible plans cheaper than the chosen one.
fn regrets_case_a(v: HotRows<'_>, selected: usize) -> Vec<(usize, Money)> {
    let chosen_price = v.price(selected);
    (0..v.len())
        .filter(|&i| i != selected && !v.existing(i) && v.price(i) <= chosen_price)
        .map(|i| (i, chosen_price - v.price(i)))
        .filter(|(_, r)| r.is_positive())
        .collect()
}

/// Cases B/C regret, for every rejected possible plan (Section IV-C: "we
/// compute and distribute regret of all plans"):
///  * plans at least as expensive as the chosen one, if affordable, use
///    eq. 2 — the profit `B_Q(t_j) − B_PQ(t_j)` the cloud passed up;
///  * cheaper plans use the eq. 1 value — the cost reduction
///    `B_PQ(t_i) − B_PQ(t_j)` the cloud failed to offer. This is what
///    lets a cheaper-but-unbuilt column set accumulate regret even
///    though the budget comfortably covers the backend.
fn regrets_case_bc(
    v: HotRows<'_>,
    budget: &BudgetFunction,
    selected: usize,
) -> Vec<(usize, Money)> {
    let affordable = |i: usize| budget.affords(v.time(i), v.price(i));
    let chosen_price = v.price(selected);
    (0..v.len())
        .filter(|&i| i != selected && !v.existing(i))
        .filter_map(|i| {
            let r = if v.price(i) >= chosen_price {
                if affordable(i) {
                    budget.value_at(v.time(i)) - v.price(i)
                } else {
                    return None;
                }
            } else {
                chosen_price - v.price(i)
            };
            r.is_positive().then_some((i, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetShape;
    use metrics::CostBreakdown;
    use planner::plan::PlanShape;
    use simcore::SimDuration;

    fn plan(time: f64, price: f64, existing: bool) -> QueryPlan {
        QueryPlan {
            shape: PlanShape::Backend,
            exec_time: SimDuration::from_secs(time),
            exec_cost: Money::from_dollars(price),
            exec_breakdown: CostBreakdown::ZERO,
            uses: vec![],
            missing: if existing {
                vec![]
            } else {
                vec![cache::StructureKey::Node(0)]
            },
            build_cost: Money::ZERO,
            build_time: SimDuration::ZERO,
            amortized_cost: Money::ZERO,
            maintenance_cost: Money::ZERO,
            price: Money::from_dollars(price),
        }
    }

    fn step(amount: f64, t_max: f64) -> BudgetFunction {
        BudgetFunction::of_shape(
            BudgetShape::Step,
            Money::from_dollars(amount),
            SimDuration::from_secs(t_max),
        )
    }

    #[test]
    fn case_a_when_budget_below_everything() {
        // Skyline: (1s, $10 possible), (5s, $6 existing).
        let plans = vec![plan(1.0, 10.0, false), plan(5.0, 6.0, true)];
        let sel = select_plan(&plans, &step(1.0, 10.0), SelectionObjective::MinProfit);
        assert_eq!(sel.case, SelectionCase::A);
        assert_eq!(sel.selected, 1, "cheapest existing plan");
        assert_eq!(sel.payment, Money::from_dollars(6.0), "pays the price");
        assert_eq!(sel.profit, Money::ZERO);
    }

    #[test]
    fn case_a_regret_for_cheaper_possible_plans() {
        // Chosen existing costs $6; a possible plan at $2 ⇒ regret $4 (eq. 1).
        let plans = vec![plan(2.0, 2.0, false), plan(5.0, 6.0, true)];
        let sel = select_plan(&plans, &step(0.5, 10.0), SelectionObjective::MinProfit);
        assert_eq!(sel.case, SelectionCase::A);
        assert_eq!(sel.regrets, vec![(0, Money::from_dollars(4.0))]);
    }

    #[test]
    fn case_b_minprofit_credits_smallest_profit() {
        // Budget $10 flat. Existing plans: (1s, $9) profit 1; (4s, $5) profit 5.
        let plans = vec![plan(1.0, 9.0, true), plan(4.0, 5.0, true)];
        let sel = select_plan(&plans, &step(10.0, 10.0), SelectionObjective::MinProfit);
        assert_eq!(sel.case, SelectionCase::B);
        assert_eq!(sel.selected, 0);
        assert_eq!(sel.payment, Money::from_dollars(10.0), "pays B_Q(t)");
        assert_eq!(sel.profit, Money::from_dollars(1.0));
    }

    #[test]
    fn case_b_cheapest_objective() {
        let plans = vec![plan(1.0, 9.0, true), plan(4.0, 5.0, true)];
        let sel = select_plan(&plans, &step(10.0, 10.0), SelectionObjective::Cheapest);
        assert_eq!(sel.selected, 1, "econ-cheap takes the $5 plan");
        assert_eq!(sel.profit, Money::from_dollars(5.0));
    }

    #[test]
    fn case_b_fastest_objective() {
        let plans = vec![plan(1.0, 9.0, true), plan(4.0, 5.0, true)];
        let sel = select_plan(&plans, &step(10.0, 10.0), SelectionObjective::Fastest);
        assert_eq!(sel.selected, 0, "econ-fast takes the 1 s plan");
    }

    #[test]
    fn case_b_regret_for_pricier_possible_plans() {
        // Chosen existing: (4s, $5). Possible: (1s, $8): regret = B(1s)−8 = $2 (eq. 2).
        let plans = vec![plan(1.0, 8.0, false), plan(4.0, 5.0, true)];
        let sel = select_plan(&plans, &step(10.0, 10.0), SelectionObjective::Cheapest);
        assert_eq!(sel.case, SelectionCase::B);
        assert_eq!(sel.regrets, vec![(0, Money::from_dollars(2.0))]);
    }

    #[test]
    fn case_c_restricts_to_affordable_subset() {
        // Convex budget: $10 at t=0 decaying to 0 at t=10.
        let budget = BudgetFunction::of_shape(
            BudgetShape::Convex,
            Money::from_dollars(10.0),
            SimDuration::from_secs(10.0),
        );
        // (2s, $7 existing): B(2)=8 ≥ 7 affordable.
        // (8s, $4 existing): B(8)=2 < 4 unaffordable.
        let plans = vec![plan(2.0, 7.0, true), plan(8.0, 4.0, true)];
        let sel = select_plan(&plans, &budget, SelectionObjective::Cheapest);
        assert_eq!(sel.case, SelectionCase::C);
        assert_eq!(sel.selected, 0, "cheapest *affordable*");
        assert_eq!(sel.payment, Money::from_dollars(8.0));
        assert_eq!(sel.profit, Money::from_dollars(1.0));
    }

    #[test]
    fn case_c_with_only_possible_affordable_falls_back_to_a() {
        // The affordable plan needs builds; the existing one is out of
        // budget. The query must still run: Case-A semantics.
        let plans = vec![plan(1.0, 2.0, false), plan(5.0, 6.0, true)];
        let sel = select_plan(&plans, &step(3.0, 10.0), SelectionObjective::MinProfit);
        assert_eq!(sel.case, SelectionCase::A);
        assert_eq!(sel.selected, 1);
        assert_eq!(sel.payment, Money::from_dollars(6.0));
        // eq. 1 regret for the cheaper possible plan.
        assert_eq!(sel.regrets, vec![(0, Money::from_dollars(4.0))]);
    }

    #[test]
    fn deadline_excludes_slow_plans() {
        // Both plans cost $1, but the slow one exceeds t_max ⇒ Case C.
        let plans = vec![plan(1.0, 1.0, true), plan(20.0, 1.0, true)];
        let sel = select_plan(&plans, &step(5.0, 10.0), SelectionObjective::Cheapest);
        assert_eq!(sel.case, SelectionCase::C);
        assert_eq!(sel.selected, 0);
    }

    #[test]
    fn no_regret_without_possible_plans() {
        let plans = vec![plan(1.0, 3.0, true), plan(2.0, 2.0, true)];
        let sel = select_plan(&plans, &step(5.0, 10.0), SelectionObjective::MinProfit);
        assert!(sel.regrets.is_empty());
    }

    #[test]
    #[should_panic(expected = "P_exist must not be empty")]
    fn all_possible_plans_rejected() {
        let plans = vec![plan(1.0, 1.0, false)];
        let _ = select_plan(&plans, &step(5.0, 10.0), SelectionObjective::MinProfit);
    }
}
