//! Per-query outcome reporting.

use cache::StructureKey;
use metrics::CostBreakdown;
use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Which branch of the Section IV-C case analysis applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionCase {
    /// Budget below every plan.
    A,
    /// Budget covers every plan.
    B,
    /// Budget covers a strict subset.
    C,
}

/// Everything the simulator needs to know about one processed query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Case that applied.
    pub case: SelectionCase,
    /// Wall-clock response time of the executed plan.
    pub response_time: SimDuration,
    /// What the user paid.
    pub payment: Money,
    /// Cloud profit on this query (`payment − price`; zero in Case A).
    pub profit: Money,
    /// The executed plan's resource cost (the cloud's expenditure for the
    /// execution itself).
    pub exec_cost: Money,
    /// Per-resource split of `exec_cost`.
    pub exec_breakdown: CostBreakdown,
    /// True if the plan ran in the cache (vs the back-end).
    pub ran_in_cache: bool,
    /// Structures the plan used.
    pub used_structures: Vec<StructureKey>,
    /// Structures the economy decided to build after this query, with the
    /// build cost paid for each.
    pub investments: Vec<(StructureKey, Money)>,
    /// Structures evicted (failed) before planning this query.
    pub evictions: Vec<StructureKey>,
    /// Maintenance reimbursed by this query's payment.
    pub maintenance_collected: Money,
    /// Amortisation installments collected.
    pub amortization_collected: Money,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_distinct() {
        assert_ne!(SelectionCase::A, SelectionCase::B);
        assert_ne!(SelectionCase::B, SelectionCase::C);
    }

    #[test]
    fn outcome_roundtrips_serde() {
        let o = QueryOutcome {
            case: SelectionCase::B,
            response_time: SimDuration::from_secs(1.5),
            payment: Money::from_dollars(0.02),
            profit: Money::from_dollars(0.005),
            exec_cost: Money::from_dollars(0.01),
            exec_breakdown: CostBreakdown::ZERO,
            ran_in_cache: true,
            used_structures: vec![StructureKey::Node(0)],
            investments: vec![],
            evictions: vec![],
            maintenance_collected: Money::ZERO,
            amortization_collected: Money::ZERO,
        };
        let json = serde_json::to_string(&o).unwrap();
        let back: QueryOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }
}
