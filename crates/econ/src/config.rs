//! Economy configuration.

use planner::enumerate::EnumerationOptions;
use pricing::Money;
use serde::{Deserialize, Serialize};

use crate::amortize::AmortizationPolicy;
use crate::budget::BudgetShape;
use crate::invest::InvestmentRule;
use crate::maintenance::FailurePolicy;
use crate::regret::RegretAttribution;
use crate::selection::SelectionObjective;

/// Full configuration of an [`crate::EconomyManager`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EconConfig {
    /// Tie-break objective among affordable existing plans (cases B/C).
    pub objective: SelectionObjective,
    /// Which plan families the policy lets the enumerator consider.
    pub allow_indexes: bool,
    /// Whether multi-node plans may be considered.
    pub allow_extra_nodes: bool,
    /// Amortisation horizon policy (eq. 7's `n`).
    pub amortization: AmortizationPolicy,
    /// Investment rule (eq. 3).
    pub investment: InvestmentRule,
    /// Structure failure thresholds (footnote 3).
    pub failure: FailurePolicy,
    /// Working capital the account opens with.
    pub initial_credit: Money,
    /// Budget shape generated for users (the paper's experiments use
    /// [`BudgetShape::Step`]).
    pub budget_shape: BudgetShape,
    /// The user's deadline `t_max` as a multiple of the backend plan's
    /// execution time (users "accept query execution in the back-end", so
    /// patience ≥ 1).
    pub patience: f64,
    /// Capacity of the regret pool (Section IV-B's LRU-collected set of
    /// structures "relevant to the queries in the recent past").
    pub regret_pool_capacity: usize,
    /// How rejected-plan regret is attributed to structures (see
    /// [`RegretAttribution`]).
    pub regret_attribution: RegretAttribution,
    /// Per-plan maintenance backlog cap, in multiples of the observed mean
    /// inter-arrival gap (footnote 3 with a write-off: see
    /// `cache::CacheState::settle_maintenance`).
    pub maint_window_gaps: f64,
    /// Memoize planning per query template: repeat instances under an
    /// unchanged cache epoch skip enumeration (see `crate::plancache`).
    /// Results are bit-identical either way — the switch exists so tests
    /// and benches can compare memoized runs against fresh planning.
    pub plan_cache: bool,
}

impl Default for EconConfig {
    fn default() -> Self {
        EconConfig {
            objective: SelectionObjective::Cheapest,
            allow_indexes: true,
            allow_extra_nodes: true,
            // Adaptive horizon (the paper's open problem, Section IV-D):
            // n = expected queries in a 30-day repayment window. A fixed
            // small n makes Build/n installments swamp per-query prices at
            // the paper's 2.5 TB scale and freezes the economy.
            amortization: AmortizationPolicy::Adaptive {
                window_secs: 30.0 * 86_400.0,
                min_n: 1_000,
                max_n: 500_000,
            },
            investment: InvestmentRule::default(),
            failure: FailurePolicy::default(),
            initial_credit: Money::from_dollars(5.0),
            budget_shape: BudgetShape::Step,
            patience: 2.0,
            regret_pool_capacity: 512,
            regret_attribution: RegretAttribution::FullValue,
            maint_window_gaps: 3.0,
            plan_cache: true,
        }
    }
}

impl EconConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), &'static str> {
        self.investment.validate()?;
        self.failure.validate()?;
        if self.initial_credit.is_negative() {
            return Err("initial_credit must be non-negative");
        }
        if !self.patience.is_finite() || self.patience < 1.0 {
            return Err("patience must be >= 1 (users accept backend execution)");
        }
        if self.regret_pool_capacity == 0 {
            return Err("regret_pool_capacity must be positive");
        }
        if !self.maint_window_gaps.is_finite() || self.maint_window_gaps <= 0.0 {
            return Err("maint_window_gaps must be positive");
        }
        Ok(())
    }

    /// The enumeration options this config implies, with the amortisation
    /// horizon resolved at the given arrival rate.
    #[must_use]
    pub fn enumeration(&self, arrival_rate_per_sec: f64) -> EnumerationOptions {
        // Mean gap falls back to one minute until the rate is observed.
        let mean_gap = if arrival_rate_per_sec > 0.0 {
            1.0 / arrival_rate_per_sec
        } else {
            60.0
        };
        EnumerationOptions {
            allow_indexes: self.allow_indexes,
            allow_extra_nodes: self.allow_extra_nodes,
            amortize_n: self.amortization.horizon(arrival_rate_per_sec),
            maint_window: simcore::SimDuration::from_secs(self.maint_window_gaps * mean_gap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(EconConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_fields_caught() {
        let c = EconConfig {
            patience: 0.5,
            ..EconConfig::default()
        };
        assert!(c.validate().is_err());
        let c = EconConfig {
            regret_pool_capacity: 0,
            ..EconConfig::default()
        };
        assert!(c.validate().is_err());
        let c = EconConfig {
            initial_credit: Money::from_dollars(-1.0),
            ..EconConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn enumeration_resolves_horizon() {
        let c = EconConfig {
            amortization: AmortizationPolicy::Adaptive {
                window_secs: 100.0,
                min_n: 1,
                max_n: 1000,
            },
            ..EconConfig::default()
        };
        assert_eq!(c.enumeration(2.0).amortize_n, 200);
        assert!(c.enumeration(2.0).allow_indexes);
    }
}
