//! Memoized planning — the per-template plan cache.
//!
//! The economy's control loop runs full plan enumeration (`P_Q`, skyline,
//! case analysis) for **every** arriving query, and the fleet layer
//! multiplies that by the node count because cheapest-quote routing plans
//! the query once per bidding node. Most of that work is redundant: the
//! seven paper templates arrive Zipf-skewed, and the enumerated plan set
//! for a given query instance factors into
//!
//! * a **skeleton** ([`planner::PlanSkeleton`]) — the cache-independent
//!   half (backend estimate, candidate-index choice, per-variant
//!   execution volumes, build-cost shapes), a pure function of the
//!   query's planning fingerprint; and
//! * a **completion** — the cheap per-node phase binding the skeleton to
//!   the live cache state, valid while the cache planning epoch
//!   ([`cache::CacheState::epoch`]) stands still.
//!
//! A [`Slot`] memoizes both halves under the fingerprint. A lookup whose
//! fingerprint matches but whose epoch moved no longer re-enumerates: it
//! re-runs only the completion phase from the memoized skeleton (counted
//! in [`PlanCacheStats::completions`]). Components that drift with state
//! the epoch does not cover are *recomputed* on every reuse rather than
//! trusted:
//!
//! * **maintenance** accrues continuously with the clock and is capped
//!   at the arrival-rate-derived window, so a hit recomputes each plan's
//!   maintenance quote (O(uses) map lookups — far cheaper than
//!   enumeration);
//! * **amortisation dues** of existing structures shrink as installments
//!   are collected; the settlement counter
//!   ([`cache::CacheState::settle_seq`]) tells the cache when dues moved;
//! * **first installments** of missing structures depend on the adaptive
//!   horizon `n`, which moves with the observed arrival rate — the slot
//!   stores each plan's epoch-stable missing-build quotes and re-divides
//!   them under the current horizon, so the memo keeps firing under
//!   Poisson and fleet arrivals where the rate changes every query.
//!
//! Slots are **2-way set-associative** per template: two live instances
//! of one template (the prepared-statement regime with two distinct
//! parameterisations in flight) no longer evict each other — the thrash
//! case pinned in `tests/memoization.rs`. Replacement within a set is
//! least-recently-used.
//!
//! Templates that keep *more* than two parameterisations live thrash
//! even a 2-way set. Rather than widening every set for the worst
//! template, a small **fully-associative victim cache** backs all sets
//! adaptively: a displaced slot is admitted only once its template has
//! accumulated more way-conflict evictions than the set has ways
//! (persistent-thrash evidence, not a one-off collision), and a lookup
//! that misses its set probes the victims before declaring a miss — a
//! victim hit swaps the slot back into the set (displacing that set's
//! LRU way into the victim cache) and counts in
//! [`PlanCacheStats::victim_hits`]. The associativity a template
//! *effectively* gets therefore grows with its observed live-instance
//! count, bounded by [`VICTIM_CACHE_SLOTS`] shared across all templates.
//!
//! The contract — enforced by `tests/memoization.rs`,
//! `tests/skeleton_split.rs` and the fleet routing tests — is that
//! memoized results are **bit-identical** to fresh enumeration: same
//! plans, same order, same prices, and therefore the same selections,
//! payments, regrets and investments. Determinism and shard-invariance
//! of the fleet depend on it.

use std::sync::Arc;

use cache::CacheState;
use planner::enumerate::EnumerationOptions;
use planner::{PlanSkeleton, QueryPlan};
use pricing::Money;
use simcore::SimTime;
use workload::Query;

/// Associativity of each template set: two live instances of one
/// template can be memoized side by side.
pub(crate) const PLAN_CACHE_WAYS: usize = 2;

/// Capacity of the fully-associative victim cache shared by all
/// template sets (see the module docs): enough for a handful of
/// persistently thrashing templates to keep their 3rd..nth live
/// parameterisations memoized, small enough that the miss-path probe
/// stays a short linear scan.
pub(crate) const VICTIM_CACHE_SLOTS: usize = 8;

/// One memoized template slot: the skeleton plus its latest completion.
///
/// The match key is the full query fingerprint alone. The skeleton is a
/// superset (built with every plan family enabled), so it is valid for
/// any structural switches; the completion additionally records the
/// epoch and switches it was produced under, and is re-run from the
/// skeleton when either moved. The arrival-rate-derived options —
/// amortisation horizon and maintenance window — move with the observed
/// arrival statistics on almost every query under non-uniform arrivals,
/// so keying on them would make the memo inert exactly where it matters
/// (Poisson tenants, fleet quote rounds). Instead the price components
/// they parameterise are re-derived on reuse from the stored
/// epoch-stable build quotes and the live ledger.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Full planning fingerprint of the query instance (collision-proof:
    /// compared in full, not hashed).
    pub fingerprint: Vec<u64>,
    /// The cache-independent skeleton: adopted from the quote round when
    /// one supplied it (`Arc`-shared across every bidding node), and
    /// otherwise built lazily by the first epoch-stale lookup that needs
    /// to re-complete — a drifting workload whose fingerprints never
    /// repeat should not pay for skeletons it will never reuse.
    pub skeleton: Option<Arc<PlanSkeleton>>,
    /// Cache planning epoch the completion was produced under.
    pub epoch: u64,
    /// Settlement counter at the last price refresh.
    pub settle_seq: u64,
    /// Enumeration options the plans were last *priced* under (the
    /// structural switches within gate completion validity; the horizon
    /// and window record what the current prices reflect).
    pub opts: EnumerationOptions,
    /// Instant of the last price refresh.
    pub now: SimTime,
    /// The completed plan set, in enumeration order (backend first).
    pub plans: Vec<QueryPlan>,
    /// Per-plan build quotes of the *missing* structures, parallel to
    /// each plan's `missing` list. Epoch-stable; refreshes re-derive the
    /// first-installment amortisation from them under the current
    /// horizon.
    pub missing_builds: Vec<Vec<Money>>,
    /// LRU stamp for way replacement within the template set.
    pub stamp: u64,
}

/// Hit/miss counters (exposed through the policies layer and the
/// `hotpath` bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from a memoized completed plan set.
    pub hits: u64,
    /// Lookups that had to enumerate (fresh fingerprint).
    pub misses: u64,
    /// Hits that needed a maintenance/amortisation price refresh (the
    /// clock or the settlement counter had moved).
    pub refreshes: u64,
    /// Lookups whose skeleton was memoized but whose completion was stale
    /// (the cache epoch moved): only the cheap per-node completion phase
    /// re-ran.
    pub completions: u64,
    /// Installs that displaced a *live* way — both ways of the template's
    /// set were occupied, so a memoized instance was evicted to make
    /// room. A workload with persistent conflicts has more than
    /// [`PLAN_CACHE_WAYS`] live instances per template; once a template's
    /// conflict count exceeds the set's way count, its displaced slots
    /// are admitted to the victim cache ([`PlanCache::way_conflicts`]
    /// breaks the signal down per template).
    pub conflicts: u64,
    /// Set-miss lookups rescued by the victim cache: the fingerprint was
    /// displaced from its set but still memoized, and was swapped back
    /// in. Each one is a full enumeration (or at least a completion
    /// re-run) avoided that a plain 2-way cache would have paid.
    pub victim_hits: u64,
}

/// Per-manager memoized plan sets: a 2-way set of slots per template,
/// backed by a small fully-associative victim cache for persistently
/// thrashing templates.
#[derive(Debug, Default)]
pub struct PlanCache {
    sets: Vec<[Option<Slot>; PLAN_CACHE_WAYS]>,
    /// Fully-associative victim cache, keyed `(template, fingerprint)`.
    /// At most [`VICTIM_CACHE_SLOTS`] entries; eviction is LRU by stamp.
    victims: Vec<(usize, Slot)>,
    stats: PlanCacheStats,
    /// Way-conflict evictions per template (index = template id), the
    /// per-set admission evidence for the victim cache.
    template_conflicts: Vec<u64>,
    fingerprint_scratch: Vec<u64>,
    tick: u64,
}

impl PlanCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Way-conflict evictions per template (indexed by template id; a
    /// template beyond the slice's end has seen none). Input signal for
    /// the seeded adaptive-associativity work: a persistently conflicting
    /// template has more live instances than its set has ways.
    #[must_use]
    pub fn way_conflicts(&self) -> &[u64] {
        &self.template_conflicts
    }

    /// Builds the planning fingerprint of `query` into the internal
    /// scratch — [`planner::planning_fingerprint`], which covers exactly
    /// the fields enumeration reads (`budget_scale`, `id` and `region`
    /// are deliberately excluded) and also keys the fleet-wide
    /// [`planner::SkeletonCache`].
    pub(crate) fn prepare_fingerprint(&mut self, query: &Query) {
        planner::planning_fingerprint(query, &mut self.fingerprint_scratch);
    }

    /// Adopts an already-derived planning fingerprint into the scratch —
    /// the batched quote round derives the word vector once per round
    /// (it is a pure function of the query) and every classified node
    /// copies it instead of re-walking the query.
    pub(crate) fn adopt_fingerprint(&mut self, fingerprint: &[u64]) {
        self.fingerprint_scratch.clear();
        self.fingerprint_scratch.extend_from_slice(fingerprint);
    }

    /// The memoized slot for `template` whose fingerprint matches the
    /// prepared scratch, refreshing its LRU stamp. A set miss probes the
    /// victim cache; a victim hit swaps the slot back into the set (the
    /// displaced live way, if any, takes the victim's place). The caller
    /// decides whether the slot's *completion* is still valid (epoch +
    /// structural switches) — the skeleton always is.
    pub(crate) fn matching_slot(&mut self, template: usize) -> Option<&mut Slot> {
        let fp = &self.fingerprint_scratch;
        let set = self.sets.get_mut(template)?;
        let way =
            (0..PLAN_CACHE_WAYS).find(|&w| set[w].as_ref().is_some_and(|s| s.fingerprint == *fp));
        let way = match way {
            Some(w) => w,
            None => {
                let v = self
                    .victims
                    .iter()
                    .position(|(t, s)| *t == template && s.fingerprint == *fp)?;
                let (_, slot) = self.victims.swap_remove(v);
                self.stats.victim_hits += 1;
                // Promote into an empty way if one exists, else swap with
                // the LRU way — the victim cache holds the displaced
                // instance so neither memoization is lost.
                let w = (0..PLAN_CACHE_WAYS)
                    .find(|&w| set[w].is_none())
                    .unwrap_or_else(|| {
                        (0..PLAN_CACHE_WAYS)
                            .min_by_key(|&w| set[w].as_ref().map_or(0, |s| s.stamp))
                            .expect("set has at least one way")
                    });
                if let Some(evicted) = set[w].replace(slot) {
                    self.victims.push((template, evicted));
                }
                w
            }
        };
        self.tick += 1;
        let slot = self.sets[template][way].as_mut().expect("way just matched");
        slot.stamp = self.tick;
        Some(slot)
    }

    /// Re-finds the slot a previous [`Self::matching_slot`] call already
    /// matched under the still-prepared fingerprint, *without* touching
    /// the LRU tick. Batched quote rounds classify every node first and
    /// adopt the batch-completed plan sets in a later phase; bumping the
    /// stamp twice per lookup would diverge from the sequential path's
    /// replacement order. No victim probe here: the classify-phase match
    /// already promoted any victim hit into the set.
    pub(crate) fn rematch_slot(&mut self, template: usize) -> Option<&mut Slot> {
        let fp = &self.fingerprint_scratch;
        let set = self.sets.get_mut(template)?;
        set.iter_mut().flatten().find(|s| s.fingerprint == *fp)
    }

    /// Memoizes a fresh skeleton + completion for `template` under the
    /// prepared fingerprint, evicting the set's LRU way if both ways are
    /// live. A displaced slot whose template has shown *persistent*
    /// thrash — more way-conflict evictions than the set has ways — is
    /// admitted whole into the victim cache (evicting the victim LRU if
    /// full) instead of being dismantled; the admission bar keeps one-off
    /// collisions from churning the victims. Returns the displaced
    /// slot's plans (if any, and not admitted) so the caller can recycle
    /// their allocations.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn install_slot(
        &mut self,
        template: usize,
        skeleton: Option<Arc<PlanSkeleton>>,
        epoch: u64,
        settle_seq: u64,
        opts: EnumerationOptions,
        now: SimTime,
        plans: Vec<QueryPlan>,
        missing_builds: Vec<Vec<Money>>,
    ) -> Option<(Vec<QueryPlan>, Vec<Vec<Money>>)> {
        if template >= self.sets.len() {
            self.sets.resize_with(template + 1, Default::default);
        }
        let set = &mut self.sets[template];
        // An empty way if one exists, otherwise the LRU way.
        let way = (0..PLAN_CACHE_WAYS)
            .find(|&w| set[w].is_none())
            .unwrap_or_else(|| {
                (0..PLAN_CACHE_WAYS)
                    .min_by_key(|&w| set[w].as_ref().map_or(0, |s| s.stamp))
                    .expect("set has at least one way")
            });
        let (mut fingerprint, displaced) = match set[way].take() {
            Some(old) => {
                self.stats.conflicts += 1;
                if template >= self.template_conflicts.len() {
                    self.template_conflicts.resize(template + 1, 0);
                }
                self.template_conflicts[template] += 1;
                if self.template_conflicts[template] > PLAN_CACHE_WAYS as u64 {
                    // Persistent thrash: keep the displaced slot whole.
                    // When that overflows the victim pool, the evicted
                    // LRU victim is dismantled for parts — so the
                    // steady-state install still recycles one slot's
                    // allocations instead of churning the allocator on
                    // every displacement.
                    let recycled = if self.victims.len() >= VICTIM_CACHE_SLOTS {
                        let lru = self
                            .victims
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (_, s))| s.stamp)
                            .map(|(i, _)| i)
                            .expect("victim cache is non-empty when full");
                        let (_, evicted) = self.victims.swap_remove(lru);
                        (
                            evicted.fingerprint,
                            Some((evicted.plans, evicted.missing_builds)),
                        )
                    } else {
                        (Vec::new(), None)
                    };
                    self.victims.push((template, old));
                    recycled
                } else {
                    (old.fingerprint, Some((old.plans, old.missing_builds)))
                }
            }
            None => (Vec::new(), None),
        };
        fingerprint.clear();
        fingerprint.extend_from_slice(&self.fingerprint_scratch);
        self.tick += 1;
        set[way] = Some(Slot {
            fingerprint,
            skeleton,
            epoch,
            settle_seq,
            opts,
            now,
            plans,
            missing_builds,
            stamp: self.tick,
        });
        displaced
    }

    /// Records a hit (optionally after a refresh).
    pub(crate) fn count_hit(&mut self, refreshed: bool) {
        self.stats.hits += 1;
        if refreshed {
            self.stats.refreshes += 1;
        }
    }

    /// Records a completion re-run (skeleton hit, stale completion).
    pub(crate) fn count_completion(&mut self) {
        self.stats.completions += 1;
    }

    /// Records a full miss (skeleton built from scratch).
    pub(crate) fn count_miss(&mut self) {
        self.stats.misses += 1;
    }
}

impl Slot {
    /// True if the memoized completion is still structurally valid: the
    /// cache epoch has not moved and the plan-family switches match. The
    /// horizon/window halves of `opts` are *not* compared — they only
    /// scale prices, which [`Self::refresh_prices`] re-derives.
    pub fn completion_current(&self, epoch: u64, opts: &EnumerationOptions) -> bool {
        self.epoch == epoch
            && self.opts.allow_indexes == opts.allow_indexes
            && self.opts.allow_extra_nodes == opts.allow_extra_nodes
    }

    /// True if the prices quoted at the last refresh are still exact: the
    /// clock has not moved (maintenance spans unchanged), no settlement
    /// has collected installments or moved checkpoints since, and the
    /// arrival-rate-derived options are unchanged.
    pub fn prices_current(
        &self,
        cache: &CacheState,
        now: SimTime,
        opts: &EnumerationOptions,
    ) -> bool {
        self.now == now
            && self.settle_seq == cache.settle_seq()
            && self.opts.amortize_n == opts.amortize_n
            && self.opts.maint_window == opts.maint_window
    }

    /// Replaces the slot's completion after a re-run from the skeleton,
    /// returning the displaced plan set for recycling.
    pub fn replace_completion(
        &mut self,
        epoch: u64,
        settle_seq: u64,
        opts: EnumerationOptions,
        now: SimTime,
        plans: Vec<QueryPlan>,
        missing_builds: Vec<Vec<Money>>,
    ) -> (Vec<QueryPlan>, Vec<Vec<Money>>) {
        self.epoch = epoch;
        self.settle_seq = settle_seq;
        self.opts = opts;
        self.now = now;
        (
            std::mem::replace(&mut self.plans, plans),
            std::mem::replace(&mut self.missing_builds, missing_builds),
        )
    }

    /// Re-quotes every plan's amortisation (first installments of missing
    /// structures under the current horizon, live dues of existing ones)
    /// and maintenance (live checkpoints capped at the current window)
    /// at `now`, mirroring the enumerator's quoting loops exactly (same
    /// structures, same order of rounding) so refreshed prices are
    /// bit-identical to fresh enumeration under the same epoch.
    pub fn refresh_prices<F>(
        &mut self,
        cache: &CacheState,
        now: SimTime,
        opts: EnumerationOptions,
        price: F,
    ) where
        F: Fn(&cache::CachedStructure, simcore::SimDuration) -> Money,
    {
        debug_assert!(opts.amortize_n > 0, "amortization horizon must be positive");
        for (plan, builds) in self.plans.iter_mut().zip(&self.missing_builds) {
            let mut amortized = Money::ZERO;
            for &build in builds {
                amortized += build.amortize_over(opts.amortize_n);
            }
            let mut maintenance = Money::ZERO;
            for &key in &plan.uses {
                if let Some(s) = cache.get(key) {
                    if s.is_available(now) {
                        amortized += s.amortization_due();
                        let span = now
                            .saturating_since(s.maint_paid_until)
                            .min(opts.maint_window);
                        maintenance += price(s, span);
                    }
                }
            }
            plan.amortized_cost = amortized;
            plan.maintenance_cost = maintenance;
            plan.price = plan.exec_cost + plan.amortized_cost + plan.maintenance_cost;
        }
        self.now = now;
        self.settle_seq = cache.settle_seq();
        self.opts = opts;
    }
}
